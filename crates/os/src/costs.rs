//! Instruction-cost model for kernel routines.
//!
//! Every kernel routine charges (a) its real memory traffic through
//! [`kindle_types::PhysMem`] and (b) a fixed instruction count from this
//! table, standing in for the register-only work gem5 would execute. The
//! defaults approximate a lightweight kernel like gemOS; they are plain data
//! so experiments can ablate them.

/// Instruction counts (1 cycle each on the in-order core) per routine.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelCosts {
    /// System-call entry/exit (mode switch, dispatch).
    pub syscall_entry: u64,
    /// Page-fault entry/exit (trap frame, decode).
    pub fault_entry: u64,
    /// VMA list operation (search + insert/split bookkeeping).
    pub vma_op: u64,
    /// Allocating or freeing one physical frame (list ops).
    pub frame_op: u64,
    /// Per-PTE manipulation overhead (index math, checks).
    pub pte_op: u64,
    /// Extra instructions to wrap one PTE store in the NVM-consistency
    /// mechanism (logging bookkeeping; the log's memory traffic is charged
    /// for real on top of this).
    pub pt_consistency_op: u64,
    /// Per-entry overhead of maintaining the virtual→NVM-frame mapping list
    /// during a checkpoint scan (hash/lookup/compare bookkeeping).
    pub mapping_list_op: u64,
    /// Appending one record to the metadata redo log.
    pub meta_log_op: u64,
    /// Per-entry software inspection of the SSP metadata cache at a
    /// consistency-interval end (load, test, clwb issue).
    pub ssp_inspect_op: u64,
    /// Per-page overhead of migration bookkeeping (HSCC).
    pub migration_page_op: u64,
    /// Fixed cost of a context switch into a kernel thread (consolidation,
    /// migration daemon).
    pub kthread_switch: u64,
    /// Retiring a worn-out NVM frame: fault bookkeeping, allocator update
    /// and remap orchestration (the page copy's traffic is charged for
    /// real on top of this).
    pub frame_retire_op: u64,
    /// Per-frame fixed overhead of one scrubd verify pass over an NVM
    /// page-table frame (loop setup, checksum bookkeeping).
    pub scrub_frame_op: u64,
    /// Per-line overhead of reading back and checksumming one cache line
    /// during a scrub pass.
    pub scrub_line_op: u64,
    /// Zero newly allocated frames (gemOS zeroes on demand-alloc) — setting
    /// this false skips the 64-line clear, useful for microbenchmarks.
    pub zero_new_frames: bool,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            syscall_entry: 250,
            fault_entry: 350,
            vma_op: 300,
            frame_op: 120,
            pte_op: 12,
            pt_consistency_op: 600,
            mapping_list_op: 40,
            meta_log_op: 80,
            ssp_inspect_op: 900,
            migration_page_op: 600,
            kthread_switch: 600,
            frame_retire_op: 800,
            scrub_frame_op: 400,
            scrub_line_op: 40,
            zero_new_frames: true,
        }
    }
}

impl KernelCosts {
    /// Cheap variant for unit tests (1 instruction everywhere, no zeroing)
    /// so tests assert on structure rather than big numbers.
    pub fn for_test() -> Self {
        KernelCosts {
            syscall_entry: 1,
            fault_entry: 1,
            vma_op: 1,
            frame_op: 1,
            pte_op: 1,
            pt_consistency_op: 1,
            mapping_list_op: 1,
            meta_log_op: 1,
            ssp_inspect_op: 1,
            migration_page_op: 1,
            kthread_switch: 1,
            frame_retire_op: 1,
            scrub_frame_op: 1,
            scrub_line_op: 1,
            zero_new_frames: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nontrivial() {
        let c = KernelCosts::default();
        assert!(c.fault_entry > c.pte_op);
        assert!(c.zero_new_frames);
    }
}
