//! OS metadata modification records.
//!
//! The kernel emits a [`MetaRecord`] for every modification of OS-level
//! process metadata; the persistence layer drains them into the NVM redo
//! log (§II-A: "we use redo log stored in NVM to capture all modifications
//! to the OS-level process meta-data").

use kindle_types::{MemKind, Pfn, Prot, VirtAddr, Vpn};

/// One metadata modification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MetaRecord {
    /// A process was created.
    ProcessCreate {
        /// New process id.
        pid: u32,
    },
    /// A VMA was added.
    VmaAdd {
        /// Owning process.
        pid: u32,
        /// Area start.
        start: VirtAddr,
        /// Area end (exclusive).
        end: VirtAddr,
        /// Protection.
        prot: Prot,
        /// Backing pool.
        kind: MemKind,
    },
    /// A VMA range was removed.
    VmaRemove {
        /// Owning process.
        pid: u32,
        /// Removed range start.
        start: VirtAddr,
        /// Removed range end.
        end: VirtAddr,
    },
    /// Protection changed on a range.
    VmaProtect {
        /// Owning process.
        pid: u32,
        /// Range start.
        start: VirtAddr,
        /// Range end.
        end: VirtAddr,
        /// New protection.
        prot: Prot,
    },
    /// A virtual page got a physical frame (demand paging).
    PageMapped {
        /// Owning process.
        pid: u32,
        /// Virtual page.
        vpn: Vpn,
        /// Frame.
        pfn: Pfn,
        /// Pool of the frame.
        kind: MemKind,
    },
    /// A virtual page lost its frame.
    PageUnmapped {
        /// Owning process.
        pid: u32,
        /// Virtual page.
        vpn: Vpn,
        /// Previously mapped frame.
        pfn: Pfn,
    },
    /// Register state changed enough to deserve a log entry (e.g. at
    /// syscall boundaries).
    RegsUpdated {
        /// Owning process.
        pid: u32,
    },
}

impl MetaRecord {
    /// Serialized size of one record in the NVM redo log, in bytes. Records
    /// are fixed-size (tag + pid + 4 payload words + checksum) to keep log
    /// replay trivial and torn-record detection per-record.
    pub const LOG_BYTES: u64 = 56;

    /// Owning process of the record.
    pub fn pid(&self) -> u32 {
        match *self {
            MetaRecord::ProcessCreate { pid }
            | MetaRecord::VmaAdd { pid, .. }
            | MetaRecord::VmaRemove { pid, .. }
            | MetaRecord::VmaProtect { pid, .. }
            | MetaRecord::PageMapped { pid, .. }
            | MetaRecord::PageUnmapped { pid, .. }
            | MetaRecord::RegsUpdated { pid } => pid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_extraction() {
        let r = MetaRecord::VmaAdd {
            pid: 7,
            start: VirtAddr::new(0),
            end: VirtAddr::new(0x1000),
            prot: Prot::RW,
            kind: MemKind::Nvm,
        };
        assert_eq!(r.pid(), 7);
        assert_eq!(MetaRecord::ProcessCreate { pid: 3 }.pid(), 3);
    }
}
