//! Reserved-region layout of the NVM range.
//!
//! The kernel reserves the head of the NVM physical range for persistent
//! metadata; everything after [`NvmLayout::general`] is handed to the NVM
//! frame allocator for application pages.

use kindle_mem::E820Map;
use kindle_types::{MemKind, PhysAddr, PAGE_SIZE};

/// One contiguous reserved physical region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Region {
    /// First byte of the region.
    pub base: PhysAddr,
    /// Size in bytes (page-aligned).
    pub size: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> PhysAddr {
        self.base + self.size
    }

    /// True if `pa` lies inside the region.
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa >= self.base && pa < self.end()
    }

    /// Number of whole frames.
    pub fn frames(&self) -> u64 {
        self.size / PAGE_SIZE as u64
    }
}

/// Carve-up of the NVM range into persistent metadata regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NvmLayout {
    /// Frame-allocator persistence bitmap (1 bit per general NVM frame).
    pub alloc_bitmap: Region,
    /// Ring buffer used to consistency-wrap PTE stores (persistent scheme).
    pub pt_log: Region,
    /// Redo log of OS metadata modifications (process persistence).
    pub meta_log: Region,
    /// Saved-state area: per-process consistent/working context copies and
    /// the virtual-to-NVM-frame mapping lists.
    pub saved_state: Region,
    /// SSP metadata cache (original/shadow pairs and bitmaps).
    pub ssp_cache: Region,
    /// General-purpose NVM frames (application pages, NVM page tables).
    pub general: Region,
}

impl NvmLayout {
    /// Builds the layout from the machine's memory map. NVM ranges below
    /// 512 MiB get proportionally smaller reserved regions (useful for unit
    /// tests); full-size machines use the production sizes.
    ///
    /// # Panics
    ///
    /// Panics if the NVM range is smaller than 16 MiB.
    pub fn from_map(map: &E820Map) -> Self {
        let nvm = map.range(MemKind::Nvm);
        const MIB: u64 = 1 << 20;
        const KIB: u64 = 1 << 10;
        assert!(nvm.size >= 16 * MIB, "NVM range must be at least 16 MiB");
        let full = nvm.size >= 512 * MIB;
        let mut cursor = nvm.base;
        let mut take = |size: u64| {
            let r = Region { base: cursor, size };
            cursor = cursor + size;
            r
        };
        let (bitmap_sz, log_sz, meta_sz, saved_sz, ssp_sz, align) = if full {
            (MIB / 4, MIB / 4, 4 * MIB, 40 * MIB, 16 * MIB, 2 * MIB)
        } else {
            (64 * KIB, 64 * KIB, 512 * KIB, 4 * MIB, 2 * MIB, 64 * KIB)
        };
        let alloc_bitmap = take(bitmap_sz);
        let pt_log = take(log_sz);
        let meta_log = take(meta_sz);
        let saved_state = take(saved_sz);
        let ssp_cache = take(ssp_sz);
        // Align the general pool for tidiness.
        let used = cursor - nvm.base;
        let aligned = (used + align - 1) & !(align - 1);
        let general = Region { base: nvm.base + aligned, size: nvm.size - aligned };
        NvmLayout { alloc_bitmap, pt_log, meta_log, saved_state, ssp_cache, general }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let map = E820Map::flat(3 << 30, 2 << 30);
        let l = NvmLayout::from_map(&map);
        let regions = [l.alloc_bitmap, l.pt_log, l.meta_log, l.saved_state, l.ssp_cache, l.general];
        for w in regions.windows(2) {
            assert!(w[0].end() <= w[1].base, "{:?} overlaps {:?}", w[0], w[1]);
        }
        assert_eq!(l.alloc_bitmap.base, map.range(MemKind::Nvm).base);
        assert_eq!(l.general.end(), map.range(MemKind::Nvm).end());
        assert!(l.general.frames() > 400_000, "most NVM must stay general purpose");
    }

    #[test]
    #[should_panic(expected = "16 MiB")]
    fn rejects_tiny_nvm() {
        let map = E820Map::flat(1 << 30, 8 << 20);
        NvmLayout::from_map(&map);
    }

    #[test]
    fn compact_layout_for_small_nvm() {
        let map = E820Map::flat(48 << 20, 48 << 20);
        let l = NvmLayout::from_map(&map);
        assert!(l.general.frames() > 8_000, "small NVM still mostly general");
        assert_eq!(l.general.end(), map.range(MemKind::Nvm).end());
    }

    #[test]
    fn region_contains() {
        let r = Region { base: PhysAddr::new(0x1000), size: 0x2000 };
        assert!(r.contains(PhysAddr::new(0x1000)));
        assert!(r.contains(PhysAddr::new(0x2fff)));
        assert!(!r.contains(PhysAddr::new(0x3000)));
        assert_eq!(r.frames(), 2);
    }
}
