//! Virtual memory areas with Kindle's DRAM/NVM tagging.

use kindle_types::{KindleError, MapFlags, MemKind, Prot, Result, VirtAddr, PAGE_SIZE};

/// One virtual memory area. Kindle tags each VMA as DRAM or NVM based on the
/// `MAP_NVM` flag; demand paging allocates frames from the matching pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vma {
    /// Inclusive start (page aligned).
    pub start: VirtAddr,
    /// Exclusive end (page aligned).
    pub end: VirtAddr,
    /// Protection bits.
    pub prot: Prot,
    /// Backing pool selected at mmap time.
    pub kind: MemKind,
}

impl Vma {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for a degenerate empty area.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Number of pages covered.
    pub fn pages(&self) -> u64 {
        self.len() / PAGE_SIZE as u64
    }

    /// True if `va` lies inside.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end
    }

    /// True if `[start, end)` intersects this area.
    pub fn overlaps(&self, start: VirtAddr, end: VirtAddr) -> bool {
        start < self.end && self.start < end
    }
}

/// Lowest address handed out by the region search.
pub const MMAP_BASE: VirtAddr = VirtAddr::new(0x4000_0000);
/// Highest usable user address (47-bit canonical space).
pub const USER_TOP: VirtAddr = VirtAddr::new(0x7fff_ffff_f000);

/// A sorted, non-overlapping list of VMAs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VmaList {
    vmas: Vec<Vma>,
}

impl VmaList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// All areas, sorted by start address.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.iter()
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// True if no areas exist.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// The area containing `va`, if any.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        let idx = self.vmas.partition_point(|v| v.end <= va);
        self.vmas.get(idx).filter(|v| v.contains(va))
    }

    /// Finds a free gap of `len` bytes at or above [`MMAP_BASE`].
    ///
    /// # Errors
    ///
    /// [`KindleError::NoVirtualSpace`] when the address space is exhausted.
    pub fn find_free(&self, len: u64) -> Result<VirtAddr> {
        let mut candidate = MMAP_BASE;
        for v in &self.vmas {
            if v.end <= candidate {
                continue;
            }
            if v.start >= candidate && v.start - candidate >= len {
                return Ok(candidate);
            }
            candidate = v.end;
        }
        if USER_TOP - candidate >= len {
            Ok(candidate)
        } else {
            Err(KindleError::NoVirtualSpace { len })
        }
    }

    /// Inserts a new area.
    ///
    /// # Errors
    ///
    /// [`KindleError::Overlap`] if it intersects an existing area.
    pub fn insert(&mut self, vma: Vma) -> Result<()> {
        debug_assert!(vma.start.is_page_aligned() && vma.end.is_page_aligned());
        if vma.is_empty() {
            return Err(KindleError::InvalidArgument("empty vma"));
        }
        let idx = self.vmas.partition_point(|v| v.start < vma.start);
        let clash = |v: &Vma| v.overlaps(vma.start, vma.end);
        if idx > 0 && clash(&self.vmas[idx - 1]) {
            return Err(KindleError::Overlap(vma.start));
        }
        if idx < self.vmas.len() && clash(&self.vmas[idx]) {
            return Err(KindleError::Overlap(vma.start));
        }
        self.vmas.insert(idx, vma);
        Ok(())
    }

    /// Removes `[start, end)` from the list, splitting areas as needed.
    /// Returns the removed sub-areas (so the kernel can unmap their pages).
    pub fn remove(&mut self, start: VirtAddr, end: VirtAddr) -> Vec<Vma> {
        let mut removed = Vec::new();
        let mut result = Vec::with_capacity(self.vmas.len());
        for v in self.vmas.drain(..) {
            if !v.overlaps(start, end) {
                result.push(v);
                continue;
            }
            let cut_start = if v.start > start { v.start } else { start };
            let cut_end = if v.end < end { v.end } else { end };
            if v.start < cut_start {
                result.push(Vma { end: cut_start, ..v });
            }
            removed.push(Vma { start: cut_start, end: cut_end, ..v });
            if cut_end < v.end {
                result.push(Vma { start: cut_end, ..v });
            }
        }
        self.vmas = result;
        removed
    }

    /// Changes protection on `[start, end)`, splitting areas at the edges.
    /// Returns the number of areas affected.
    pub fn protect(&mut self, start: VirtAddr, end: VirtAddr, prot: Prot) -> usize {
        let affected = self.remove(start, end);
        let n = affected.len();
        for mut v in affected {
            v.prot = prot;
            // The carved sub-areas come from `remove` over this very range,
            // so they cannot overlap anything still in the list: insert at
            // the sorted position directly rather than round-tripping
            // through the fallible `insert`.
            let idx = self.vmas.partition_point(|w| w.start < v.start);
            self.vmas.insert(idx, v);
        }
        self.coalesce();
        n
    }

    /// Merges adjacent areas with identical attributes.
    pub fn coalesce(&mut self) {
        let mut merged: Vec<Vma> = Vec::with_capacity(self.vmas.len());
        for v in self.vmas.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.end == v.start && last.prot == v.prot && last.kind == v.kind {
                    last.end = v.end;
                    continue;
                }
            }
            merged.push(v);
        }
        self.vmas = merged;
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.vmas.iter().map(Vma::len).sum()
    }
}

/// Builds a [`Vma`] from an mmap request (start must be page aligned).
pub fn vma_from_request(start: VirtAddr, len: u64, prot: Prot, flags: MapFlags) -> Vma {
    Vma { start, end: start + len, prot, kind: flags.mem_kind() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(start: u64, end: u64) -> Vma {
        Vma {
            start: VirtAddr::new(start),
            end: VirtAddr::new(end),
            prot: Prot::RW,
            kind: MemKind::Dram,
        }
    }

    #[test]
    fn insert_and_find() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x3000)).unwrap();
        l.insert(v(0x5000, 0x6000)).unwrap();
        assert_eq!(l.find(VirtAddr::new(0x1000)).unwrap().end.as_u64(), 0x3000);
        assert_eq!(l.find(VirtAddr::new(0x2fff)).unwrap().start.as_u64(), 0x1000);
        assert!(l.find(VirtAddr::new(0x3000)).is_none());
        assert!(l.find(VirtAddr::new(0x4000)).is_none());
    }

    #[test]
    fn insert_rejects_overlap() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x3000)).unwrap();
        assert!(matches!(l.insert(v(0x2000, 0x4000)), Err(KindleError::Overlap(_))));
        assert!(matches!(l.insert(v(0x0, 0x2000)), Err(KindleError::Overlap(_))));
        l.insert(v(0x3000, 0x4000)).unwrap(); // adjacent is fine
    }

    #[test]
    fn find_free_skips_existing() {
        let mut l = VmaList::new();
        let base = MMAP_BASE.as_u64();
        l.insert(v(base, base + 0x2000)).unwrap();
        let free = l.find_free(0x1000).unwrap();
        assert_eq!(free.as_u64(), base + 0x2000);
        l.insert(v(base + 0x3000, base + 0x4000)).unwrap();
        // A 0x1000 hole exists between the two areas.
        let free = l.find_free(0x1000).unwrap();
        assert_eq!(free.as_u64(), base + 0x2000);
        let free = l.find_free(0x2000).unwrap();
        assert_eq!(free.as_u64(), base + 0x4000);
    }

    #[test]
    fn remove_splits_areas() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x8000)).unwrap();
        let removed = l.remove(VirtAddr::new(0x3000), VirtAddr::new(0x5000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start.as_u64(), 0x3000);
        assert_eq!(removed[0].end.as_u64(), 0x5000);
        assert_eq!(l.len(), 2);
        assert!(l.find(VirtAddr::new(0x2000)).is_some());
        assert!(l.find(VirtAddr::new(0x3000)).is_none());
        assert!(l.find(VirtAddr::new(0x5000)).is_some());
    }

    #[test]
    fn remove_spanning_multiple_areas() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x2000)).unwrap();
        l.insert(v(0x3000, 0x4000)).unwrap();
        l.insert(v(0x5000, 0x6000)).unwrap();
        let removed = l.remove(VirtAddr::new(0x1000), VirtAddr::new(0x6000));
        assert_eq!(removed.len(), 3);
        assert!(l.is_empty());
    }

    #[test]
    fn protect_splits_and_updates() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x5000)).unwrap();
        let n = l.protect(VirtAddr::new(0x2000), VirtAddr::new(0x3000), Prot::READ);
        assert_eq!(n, 1);
        assert_eq!(l.find(VirtAddr::new(0x2000)).unwrap().prot, Prot::READ);
        assert_eq!(l.find(VirtAddr::new(0x1000)).unwrap().prot, Prot::RW);
        assert_eq!(l.find(VirtAddr::new(0x3000)).unwrap().prot, Prot::RW);
    }

    #[test]
    fn coalesce_merges_identical_neighbours() {
        let mut l = VmaList::new();
        l.insert(v(0x1000, 0x2000)).unwrap();
        l.insert(v(0x2000, 0x3000)).unwrap();
        l.coalesce();
        assert_eq!(l.len(), 1);
        assert_eq!(l.total_bytes(), 0x2000);
    }

    #[test]
    fn nvm_tagging_from_flags() {
        let a = vma_from_request(VirtAddr::new(0x1000), 0x1000, Prot::RW, MapFlags::NVM);
        assert_eq!(a.kind, MemKind::Nvm);
        let b = vma_from_request(VirtAddr::new(0x2000), 0x1000, Prot::RW, MapFlags::EMPTY);
        assert_eq!(b.kind, MemKind::Dram);
    }
}
