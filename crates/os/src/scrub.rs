//! Scrubd: periodic read-verify of NVM page-table frames.
//!
//! Stuck NVM cells corrupt page-table entries silently: a wear-worn line at
//! least fails its writes loudly (retry exhaustion reaches the controller's
//! failed-frame queue), but a stuck bit "succeeds" and the walker later
//! consumes the flipped entry. The scrub daemon closes that window. Each
//! pass re-reads every NVM table frame and compares a checksum of the 512
//! stored entries against the kernel's shadow metadata (the intended
//! values, maintained by every PTE store — see
//! `AddressSpace::expected_table_words`). A mismatching line is flagged
//! ([`ScrubDetect`]), rewritten from the shadow through the scheme's
//! consistency discipline — which routes it through the ECP correction
//! layer, permanently healing the line when budget remains
//! ([`ScrubCorrect`]) — and re-verified; a line that stays corrupted means
//! the budget is exhausted and the whole frame is retired
//! content-preservingly ([`ScrubRetire`]), reusing the wear-out remap path.
//!
//! This module holds the daemon's engine state (schedule + counters); the
//! verify pass itself is `Kernel::scrub_pt_frames`, and dispatch happens on
//! the `scrubd` kthread registered through `Scheduler::register_daemon`.
//!
//! [`ScrubDetect`]: kindle_types::sanitize::Event::ScrubDetect
//! [`ScrubCorrect`]: kindle_types::sanitize::Event::ScrubCorrect
//! [`ScrubRetire`]: kindle_types::sanitize::Event::ScrubRetire

use kindle_types::{Cycles, Pfn};

/// Result of one scrub pass over every NVM page-table frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubPassOutcome {
    /// Table frames whose checksum matched the shadow (nothing to do).
    pub frames_clean: u64,
    /// Lines found holding corrupted entries.
    pub lines_detected: u64,
    /// Lines healed by the rewrite (ECP entries covered every stuck cell).
    pub lines_corrected: u64,
    /// Table frames retired because a line stayed corrupted after the
    /// rewrite, with the owning pid: the caller must flush that process's
    /// cached translations.
    pub frames_retired: Vec<(u32, Pfn)>,
}

/// Cumulative scrubd counters, reported through `SimReport`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScrubStats {
    /// Verify passes completed.
    pub passes: u64,
    /// Clean frames seen across all passes.
    pub frames_clean: u64,
    /// Corrupted lines detected.
    pub lines_detected: u64,
    /// Lines healed in place.
    pub lines_corrected: u64,
    /// Table frames retired and relocated.
    pub frames_retired: u64,
}

/// Schedule + counters for the scrub daemon (held by the machine, rebuilt
/// on reboot like the other engines).
#[derive(Clone, Debug)]
pub struct ScrubState {
    interval: Cycles,
    next_due: Cycles,
    stats: ScrubStats,
}

impl ScrubState {
    /// An engine that first fires one full `interval` after boot.
    pub fn new(interval: Cycles) -> Self {
        ScrubState { interval, next_due: interval, stats: ScrubStats::default() }
    }

    /// True once the next pass is due at `now`.
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_due
    }

    /// Re-anchors the schedule one interval after `now` (used on reboot,
    /// where the clock keeps running across the crash).
    pub fn reset_schedule(&mut self, now: Cycles) {
        self.next_due = now + self.interval;
    }

    /// Folds one pass's outcome into the counters and schedules the next
    /// pass one interval after `now` (passes never queue up).
    pub fn complete_pass(&mut self, now: Cycles, outcome: &ScrubPassOutcome) {
        self.stats.passes += 1;
        self.stats.frames_clean += outcome.frames_clean;
        self.stats.lines_detected += outcome.lines_detected;
        self.stats.lines_corrected += outcome.lines_corrected;
        self.stats.frames_retired += outcome.frames_retired.len() as u64;
        self.next_due = now + self.interval;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ScrubStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_then_rearms() {
        let mut s = ScrubState::new(Cycles::new(100));
        assert!(!s.due(Cycles::new(99)));
        assert!(s.due(Cycles::new(100)));
        let outcome = ScrubPassOutcome {
            frames_clean: 3,
            lines_detected: 2,
            lines_corrected: 1,
            frames_retired: vec![(1, Pfn::new(9))],
        };
        s.complete_pass(Cycles::new(150), &outcome);
        assert!(!s.due(Cycles::new(249)), "next pass one interval after completion");
        assert!(s.due(Cycles::new(250)));
        assert_eq!(s.stats().passes, 1);
        assert_eq!(s.stats().frames_retired, 1);
        assert_eq!(s.stats().lines_detected, 2);
    }
}
