//! Scrubd and patrold: periodic read-verify of NVM frames.
//!
//! Stuck NVM cells corrupt page-table entries silently: a wear-worn line at
//! least fails its writes loudly (retry exhaustion reaches the controller's
//! failed-frame queue), but a stuck bit "succeeds" and the walker later
//! consumes the flipped entry. The scrub daemon closes that window. Each
//! pass re-reads every NVM table frame and compares a checksum of the 512
//! stored entries against the kernel's shadow metadata (the intended
//! values, maintained by every PTE store — see
//! `AddressSpace::expected_table_words`). A mismatching line is flagged
//! ([`ScrubDetect`]), rewritten from the shadow through the scheme's
//! consistency discipline — which routes it through the ECP correction
//! layer, permanently healing the line when budget remains
//! ([`ScrubCorrect`]) — and re-verified; a line that stays corrupted means
//! the budget is exhausted and the whole frame is retired
//! content-preservingly ([`ScrubRetire`]), reusing the wear-out remap path.
//!
//! This module holds the daemon's engine state (schedule + counters); the
//! verify pass itself is `Kernel::scrub_pt_frames`, and dispatch happens on
//! the `scrubd` kthread registered through `Scheduler::register_daemon`.
//!
//! Patrold is scrubd's sibling for *data* frames: where scrubd verifies
//! page tables against the kernel's shadow metadata, patrold walks the
//! general NVM pool with a bounded per-pass batch and verifies each frame
//! against the controller's per-line store-time checksums
//! ([`PatrolDetect`]/[`PatrolCorrect`]). An unhealable frame that is mapped
//! cannot be relocated content-preservingly — the content is gone — so the
//! kernel poisons the mapping ([`PagePoison`]) and kills the owning process
//! ([`ProcessKilled`]) rather than ever returning corrupt bytes; an
//! unmapped one takes the quiet retirement path. [`PatrolState`] below is
//! the engine (schedule + resumable pool cursor + counters); the pass
//! driver lives in `kindle_sim` because it needs both the kernel and the
//! memory controller.
//!
//! [`ScrubDetect`]: kindle_types::sanitize::Event::ScrubDetect
//! [`ScrubCorrect`]: kindle_types::sanitize::Event::ScrubCorrect
//! [`ScrubRetire`]: kindle_types::sanitize::Event::ScrubRetire
//! [`PatrolDetect`]: kindle_types::sanitize::Event::PatrolDetect
//! [`PatrolCorrect`]: kindle_types::sanitize::Event::PatrolCorrect
//! [`PagePoison`]: kindle_types::sanitize::Event::PagePoison
//! [`ProcessKilled`]: kindle_types::sanitize::Event::ProcessKilled

use kindle_types::{Cycles, Pfn};

/// Result of one scrub pass over every NVM page-table frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubPassOutcome {
    /// Table frames whose checksum matched the shadow (nothing to do).
    pub frames_clean: u64,
    /// Lines found holding corrupted entries.
    pub lines_detected: u64,
    /// Lines healed by the rewrite (ECP entries covered every stuck cell).
    pub lines_corrected: u64,
    /// Table frames retired because a line stayed corrupted after the
    /// rewrite, with the owning pid: the caller must flush that process's
    /// cached translations.
    pub frames_retired: Vec<(u32, Pfn)>,
}

/// Cumulative scrubd counters, reported through `SimReport`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScrubStats {
    /// Verify passes completed.
    pub passes: u64,
    /// Clean frames seen across all passes.
    pub frames_clean: u64,
    /// Corrupted lines detected.
    pub lines_detected: u64,
    /// Lines healed in place.
    pub lines_corrected: u64,
    /// Table frames retired and relocated.
    pub frames_retired: u64,
}

/// Schedule + counters for the scrub daemon (held by the machine, rebuilt
/// on reboot like the other engines).
#[derive(Clone, Debug)]
pub struct ScrubState {
    interval: Cycles,
    next_due: Cycles,
    stats: ScrubStats,
}

impl ScrubState {
    /// An engine that first fires one full `interval` after boot.
    pub fn new(interval: Cycles) -> Self {
        ScrubState { interval, next_due: interval, stats: ScrubStats::default() }
    }

    /// True once the next pass is due at `now`.
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_due
    }

    /// Re-anchors the schedule one interval after `now` (used on reboot,
    /// where the clock keeps running across the crash).
    pub fn reset_schedule(&mut self, now: Cycles) {
        self.next_due = now + self.interval;
    }

    /// Folds one pass's outcome into the counters and schedules the next
    /// pass one interval after `now` (passes never queue up).
    pub fn complete_pass(&mut self, now: Cycles, outcome: &ScrubPassOutcome) {
        self.stats.passes += 1;
        self.stats.frames_clean += outcome.frames_clean;
        self.stats.lines_detected += outcome.lines_detected;
        self.stats.lines_corrected += outcome.lines_corrected;
        self.stats.frames_retired += outcome.frames_retired.len() as u64;
        self.next_due = now + self.interval;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ScrubStats {
        &self.stats
    }
}

/// Result of one patrol batch over general-pool NVM data frames.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatrolPassOutcome {
    /// Allocated frames whose checksums were re-verified this batch.
    pub frames_checked: u64,
    /// Frames where every line matched its recorded checksum.
    pub frames_clean: u64,
    /// Lines whose checksum mismatched the stored bytes.
    pub lines_detected: u64,
    /// Lines restored in place (ECP covered the erasures and the decode
    /// matched the recorded checksum).
    pub lines_healed: u64,
    /// Mapped frames that stayed corrupt: PTE poisoned, owner killed.
    pub frames_poisoned: u64,
    /// Unmapped (or table-owned) frames that stayed corrupt and were
    /// retired through the content-preserving path instead.
    pub frames_retired: u64,
    /// Pids killed with `MemoryPoison` this batch: the caller must flush
    /// each one's cached translations.
    pub killed: Vec<u32>,
}

/// Cumulative patrold counters, reported through `SimReport`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatrolStats {
    /// Patrol batches completed.
    pub passes: u64,
    /// Frames checksum-verified across all batches.
    pub frames_checked: u64,
    /// Frames found fully clean.
    pub frames_clean: u64,
    /// Corrupted lines detected.
    pub lines_detected: u64,
    /// Lines healed in place via ECP erasure decode.
    pub lines_healed: u64,
    /// Mapped frames poisoned (owner killed).
    pub frames_poisoned: u64,
    /// Unmapped frames retired.
    pub frames_retired: u64,
    /// Processes killed with `MemoryPoison`.
    pub procs_killed: u64,
}

/// Frames verified per patrol batch. DIMM patrol scrubbers bound the
/// per-pass work so verification bandwidth stays a small, fixed tax; the
/// cursor carries the walk across passes until it wraps.
pub const PATROL_BATCH_FRAMES: u64 = 64;

/// Schedule + resumable pool cursor + counters for the patrol daemon
/// (held by the machine, rebuilt on reboot like [`ScrubState`]).
#[derive(Clone, Debug)]
pub struct PatrolState {
    interval: Cycles,
    next_due: Cycles,
    cursor: u64,
    stats: PatrolStats,
}

impl PatrolState {
    /// An engine that first fires one full `interval` after boot, with the
    /// walk cursor at the start of the pool.
    pub fn new(interval: Cycles) -> Self {
        PatrolState { interval, next_due: interval, cursor: 0, stats: PatrolStats::default() }
    }

    /// True once the next batch is due at `now`.
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_due
    }

    /// Re-anchors the schedule one interval after `now` (used on reboot,
    /// where the clock keeps running across the crash).
    pub fn reset_schedule(&mut self, now: Cycles) {
        self.next_due = now + self.interval;
    }

    /// Offset into the pool's pfn space where the next batch resumes.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Advances the cursor; the pass driver wraps it modulo pool capacity.
    pub fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }

    /// Folds one batch's outcome into the counters and schedules the next
    /// batch one interval after `now` (batches never queue up).
    pub fn complete_pass(&mut self, now: Cycles, outcome: &PatrolPassOutcome) {
        self.stats.passes += 1;
        self.stats.frames_checked += outcome.frames_checked;
        self.stats.frames_clean += outcome.frames_clean;
        self.stats.lines_detected += outcome.lines_detected;
        self.stats.lines_healed += outcome.lines_healed;
        self.stats.frames_poisoned += outcome.frames_poisoned;
        self.stats.frames_retired += outcome.frames_retired;
        self.stats.procs_killed += outcome.killed.len() as u64;
        self.next_due = now + self.interval;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &PatrolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_then_rearms() {
        let mut s = ScrubState::new(Cycles::new(100));
        assert!(!s.due(Cycles::new(99)));
        assert!(s.due(Cycles::new(100)));
        let outcome = ScrubPassOutcome {
            frames_clean: 3,
            lines_detected: 2,
            lines_corrected: 1,
            frames_retired: vec![(1, Pfn::new(9))],
        };
        s.complete_pass(Cycles::new(150), &outcome);
        assert!(!s.due(Cycles::new(249)), "next pass one interval after completion");
        assert!(s.due(Cycles::new(250)));
        assert_eq!(s.stats().passes, 1);
        assert_eq!(s.stats().frames_retired, 1);
        assert_eq!(s.stats().lines_detected, 2);
    }

    #[test]
    fn patrol_schedule_and_cursor_accumulate() {
        let mut p = PatrolState::new(Cycles::new(200));
        assert!(!p.due(Cycles::new(199)));
        assert!(p.due(Cycles::new(200)));
        assert_eq!(p.cursor(), 0, "walk starts at the pool base");
        p.set_cursor(17);
        let outcome = PatrolPassOutcome {
            frames_checked: 5,
            frames_clean: 3,
            lines_detected: 4,
            lines_healed: 2,
            frames_poisoned: 1,
            frames_retired: 1,
            killed: vec![7],
        };
        p.complete_pass(Cycles::new(250), &outcome);
        assert!(!p.due(Cycles::new(449)), "next batch one interval after completion");
        assert!(p.due(Cycles::new(450)));
        assert_eq!(p.cursor(), 17, "completing a pass leaves the cursor alone");
        assert_eq!(p.stats().passes, 1);
        assert_eq!(p.stats().frames_poisoned, 1);
        assert_eq!(p.stats().procs_killed, 1);
        p.reset_schedule(Cycles::new(1000));
        assert!(!p.due(Cycles::new(1199)));
        assert!(p.due(Cycles::new(1200)));
    }
}
