//! Process control blocks.

use kindle_cpu::RegisterFile;

use crate::pagetable::AddressSpace;
use crate::vma::VmaList;

/// Scheduling/persistence state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProcState {
    /// Runnable.
    Ready,
    /// Currently executing on the core.
    Running,
    /// Recreated from a saved state and ready to resume.
    Recovered,
    /// Terminated.
    Dead,
}

/// A process: execution context plus memory layout.
#[derive(Clone, Debug)]
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// Saved architectural registers.
    pub regs: RegisterFile,
    /// Virtual memory areas.
    pub vmas: VmaList,
    /// Page tables.
    pub aspace: AddressSpace,
    /// Lifecycle state.
    pub state: ProcState,
}

impl Process {
    /// Creates a ready process around a fresh address space.
    pub fn new(pid: u32, aspace: AddressSpace) -> Self {
        Process {
            pid,
            regs: RegisterFile::new(),
            vmas: VmaList::new(),
            aspace,
            state: ProcState::Ready,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameAllocator, FramePools, PersistentFrameAllocator};
    use crate::layout::Region;
    use crate::pagetable::PtMode;
    use kindle_types::physmem::FlatMem;
    use kindle_types::{Pfn, PhysAddr};

    #[test]
    fn new_process_is_ready_and_empty() {
        let mut mem = FlatMem::new(1 << 20);
        let mut pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(1), 64),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(128), 64),
                Region { base: PhysAddr::new(0), size: 0x1000 },
            ),
        };
        let asp = AddressSpace::new(
            &mut mem,
            &mut pools,
            PtMode::Rebuild,
            Region { base: PhysAddr::new(0x1000), size: 0x1000 },
        )
        .unwrap();
        let p = Process::new(42, asp);
        assert_eq!(p.pid, 42);
        assert_eq!(p.state, ProcState::Ready);
        assert!(p.vmas.is_empty());
    }
}
