//! The kernel: pools, processes, system calls and demand paging.

use std::collections::BTreeMap;

use kindle_mem::E820Map;
use kindle_types::sanitize::{self, Event, KillReason};
use kindle_types::{
    checksum64, AccessKind, Cycles, KindleError, MapFlags, MemKind, Pfn, PhysMem, Prot, Pte,
    Result, VirtAddr, Vpn, CACHE_LINE, LINES_PER_PAGE, PAGE_SIZE,
};

use crate::costs::KernelCosts;
use crate::frame::{FrameAllocator, FramePools, PersistentFrameAllocator};
use crate::layout::NvmLayout;
use crate::meta::MetaRecord;
use crate::pagetable::{vpn_va, AddressSpace, PtMode};
use crate::process::{ProcState, Process};
use crate::sched::Scheduler;
use crate::scrub::ScrubPassOutcome;
use crate::vma::{vma_from_request, Vma};

/// Kernel construction parameters.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Physical memory map the BIOS hands over.
    pub memory_map: E820Map,
    /// Page-table maintenance scheme for new processes.
    pub pt_mode: PtMode,
    /// Instruction-cost table.
    pub costs: KernelCosts,
    /// DRAM frames reserved at the bottom for the kernel image.
    pub dram_reserved_frames: u64,
}

impl KernelConfig {
    /// Config over an existing memory map with default costs.
    pub fn new(memory_map: E820Map, pt_mode: PtMode) -> Self {
        KernelConfig {
            memory_map,
            pt_mode,
            costs: KernelCosts::default(),
            dram_reserved_frames: 256,
        }
    }

    /// Small split-in-half map with cheap costs for unit tests.
    pub fn for_test(total_bytes: u64) -> Self {
        let half = (total_bytes / 2) & !(PAGE_SIZE as u64 - 1);
        KernelConfig {
            memory_map: E820Map::flat(half, half),
            pt_mode: PtMode::Rebuild,
            costs: KernelCosts::for_test(),
            dram_reserved_frames: 16,
        }
    }
}

/// Counters of kernel activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelStats {
    /// `mmap` calls served.
    pub mmaps: u64,
    /// `munmap` calls served.
    pub munmaps: u64,
    /// `mremap` calls served.
    pub mremaps: u64,
    /// `mprotect` calls served.
    pub mprotects: u64,
    /// Demand-paging faults handled.
    pub page_faults: u64,
    /// Pages given frames.
    pub pages_mapped: u64,
    /// Pages whose frames were reclaimed.
    pub pages_unmapped: u64,
    /// NVM frames permanently retired after media-fault retry exhaustion.
    pub frames_retired: u64,
    /// Retired frames that were live page tables (relocated, not remapped).
    pub pt_frames_retired: u64,
    /// Mapped pages poisoned because their frame was uncorrectable.
    pub pages_poisoned: u64,
    /// Processes killed after touching poisoned memory.
    pub procs_killed: u64,
}

/// What retiring a failing NVM frame did (see [`Kernel::retire_nvm_frame`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetireOutcome {
    /// The frame was unmapped (quarantined in place) or outside the general
    /// pool (reserved-region frames cannot be retired — ignored). Either
    /// way no translation changed.
    Quarantined,
    /// A mapped data frame: contents were copied to `new_pfn` and the
    /// mapping moved. The caller must shoot down the stale translation for
    /// `vpn`.
    Remapped {
        /// Owning process.
        pid: u32,
        /// Virtual page whose translation changed.
        vpn: Vpn,
        /// Replacement frame now backing `vpn`.
        new_pfn: Pfn,
    },
    /// A live page-table frame: the table was relocated to a fresh frame
    /// and its parent entry (or PTBR) repointed. The caller must flush all
    /// of `pid`'s cached translations — any walk may have gone through the
    /// old frame.
    TableRelocated {
        /// Process whose address space was restructured.
        pid: u32,
    },
}

/// What [`Kernel::poison_or_retire_frame`] did with an *uncorrectable*
/// NVM frame — one whose content is already lost, so the content-copying
/// remap in [`RetireOutcome::Remapped`] is not an option.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityOutcome {
    /// The frame held no user data (unmapped, outside the pool, or a live
    /// page table whose intended entries the shadow metadata preserves):
    /// the existing retirement path applied.
    Retired(RetireOutcome),
    /// The frame backed a mapped user page. Its PTE was poisoned and the
    /// owning process killed rather than ever serving corrupt bytes. The
    /// caller must flush `pid`'s cached translations.
    Poisoned {
        /// Process that was killed with [`KillReason::MemoryPoison`].
        pid: u32,
        /// Virtual page that was backed by the lost frame.
        vpn: Vpn,
    },
}

/// Result of an munmap/mremap: pages whose translations must be shot down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnmapOutcome {
    /// Virtual pages that lost their mapping (TLB shootdown list).
    pub unmapped: Vec<Vpn>,
}

/// The gemOS-analog kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Instruction-cost table (public: experiments tune it).
    pub costs: KernelCosts,
    pt_mode: PtMode,
    /// NVM reserved-region layout.
    pub layout: NvmLayout,
    /// Physical frame pools.
    pub pools: FramePools,
    /// Simulated kernel threads (main + background daemons).
    pub sched: Scheduler,
    procs: BTreeMap<u32, Process>,
    next_pid: u32,
    meta_records: Vec<MetaRecord>,
    stats: KernelStats,
}

impl Kernel {
    /// Boots the kernel: reads the memory map, carves the NVM layout and
    /// builds the frame pools.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for future BIOS
    /// validation.
    pub fn new(cfg: KernelConfig, _mem: &mut dyn PhysMem) -> Result<Self> {
        let layout = NvmLayout::from_map(&cfg.memory_map);
        let dram = cfg.memory_map.range(MemKind::Dram);
        let dram_start = dram.base.page_number() + cfg.dram_reserved_frames;
        let dram_frames = dram.frames() - cfg.dram_reserved_frames;
        let nvm_start = layout.general.base.page_number();
        let nvm_frames = layout.general.frames();
        let pools = FramePools {
            dram: FrameAllocator::new("dram", dram_start, dram_frames),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", nvm_start, nvm_frames),
                layout.alloc_bitmap,
            ),
        };
        Ok(Kernel {
            costs: cfg.costs,
            pt_mode: cfg.pt_mode,
            layout,
            pools,
            sched: Scheduler::new(),
            procs: BTreeMap::new(),
            next_pid: 1,
            meta_records: Vec::new(),
            stats: KernelStats::default(),
        })
    }

    /// Page-table scheme in force.
    pub fn pt_mode(&self) -> PtMode {
        self.pt_mode
    }

    /// Kernel counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Live process ids.
    pub fn pids(&self) -> Vec<u32> {
        self.procs.keys().copied().collect()
    }

    /// Immutable process access.
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids.
    pub fn process(&self, pid: u32) -> Result<&Process> {
        self.procs.get(&pid).ok_or(KindleError::NoSuchProcess(pid))
    }

    /// Mutable process access.
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids.
    pub fn process_mut(&mut self, pid: u32) -> Result<&mut Process> {
        self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))
    }

    /// Inserts an externally built process (crash recovery).
    pub fn adopt_process(&mut self, proc: Process) {
        self.next_pid = self.next_pid.max(proc.pid + 1);
        self.procs.insert(proc.pid, proc);
    }

    /// Drains metadata modification records for the persistence redo log.
    pub fn take_meta_records(&mut self) -> Vec<MetaRecord> {
        std::mem::take(&mut self.meta_records)
    }

    /// Creates a process with an empty address space.
    ///
    /// # Errors
    ///
    /// Propagates frame-pool exhaustion.
    pub fn create_process(&mut self, mem: &mut dyn PhysMem) -> Result<u32> {
        mem.advance(Cycles::new(self.costs.syscall_entry));
        let pid = self.next_pid;
        let aspace = AddressSpace::new(mem, &mut self.pools, self.pt_mode, self.layout.pt_log)?;
        self.procs.insert(pid, Process::new(pid, aspace));
        self.next_pid += 1;
        self.meta_records.push(MetaRecord::ProcessCreate { pid });
        Ok(pid)
    }

    /// Destroys a process, reclaiming data and table frames.
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids.
    pub fn destroy_process(&mut self, mem: &mut dyn PhysMem, pid: u32) -> Result<()> {
        let mut proc = self.procs.remove(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        // Free every mapped data frame.
        let mut leaves = Vec::new();
        proc.aspace.for_each_leaf(mem, |_, vpn, pte, _| leaves.push((vpn, pte.pfn())));
        for (vpn, pfn) in leaves {
            proc.aspace.unmap(mem, &mut self.pools, &self.costs, vpn_va(vpn))?;
            self.pools.free(mem, pfn);
        }
        proc.aspace.destroy(mem, &mut self.pools);
        Ok(())
    }

    /// The extended `mmap`: `MAP_NVM` directs the area to the NVM pool.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for zero length, [`KindleError::Overlap`] for FIXED
    /// collisions, [`KindleError::NoVirtualSpace`] when out of addresses.
    pub fn sys_mmap(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        hint: Option<VirtAddr>,
        len: u64,
        prot: Prot,
        flags: MapFlags,
    ) -> Result<VirtAddr> {
        mem.advance(Cycles::new(self.costs.syscall_entry) + Cycles::new(self.costs.vma_op));
        if len == 0 {
            return Err(KindleError::InvalidArgument("mmap length must be non-zero"));
        }
        let len = round_up(len);
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let start = match (hint, flags.contains(MapFlags::FIXED)) {
            (Some(va), true) => {
                if !va.is_page_aligned() {
                    return Err(KindleError::InvalidArgument("FIXED address must be aligned"));
                }
                va
            }
            (Some(va), false) if va.is_page_aligned() => {
                // Honour the hint when free, else search.
                let candidate = vma_from_request(va, len, prot, flags);
                if proc.vmas.iter().all(|v| !v.overlaps(candidate.start, candidate.end)) {
                    va
                } else {
                    proc.vmas.find_free(len)?
                }
            }
            _ => proc.vmas.find_free(len)?,
        };
        let vma = vma_from_request(start, len, prot, flags);
        proc.vmas.insert(vma)?;
        self.meta_records.push(MetaRecord::VmaAdd {
            pid,
            start: vma.start,
            end: vma.end,
            prot,
            kind: vma.kind,
        });
        self.stats.mmaps += 1;
        if flags.contains(MapFlags::POPULATE) {
            for i in 0..vma.pages() {
                let va = vma.start + i * PAGE_SIZE as u64;
                self.map_page(mem, pid, va)?;
            }
        }
        Ok(start)
    }

    /// Demand-paging fault handler: allocates a frame from the VMA's pool
    /// and installs the mapping.
    ///
    /// # Errors
    ///
    /// [`KindleError::Unmapped`] outside all VMAs,
    /// [`KindleError::ProtectionFault`] on protection violation, or pool
    /// exhaustion.
    pub fn handle_fault(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Pte> {
        mem.advance(Cycles::new(self.costs.fault_entry));
        let proc = self.procs.get(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let vma = *proc.vmas.find(va).ok_or(KindleError::Unmapped(va))?;
        if !vma.prot.allows(kind) {
            return Err(KindleError::ProtectionFault(va));
        }
        self.stats.page_faults += 1;
        self.map_page(mem, pid, va)
    }

    /// Allocates and maps one page of the VMA covering `va`.
    fn map_page(&mut self, mem: &mut dyn PhysMem, pid: u32, va: VirtAddr) -> Result<Pte> {
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let vma = *proc.vmas.find(va).ok_or(KindleError::Unmapped(va))?;
        mem.advance(Cycles::new(self.costs.frame_op));
        let pfn = self.pools.alloc(mem, vma.kind)?;
        if self.costs.zero_new_frames {
            mem.zero_page(pfn.base());
        }
        let mut flags = 0u64;
        if vma.prot.allows(AccessKind::Write) {
            flags |= Pte::WRITABLE;
        }
        if vma.kind == MemKind::Nvm {
            flags |= Pte::NVM;
        }
        proc.aspace.map(mem, &mut self.pools, &self.costs, va.page_base(), pfn, flags)?;
        self.stats.pages_mapped += 1;
        self.meta_records.push(MetaRecord::PageMapped {
            pid,
            vpn: va.page_number(),
            pfn,
            kind: vma.kind,
        });
        Ok(Pte::new(pfn, Pte::PRESENT | flags))
    }

    /// `munmap`: removes the range, reclaims frames, reports the shootdown
    /// list.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for misaligned or empty ranges.
    pub fn sys_munmap(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        addr: VirtAddr,
        len: u64,
    ) -> Result<UnmapOutcome> {
        mem.advance(Cycles::new(self.costs.syscall_entry) + Cycles::new(self.costs.vma_op));
        if len == 0 || !addr.is_page_aligned() {
            return Err(KindleError::InvalidArgument("munmap range must be aligned"));
        }
        let len = round_up(len);
        let end = addr + len;
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let removed = proc.vmas.remove(addr, end);
        let mut outcome = UnmapOutcome::default();
        for vma in &removed {
            for i in 0..vma.pages() {
                let va = vma.start + i * PAGE_SIZE as u64;
                match proc.aspace.unmap(mem, &mut self.pools, &self.costs, va) {
                    Ok(pte) => {
                        self.pools.free(mem, pte.pfn());
                        self.stats.pages_unmapped += 1;
                        outcome.unmapped.push(va.page_number());
                        self.meta_records.push(MetaRecord::PageUnmapped {
                            pid,
                            vpn: va.page_number(),
                            pfn: pte.pfn(),
                        });
                    }
                    Err(KindleError::Unmapped(_)) => {} // never faulted in
                    Err(e) => return Err(e),
                }
            }
            self.meta_records.push(MetaRecord::VmaRemove { pid, start: vma.start, end: vma.end });
        }
        self.stats.munmaps += 1;
        Ok(outcome)
    }

    /// `mprotect`: updates VMA protection and the writable bit of existing
    /// leaf PTEs in the range.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for misaligned ranges.
    pub fn sys_mprotect(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Result<UnmapOutcome> {
        mem.advance(Cycles::new(self.costs.syscall_entry) + Cycles::new(self.costs.vma_op));
        if len == 0 || !addr.is_page_aligned() {
            return Err(KindleError::InvalidArgument("mprotect range must be aligned"));
        }
        let len = round_up(len);
        let end = addr + len;
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        proc.vmas.protect(addr, end, prot);
        let writable = prot.allows(AccessKind::Write);
        let mut outcome = UnmapOutcome::default();
        let pages = len / PAGE_SIZE as u64;
        for i in 0..pages {
            let va = addr + i * PAGE_SIZE as u64;
            let update = proc.aspace.update_leaf(mem, &self.costs, va, |p| {
                if writable {
                    p.with_flags(Pte::WRITABLE)
                } else {
                    p.without_flags(Pte::WRITABLE)
                }
            });
            match update {
                Ok(_) => outcome.unmapped.push(va.page_number()),
                Err(KindleError::Unmapped(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.meta_records.push(MetaRecord::VmaProtect { pid, start: addr, end, prot });
        self.stats.mprotects += 1;
        Ok(outcome)
    }

    /// `mremap` (move semantics): relocates `[old, old+old_len)` to a new
    /// region of `new_len` bytes, carrying existing frames over.
    ///
    /// # Errors
    ///
    /// `Unmapped` if the old range has no VMA; otherwise as `mmap`.
    pub fn sys_mremap(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        old_addr: VirtAddr,
        old_len: u64,
        new_len: u64,
    ) -> Result<(VirtAddr, UnmapOutcome)> {
        mem.advance(Cycles::new(self.costs.syscall_entry) + Cycles::new(2 * self.costs.vma_op));
        let old_len = round_up(old_len);
        let new_len = round_up(new_len);
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let old_vma = *proc.vmas.find(old_addr).ok_or(KindleError::Unmapped(old_addr))?;
        let new_start = proc.vmas.find_free(new_len)?;
        let new_vma = Vma {
            start: new_start,
            end: new_start + new_len,
            prot: old_vma.prot,
            kind: old_vma.kind,
        };
        proc.vmas.insert(new_vma)?;
        // Move mapped frames across.
        let move_pages = (old_len.min(new_len)) / PAGE_SIZE as u64;
        let mut outcome = UnmapOutcome::default();
        let mut flags = 0u64;
        if old_vma.prot.allows(AccessKind::Write) {
            flags |= Pte::WRITABLE;
        }
        if old_vma.kind == MemKind::Nvm {
            flags |= Pte::NVM;
        }
        for i in 0..move_pages {
            let src = old_addr + i * PAGE_SIZE as u64;
            let dst = new_start + i * PAGE_SIZE as u64;
            match proc.aspace.unmap(mem, &mut self.pools, &self.costs, src) {
                Ok(pte) => {
                    outcome.unmapped.push(src.page_number());
                    proc.aspace.map(mem, &mut self.pools, &self.costs, dst, pte.pfn(), flags)?;
                }
                Err(KindleError::Unmapped(_)) => {}
                Err(e) => return Err(e),
            }
        }
        proc.vmas.remove(old_addr, old_addr + old_len);
        self.meta_records.push(MetaRecord::VmaRemove {
            pid,
            start: old_addr,
            end: old_addr + old_len,
        });
        self.meta_records.push(MetaRecord::VmaAdd {
            pid,
            start: new_vma.start,
            end: new_vma.end,
            prot: new_vma.prot,
            kind: new_vma.kind,
        });
        self.stats.mremaps += 1;
        Ok((new_start, outcome))
    }

    /// `fork`: duplicates a process — VMA layout, register file and every
    /// mapped page (eager copy, no copy-on-write, as in gemOS). Returns the
    /// child pid.
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids; propagates pool
    /// exhaustion (partially built children are torn down by the caller
    /// destroying the pid).
    pub fn sys_fork(&mut self, mem: &mut dyn PhysMem, parent: u32) -> Result<u32> {
        mem.advance(Cycles::new(self.costs.syscall_entry * 2));
        // Snapshot the parent's layout and mappings first.
        let (regs, vmas, mappings) = {
            let proc = self.procs.get(&parent).ok_or(KindleError::NoSuchProcess(parent))?;
            let mut mappings: Vec<(Vpn, kindle_types::Pfn, Pte)> = Vec::new();
            proc.aspace.for_each_leaf(mem, |_, vpn, pte, _| mappings.push((vpn, pte.pfn(), pte)));
            (proc.regs, proc.vmas.clone(), mappings)
        };
        let child = self.create_process(mem)?;
        {
            let proc = self.procs.get_mut(&child).ok_or(KindleError::NoSuchProcess(child))?;
            proc.regs = regs;
            proc.vmas = vmas.clone();
        }
        for vma in vmas.iter() {
            self.meta_records.push(MetaRecord::VmaAdd {
                pid: child,
                start: vma.start,
                end: vma.end,
                prot: vma.prot,
                kind: vma.kind,
            });
        }
        // Copy every mapped page into a fresh frame of the same kind.
        for (vpn, src_pfn, pte) in mappings {
            let kind = self
                .pools
                .kind_of(src_pfn)
                .ok_or(KindleError::Corrupted("parent page outside both pools"))?;
            mem.advance(Cycles::new(self.costs.frame_op));
            let dst = self.pools.alloc(mem, kind)?;
            mem.copy_page(src_pfn.base(), dst.base());
            let mut flags = 0u64;
            if pte.is_writable() {
                flags |= Pte::WRITABLE;
            }
            if kind == MemKind::Nvm {
                flags |= Pte::NVM;
            }
            let proc = self.procs.get_mut(&child).ok_or(KindleError::NoSuchProcess(child))?;
            proc.aspace.map(mem, &mut self.pools, &self.costs, vpn.base(), dst, flags)?;
            self.stats.pages_mapped += 1;
            self.meta_records.push(MetaRecord::PageMapped { pid: child, vpn, pfn: dst, kind });
        }
        Ok(child)
    }

    /// Retires a failing NVM frame reported by the memory controller (write
    /// retries exhausted, or a scrub pass giving up on a line): the frame
    /// is permanently removed from the pool, and its role decides the
    /// recovery. A mapped data frame has its contents copied to a fresh NVM
    /// frame and the mapping moved; a live *page-table* frame is relocated
    /// content-preservingly (intended entries rewritten into a fresh frame,
    /// parent entry or PTBR repointed) — retiring it like a data frame
    /// would silently orphan every translation below it. The
    /// [`RetireOutcome`] tells the caller which TLB scope to shoot down.
    ///
    /// # Errors
    ///
    /// Propagates NVM pool exhaustion while allocating the replacement.
    pub fn retire_nvm_frame(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) -> Result<RetireOutcome> {
        if !self.pools.nvm.inner().contains(pfn) {
            return Ok(RetireOutcome::Quarantined);
        }
        mem.advance(Cycles::new(self.costs.frame_retire_op));
        // A live table frame never shows up as a leaf mapping: route it to
        // the relocation path before the leaf-owner scan below.
        if let Some(pid) = self.table_frame_owner(pfn) {
            self.retire_pt_frame(mem, pid, pfn)?;
            return Ok(RetireOutcome::TableRelocated { pid });
        }
        let Some((pid, vpn, pte)) = self.leaf_frame_owner(mem, pfn) else {
            // Unmapped: just take it out of circulation.
            self.pools.nvm.retire(mem, pfn);
            self.stats.frames_retired += 1;
            return Ok(RetireOutcome::Quarantined);
        };
        mem.advance(Cycles::new(self.costs.frame_op));
        let new_pfn = self.pools.nvm.alloc(mem)?;
        mem.copy_page(pfn.base(), new_pfn.base());
        let flags = if pte.is_writable() { Pte::WRITABLE | Pte::NVM } else { Pte::NVM };
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let va = vpn_va(vpn);
        proc.aspace.unmap(mem, &mut self.pools, &self.costs, va)?;
        self.pools.nvm.retire(mem, pfn);
        proc.aspace.map(mem, &mut self.pools, &self.costs, va, new_pfn, flags)?;
        self.stats.frames_retired += 1;
        self.meta_records.push(MetaRecord::PageUnmapped { pid, vpn, pfn });
        self.meta_records.push(MetaRecord::PageMapped {
            pid,
            vpn,
            pfn: new_pfn,
            kind: MemKind::Nvm,
        });
        Ok(RetireOutcome::Remapped { pid, vpn, new_pfn })
    }

    /// Relocates `pid`'s page-table frame `pfn` into a fresh NVM frame and
    /// quarantines the old one.
    fn retire_pt_frame(&mut self, mem: &mut dyn PhysMem, pid: u32, pfn: Pfn) -> Result<()> {
        mem.advance(Cycles::new(self.costs.frame_op));
        let new_pfn = self.pools.nvm.alloc(mem)?;
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        proc.aspace.relocate_table_frame(mem, &self.costs, pfn, new_pfn)?;
        self.pools.nvm.retire(mem, pfn);
        self.stats.frames_retired += 1;
        self.stats.pt_frames_retired += 1;
        sanitize::emit(|| Event::ScrubRetire { pfn: pfn.as_u64() });
        Ok(())
    }

    /// Pid whose address space uses `pfn` as a page-*table* frame, if any.
    /// Patrold skips these: scrubd's shadow verify both detects and repairs
    /// table corruption, which a content checksum alone cannot.
    pub fn table_frame_owner(&self, pfn: Pfn) -> Option<u32> {
        self.procs.iter().find(|(_, p)| p.aspace.owns_table_frame(pfn)).map(|(&pid, _)| pid)
    }

    /// The (single) leaf mapping of `pfn` across all processes, if any.
    fn leaf_frame_owner(&self, mem: &mut dyn PhysMem, pfn: Pfn) -> Option<(u32, Vpn, Pte)> {
        let mut owner: Option<(u32, Vpn, Pte)> = None;
        for (&pid, proc) in &self.procs {
            proc.aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                if pte.pfn() == pfn && owner.is_none() {
                    owner = Some((pid, vpn, pte));
                }
            });
            if owner.is_some() {
                break;
            }
        }
        owner
    }

    /// Degrades gracefully on an *uncorrectable* NVM frame — one the patrol
    /// pass could not heal, meaning its stored bytes no longer match what
    /// the application wrote. Unlike [`retire_nvm_frame`], the content
    /// cannot be copied out: a mapped page is marked [`Pte::POISONED`] (so
    /// any future walk faults instead of returning bytes) and the owning
    /// process is killed; an unmapped or table-owned frame takes the
    /// existing retirement paths. The caller must shoot down cached
    /// translations for a poisoned or relocated scope.
    ///
    /// # Errors
    ///
    /// Propagates NVM pool exhaustion while relocating a table frame, and
    /// page-walk errors while poisoning the mapping.
    ///
    /// [`retire_nvm_frame`]: Self::retire_nvm_frame
    pub fn poison_or_retire_frame(
        &mut self,
        mem: &mut dyn PhysMem,
        pfn: Pfn,
    ) -> Result<IntegrityOutcome> {
        if !self.pools.nvm.inner().contains(pfn) {
            return Ok(IntegrityOutcome::Retired(RetireOutcome::Quarantined));
        }
        mem.advance(Cycles::new(self.costs.frame_retire_op));
        // Table frames keep their intended entries in shadow metadata, so
        // relocation loses nothing even when the stored copy is corrupt.
        if let Some(pid) = self.table_frame_owner(pfn) {
            self.retire_pt_frame(mem, pid, pfn)?;
            return Ok(IntegrityOutcome::Retired(RetireOutcome::TableRelocated { pid }));
        }
        let Some((pid, vpn, _)) = self.leaf_frame_owner(mem, pfn) else {
            // Unmapped: nobody can observe the lost content. Quarantine.
            self.pools.nvm.retire(mem, pfn);
            self.stats.frames_retired += 1;
            return Ok(IntegrityOutcome::Retired(RetireOutcome::Quarantined));
        };
        let va = vpn_va(vpn);
        let proc = self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        proc.aspace.update_leaf(mem, &self.costs, va, |pte| pte.with_flags(Pte::POISONED))?;
        self.stats.pages_poisoned += 1;
        sanitize::emit(|| Event::PagePoison { pfn: pfn.as_u64(), vpn: vpn.as_u64() });
        self.kill_process(mem, pid, KillReason::MemoryPoison)?;
        Ok(IntegrityOutcome::Poisoned { pid, vpn })
    }

    /// Kills a process with a SIGBUS-style `reason`: like
    /// [`destroy_process`](Self::destroy_process), but frames behind
    /// poisoned PTEs are *retired*, never returned to the free pool — their
    /// media is unhealable and must not back a future allocation.
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids.
    pub fn kill_process(
        &mut self,
        mem: &mut dyn PhysMem,
        pid: u32,
        reason: KillReason,
    ) -> Result<()> {
        let mut proc = self.procs.remove(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        let mut leaves = Vec::new();
        proc.aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| leaves.push((vpn, pte)));
        for (vpn, pte) in leaves {
            proc.aspace.unmap(mem, &mut self.pools, &self.costs, vpn_va(vpn))?;
            if pte.is_poisoned() {
                self.pools.nvm.retire(mem, pte.pfn());
                self.stats.frames_retired += 1;
            } else {
                self.pools.free(mem, pte.pfn());
            }
        }
        proc.aspace.destroy(mem, &mut self.pools);
        self.stats.procs_killed += 1;
        sanitize::emit(|| Event::ProcessKilled { pid, reason });
        Ok(())
    }

    /// Rebuilds every adopted process's shadow table metadata by walking
    /// its live tables (crash recovery only reconstructs the PTBR; the
    /// scrub daemon needs the intended entry values to verify against).
    pub fn rehydrate_all_tables(&mut self, mem: &mut dyn PhysMem) {
        for proc in self.procs.values_mut() {
            proc.aspace.rehydrate_tables(mem);
        }
    }

    /// One scrubd verify pass: reads back every NVM page-table frame and
    /// checksums its 512 stored entries against the kernel's shadow
    /// metadata. Hardware-managed bits ([`Pte::HW_MANAGED`] — accessed,
    /// dirty, HSCC count) are excluded from the compare, since the walker
    /// updates those in the stored entries without informing the kernel.
    /// A mismatching line is flagged, rewritten from the shadow
    /// through the scheme's consistency discipline (which routes it through
    /// the media correction layer) and re-verified; a line that stays
    /// corrupted retires the whole frame content-preservingly. Frames
    /// without shadow metadata (adopted spaces before
    /// [`rehydrate_all_tables`](Self::rehydrate_all_tables)) are skipped.
    ///
    /// # Errors
    ///
    /// Propagates NVM pool exhaustion while relocating a retired frame.
    pub fn scrub_pt_frames(&mut self, mem: &mut dyn PhysMem) -> Result<ScrubPassOutcome> {
        let mut out = ScrubPassOutcome::default();
        for pid in self.pids() {
            // Snapshot the frame list first: retirement rewrites it.
            let frames: Vec<Pfn> = match self.procs.get(&pid) {
                Some(proc) => proc
                    .aspace
                    .table_frames()
                    .iter()
                    .copied()
                    .filter(|&f| self.pools.nvm.inner().contains(f))
                    .collect(),
                None => continue,
            };
            for frame in frames {
                let Some(expected) = self
                    .procs
                    .get(&pid)
                    .and_then(|p| p.aspace.expected_table_words(frame))
                    .copied()
                else {
                    continue;
                };
                mem.advance(Cycles::new(self.costs.scrub_frame_op));
                // Verify kernel intent only: the walker sets accessed/dirty
                // (and HSCC count) bits directly in the stored entries, so
                // those hardware-managed bits are masked out of the compare.
                let mut actual = [0u64; 512];
                for (line_idx, chunk) in actual.chunks_mut(WORDS_PER_LINE).enumerate() {
                    mem.advance(Cycles::new(self.costs.scrub_line_op));
                    for (j, word) in chunk.iter_mut().enumerate() {
                        *word = scrub_mask(mem.read_u64(line_pa(frame, line_idx) + j as u64 * 8));
                    }
                }
                let expected = expected.map(scrub_mask);
                if checksum64(&actual) == checksum64(&expected) {
                    out.frames_clean += 1;
                    continue;
                }
                let mut retire = false;
                for line_idx in 0..LINES_PER_PAGE {
                    let span = line_idx * WORDS_PER_LINE..(line_idx + 1) * WORDS_PER_LINE;
                    if actual[span.clone()] == expected[span.clone()] {
                        continue;
                    }
                    out.lines_detected += 1;
                    let line = line_pa(frame, line_idx).as_u64();
                    sanitize::emit(|| Event::ScrubDetect { line });
                    {
                        let proc =
                            self.procs.get_mut(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
                        proc.aspace.rewrite_table_line(mem, &self.costs, frame, line_idx)?;
                    }
                    mem.advance(Cycles::new(self.costs.scrub_line_op));
                    let healed = (0..WORDS_PER_LINE).all(|j| {
                        scrub_mask(mem.read_u64(line_pa(frame, line_idx) + j as u64 * 8))
                            == expected[line_idx * WORDS_PER_LINE + j]
                    });
                    if healed {
                        out.lines_corrected += 1;
                        sanitize::emit(|| Event::ScrubCorrect { line });
                    } else {
                        // Correction budget exhausted: the frame is beyond
                        // in-place repair.
                        retire = true;
                        break;
                    }
                }
                if retire {
                    if let RetireOutcome::TableRelocated { pid } =
                        self.retire_nvm_frame(mem, frame)?
                    {
                        out.frames_retired.push((pid, frame));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Software translation for a process (charges the walk).
    ///
    /// # Errors
    ///
    /// [`KindleError::NoSuchProcess`] for unknown pids.
    pub fn translate(&self, mem: &mut dyn PhysMem, pid: u32, va: VirtAddr) -> Result<Option<Pte>> {
        let proc = self.procs.get(&pid).ok_or(KindleError::NoSuchProcess(pid))?;
        Ok(proc.aspace.translate(mem, va))
    }

    /// Marks a process recovered (used by the persistence layer).
    pub fn set_state(&mut self, pid: u32, state: ProcState) -> Result<()> {
        self.process_mut(pid)?.state = state;
        Ok(())
    }
}

fn round_up(len: u64) -> u64 {
    (len + PAGE_SIZE as u64 - 1) & !(PAGE_SIZE as u64 - 1)
}

const WORDS_PER_LINE: usize = CACHE_LINE / 8;

/// Strips the hardware-managed PTE bits before a scrub compare: the walker
/// sets accessed/dirty (and the HSCC count) in the stored entries without
/// going through the kernel shadow, so those bits legitimately diverge.
fn scrub_mask(word: u64) -> u64 {
    word & !Pte::HW_MANAGED
}

fn line_pa(frame: Pfn, line_idx: usize) -> kindle_types::PhysAddr {
    frame.base() + (line_idx * CACHE_LINE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;

    fn boot() -> (FlatMem, Kernel, u32) {
        let mut mem = FlatMem::new(96 << 20);
        let mut k = Kernel::new(KernelConfig::for_test(96 << 20), &mut mem).unwrap();
        let pid = k.create_process(&mut mem).unwrap();
        (mem, k, pid)
    }

    #[test]
    fn mmap_fault_access_cycle() {
        let (mut mem, mut k, pid) = boot();
        let va =
            k.sys_mmap(&mut mem, pid, None, 3 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        // Nothing mapped yet.
        assert!(k.translate(&mut mem, pid, va).unwrap().is_none());
        let pte = k.handle_fault(&mut mem, pid, va, AccessKind::Write).unwrap();
        assert!(pte.is_present());
        assert_eq!(pte.mem_kind(), MemKind::Nvm);
        assert!(k.pools.nvm.is_allocated(pte.pfn()));
        assert_eq!(k.stats().page_faults, 1);
    }

    #[test]
    fn nvm_flag_selects_pool() {
        let (mut mem, mut k, pid) = boot();
        let d = k.sys_mmap(&mut mem, pid, None, 4096, Prot::RW, MapFlags::EMPTY).unwrap();
        let n = k.sys_mmap(&mut mem, pid, None, 4096, Prot::RW, MapFlags::NVM).unwrap();
        let dp = k.handle_fault(&mut mem, pid, d, AccessKind::Write).unwrap();
        let np = k.handle_fault(&mut mem, pid, n, AccessKind::Write).unwrap();
        assert!(k.pools.dram.contains(dp.pfn()));
        assert!(k.pools.nvm.inner().contains(np.pfn()));
    }

    #[test]
    fn fault_outside_vma_is_unmapped_error() {
        let (mut mem, mut k, pid) = boot();
        let err = k
            .handle_fault(&mut mem, pid, VirtAddr::new(0x1234_5000), AccessKind::Read)
            .unwrap_err();
        assert!(matches!(err, KindleError::Unmapped(_)));
    }

    #[test]
    fn write_to_readonly_is_protection_fault() {
        let (mut mem, mut k, pid) = boot();
        let va = k.sys_mmap(&mut mem, pid, None, 4096, Prot::READ, MapFlags::EMPTY).unwrap();
        let err = k.handle_fault(&mut mem, pid, va, AccessKind::Write).unwrap_err();
        assert!(matches!(err, KindleError::ProtectionFault(_)));
        // Reads still work.
        k.handle_fault(&mut mem, pid, va, AccessKind::Read).unwrap();
    }

    #[test]
    fn munmap_reclaims_frames_and_reports_shootdowns() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                4 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let used = k.pools.nvm.used();
        assert_eq!(k.stats().pages_mapped, 4);
        let out = k.sys_munmap(&mut mem, pid, va, 4 * PAGE_SIZE as u64).unwrap();
        assert_eq!(out.unmapped.len(), 4);
        assert_eq!(k.pools.nvm.used(), used - 4);
        assert!(k.translate(&mut mem, pid, va).unwrap().is_none());
    }

    #[test]
    fn munmap_partial_splits_vma() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(&mut mem, pid, None, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY)
            .unwrap();
        k.sys_munmap(&mut mem, pid, va + PAGE_SIZE as u64, PAGE_SIZE as u64).unwrap();
        let proc = k.process(pid).unwrap();
        assert_eq!(proc.vmas.len(), 2);
        assert!(proc.vmas.find(va).is_some());
        assert!(proc.vmas.find(va + PAGE_SIZE as u64).is_none());
    }

    #[test]
    fn mprotect_flips_writable_bit() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::EMPTY | MapFlags::POPULATE,
            )
            .unwrap();
        assert!(k.translate(&mut mem, pid, va).unwrap().unwrap().is_writable());
        k.sys_mprotect(&mut mem, pid, va, PAGE_SIZE as u64, Prot::READ).unwrap();
        assert!(!k.translate(&mut mem, pid, va).unwrap().unwrap().is_writable());
        assert_eq!(k.process(pid).unwrap().vmas.find(va).unwrap().prot, Prot::READ);
    }

    #[test]
    fn mremap_moves_frames() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                2 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let old_pfn = k.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        let (new_va, out) =
            k.sys_mremap(&mut mem, pid, va, 2 * PAGE_SIZE as u64, 4 * PAGE_SIZE as u64).unwrap();
        assert_ne!(new_va, va);
        assert_eq!(out.unmapped.len(), 2);
        let new_pfn = k.translate(&mut mem, pid, new_va).unwrap().unwrap().pfn();
        assert_eq!(new_pfn, old_pfn, "frames move with the mapping");
        assert!(k.translate(&mut mem, pid, va).unwrap().is_none());
    }

    #[test]
    fn fixed_mmap_at_exact_address() {
        let (mut mem, mut k, pid) = boot();
        let want = VirtAddr::new(0x7000_0000);
        let got = k
            .sys_mmap(&mut mem, pid, Some(want), PAGE_SIZE as u64, Prot::RW, MapFlags::FIXED)
            .unwrap();
        assert_eq!(got, want);
        let err = k
            .sys_mmap(&mut mem, pid, Some(want), PAGE_SIZE as u64, Prot::RW, MapFlags::FIXED)
            .unwrap_err();
        assert!(matches!(err, KindleError::Overlap(_)));
    }

    #[test]
    fn meta_records_flow() {
        let (mut mem, mut k, pid) = boot();
        k.take_meta_records(); // drop boot records
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        k.sys_munmap(&mut mem, pid, va, PAGE_SIZE as u64).unwrap();
        let recs = k.take_meta_records();
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::VmaAdd { .. })));
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::PageMapped { .. })));
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::PageUnmapped { .. })));
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::VmaRemove { .. })));
        assert!(k.take_meta_records().is_empty());
    }

    #[test]
    fn fork_duplicates_layout_and_pages() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                3 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        k.process_mut(pid).unwrap().regs.rip = 0x77;
        // Plant data in the parent's first page.
        let ppfn = k.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        mem.write_bytes(ppfn.base() + 10, b"inherit");

        let child = k.sys_fork(&mut mem, pid).unwrap();
        assert_ne!(child, pid);
        let cp = k.process(child).unwrap();
        assert_eq!(cp.regs.rip, 0x77);
        assert_eq!(cp.vmas.len(), 1);
        let cpfn = k.translate(&mut mem, child, va).unwrap().unwrap().pfn();
        assert_ne!(cpfn, ppfn, "child gets its own frame");
        let mut buf = [0u8; 7];
        mem.read_bytes(cpfn.base() + 10, &mut buf);
        assert_eq!(&buf, b"inherit", "page contents copied");
        // Writes diverge after the fork.
        mem.write_bytes(cpfn.base() + 10, b"childs!");
        let mut pb = [0u8; 7];
        mem.read_bytes(ppfn.base() + 10, &mut pb);
        assert_eq!(&pb, b"inherit");
    }

    #[test]
    fn retire_remaps_and_quarantines_frame() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let old = k.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        mem.write_bytes(old.base() + 5, b"keep");

        let RetireOutcome::Remapped { pid: rpid, vpn: rvpn, new_pfn } =
            k.retire_nvm_frame(&mut mem, old).unwrap()
        else {
            panic!("mapped data frame must be remapped");
        };
        assert_eq!(rpid, pid);
        assert_eq!(rvpn, va.page_number());
        assert_ne!(new_pfn, old);
        let pte = k.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), new_pfn, "mapping moved to the replacement frame");
        assert!(pte.is_writable(), "protection carried over");
        let mut buf = [0u8; 4];
        mem.read_bytes(new_pfn.base() + 5, &mut buf);
        assert_eq!(&buf, b"keep", "contents copied before the remap");
        assert!(k.pools.nvm.is_allocated(old), "retired frame never returns to the pool");
        assert_eq!(k.stats().frames_retired, 1);
        let recs = k.take_meta_records();
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::PageUnmapped { .. })));
        assert!(recs.iter().any(|r| matches!(r, MetaRecord::PageMapped { .. })));
    }

    #[test]
    fn retire_outside_general_pool_is_ignored() {
        let (mut mem, mut k, _pid) = boot();
        // A DRAM pfn is outside the NVM general pool.
        let out = k.retire_nvm_frame(&mut mem, Pfn::new(0)).unwrap();
        assert_eq!(out, RetireOutcome::Quarantined);
        assert_eq!(k.stats().frames_retired, 0);
    }

    fn boot_persistent() -> (FlatMem, Kernel, u32) {
        let mut mem = FlatMem::new(96 << 20);
        let mut cfg = KernelConfig::for_test(96 << 20);
        cfg.pt_mode = PtMode::Persistent;
        let mut k = Kernel::new(cfg, &mut mem).unwrap();
        let pid = k.create_process(&mut mem).unwrap();
        (mem, k, pid)
    }

    #[test]
    fn retiring_live_table_frame_relocates_it() {
        let (mut mem, mut k, pid) = boot_persistent();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let data_pfn = k.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        let root = k.process(pid).unwrap().aspace.root();
        let out = k.retire_nvm_frame(&mut mem, root).unwrap();
        assert_eq!(out, RetireOutcome::TableRelocated { pid });
        let new_root = k.process(pid).unwrap().aspace.root();
        assert_ne!(new_root, root, "PTBR moved to the replacement frame");
        assert!(k.pools.nvm.is_allocated(root), "retired table frame never returns to the pool");
        let pte = k.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), data_pfn, "translations survive the relocation");
        assert_eq!(k.stats().pt_frames_retired, 1);
    }

    #[test]
    fn scrub_pass_detects_and_heals_corrupted_table_line() {
        let (mut mem, mut k, pid) = boot_persistent();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        // Flip one bit of a stored table entry behind the kernel's back
        // (what a stuck NVM cell does to a PTE store). Bit 63 is ignored by
        // the walker but covered by the scrub verify.
        let frame = *k.process(pid).unwrap().aspace.table_frames().last().unwrap();
        let pa = frame.base() + 8;
        let orig = mem.read_u64(pa);
        mem.write_u64(pa, orig ^ (1 << 63));

        // A divergence confined to hardware-managed bits is not corruption:
        // the walker owns accessed/dirty, so scrub must leave it alone.
        let hw_pa = frame.base() + (CACHE_LINE as u64) + 8;
        let hw_word = mem.read_u64(hw_pa) | Pte::ACCESSED | Pte::DIRTY;
        mem.write_u64(hw_pa, hw_word);

        let out = k.scrub_pt_frames(&mut mem).unwrap();
        assert_eq!(out.lines_detected, 1);
        assert_eq!(out.lines_corrected, 1);
        assert!(out.frames_retired.is_empty());
        assert_eq!(mem.read_u64(pa), orig, "line rewritten from the shadow");
        assert_eq!(mem.read_u64(hw_pa), hw_word, "hardware-managed bits untouched");
        assert!(k.translate(&mut mem, pid, va).unwrap().is_some());

        // A clean image scrubs clean.
        let out = k.scrub_pt_frames(&mut mem).unwrap();
        assert_eq!(out.lines_detected, 0);
        assert_eq!(out.frames_clean, 4, "root + three levels all verified");
    }

    #[test]
    fn destroy_process_reclaims_everything() {
        let (mut mem, mut k, pid) = boot();
        let dram_used = k.pools.dram.used();
        let nvm_used = k.pools.nvm.used();
        let pid2 = k.create_process(&mut mem).unwrap();
        k.sys_mmap(
            &mut mem,
            pid2,
            None,
            8 * PAGE_SIZE as u64,
            Prot::RW,
            MapFlags::NVM | MapFlags::POPULATE,
        )
        .unwrap();
        k.destroy_process(&mut mem, pid2).unwrap();
        assert_eq!(k.pools.dram.used(), dram_used);
        assert_eq!(k.pools.nvm.used(), nvm_used);
        assert!(k.process(pid2).is_err());
        let _ = pid;
    }

    #[test]
    fn poisoning_mapped_frame_kills_owner_and_retires_frame() {
        let (mut mem, mut k, pid) = boot();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                2 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let pfn = k.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        let other = k.translate(&mut mem, pid, va + PAGE_SIZE as u64).unwrap().unwrap().pfn();

        let out = k.poison_or_retire_frame(&mut mem, pfn).unwrap();
        let vpn = Vpn::new(va.as_u64() >> kindle_types::PAGE_SHIFT);
        assert_eq!(out, IntegrityOutcome::Poisoned { pid, vpn });
        assert!(k.process(pid).is_err(), "owner killed, not left running");
        assert!(k.pools.nvm.is_allocated(pfn), "poisoned frame never re-enters the pool");
        assert!(!k.pools.nvm.is_allocated(other), "the process's healthy frames were freed");
        assert_eq!(k.stats().pages_poisoned, 1);
        assert_eq!(k.stats().procs_killed, 1);
        assert_eq!(k.stats().frames_retired, 1, "only the poisoned frame was retired");

        // The retired frame must never be handed out again.
        for _ in 0..32 {
            assert_ne!(k.pools.nvm.alloc(&mut mem).unwrap(), pfn);
        }
    }

    #[test]
    fn poisoning_unmapped_frame_quarantines_in_place() {
        let (mut mem, mut k, pid) = boot();
        let pfn = k.pools.nvm.alloc(&mut mem).unwrap();
        let out = k.poison_or_retire_frame(&mut mem, pfn).unwrap();
        assert_eq!(out, IntegrityOutcome::Retired(RetireOutcome::Quarantined));
        assert!(k.pools.nvm.is_allocated(pfn));
        assert!(k.process(pid).is_ok(), "no mapping, so nobody dies");
        assert_eq!(k.stats().pages_poisoned, 0);
        assert_eq!(k.stats().frames_retired, 1);
    }

    #[test]
    fn poisoning_table_frame_relocates_instead_of_killing() {
        let (mut mem, mut k, pid) = boot_persistent();
        let va = k
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let root = k.process(pid).unwrap().aspace.root();
        let out = k.poison_or_retire_frame(&mut mem, root).unwrap();
        assert_eq!(out, IntegrityOutcome::Retired(RetireOutcome::TableRelocated { pid }));
        assert!(k.process(pid).is_ok(), "shadow metadata preserved the table: no kill");
        assert!(k.translate(&mut mem, pid, va).unwrap().is_some());
        assert_eq!(k.stats().procs_killed, 0);
    }

    #[test]
    fn kill_process_rejects_unknown_pid() {
        let (mut mem, mut k, _pid) = boot();
        let err = k.kill_process(&mut mem, 999, KillReason::MemoryPoison).unwrap_err();
        assert!(matches!(err, KindleError::NoSuchProcess(999)));
    }
}
