//! Simulated kernel threads and the round-robin scheduler.
//!
//! The paper's evaluation interleaves application progress with background
//! kernel work — checkpoint flushes and HSCC migration passes — on the same
//! machine. We model that with a small, fully deterministic kthread table:
//! thread 0 is the main simulation context (application + syscalls) and
//! daemons are spawned at boot. `kindle_sim::Machine::step` asks
//! [`Scheduler::pick_next`] which thread runs, charges the configured
//! `kthread_switch` cost on every actual switch, and publishes the running
//! thread id to the sanitizer layer so the [`race
//! detector`](kindle_types::sanitize::Violation::RacyNvmWrite) can attribute
//! NVM writes to threads.
//!
//! The scheduler is round-robin over *runnable* threads. Daemons sleep
//! until the machine wakes them (timer due, explicit checkpoint), run one
//! pass, and go back to sleep; the main thread is always runnable, so
//! `pick_next` always has an answer. No wall-clock, no randomness — the
//! schedule is a pure function of the event sequence, which keeps
//! same-seed runs byte-identical.

use kindle_types::sanitize::ThreadId;

/// What a simulated kernel thread does when dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KThreadKind {
    /// The main simulation context: application accesses and syscalls.
    Main,
    /// Background checkpoint daemon (drives `CheckpointEngine::tick`).
    CheckpointDaemon,
    /// Background HSCC migration daemon (drives `HsccEngine::migrate`).
    MigrationDaemon,
    /// Background NVM page-table scrub daemon (read-verifies PT frames).
    ScrubDaemon,
    /// Background NVM data-frame patrol daemon (checksum-verifies the
    /// general pool, heals through ECP or poisons the page).
    PatrolDaemon,
}

/// A background kernel service that experiments can opt in through
/// `MachineConfig::with_daemon`. The machine resolves each kind to a
/// `KernelDaemon` dispatcher (in `kindle_sim`) and registers its kthread
/// via [`Scheduler::register_daemon`]; a kind whose engine is not
/// configured (e.g. `Checkpoint` without checkpointing) is skipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DaemonKind {
    /// `ckptd`: periodic checkpoint flushes.
    Checkpoint,
    /// `migrated`: HSCC migration passes (OS mode only).
    Migration,
    /// `scrubd`: periodic NVM page-table scrub/verify passes.
    Scrub,
    /// `patrold`: periodic data-frame patrol over the general NVM pool.
    Patrol,
}

/// Run state of a simulated kernel thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible for dispatch.
    Runnable,
    /// Waiting to be woken (daemons park here between passes).
    Sleeping,
}

/// One entry in the kthread table.
#[derive(Clone, Debug)]
pub struct KThread {
    /// Identity, stamped into sanitizer events emitted while it runs.
    pub tid: ThreadId,
    /// Human-readable name (reports, violation messages).
    pub name: &'static str,
    /// What the machine does when this thread is dispatched.
    pub kind: KThreadKind,
    /// Current run state.
    pub state: ThreadState,
    /// Times this thread has been dispatched.
    pub runs: u64,
}

/// Deterministic round-robin scheduler over the kthread table.
#[derive(Clone, Debug)]
pub struct Scheduler {
    threads: Vec<KThread>,
    current: usize,
    switches: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler with only the main thread (tid 0), runnable and current.
    pub fn new() -> Self {
        Scheduler {
            threads: vec![KThread {
                tid: ThreadId::MAIN,
                name: "main",
                kind: KThreadKind::Main,
                state: ThreadState::Runnable,
                runs: 0,
            }],
            current: 0,
            switches: 0,
        }
    }

    /// Registers a daemon kthread in the table — the single entry point
    /// through which every background daemon (ckptd, migrated, scrubd)
    /// gets a scheduling context. It starts [`ThreadState::Sleeping`];
    /// wake it to make it dispatchable. Returns its id.
    pub fn register_daemon(&mut self, name: &'static str, kind: KThreadKind) -> ThreadId {
        let tid = ThreadId(u32::try_from(self.threads.len()).unwrap_or(u32::MAX));
        self.threads.push(KThread { tid, name, kind, state: ThreadState::Sleeping, runs: 0 });
        tid
    }

    /// The running thread's id.
    pub fn current(&self) -> ThreadId {
        self.threads[self.current].tid
    }

    /// The running thread's kind.
    pub fn current_kind(&self) -> KThreadKind {
        self.threads[self.current].kind
    }

    /// Total context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Read-only view of the thread table.
    pub fn threads(&self) -> &[KThread] {
        &self.threads
    }

    /// Looks up a thread by id.
    pub fn thread(&self, tid: ThreadId) -> Option<&KThread> {
        self.threads.get(tid.0 as usize)
    }

    /// Marks `tid` runnable. Unknown ids are ignored (a machine without the
    /// corresponding engine never spawned the daemon).
    pub fn wake(&mut self, tid: ThreadId) {
        if let Some(t) = self.threads.get_mut(tid.0 as usize) {
            t.state = ThreadState::Runnable;
        }
    }

    /// Puts `tid` to sleep. The main thread (tid 0) cannot sleep — the
    /// machine always needs a dispatchable context — so it is ignored.
    pub fn sleep(&mut self, tid: ThreadId) {
        if tid == ThreadId::MAIN {
            return;
        }
        if let Some(t) = self.threads.get_mut(tid.0 as usize) {
            t.state = ThreadState::Sleeping;
        }
    }

    /// Round-robin choice: the first runnable thread after the current one
    /// (wrapping), or the current thread if nothing else is runnable. The
    /// main thread is always runnable, so this always returns a thread.
    pub fn pick_next(&self) -> ThreadId {
        let n = self.threads.len();
        for off in 1..=n {
            let idx = (self.current + off) % n;
            if self.threads[idx].state == ThreadState::Runnable {
                return self.threads[idx].tid;
            }
        }
        self.threads[self.current].tid
    }

    /// Makes `tid` the running thread, counting a switch if it differs from
    /// the current one. The caller (the machine) charges the switch cost
    /// and publishes the id to the sanitizer layer.
    pub fn switch_to(&mut self, tid: ThreadId) {
        let idx = tid.0 as usize;
        if idx >= self.threads.len() || idx == self.current {
            return;
        }
        self.current = idx;
        self.switches += 1;
        self.threads[idx].runs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_runnable_main() {
        let s = Scheduler::new();
        assert_eq!(s.current(), ThreadId::MAIN);
        assert_eq!(s.current_kind(), KThreadKind::Main);
        assert_eq!(s.pick_next(), ThreadId::MAIN);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn spawned_daemons_sleep_until_woken() {
        let mut s = Scheduler::new();
        let ckpt = s.register_daemon("ckptd", KThreadKind::CheckpointDaemon);
        assert_eq!(ckpt, ThreadId(1));
        assert_eq!(s.pick_next(), ThreadId::MAIN, "sleeping daemon must not be picked");
        s.wake(ckpt);
        assert_eq!(s.pick_next(), ckpt);
    }

    #[test]
    fn round_robin_cycles_runnable_threads() {
        let mut s = Scheduler::new();
        let a = s.register_daemon("a", KThreadKind::CheckpointDaemon);
        let b = s.register_daemon("b", KThreadKind::MigrationDaemon);
        s.wake(a);
        s.wake(b);
        let first = s.pick_next();
        assert_eq!(first, a);
        s.switch_to(first);
        let second = s.pick_next();
        assert_eq!(second, b);
        s.switch_to(second);
        assert_eq!(s.pick_next(), ThreadId::MAIN);
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn sleep_returns_control_to_main() {
        let mut s = Scheduler::new();
        let a = s.register_daemon("a", KThreadKind::CheckpointDaemon);
        s.wake(a);
        s.switch_to(s.pick_next());
        assert_eq!(s.current(), a);
        s.sleep(a);
        assert_eq!(s.pick_next(), ThreadId::MAIN);
    }

    #[test]
    fn main_cannot_sleep() {
        let mut s = Scheduler::new();
        s.sleep(ThreadId::MAIN);
        assert_eq!(s.pick_next(), ThreadId::MAIN);
    }

    #[test]
    fn switch_to_self_is_free() {
        let mut s = Scheduler::new();
        s.switch_to(ThreadId::MAIN);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn switch_to_unknown_tid_ignored() {
        let mut s = Scheduler::new();
        s.switch_to(ThreadId(7));
        assert_eq!(s.current(), ThreadId::MAIN);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn runs_counted_per_dispatch() {
        let mut s = Scheduler::new();
        let a = s.register_daemon("a", KThreadKind::CheckpointDaemon);
        for _ in 0..3 {
            s.wake(a);
            s.switch_to(a);
            s.sleep(a);
            s.switch_to(ThreadId::MAIN);
        }
        assert_eq!(s.thread(a).map(|t| t.runs), Some(3));
        assert_eq!(s.switches(), 6);
    }
}
