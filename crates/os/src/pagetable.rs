//! 4-level page tables stored in simulated physical memory.
//!
//! The paper's §III-A compares two ways of keeping translation information
//! consistent across crashes:
//!
//! * **Rebuild** ([`PtMode::Rebuild`]): tables live in DRAM and are written
//!   with plain stores; after a crash they are reconstructed from the
//!   virtual→NVM-frame mapping list in the saved state.
//! * **Persistent** ([`PtMode::Persistent`]): tables live in NVM and every
//!   PTE store is wrapped in an NVM consistency mechanism (log append +
//!   `clwb` + fence on both log and entry), so after a crash it suffices to
//!   restore the PTBR.
//!
//! Both cost structures fall out of this module: table frames come from the
//! corresponding pool, and all traffic flows through `PhysMem`.

use std::collections::BTreeMap;

use kindle_types::pte::pte_addr;
use kindle_types::sanitize::{self, Event};
use kindle_types::{
    KindleError, MemKind, Pfn, PhysAddr, PhysMem, Pte, Result, VirtAddr, Vpn, PAGE_SHIFT,
};

use crate::costs::KernelCosts;
use crate::frame::FramePools;
use crate::layout::Region;

/// Page-table maintenance scheme (paper §III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PtMode {
    /// DRAM-hosted tables, plain stores, rebuilt after crash.
    Rebuild,
    /// NVM-hosted tables, consistency-wrapped stores, PTBR-restore recovery.
    Persistent,
}

impl PtMode {
    /// Pool that table frames are allocated from.
    pub fn table_pool(self) -> MemKind {
        match self {
            PtMode::Rebuild => MemKind::Dram,
            PtMode::Persistent => MemKind::Nvm,
        }
    }
}

/// A process address space: the root table plus bookkeeping.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    root: Pfn,
    mode: PtMode,
    /// Every table frame ever allocated (root first), for teardown.
    table_frames: Vec<Pfn>,
    /// PTE-store consistency log ring (persistent mode only).
    log: Option<PteLog>,
    /// Leaf mappings currently present.
    mapped_pages: u64,
    /// Consistency-wrapped PTE stores performed.
    pub wrapped_stores: u64,
    /// Host-side mirror of present-entry counts per table frame, used to
    /// reclaim empty tables on unmap.
    entry_counts: BTreeMap<u64, u32>,
    /// Reclamation is disabled for adopted (recovered) NVM tables whose
    /// counts are unknown.
    reclaim: bool,
    /// Shadow of each table frame's *intended* 512 entries, keyed by frame
    /// number and maintained by every [`write_pte`](Self::write_pte). This
    /// is the kernel-metadata ground truth scrubd verifies NVM table frames
    /// against — media corruption (stuck cells) changes the stored bits but
    /// never the shadow — and the source for content-preserving frame
    /// retirement. Empty for adopted tables until
    /// [`rehydrate_tables`](Self::rehydrate_tables) runs.
    shadow: BTreeMap<u64, Box<[u64; 512]>>,
}

#[derive(Clone, Debug)]
struct PteLog {
    region: Region,
    cursor: u64,
}

impl PteLog {
    /// Appends one (address, value) record and makes it durable.
    fn append(&mut self, mem: &mut dyn PhysMem, pa: PhysAddr, value: u64) {
        let slot = self.region.base + self.cursor;
        mem.write_u64(slot, pa.as_u64());
        mem.write_u64(slot + 8, value);
        mem.clwb(slot);
        mem.sfence();
        self.cursor = (self.cursor + 16) % self.region.size;
    }
}

impl AddressSpace {
    /// Allocates a zeroed root table from the pool dictated by `mode`.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion.
    pub fn new(
        mem: &mut dyn PhysMem,
        pools: &mut FramePools,
        mode: PtMode,
        pt_log: Region,
    ) -> Result<Self> {
        let root = pools.alloc(mem, mode.table_pool())?;
        mem.zero_page(root.base());
        let log = match mode {
            PtMode::Rebuild => None,
            PtMode::Persistent => Some(PteLog { region: pt_log, cursor: 0 }),
        };
        Ok(AddressSpace {
            root,
            mode,
            table_frames: vec![root],
            log,
            mapped_pages: 0,
            wrapped_stores: 0,
            entry_counts: BTreeMap::new(),
            reclaim: true,
            shadow: BTreeMap::from([(root.as_u64(), Box::new([0u64; 512]))]),
        })
    }

    /// Adopts an existing NVM-resident table after crash recovery
    /// (persistent scheme: "just restore the PTBR").
    pub fn adopt_persistent(root: Pfn, pt_log: Region, mapped_pages: u64) -> Self {
        AddressSpace {
            root,
            mode: PtMode::Persistent,
            table_frames: vec![root],
            log: Some(PteLog { region: pt_log, cursor: 0 }),
            mapped_pages,
            wrapped_stores: 0,
            entry_counts: BTreeMap::new(),
            reclaim: false,
            shadow: BTreeMap::new(),
        }
    }

    /// Re-learns the adopted tables by walking them in memory: fills
    /// `table_frames` with every reachable table and rebuilds the shadow
    /// from the stored entries. Charges every table-entry read. Only
    /// machines running scrubd call this (after recovery) — the plain
    /// persistent scheme's "just restore the PTBR" stays as cheap as ever.
    ///
    /// The rebuilt shadow trusts the bits currently on media, so corruption
    /// that happened *before* rehydration is adopted as ground truth;
    /// scrubd guards the frames from that point on.
    pub fn rehydrate_tables(&mut self, mem: &mut dyn PhysMem) {
        if !self.shadow.is_empty() {
            return;
        }
        let mut frames = vec![self.root];
        let mut i = 0;
        // The root sits at depth 0; entries of depth-3 tables are leaves.
        let mut depth = BTreeMap::from([(self.root.as_u64(), 0u8)]);
        while i < frames.len() {
            let frame = frames[i];
            i += 1;
            let d = depth.get(&frame.as_u64()).copied().unwrap_or(3);
            let mut words = Box::new([0u64; 512]);
            for (idx, word) in words.iter_mut().enumerate() {
                let bits = mem.read_u64(frame.base() + idx as u64 * 8);
                *word = bits;
                let pte = Pte::from_bits(bits);
                if d < 3 && pte.is_present() && !depth.contains_key(&pte.pfn().as_u64()) {
                    // The depth map doubles as the visited set, so a
                    // corrupted entry cannot send the walk in circles.
                    depth.insert(pte.pfn().as_u64(), d + 1);
                    frames.push(pte.pfn());
                }
            }
            self.shadow.insert(frame.as_u64(), words);
        }
        self.table_frames = frames;
    }

    /// Root table frame (the PTBR value).
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// Maintenance scheme.
    pub fn mode(&self) -> PtMode {
        self.mode
    }

    /// Leaf mappings currently present.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Table frames allocated so far (root + intermediates).
    pub fn table_frame_count(&self) -> usize {
        self.table_frames.len()
    }

    /// The table frames themselves (root first), for scrub passes.
    pub fn table_frames(&self) -> &[Pfn] {
        &self.table_frames
    }

    /// The intended 512 entries of table frame `frame`, if it belongs to
    /// this space and its shadow is known.
    pub fn expected_table_words(&self, frame: Pfn) -> Option<&[u64; 512]> {
        self.shadow.get(&frame.as_u64()).map(|b| &**b)
    }

    /// True when `frame` is one of this space's table frames.
    pub fn owns_table_frame(&self, frame: Pfn) -> bool {
        self.table_frames.contains(&frame)
    }

    /// Moves the table held in `old` into the freshly allocated frame `new`,
    /// preserving content: every intended entry is rewritten into `new`
    /// under the scheme's write discipline, and the parent entry (or the
    /// PTBR, when `old` is the root) is repointed. The caller allocates
    /// `new` and retires `old` afterwards; leaf mappings are untouched, so
    /// no process-visible translation changes.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` when `old`'s shadow is unknown (an adopted table
    /// that was never rehydrated); `Corrupted` when no parent entry points
    /// at `old`.
    pub fn relocate_table_frame(
        &mut self,
        mem: &mut dyn PhysMem,
        costs: &KernelCosts,
        old: Pfn,
        new: Pfn,
    ) -> Result<()> {
        let words = self
            .shadow
            .remove(&old.as_u64())
            .ok_or(KindleError::InvalidArgument("no shadow for retired table frame"))?;
        mem.zero_page(new.base());
        self.shadow.insert(new.as_u64(), Box::new([0u64; 512]));
        for (idx, &bits) in words.iter().enumerate() {
            if bits != 0 {
                self.write_pte(mem, costs, new.base() + idx as u64 * 8, Pte::from_bits(bits));
            }
        }
        if let Some(pos) = self.table_frames.iter().position(|&f| f == old) {
            self.table_frames[pos] = new;
        }
        if let Some(count) = self.entry_counts.remove(&old.as_u64()) {
            self.entry_counts.insert(new.as_u64(), count);
        }
        if self.root == old {
            self.root = new;
            return Ok(());
        }
        // Table frames have exactly one parent entry; find it through the
        // shadow (data-frame PTEs cannot collide with a live table frame).
        let parent = self.shadow.iter().find_map(|(&frame, page)| {
            page.iter()
                .position(|&b| {
                    let p = Pte::from_bits(b);
                    p.is_present() && p.pfn() == old
                })
                .map(|idx| (frame, idx))
        });
        let Some((parent_frame, idx)) = parent else {
            return Err(KindleError::Corrupted("retired table frame has no parent entry"));
        };
        let parent_pa = Pfn::new(parent_frame).base() + idx as u64 * 8;
        let parent_pte = Pte::from_bits(self.shadow[&parent_frame][idx]);
        self.write_pte(mem, costs, parent_pa, parent_pte.with_pfn(new));
        Ok(())
    }

    /// Rewrites the eight entries of cache line `line_idx` (0..64) of table
    /// frame `frame` from the shadow, through the scheme's write discipline
    /// — scrubd's in-place repair of a corrupted line. The stores route
    /// through the media correction layer, so the line comes back verified
    /// only if correction entries covered every stuck cell.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` when the frame's shadow is unknown.
    pub fn rewrite_table_line(
        &mut self,
        mem: &mut dyn PhysMem,
        costs: &KernelCosts,
        frame: Pfn,
        line_idx: usize,
    ) -> Result<()> {
        let base = line_idx * 8;
        let words: [u64; 8] = {
            let page = self
                .shadow
                .get(&frame.as_u64())
                .ok_or(KindleError::InvalidArgument("no shadow for scrubbed table frame"))?;
            let mut w = [0u64; 8];
            w.copy_from_slice(&page[base..base + 8]);
            w
        };
        for (j, &bits) in words.iter().enumerate() {
            self.write_pte(
                mem,
                costs,
                frame.base() + ((base + j) * 8) as u64,
                Pte::from_bits(bits),
            );
        }
        Ok(())
    }

    /// Records the intended value of the table entry at `pa` in the shadow.
    fn shadow_store(&mut self, pa: PhysAddr, bits: u64) {
        let frame = pa.as_u64() >> PAGE_SHIFT;
        let slot = ((pa.as_u64() >> 3) & 511) as usize;
        let words = self.shadow.entry(frame).or_insert_with(|| Box::new([0u64; 512]));
        words[slot] = bits;
    }

    /// Stores a PTE with the scheme's write discipline.
    fn write_pte(&mut self, mem: &mut dyn PhysMem, costs: &KernelCosts, pa: PhysAddr, pte: Pte) {
        self.shadow_store(pa, pte.bits());
        match self.mode {
            PtMode::Rebuild => {
                mem.write_u64(pa, pte.bits());
            }
            PtMode::Persistent => {
                mem.advance(kindle_types::Cycles::new(costs.pt_consistency_op));
                self.wrapped_stores += 1;
                if let Some(log) = self.log.as_mut() {
                    log.append(mem, pa, pte.bits());
                }
                mem.write_u64(pa, pte.bits());
                mem.clwb(pa);
                mem.sfence();
            }
        }
    }

    /// Stores a *leaf* PTE. This is the designated NVM-mutating primitive
    /// for mapping changes: the static pass (KD009) requires every call to
    /// be covered by a `PteInstall`/`PteClear` sanitize event in the same
    /// function. Intermediate-table entries go through [`Self::write_pte`]
    /// directly — they carry no per-entry events.
    fn store_leaf(&mut self, mem: &mut dyn PhysMem, costs: &KernelCosts, pa: PhysAddr, pte: Pte) {
        self.write_pte(mem, costs, pa, pte);
    }

    /// Maps `va → pfn` with `extra_flags` OR-ed into the leaf PTE, creating
    /// intermediate tables on demand.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion; returns `InvalidArgument` if the page is
    /// already mapped.
    pub fn map(
        &mut self,
        mem: &mut dyn PhysMem,
        pools: &mut FramePools,
        costs: &KernelCosts,
        va: VirtAddr,
        pfn: Pfn,
        extra_flags: u64,
    ) -> Result<()> {
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            mem.advance(kindle_types::Cycles::new(costs.pte_op));
            let pa = pte_addr(table, va, level);
            let pte = Pte::from_bits(mem.read_u64(pa));
            if pte.is_present() {
                table = pte.pfn();
            } else {
                let frame = pools.alloc(mem, self.mode.table_pool())?;
                mem.zero_page(frame.base());
                self.shadow.insert(frame.as_u64(), Box::new([0u64; 512]));
                if self.mode == PtMode::Persistent {
                    // Initialising a table page *is* a page-table
                    // modification: every line of it is zeroed under the
                    // NVM consistency discipline (logged + flushed), so
                    // creating levels at sparse strides is expensive.
                    for line in 0..kindle_types::LINES_PER_PAGE as u64 {
                        self.write_pte(mem, costs, frame.base() + line * 64, Pte::EMPTY);
                    }
                }
                self.table_frames.push(frame);
                let table_flags = Pte::WRITABLE | Pte::USER;
                self.write_pte(mem, costs, pa, Pte::new(frame, table_flags));
                *self.entry_counts.entry(table.as_u64()).or_insert(0) += 1;
                table = frame;
            }
        }
        mem.advance(kindle_types::Cycles::new(costs.pte_op));
        let leaf_pa = pte_addr(table, va, 1);
        let existing = Pte::from_bits(mem.read_u64(leaf_pa));
        if existing.is_present() {
            return Err(KindleError::InvalidArgument("page already mapped"));
        }
        self.store_leaf(mem, costs, leaf_pa, Pte::new(pfn, Pte::USER | extra_flags));
        sanitize::emit(|| Event::PteInstall { pfn: pfn.as_u64(), vpn: va.page_number().as_u64() });
        *self.entry_counts.entry(table.as_u64()).or_insert(0) += 1;
        self.mapped_pages += 1;
        Ok(())
    }

    /// Unmaps `va`, returning the leaf PTE that was present. Intermediate
    /// tables left empty are reclaimed (their parent entries cleared with
    /// the scheme's write discipline), so re-mapping at sparse strides pays
    /// the full table-creation cost again — the effect the paper's stride
    /// experiment measures.
    ///
    /// # Errors
    ///
    /// [`KindleError::Unmapped`] if no mapping exists.
    pub fn unmap(
        &mut self,
        mem: &mut dyn PhysMem,
        pools: &mut FramePools,
        costs: &KernelCosts,
        va: VirtAddr,
    ) -> Result<Pte> {
        // path[i] = (table frame, pte address within it) from level 4 down.
        let mut path: [(Pfn, PhysAddr); 4] = [(self.root, PhysAddr::new(0)); 4];
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            mem.advance(kindle_types::Cycles::new(costs.pte_op));
            let pa = pte_addr(table, va, level);
            path[(4 - level) as usize] = (table, pa);
            let pte = Pte::from_bits(mem.read_u64(pa));
            if !pte.is_present() {
                return Err(KindleError::Unmapped(va));
            }
            table = pte.pfn();
        }
        mem.advance(kindle_types::Cycles::new(costs.pte_op));
        let leaf_pa = pte_addr(table, va, 1);
        path[3] = (table, leaf_pa);
        let pte = Pte::from_bits(mem.read_u64(leaf_pa));
        if !pte.is_present() {
            return Err(KindleError::Unmapped(va));
        }
        self.store_leaf(mem, costs, leaf_pa, Pte::EMPTY);
        sanitize::emit(|| Event::PteClear {
            pfn: pte.pfn().as_u64(),
            vpn: va.page_number().as_u64(),
        });
        self.mapped_pages -= 1;

        if self.reclaim {
            // Walk back up, freeing tables that became empty.
            let mut child = table;
            for i in (0..3).rev() {
                let count = self.entry_counts.entry(child.as_u64()).or_insert(1);
                *count -= 1;
                if *count > 0 {
                    break;
                }
                self.entry_counts.remove(&child.as_u64());
                let (parent, parent_pa) = path[i];
                self.write_pte(mem, costs, parent_pa, Pte::EMPTY);
                self.shadow.remove(&child.as_u64());
                if let Some(pos) = self.table_frames.iter().position(|&f| f == child) {
                    self.table_frames.swap_remove(pos);
                }
                pools.free(mem, child);
                mem.advance(kindle_types::Cycles::new(costs.frame_op));
                child = parent;
            }
        }
        Ok(pte)
    }

    /// Software walk (no accessed/dirty updates), charging the PTE reads.
    pub fn translate(&self, mem: &mut dyn PhysMem, va: VirtAddr) -> Option<Pte> {
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            let pte = Pte::from_bits(mem.read_u64(pte_addr(table, va, level)));
            if !pte.is_present() {
                return None;
            }
            table = pte.pfn();
        }
        let pte = Pte::from_bits(mem.read_u64(pte_addr(table, va, 1)));
        pte.is_present().then_some(pte)
    }

    /// Replaces the leaf PTE for `va` in place (used by HSCC remapping and
    /// accessed/dirty manipulation). Returns the previous entry.
    ///
    /// # Errors
    ///
    /// [`KindleError::Unmapped`] if no mapping exists.
    pub fn update_leaf(
        &mut self,
        mem: &mut dyn PhysMem,
        costs: &KernelCosts,
        va: VirtAddr,
        f: impl FnOnce(Pte) -> Pte,
    ) -> Result<Pte> {
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            let pte = Pte::from_bits(mem.read_u64(pte_addr(table, va, level)));
            if !pte.is_present() {
                return Err(KindleError::Unmapped(va));
            }
            table = pte.pfn();
        }
        let leaf_pa = pte_addr(table, va, 1);
        let old = Pte::from_bits(mem.read_u64(leaf_pa));
        if !old.is_present() {
            return Err(KindleError::Unmapped(va));
        }
        let new = f(old);
        if new != old {
            self.store_leaf(mem, costs, leaf_pa, new);
            if new.pfn() != old.pfn() {
                let vpn = va.page_number().as_u64();
                sanitize::emit(|| Event::PteClear { pfn: old.pfn().as_u64(), vpn });
                sanitize::emit(|| Event::PteInstall { pfn: new.pfn().as_u64(), vpn });
            }
        }
        Ok(old)
    }

    /// Walks the whole table depth-first, invoking `f(vpn, pte, leaf_pa)`
    /// for every present leaf mapping. Charges every table-entry read — this
    /// is the traversal the rebuild checkpoint and the HSCC migration scan
    /// pay for.
    pub fn for_each_leaf(
        &self,
        mem: &mut dyn PhysMem,
        mut f: impl FnMut(&mut dyn PhysMem, Vpn, Pte, PhysAddr),
    ) {
        self.walk_table(mem, self.root, 4, 0, &mut f);
    }

    fn walk_table(
        &self,
        mem: &mut dyn PhysMem,
        table: Pfn,
        level: u8,
        vpn_prefix: u64,
        f: &mut impl FnMut(&mut dyn PhysMem, Vpn, Pte, PhysAddr),
    ) {
        for idx in 0..512u64 {
            let pa = table.base() + idx * 8;
            let pte = Pte::from_bits(mem.read_u64(pa));
            if !pte.is_present() {
                continue;
            }
            let vpn = (vpn_prefix << 9) | idx;
            if level == 1 {
                f(mem, Vpn::new(vpn), pte, pa);
            } else {
                self.walk_table(mem, pte.pfn(), level - 1, vpn, f);
            }
        }
    }

    /// Frees every table frame (process teardown). Leaf data frames must be
    /// freed by the caller beforehand (via unmap + pool free).
    pub fn destroy(self, mem: &mut dyn PhysMem, pools: &mut FramePools) {
        for frame in self.table_frames {
            pools.free(mem, frame);
        }
    }
}

/// Convenience: virtual address of a VPN.
pub fn vpn_va(vpn: Vpn) -> VirtAddr {
    VirtAddr::new(vpn.as_u64() << PAGE_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameAllocator, PersistentFrameAllocator};
    use kindle_types::physmem::FlatMem;
    use kindle_types::PAGE_SIZE;

    fn setup() -> (FlatMem, FramePools, Region) {
        let mem = FlatMem::new(8 << 20);
        let pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(16), 512),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(1024), 512),
                Region { base: PhysAddr::new(0x2000), size: 0x1000 },
            ),
        };
        let log = Region { base: PhysAddr::new(0x4000), size: 0x4000 };
        (mem, pools, log)
    }

    #[test]
    fn map_translate_unmap_round_trip() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        let va = VirtAddr::new(0x4000_1000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(77), Pte::WRITABLE).unwrap();
        let pte = asp.translate(&mut mem, va).unwrap();
        assert_eq!(pte.pfn(), Pfn::new(77));
        assert!(pte.is_writable());
        assert_eq!(asp.mapped_pages(), 1);
        let old = asp.unmap(&mut mem, &mut pools, &costs, va).unwrap();
        assert_eq!(old.pfn(), Pfn::new(77));
        assert!(asp.translate(&mut mem, va).is_none());
        assert_eq!(asp.mapped_pages(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        let va = VirtAddr::new(0x5000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(1), 0).unwrap();
        assert!(asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(2), 0).is_err());
    }

    #[test]
    fn rebuild_tables_come_from_dram_persistent_from_nvm() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        assert!(pools.dram.contains(asp.root()));
        let asp2 = AddressSpace::new(&mut mem, &mut pools, PtMode::Persistent, log).unwrap();
        assert!(pools.nvm.inner().contains(asp2.root()));
        let _ = costs;
    }

    #[test]
    fn persistent_mode_wraps_stores() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Persistent, log).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(5), 0).unwrap();
        // 3 intermediate tables, each consistency-initialised line by line
        // (64 wrapped stores) plus its parent entry, plus 1 leaf store.
        assert_eq!(asp.wrapped_stores, 3 * 64 + 3 + 1);
        // Log region holds the last record: (pa, value) pair at cursor-16.
        let rec_pa = PhysAddr::new(log.base.as_u64() + 3 * 16);
        let logged_addr = mem.read_u64(rec_pa);
        assert_ne!(logged_addr, 0, "log record must be written");
    }

    #[test]
    fn sparse_strides_allocate_more_tables() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut dense = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        for i in 0..10u64 {
            let va = VirtAddr::new(0x4000_0000 + i * PAGE_SIZE as u64);
            dense.map(&mut mem, &mut pools, &costs, va, Pfn::new(100 + i), 0).unwrap();
        }
        let mut sparse = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        for i in 0..10u64 {
            let va = VirtAddr::new(0x4000_0000 + i * (1 << 30)); // 1 GiB stride
            sparse.map(&mut mem, &mut pools, &costs, va, Pfn::new(200 + i), 0).unwrap();
        }
        assert!(
            sparse.table_frame_count() > dense.table_frame_count(),
            "1 GiB stride must touch more page-table levels"
        );
    }

    #[test]
    fn for_each_leaf_enumerates_all_mappings() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        let mut expect = Vec::new();
        for i in 0..20u64 {
            let va = VirtAddr::new(0x4000_0000 + i * 2 * PAGE_SIZE as u64);
            asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(300 + i), 0).unwrap();
            expect.push((va.page_number(), Pfn::new(300 + i)));
        }
        let mut seen = Vec::new();
        asp.for_each_leaf(&mut mem, |_, vpn, pte, _| seen.push((vpn, pte.pfn())));
        seen.sort();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn update_leaf_changes_pfn() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        let va = VirtAddr::new(0x6000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(10), 0).unwrap();
        let old = asp.update_leaf(&mut mem, &costs, va, |p| p.with_pfn(Pfn::new(99))).unwrap();
        assert_eq!(old.pfn(), Pfn::new(10));
        assert_eq!(asp.translate(&mut mem, va).unwrap().pfn(), Pfn::new(99));
    }

    #[test]
    fn relocate_table_frame_preserves_translations() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Persistent, log).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(5), Pte::WRITABLE).unwrap();
        // Relocate every table frame in turn, root included.
        for old in asp.table_frames().to_vec() {
            let new = pools.alloc(&mut mem, MemKind::Nvm).unwrap();
            asp.relocate_table_frame(&mut mem, &costs, old, new).unwrap();
            assert!(!asp.owns_table_frame(old));
            assert!(asp.owns_table_frame(new));
            pools.free(&mut mem, old);
            let pte = asp.translate(&mut mem, va).expect("still mapped");
            assert_eq!(pte.pfn(), Pfn::new(5));
            assert!(pte.is_writable());
        }
        assert!(asp.translate(&mut mem, VirtAddr::new(0x5000_0000)).is_none());
    }

    #[test]
    fn adopted_tables_need_rehydration_before_relocation() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Persistent, log).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(5), 0).unwrap();
        let frames: Vec<Pfn> = asp.table_frames().to_vec();
        let mut adopted = AddressSpace::adopt_persistent(asp.root(), log, asp.mapped_pages());
        assert!(
            adopted.relocate_table_frame(&mut mem, &costs, asp.root(), Pfn::new(2000)).is_err(),
            "no shadow yet"
        );
        adopted.rehydrate_tables(&mut mem);
        let mut rehydrated: Vec<Pfn> = adopted.table_frames().to_vec();
        let mut expect = frames;
        rehydrated.sort();
        expect.sort();
        assert_eq!(rehydrated, expect, "walk must find every table frame");
        let new = pools.alloc(&mut mem, MemKind::Nvm).unwrap();
        let leaf_table = *adopted.table_frames().last().unwrap();
        adopted.relocate_table_frame(&mut mem, &costs, leaf_table, new).unwrap();
        assert_eq!(adopted.translate(&mut mem, va).unwrap().pfn(), Pfn::new(5));
    }

    #[test]
    fn destroy_returns_table_frames() {
        let (mut mem, mut pools, log) = setup();
        let costs = KernelCosts::for_test();
        let before = pools.dram.used();
        let mut asp = AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, log).unwrap();
        let va = VirtAddr::new(0x4000_0000);
        asp.map(&mut mem, &mut pools, &costs, va, Pfn::new(50), 0).unwrap();
        asp.unmap(&mut mem, &mut pools, &costs, va).unwrap();
        asp.destroy(&mut mem, &mut pools);
        assert_eq!(pools.dram.used(), before);
    }
}
