//! Physical frame allocators.
//!
//! [`FrameAllocator`] is a plain bump-plus-free-stack allocator with an
//! allocation bitmap for double-free detection. The NVM pool is wrapped in
//! [`PersistentFrameAllocator`], which mirrors the allocation bitmap into a
//! reserved NVM region on every alloc/free (with `clwb` + fence), so that —
//! as §II-A requires — page-allocation metadata survives a crash and can be
//! rebuilt during recovery.

use kindle_types::sanitize::{self, Event};
use kindle_types::{AccessKind, KindleError, Pfn, PhysAddr, PhysMem, Result};

use crate::layout::Region;

/// A volatile frame allocator over a contiguous PFN range.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    pool: &'static str,
    start: Pfn,
    count: u64,
    next: u64,
    free: Vec<Pfn>,
    /// One bit per frame in the range; set = allocated.
    bitmap: Vec<u64>,
    allocated: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `count` frames starting at `start`.
    pub fn new(pool: &'static str, start: Pfn, count: u64) -> Self {
        FrameAllocator {
            pool,
            start,
            count,
            next: 0,
            free: Vec::new(),
            bitmap: vec![0u64; ((count + 63) / 64) as usize],
            allocated: 0,
        }
    }

    /// Pool label ("dram" / "nvm").
    pub fn pool(&self) -> &'static str {
        self.pool
    }

    #[inline]
    fn index_of(&self, pfn: Pfn) -> u64 {
        debug_assert!(self.contains(pfn), "pfn outside pool");
        pfn - self.start
    }

    #[inline]
    fn bit(&self, idx: u64) -> bool {
        self.bitmap[(idx / 64) as usize] >> (idx % 64) & 1 == 1
    }

    /// Flips one allocation bit. This is the designated NVM-visible
    /// mutation primitive for frame state: the static pass (KD009)
    /// requires every call to be covered by a `FrameAlloc`/`FrameFree`/
    /// `FrameRetired` sanitize event in the same function.
    fn set_frame_bit(&mut self, idx: u64, value: bool) {
        let word = &mut self.bitmap[(idx / 64) as usize];
        if value {
            *word |= 1 << (idx % 64);
        } else {
            *word &= !(1 << (idx % 64));
        }
    }

    /// True if `pfn` belongs to this pool's range.
    pub fn contains(&self, pfn: Pfn) -> bool {
        pfn >= self.start && pfn - self.start < self.count
    }

    /// True if `pfn` is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        self.contains(pfn) && self.bit(self.index_of(pfn))
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// [`KindleError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<Pfn> {
        if let Some(pfn) = self.free.pop() {
            let idx = self.index_of(pfn);
            debug_assert!(!self.bit(idx), "frame on free stack but marked allocated");
            self.set_frame_bit(idx, true);
            self.allocated += 1;
            sanitize::emit(|| Event::FrameAlloc { pool: self.pool, pfn: pfn.as_u64() });
            return Ok(pfn);
        }
        while self.next < self.count && self.bit(self.next) {
            self.next += 1;
        }
        if self.next >= self.count {
            return Err(KindleError::OutOfMemory { pool: self.pool });
        }
        let idx = self.next;
        self.next += 1;
        self.set_frame_bit(idx, true);
        self.allocated += 1;
        let pfn = self.start + idx;
        sanitize::emit(|| Event::FrameAlloc { pool: self.pool, pfn: pfn.as_u64() });
        Ok(pfn)
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics on double free or on a frame outside the pool.
    pub fn free(&mut self, pfn: Pfn) {
        // Report before the asserts so an installed checker records the
        // defect even when the assert aborts the operation.
        sanitize::emit(|| Event::FrameFree { pool: self.pool, pfn: pfn.as_u64() });
        assert!(self.contains(pfn), "freeing frame outside pool {}", self.pool);
        let idx = self.index_of(pfn);
        assert!(self.bit(idx), "double free of {pfn} in pool {}", self.pool);
        self.set_frame_bit(idx, false);
        self.allocated -= 1;
        self.free.push(pfn);
    }

    /// Permanently removes a frame from circulation (media wear-out). The
    /// frame's bit stays set forever: it is never handed out again and must
    /// not be freed. Call after any mapping of the frame has been unmapped.
    pub fn retire(&mut self, pfn: Pfn) {
        sanitize::emit(|| Event::FrameRetired { pool: self.pool, pfn: pfn.as_u64() });
        assert!(self.contains(pfn), "retiring frame outside pool {}", self.pool);
        let idx = self.index_of(pfn);
        if !self.bit(idx) {
            self.set_frame_bit(idx, true);
            self.allocated += 1;
            self.free.retain(|&f| f != pfn);
        }
    }

    /// Forces `pfn` to allocated state, returning true if the bit was
    /// clear (a repair). Recovery uses this to heal bitmap words whose
    /// persist was lost in the NVM write buffer at the crash.
    pub fn ensure_allocated(&mut self, pfn: Pfn) -> bool {
        assert!(self.contains(pfn), "repairing frame outside pool {}", self.pool);
        let idx = self.index_of(pfn);
        if self.bit(idx) {
            return false;
        }
        self.set_frame_bit(idx, true);
        self.allocated += 1;
        self.free.retain(|&f| f != pfn);
        sanitize::emit(|| Event::FrameAlloc { pool: self.pool, pfn: pfn.as_u64() });
        true
    }

    /// Frames currently allocated.
    pub fn used(&self) -> u64 {
        self.allocated
    }

    /// Frames still available.
    pub fn available(&self) -> u64 {
        self.count - self.allocated
    }

    /// Total managed frames.
    pub fn capacity(&self) -> u64 {
        self.count
    }

    /// First managed PFN.
    pub fn start(&self) -> Pfn {
        self.start
    }

    /// Raw bitmap words (for persistence mirroring).
    fn bitmap_words(&self) -> &[u64] {
        &self.bitmap
    }

    /// Overwrites allocation state from raw bitmap words (recovery).
    fn load_bitmap(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.bitmap.len(), "bitmap size mismatch");
        self.bitmap.copy_from_slice(words);
        self.allocated = words.iter().map(|w| w.count_ones() as u64).sum();
        // Mask out bits past `count` defensively.
        self.free.clear();
        self.next = 0;
    }
}

/// An NVM frame allocator whose bitmap is mirrored into NVM.
#[derive(Clone, Debug)]
pub struct PersistentFrameAllocator {
    inner: FrameAllocator,
    bitmap_region: Region,
}

impl PersistentFrameAllocator {
    /// Creates the allocator; `bitmap_region` must be large enough for one
    /// bit per managed frame.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small.
    pub fn new(inner: FrameAllocator, bitmap_region: Region) -> Self {
        let needed = inner.bitmap_words().len() as u64 * 8;
        assert!(bitmap_region.size >= needed, "alloc bitmap region too small: need {needed} bytes");
        PersistentFrameAllocator { inner, bitmap_region }
    }

    fn word_pa(&self, idx: u64) -> PhysAddr {
        self.bitmap_region.base + (idx / 64) * 8
    }

    /// Persists the bitmap word covering `pfn` (write + clwb + fence).
    fn persist_word(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) {
        let idx = self.inner.index_of(pfn);
        let pa = self.word_pa(idx);
        let word = self.inner.bitmap_words()[(idx / 64) as usize];
        mem.write_u64(pa, word);
        mem.clwb(pa);
        mem.sfence();
    }

    /// Allocates one frame, persisting the allocation metadata.
    ///
    /// # Errors
    ///
    /// [`KindleError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self, mem: &mut dyn PhysMem) -> Result<Pfn> {
        let pfn = self.inner.alloc()?;
        self.persist_word(mem, pfn);
        Ok(pfn)
    }

    /// Frees one frame, persisting the allocation metadata.
    ///
    /// # Panics
    ///
    /// Panics on double free (see [`FrameAllocator::free`]).
    pub fn free(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) {
        self.inner.free(pfn);
        self.persist_word(mem, pfn);
    }

    /// Permanently retires a frame, persisting the allocation metadata.
    pub fn retire(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) {
        self.inner.retire(pfn);
        self.persist_word(mem, pfn);
    }

    /// Forces `pfn` to allocated state (recovery bitmap repair), persisting
    /// the repaired word. Returns true if a repair happened.
    pub fn ensure_allocated(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) -> bool {
        let repaired = self.inner.ensure_allocated(pfn);
        if repaired {
            self.persist_word(mem, pfn);
        }
        repaired
    }

    /// Rebuilds in-memory allocation state from the persisted bitmap
    /// (crash recovery). Charges the bitmap reads. Every allocated frame is
    /// re-announced to an installed sanitizer so post-recovery page-table
    /// state can be checked against the recovered frame set.
    pub fn recover(&mut self, mem: &mut dyn PhysMem) {
        let words = self.inner.bitmap_words().len();
        let mut loaded = vec![0u64; words];
        for (i, w) in loaded.iter_mut().enumerate() {
            *w = mem.read_u64(self.bitmap_region.base + i as u64 * 8);
        }
        self.inner.load_bitmap(&loaded);
        for idx in 0..self.inner.count {
            if self.inner.bit(idx) {
                let pfn = self.inner.start + idx;
                sanitize::emit(|| Event::FrameAlloc { pool: self.inner.pool, pfn: pfn.as_u64() });
            }
        }
    }

    /// Access to the wrapped allocator's read-only queries.
    pub fn inner(&self) -> &FrameAllocator {
        &self.inner
    }

    /// Convenience: is this frame allocated?
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        self.inner.is_allocated(pfn)
    }

    /// Frames currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.used()
    }

    /// Frames still available.
    pub fn available(&self) -> u64 {
        self.inner.available()
    }
}

/// The kernel's two pools, bundled so page-table code can allocate table
/// frames from either technology.
#[derive(Clone, Debug)]
pub struct FramePools {
    /// Volatile DRAM pool.
    pub dram: FrameAllocator,
    /// NVM pool with persistent allocation metadata.
    pub nvm: PersistentFrameAllocator,
}

impl FramePools {
    /// Allocates from the pool for `kind`, charging metadata persistence for
    /// NVM.
    ///
    /// # Errors
    ///
    /// [`KindleError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self, mem: &mut dyn PhysMem, kind: kindle_types::MemKind) -> Result<Pfn> {
        match kind {
            kindle_types::MemKind::Dram => self.dram.alloc(),
            kindle_types::MemKind::Nvm => self.nvm.alloc(mem),
        }
    }

    /// Frees into the pool that owns `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` belongs to neither pool, or on double free.
    pub fn free(&mut self, mem: &mut dyn PhysMem, pfn: Pfn) {
        if self.dram.contains(pfn) {
            self.dram.free(pfn);
        } else {
            self.nvm.free(mem, pfn);
        }
    }

    /// Memory kind of the pool owning `pfn`.
    pub fn kind_of(&self, pfn: Pfn) -> Option<kindle_types::MemKind> {
        if self.dram.contains(pfn) {
            Some(kindle_types::MemKind::Dram)
        } else if self.nvm.inner().contains(pfn) {
            Some(kindle_types::MemKind::Nvm)
        } else {
            None
        }
    }
}

/// Charges the timing of reading `n` bitmap words (used by recovery paths
/// that only need the cost, not the data).
pub fn charge_bitmap_scan(mem: &mut dyn PhysMem, region: Region, words: usize) {
    for i in 0..words {
        mem.touch(region.base + i as u64 * 8, AccessKind::Read);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;

    #[test]
    fn alloc_free_cycle() {
        let mut a = FrameAllocator::new("dram", Pfn::new(10), 4);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(a.used(), 2);
        a.free(f1);
        assert_eq!(a.available(), 3);
        let f3 = a.alloc().unwrap();
        assert_eq!(f3, f1, "free stack reuses most recent");
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = FrameAllocator::new("nvm", Pfn::new(0), 2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc().unwrap_err(), KindleError::OutOfMemory { pool: "nvm" });
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new("dram", Pfn::new(0), 2);
        let f = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    fn allocation_bits_track_state() {
        let mut a = FrameAllocator::new("dram", Pfn::new(100), 128);
        let f = a.alloc().unwrap();
        assert!(a.is_allocated(f));
        assert!(!a.is_allocated(f + 1));
        a.free(f);
        assert!(!a.is_allocated(f));
    }

    #[test]
    fn persistent_allocator_survives_recovery() {
        let mut mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0x1000), size: 0x1000 };
        let inner = FrameAllocator::new("nvm", Pfn::new(64), 256);
        let mut a = PersistentFrameAllocator::new(inner, region);

        let f1 = a.alloc(&mut mem).unwrap();
        let f2 = a.alloc(&mut mem).unwrap();
        a.free(&mut mem, f1);

        // Simulate reboot: fresh allocator over the same bitmap region.
        let inner2 = FrameAllocator::new("nvm", Pfn::new(64), 256);
        let mut b = PersistentFrameAllocator::new(inner2, region);
        b.recover(&mut mem);
        assert!(!b.is_allocated(f1), "freed frame must be free after recovery");
        assert!(b.is_allocated(f2), "allocated frame must stay allocated");
        assert_eq!(b.used(), 1);
        // And the recovered allocator never hands out f2 again.
        for _ in 0..255 {
            let f = b.alloc(&mut mem).unwrap();
            assert_ne!(f, f2);
        }
        assert!(b.alloc(&mut mem).is_err());
    }

    #[test]
    fn pools_dispatch_by_kind_and_owner() {
        let mut mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0), size: 0x1000 };
        let mut pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(0), 16),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(1000), 16),
                region,
            ),
        };
        let d = pools.alloc(&mut mem, kindle_types::MemKind::Dram).unwrap();
        let n = pools.alloc(&mut mem, kindle_types::MemKind::Nvm).unwrap();
        assert_eq!(pools.kind_of(d), Some(kindle_types::MemKind::Dram));
        assert_eq!(pools.kind_of(n), Some(kindle_types::MemKind::Nvm));
        assert_eq!(pools.kind_of(Pfn::new(500)), None);
        pools.free(&mut mem, d);
        pools.free(&mut mem, n);
        assert_eq!(pools.dram.used(), 0);
        assert_eq!(pools.nvm.used(), 0);
    }
}
