//! The gemOS-analog kernel of the Kindle framework.
//!
//! This crate reimplements, from scratch, the slice of gemOS that the
//! paper's experiments exercise:
//!
//! * **Physical frame management** — separate DRAM and NVM pools built from
//!   the e820 map; the NVM allocator persists its allocation bitmap into
//!   reserved NVM frames so allocation state survives crashes (§II-A).
//! * **Virtual memory areas** — VMAs tagged DRAM or NVM by the `MAP_NVM`
//!   flag of the extended `mmap` API, with `munmap`/`mremap`/`mprotect`.
//! * **Page tables** — real 4-level x86-64 tables stored *in simulated
//!   physical memory* and manipulated through [`kindle_types::PhysMem`], so
//!   the *rebuild* scheme's DRAM tables and the *persistent* scheme's
//!   NVM-resident, consistency-wrapped tables have exactly the relative
//!   costs the paper measures.
//! * **Processes and system calls** — execution contexts (register file +
//!   VMA list + address space) plus demand paging; every kernel routine
//!   charges an instruction cost and its real memory traffic.
//!
//! # Examples
//!
//! ```
//! use kindle_os::{Kernel, KernelConfig};
//! use kindle_types::physmem::FlatMem;
//! use kindle_types::{MapFlags, Prot};
//!
//! let mut mem = FlatMem::new(64 << 20);
//! let mut k = Kernel::new(KernelConfig::for_test(64 << 20), &mut mem).unwrap();
//! let pid = k.create_process(&mut mem).unwrap();
//! let va = k
//!     .sys_mmap(&mut mem, pid, None, 8192, Prot::RW, MapFlags::NVM)
//!     .unwrap();
//! let pte = k.handle_fault(&mut mem, pid, va, kindle_types::AccessKind::Write).unwrap();
//! assert!(pte.is_present());
//! ```

pub mod costs;
pub mod frame;
pub mod kernel;
pub mod layout;
pub mod meta;
pub mod pagetable;
pub mod process;
pub mod sched;
pub mod scrub;
pub mod vma;

pub use costs::KernelCosts;
pub use frame::{FrameAllocator, FramePools, PersistentFrameAllocator};
pub use kernel::{
    IntegrityOutcome, Kernel, KernelConfig, KernelStats, RetireOutcome, UnmapOutcome,
};
pub use layout::{NvmLayout, Region};
pub use meta::MetaRecord;
pub use pagetable::{AddressSpace, PtMode};
pub use process::{ProcState, Process};
pub use sched::{DaemonKind, KThread, KThreadKind, Scheduler, ThreadState};
pub use scrub::{
    PatrolPassOutcome, PatrolState, PatrolStats, ScrubPassOutcome, ScrubState, ScrubStats,
    PATROL_BATCH_FRAMES,
};
pub use vma::{Vma, VmaList};
