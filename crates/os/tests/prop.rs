//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests: VMA list, frame allocator and page-table invariants
//! checked against simple reference models.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use kindle_os::{
    AddressSpace, FrameAllocator, FramePools, KernelCosts, PersistentFrameAllocator, PtMode,
    Region, Vma, VmaList,
};
use kindle_types::physmem::FlatMem;
use kindle_types::{MemKind, Pfn, PhysAddr, Prot, VirtAddr, PAGE_SIZE};

const P: u64 = PAGE_SIZE as u64;

/// VMA operations we fuzz.
#[derive(Clone, Debug)]
enum VmaOp {
    Insert { start_page: u64, pages: u64 },
    Remove { start_page: u64, pages: u64 },
}

fn vma_ops() -> impl Strategy<Value = Vec<VmaOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, 1u64..16).prop_map(|(s, p)| VmaOp::Insert { start_page: s, pages: p }),
            (0u64..64, 1u64..16).prop_map(|(s, p)| VmaOp::Remove { start_page: s, pages: p }),
        ],
        0..40,
    )
}

proptest! {
    /// The VMA list always stays sorted and non-overlapping, and `find`
    /// agrees with a per-page reference model.
    #[test]
    fn vma_list_matches_page_model(ops in vma_ops()) {
        let mut list = VmaList::new();
        let mut model: HashSet<u64> = HashSet::new(); // mapped page numbers
        for op in ops {
            match op {
                VmaOp::Insert { start_page, pages } => {
                    let vma = Vma {
                        start: VirtAddr::new(start_page * P),
                        end: VirtAddr::new((start_page + pages) * P),
                        prot: Prot::RW,
                        kind: MemKind::Dram,
                    };
                    if list.insert(vma).is_ok() {
                        for p in start_page..start_page + pages {
                            model.insert(p);
                        }
                    }
                }
                VmaOp::Remove { start_page, pages } => {
                    list.remove(
                        VirtAddr::new(start_page * P),
                        VirtAddr::new((start_page + pages) * P),
                    );
                    for p in start_page..start_page + pages {
                        model.remove(&p);
                    }
                }
            }
            // Invariant: sorted & disjoint.
            let vmas: Vec<&Vma> = list.iter().collect();
            for w in vmas.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "vmas overlap or unsorted");
            }
            // find() agrees with the model on every page.
            for p in 0..90u64 {
                prop_assert_eq!(
                    list.find(VirtAddr::new(p * P)).is_some(),
                    model.contains(&p),
                    "page {} disagreement", p
                );
            }
            prop_assert_eq!(list.total_bytes(), model.len() as u64 * P);
        }
    }

    /// The frame allocator never double-allocates and its counters always
    /// balance, under arbitrary alloc/free interleavings.
    #[test]
    fn frame_allocator_never_double_allocates(script in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut a = FrameAllocator::new("dram", Pfn::new(100), 64);
        let mut live: Vec<Pfn> = Vec::new();
        for alloc in script {
            if alloc {
                match a.alloc() {
                    Ok(f) => {
                        prop_assert!(!live.contains(&f), "frame {f} handed out twice");
                        prop_assert!(a.contains(f));
                        live.push(f);
                    }
                    Err(_) => prop_assert_eq!(live.len(), 64, "spurious OOM"),
                }
            } else if let Some(f) = live.pop() {
                a.free(f);
            }
            prop_assert_eq!(a.used(), live.len() as u64);
            prop_assert_eq!(a.available(), 64 - live.len() as u64);
        }
    }

    /// Persistent-allocator recovery reproduces exactly the live set.
    #[test]
    fn persistent_allocator_recovery_is_exact(script in prop::collection::vec(any::<bool>(), 1..120)) {
        let mut mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0x4000), size: 0x1000 };
        let mut a = PersistentFrameAllocator::new(
            FrameAllocator::new("nvm", Pfn::new(32), 64),
            region,
        );
        let mut live: HashSet<Pfn> = HashSet::new();
        for alloc in script {
            if alloc {
                if let Ok(f) = a.alloc(&mut mem) {
                    live.insert(f);
                }
            } else if let Some(&f) = live.iter().next() {
                live.remove(&f);
                a.free(&mut mem, f);
            }
        }
        // "Reboot" and recover.
        let mut b = PersistentFrameAllocator::new(
            FrameAllocator::new("nvm", Pfn::new(32), 64),
            region,
        );
        b.recover(&mut mem);
        prop_assert_eq!(b.used(), live.len() as u64);
        for f in 32..96u64 {
            prop_assert_eq!(b.is_allocated(Pfn::new(f)), live.contains(&Pfn::new(f)));
        }
    }

    /// Page-table map/unmap agrees with a HashMap model: translate returns
    /// exactly the mapped frames, for random sparse layouts in both modes.
    #[test]
    fn page_table_matches_model(
        pages in prop::collection::vec((0u64..1 << 20, 0u64..512), 1..50),
        persistent in any::<bool>(),
    ) {
        let mut mem = FlatMem::new(24 << 20);
        let mut pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(16), 2048),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(3000), 2048),
                Region { base: PhysAddr::new(0x1000), size: 0x1000 },
            ),
        };
        let log = Region { base: PhysAddr::new(0x2000), size: 0x2000 };
        let costs = KernelCosts::for_test();
        let mode = if persistent { PtMode::Persistent } else { PtMode::Rebuild };
        let mut asp = AddressSpace::new(&mut mem, &mut pools, mode, log).unwrap();

        // vpn -> data frame (data frames faked from a disjoint range).
        let mut model: HashMap<u64, Pfn> = HashMap::new();
        for (i, &(vpn_seed, _)) in pages.iter().enumerate() {
            let vpn = vpn_seed | 0x100000; // keep away from null
            let va = VirtAddr::new(vpn * P);
            let frame = Pfn::new(0x200_0000 + i as u64);
            if model.contains_key(&vpn) {
                prop_assert!(asp.map(&mut mem, &mut pools, &costs, va, frame, 0).is_err());
            } else {
                asp.map(&mut mem, &mut pools, &costs, va, frame, 0).unwrap();
                model.insert(vpn, frame);
            }
        }
        prop_assert_eq!(asp.mapped_pages(), model.len() as u64);
        for (&vpn, &frame) in &model {
            let pte = asp.translate(&mut mem, VirtAddr::new(vpn * P));
            prop_assert_eq!(pte.map(|p| p.pfn()), Some(frame));
        }
        // Unmap half; the rest must stay intact and tables reclaim cleanly.
        let keys: Vec<u64> = model.keys().copied().collect();
        for &vpn in keys.iter().step_by(2) {
            let pte = asp.unmap(&mut mem, &mut pools, &costs, VirtAddr::new(vpn * P)).unwrap();
            prop_assert_eq!(pte.pfn(), model.remove(&vpn).unwrap());
        }
        for (&vpn, &frame) in &model {
            let pte = asp.translate(&mut mem, VirtAddr::new(vpn * P));
            prop_assert_eq!(pte.map(|p| p.pfn()), Some(frame), "survivor vpn {:#x}", vpn);
        }
        // for_each_leaf enumerates exactly the model.
        let mut seen = HashMap::new();
        asp.for_each_leaf(&mut mem, |_, vpn, pte, _| {
            seen.insert(vpn.as_u64(), pte.pfn());
        });
        prop_assert_eq!(seen, model);
    }
}
