//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the memory controller's data and durability planes.

use proptest::prelude::*;

use kindle_mem::{MemConfig, MemoryController};
use kindle_types::{MemKind, PhysAddr};

fn mc() -> (MemoryController, u64) {
    let cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
    let nvm_base = cfg.layout.range(MemKind::Nvm).base.as_u64();
    (MemoryController::new(&cfg), nvm_base)
}

proptest! {
    /// Arbitrary stores at arbitrary offsets/lengths always read back.
    #[test]
    fn stores_read_back(
        writes in prop::collection::vec((0u64..(8 << 20), prop::collection::vec(any::<u8>(), 1..200)), 1..20)
    ) {
        let (mut m, _) = mc();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (off, data) in &writes {
            m.store_bytes(PhysAddr::new(*off), data);
            for (i, b) in data.iter().enumerate() {
                model.insert(off + i as u64, *b);
            }
        }
        for (&addr, &expect) in &model {
            let mut buf = [0u8; 1];
            m.load_bytes(PhysAddr::new(addr), &mut buf);
            prop_assert_eq!(buf[0], expect, "byte at {:#x}", addr);
        }
    }

    /// Crash semantics: committed NVM lines keep their committed value,
    /// uncommitted lines revert to it, DRAM is wiped — for arbitrary
    /// interleavings of stores and commits.
    #[test]
    fn crash_durability_is_exact(
        ops in prop::collection::vec((0u64..256, any::<u8>(), any::<bool>()), 1..120)
    ) {
        let (mut m, nvm_base) = mc();
        // durable[line] and volatile[line] per-line values (one byte used).
        let mut durable = std::collections::HashMap::<u64, u8>::new();
        let mut volatile = std::collections::HashMap::<u64, u8>::new();
        for (line, value, commit) in ops {
            let pa = PhysAddr::new(nvm_base + line * 64);
            m.store_bytes(pa, &[value]);
            volatile.insert(line, value);
            if commit {
                m.commit_line(pa);
                durable.insert(line, value);
            }
            // DRAM side store too.
            m.store_bytes(PhysAddr::new(line * 64), &[value]);
        }
        m.crash();
        for line in 0..256u64 {
            let mut buf = [0u8; 1];
            m.load_bytes(PhysAddr::new(nvm_base + line * 64), &mut buf);
            prop_assert_eq!(
                buf[0],
                durable.get(&line).copied().unwrap_or(0),
                "nvm line {} after crash", line
            );
            m.load_bytes(PhysAddr::new(line * 64), &mut buf);
            prop_assert_eq!(buf[0], 0, "dram line {} must be wiped", line);
        }
        let _ = volatile;
    }

    /// The e820 map classifies every address into exactly one range.
    #[test]
    fn layout_dispatch_total(addr in 0u64..(32 << 20)) {
        let (m, nvm_base) = mc();
        let kind = m.kind_of(PhysAddr::new(addr)).unwrap();
        if addr < nvm_base {
            prop_assert_eq!(kind, MemKind::Dram);
        } else {
            prop_assert_eq!(kind, MemKind::Nvm);
        }
    }
}
