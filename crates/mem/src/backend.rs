//! Pluggable far-tier memory backends.
//!
//! The controller's far tier used to be hard-wired to PCM: `NvmConfig`
//! carried data-only technology presets, and wear/ECP/patrol machinery
//! was armed unconditionally whenever a fault config was present. The
//! [`MemoryBackend`] trait makes the far tier's *semantics* pluggable —
//! timing shape, endurance/wear behavior, fault-model participation,
//! patrol capability, and any per-access interconnect penalty — so PCM
//! becomes one instance among several instead of a baked-in assumption.
//!
//! The contract (DESIGN.md §17, abridged):
//!
//! - [`MemoryBackend::timing`] fully determines device timing *and* drain
//!   behavior: the controller derives the banked drain gap from
//!   `write_service_ns / write_banks` exactly as before, so a backend
//!   shapes drains purely through its returned [`NvmConfig`].
//! - [`MemoryBackend::fault_model`] filters the user's requested
//!   [`MediaFaultConfig`] into what the backend physically supports.
//!   STT-RAM zeroes `wear_limit` (effectively unlimited endurance, so
//!   wear-out/retirement no-op through the existing `wear_limit == 0`
//!   fast path rather than scattered `if`s); DRAM-class backends (NUMA,
//!   CXL) drop the model entirely — ordinary DRAM has no NVM media
//!   faults to inject.
//! - [`MemoryBackend::patrol_capable`] gates checksum patrol / ECP
//!   machinery. Backends without it report every patrol frame `Clean`
//!   by contract, not by accident.
//! - [`MemoryBackend::access_penalty_ns`] is an additive per-access
//!   interconnect cost (CXL link + controller). Zero for everything
//!   that sits on the memory bus directly.
//!
//! The PCM instance is observation-equivalent to the pre-trait direct
//! path: identity fault model, zero penalty, patrol enabled, and the
//! controller keeps honouring `MemConfig::nvm` verbatim for PCM so
//! existing timing overrides (`with_nvm_technology`-style) still work.

use crate::config::{MediaFaultConfig, NvmConfig};

/// Behavioral contract for a far-tier memory technology.
///
/// Implementations are stateless unit-ish structs; the controller holds a
/// `&'static dyn MemoryBackend` resolved from [`Backend::instance`] and
/// consults it once at construction time (timing, fault filter, patrol
/// capability) plus per-access for the interconnect penalty, which it
/// precomputes into [`kindle_types::Cycles`].
pub trait MemoryBackend: Send + Sync {
    /// Registry key (`pcm`, `numa`, `sttram`, ...), accepted by
    /// [`Backend::from_name`] and echoed in bench JSON envelopes.
    fn name(&self) -> &'static str;

    /// Human-facing display label (`PCM`, `NUMA-remote-DRAM`, ...).
    fn label(&self) -> &'static str;

    /// Device timing for the far tier, including the write-buffer
    /// geometry the drain gap is derived from.
    fn timing(&self) -> NvmConfig;

    /// Whether the media wears out under writes. Informational (the
    /// operative no-op path is `fault_model` zeroing `wear_limit`).
    fn endurance_limited(&self) -> bool;

    /// Filters a requested fault model down to what this technology
    /// physically supports. Identity for PCM-class media; `None` for
    /// DRAM-class far tiers.
    fn fault_model(&self, requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig>;

    /// Whether checksummed patrol scrub / ECP correction applies.
    fn patrol_capable(&self) -> bool;

    /// Additive per-access interconnect latency in ns (link + far
    /// controller). Zero for bus-attached tiers.
    fn access_penalty_ns(&self, _write: bool) -> u64 {
        0
    }

    /// Whether this backend is a named NVM technology preset (drives the
    /// `nvm_tech` comparison sweep; DRAM-class emulation tiers opt out).
    fn is_nvm_technology(&self) -> bool;

    /// Effective array read latency in ns (timing plus interconnect) —
    /// the KD013-clean way for reporting code to show latency shape.
    fn read_latency_ns(&self) -> u64 {
        self.timing().read_ns + self.access_penalty_ns(false)
    }

    /// Effective cell-write service latency in ns (timing plus
    /// interconnect).
    fn write_latency_ns(&self) -> u64 {
        self.timing().write_service_ns + self.access_penalty_ns(true)
    }

    /// Write-buffer entries, for reporting code.
    fn write_buffer_entries(&self) -> usize {
        self.timing().write_buffer
    }

    /// Read-buffer entries, for reporting code.
    fn read_buffer_entries(&self) -> usize {
        self.timing().read_buffer
    }
}

/// Phase-change memory — the paper's Table I default. Identity fault
/// model, patrol-capable, no interconnect penalty: byte-identical to the
/// pre-trait direct path.
pub struct PcmBackend;

impl MemoryBackend for PcmBackend {
    fn name(&self) -> &'static str {
        "pcm"
    }
    fn label(&self) -> &'static str {
        "PCM"
    }
    fn timing(&self) -> NvmConfig {
        NvmConfig::pcm()
    }
    fn endurance_limited(&self) -> bool {
        true
    }
    fn fault_model(&self, requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        requested
    }
    fn patrol_capable(&self) -> bool {
        true
    }
    fn is_nvm_technology(&self) -> bool {
        true
    }
}

/// STT-MRAM (HOPE-style): near-DRAM reads, fast asymmetric writes, and
/// effectively unlimited endurance — the fault filter zeroes
/// `wear_limit`, so wear-out, retries and frame retirement cleanly
/// no-op while manufacturing stuck-at cells and ECP/patrol still apply.
pub struct SttRamBackend;

impl MemoryBackend for SttRamBackend {
    fn name(&self) -> &'static str {
        "sttram"
    }
    fn label(&self) -> &'static str {
        "STT-MRAM"
    }
    fn timing(&self) -> NvmConfig {
        NvmConfig::stt_mram()
    }
    fn endurance_limited(&self) -> bool {
        false
    }
    fn fault_model(&self, requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        requested.map(|f| MediaFaultConfig { wear_limit: 0, ..f })
    }
    fn patrol_capable(&self) -> bool {
        true
    }
    fn is_nvm_technology(&self) -> bool {
        true
    }
}

/// ReRAM: between PCM and STT-MRAM on both paths, PCM-like fault
/// semantics.
pub struct ReRamBackend;

impl MemoryBackend for ReRamBackend {
    fn name(&self) -> &'static str {
        "reram"
    }
    fn label(&self) -> &'static str {
        "ReRAM"
    }
    fn timing(&self) -> NvmConfig {
        NvmConfig::reram()
    }
    fn endurance_limited(&self) -> bool {
        true
    }
    fn fault_model(&self, requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        requested
    }
    fn patrol_capable(&self) -> bool {
        true
    }
    fn is_nvm_technology(&self) -> bool {
        true
    }
}

/// Optane-DC-like: slow loaded reads, writes absorbed by a large on-DIMM
/// buffer, PCM-like fault semantics.
pub struct OptaneDcBackend;

impl MemoryBackend for OptaneDcBackend {
    fn name(&self) -> &'static str {
        "optane"
    }
    fn label(&self) -> &'static str {
        "Optane-DC"
    }
    fn timing(&self) -> NvmConfig {
        NvmConfig::optane_dc()
    }
    fn endurance_limited(&self) -> bool {
        true
    }
    fn fault_model(&self, requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        requested
    }
    fn patrol_capable(&self) -> bool {
        true
    }
    fn is_nvm_technology(&self) -> bool {
        true
    }
}

/// NUMA-remote-DRAM emulation: the far tier is ordinary DRAM on a remote
/// socket, following the NUMA-emulation methodology — symmetric
/// latencies of local DRAM plus one interconnect hop, and *no* NVM
/// media machinery at all (no wear, no stuck cells, no ECP, no patrol).
pub struct NumaBackend;

impl MemoryBackend for NumaBackend {
    fn name(&self) -> &'static str {
        "numa"
    }
    fn label(&self) -> &'static str {
        "NUMA-remote-DRAM"
    }
    fn timing(&self) -> NvmConfig {
        // Remote-socket DRAM: local row-miss (~50 ns) plus one QPI/UPI
        // hop (~80 ns), symmetric for reads and writes. DRAM has a bank
        // per channel group draining writes as fast as reads, so the
        // drain gap collapses to write_service_ns / banks.
        NvmConfig {
            read_ns: 130,
            write_service_ns: 130,
            write_buffer: 48,
            write_banks: 16,
            read_buffer: 64,
            buffer_insert_ns: 10,
            forward_ns: 30,
        }
    }
    fn endurance_limited(&self) -> bool {
        false
    }
    fn fault_model(&self, _requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        None
    }
    fn patrol_capable(&self) -> bool {
        false
    }
    fn is_nvm_technology(&self) -> bool {
        false
    }
}

/// CXL-like far tier: load/store-coherent DRAM behind a CXL link. Media
/// timing is DRAM-class; every access additionally pays link + far-side
/// controller latency; a bandwidth-degradation knob divides the
/// effective drain banks to model a congested or narrower link.
pub struct CxlBackend {
    /// Bandwidth-degradation factor: effective write banks are
    /// `base_banks / degrade` (min 1), so a higher factor widens the
    /// banked drain gap proportionally.
    degrade: u32,
}

/// CXL round-trip interconnect cost per access, in ns (link flits both
/// directions plus the far-side controller), on top of the media access.
const CXL_LINK_NS: u64 = 45;
const CXL_CONTROLLER_NS: u64 = 25;

impl CxlBackend {
    /// Undegraded link geometry.
    const BASE_WRITE_BANKS: usize = 16;

    /// A CXL far tier whose write bandwidth is divided by `degrade`
    /// (clamped to at least 1).
    pub const fn with_degradation(degrade: u32) -> Self {
        CxlBackend { degrade }
    }
}

impl MemoryBackend for CxlBackend {
    fn name(&self) -> &'static str {
        "cxl"
    }
    fn label(&self) -> &'static str {
        "CXL-far-DRAM"
    }
    fn timing(&self) -> NvmConfig {
        NvmConfig {
            read_ns: 85,
            write_service_ns: 85,
            write_buffer: 48,
            write_banks: (Self::BASE_WRITE_BANKS / (self.degrade.max(1) as usize)).max(1),
            read_buffer: 64,
            buffer_insert_ns: 10,
            forward_ns: 30,
        }
    }
    fn endurance_limited(&self) -> bool {
        false
    }
    fn fault_model(&self, _requested: Option<MediaFaultConfig>) -> Option<MediaFaultConfig> {
        None
    }
    fn patrol_capable(&self) -> bool {
        false
    }
    fn access_penalty_ns(&self, _write: bool) -> u64 {
        CXL_LINK_NS + CXL_CONTROLLER_NS
    }
    fn is_nvm_technology(&self) -> bool {
        false
    }
}

static PCM: PcmBackend = PcmBackend;
static NUMA: NumaBackend = NumaBackend;
static STTRAM: SttRamBackend = SttRamBackend;
static CXL: CxlBackend = CxlBackend::with_degradation(1);
static RERAM: ReRamBackend = ReRamBackend;
static OPTANE: OptaneDcBackend = OptaneDcBackend;

/// Every registered backend, in registry order. The NVM-technology
/// subset preserves the historical `NvmConfig::technologies()` order
/// (PCM, STT-MRAM, ReRAM, Optane-DC).
const REGISTRY: &[Backend] = &[
    Backend::Pcm,
    Backend::Numa,
    Backend::SttRam,
    Backend::Cxl,
    Backend::ReRam,
    Backend::OptaneDc,
];

/// A registered far-tier backend. This is the value that travels through
/// configs, snapshots and thread-locals; the behavior lives in the
/// `&'static dyn MemoryBackend` it resolves to via [`Backend::instance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Backend {
    /// Phase-change memory (the default; Table I timings).
    Pcm,
    /// NUMA-remote-DRAM emulation (no media-fault machinery).
    Numa,
    /// STT-MRAM (unlimited endurance; wear paths no-op).
    SttRam,
    /// CXL-attached far DRAM (link + controller penalty per access).
    Cxl,
    /// ReRAM (PCM-like semantics, intermediate timings).
    ReRam,
    /// Optane-DC-like (PCM-like semantics, buffered writes).
    OptaneDc,
}

impl Backend {
    /// All registered backends, in a stable order.
    pub fn registry() -> &'static [Backend] {
        REGISTRY
    }

    /// Resolves a registry key (as accepted by `--backend`).
    pub fn from_name(name: &str) -> Option<Backend> {
        REGISTRY.iter().copied().find(|b| b.name() == name)
    }

    /// The backend's registry key.
    pub fn name(self) -> &'static str {
        self.instance().name()
    }

    /// The behavioral instance behind this registry entry.
    pub fn instance(self) -> &'static dyn MemoryBackend {
        match self {
            Backend::Pcm => &PCM,
            Backend::Numa => &NUMA,
            Backend::SttRam => &STTRAM,
            Backend::Cxl => &CXL,
            Backend::ReRam => &RERAM,
            Backend::OptaneDc => &OPTANE,
        }
    }

    /// Registry keys, comma-separated — for usage/error lines.
    pub fn names() -> String {
        let keys: Vec<&str> = REGISTRY.iter().map(|b| b.name()).collect();
        keys.join(", ")
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Pcm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrips_names() {
        for &b in Backend::registry() {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(b.instance().name(), b.name());
        }
        assert_eq!(Backend::from_name("flash"), None);
        assert!(Backend::names().contains("pcm"));
    }

    #[test]
    fn technologies_are_the_registry_nvm_subset() {
        let techs = NvmConfig::technologies();
        let from_registry: Vec<(&'static str, NvmConfig)> = Backend::registry()
            .iter()
            .map(|b| b.instance())
            .filter(|i| i.is_nvm_technology())
            .map(|i| (i.label(), i.timing()))
            .collect();
        assert_eq!(techs, from_registry);
        let labels: Vec<&str> = techs.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["PCM", "STT-MRAM", "ReRAM", "Optane-DC"]);
    }

    #[test]
    fn pcm_is_the_identity_backend() {
        let pcm = Backend::Pcm.instance();
        assert_eq!(pcm.timing(), NvmConfig::pcm());
        assert_eq!(pcm.access_penalty_ns(false), 0);
        assert_eq!(pcm.access_penalty_ns(true), 0);
        assert!(pcm.patrol_capable());
        let req = Some(MediaFaultConfig::with_seed(9));
        assert_eq!(pcm.fault_model(req), req);
    }

    #[test]
    fn sttram_fault_model_zeroes_wear_only() {
        let req = MediaFaultConfig { stuck_cells: 7, ..MediaFaultConfig::with_seed(3) };
        let got = Backend::SttRam.instance().fault_model(Some(req)).unwrap();
        assert_eq!(got.wear_limit, 0);
        assert_eq!(got.stuck_cells, 7);
        assert_eq!(got.seed, 3);
        assert!(!Backend::SttRam.instance().endurance_limited());
    }

    #[test]
    fn dram_class_backends_drop_fault_model_and_patrol() {
        for b in [Backend::Numa, Backend::Cxl] {
            let i = b.instance();
            assert_eq!(i.fault_model(Some(MediaFaultConfig::with_seed(1))), None);
            assert!(!i.patrol_capable());
            assert!(!i.endurance_limited());
            assert!(!i.is_nvm_technology());
        }
    }

    #[test]
    fn cxl_penalty_and_degradation_shape_the_link() {
        let cxl = Backend::Cxl.instance();
        assert_eq!(cxl.access_penalty_ns(false), CXL_LINK_NS + CXL_CONTROLLER_NS);
        assert_eq!(cxl.read_latency_ns(), 85 + CXL_LINK_NS + CXL_CONTROLLER_NS);

        let full = CxlBackend::with_degradation(1).timing();
        let quarter = CxlBackend::with_degradation(4).timing();
        assert_eq!(quarter.write_banks * 4, full.write_banks);
        // A narrower link widens the banked drain gap proportionally.
        let gap = |t: &NvmConfig| (t.write_service_ns / t.write_banks.max(1) as u64).max(1);
        assert!(gap(&quarter) > gap(&full));
    }
}
