//! DDR4 DRAM timing model with per-bank open rows.

use kindle_types::{AccessKind, Cycles, PhysAddr};

use crate::config::DramConfig;

/// Per-device DRAM statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to activate a new row.
    pub row_misses: u64,
    /// Total reads serviced.
    pub reads: u64,
    /// Total writes serviced.
    pub writes: u64,
    /// Total cycles spent servicing accesses.
    pub busy_cycles: Cycles,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// A DRAM device: banks with open-row tracking, flat latency otherwise.
///
/// The model captures the first-order DDR behaviour that matters to the
/// paper's experiments: accesses with spatial locality (sequential page
/// touches, page-table walks within one table) hit the open row and are
/// roughly 2x faster than random accesses.
#[derive(Clone, Debug)]
pub struct DramDevice {
    cfg: DramConfig,
    /// Open row id per bank (`None` = closed/powered down).
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl DramDevice {
    /// Creates a device with all rows closed.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = cfg.banks.max(1);
        DramDevice { cfg, open_rows: vec![None; banks], stats: DramStats::default() }
    }

    /// Services one cache-line access and returns its latency.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, _now: Cycles) -> Cycles {
        let row = pa.as_u64() / self.cfg.row_bytes;
        let bank = (row as usize) % self.open_rows.len();
        let hit = self.open_rows[bank] == Some(row);
        let lat = if hit {
            self.stats.row_hits += 1;
            Cycles::from_nanos(self.cfg.row_hit_ns)
        } else {
            self.stats.row_misses += 1;
            self.open_rows[bank] = Some(row);
            Cycles::from_nanos(self.cfg.row_miss_ns)
        };
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.busy_cycles += lat;
        lat
    }

    /// Device statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Power-cycle: close all rows and clear stats (contents are handled by
    /// the controller's data image).
    pub fn reset(&mut self) {
        for r in &mut self.open_rows {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DramConfig::default())
    }

    #[test]
    fn sequential_hits_open_row() {
        let mut d = dev();
        let first = d.access(PhysAddr::new(0), AccessKind::Read, Cycles::ZERO);
        let second = d.access(PhysAddr::new(64), AccessKind::Read, Cycles::ZERO);
        assert!(first > second, "first access opens the row, second hits it");
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn far_accesses_conflict_in_same_bank() {
        let mut d = dev();
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks as u64; // same bank, different row
        d.access(PhysAddr::new(0), AccessKind::Read, Cycles::ZERO);
        let lat = d.access(PhysAddr::new(stride), AccessKind::Read, Cycles::ZERO);
        assert_eq!(lat, Cycles::from_nanos(cfg.row_miss_ns));
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn reads_and_writes_counted() {
        let mut d = dev();
        d.access(PhysAddr::new(0), AccessKind::Read, Cycles::ZERO);
        d.access(PhysAddr::new(0), AccessKind::Write, Cycles::ZERO);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert!(d.stats().hit_rate() > 0.0);
    }

    #[test]
    fn reset_closes_rows() {
        let mut d = dev();
        d.access(PhysAddr::new(0), AccessKind::Read, Cycles::ZERO);
        d.reset();
        let lat = d.access(PhysAddr::new(0), AccessKind::Read, Cycles::ZERO);
        assert_eq!(lat, Cycles::from_nanos(DramConfig::default().row_miss_ns));
    }
}
