//! e820-style BIOS memory map.
//!
//! Kindle partitions the physical address range between NVM and DRAM and
//! inserts corresponding entries in the (simulated) BIOS memory map, which
//! the OS reads at boot to set up its frame allocators.

use kindle_types::{KindleError, MemKind, PhysAddr, Result, PAGE_SIZE};

/// One contiguous physical range and its backing technology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct E820Entry {
    /// First physical address of the range.
    pub base: PhysAddr,
    /// Size of the range in bytes.
    pub size: u64,
    /// Backing memory technology.
    pub kind: MemKind,
}

impl E820Entry {
    /// One-past-the-end address.
    pub fn end(&self) -> PhysAddr {
        self.base + self.size
    }

    /// True if `pa` lies inside this range.
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa >= self.base && pa < self.end()
    }

    /// Number of whole page frames in the range.
    pub fn frames(&self) -> u64 {
        self.size / PAGE_SIZE as u64
    }
}

/// The BIOS memory map: an ordered list of non-overlapping ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct E820Map {
    entries: Vec<E820Entry>,
}

impl E820Map {
    /// Builds a map from explicit entries.
    ///
    /// # Panics
    ///
    /// Panics if entries overlap, are unsorted, or are not page aligned.
    pub fn new(entries: Vec<E820Entry>) -> Self {
        let mut prev_end = 0u64;
        for e in &entries {
            assert!(e.base.is_page_aligned(), "e820 entry base must be page aligned");
            assert_eq!(e.size % PAGE_SIZE as u64, 0, "e820 entry size must be page aligned");
            assert!(e.base.as_u64() >= prev_end, "e820 entries must be sorted and disjoint");
            prev_end = e.end().as_u64();
        }
        E820Map { entries }
    }

    /// The flat layout Kindle uses: DRAM at `[0, dram)`, NVM right after.
    pub fn flat(dram_bytes: u64, nvm_bytes: u64) -> Self {
        E820Map::new(vec![
            E820Entry { base: PhysAddr::new(0), size: dram_bytes, kind: MemKind::Dram },
            E820Entry { base: PhysAddr::new(dram_bytes), size: nvm_bytes, kind: MemKind::Nvm },
        ])
    }

    /// All entries, sorted by base address.
    pub fn entries(&self) -> &[E820Entry] {
        &self.entries
    }

    /// Backing kind of a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`KindleError::BadPhysAddr`] if `pa` is outside every range.
    pub fn kind_of(&self, pa: PhysAddr) -> Result<MemKind> {
        self.entries
            .iter()
            .find(|e| e.contains(pa))
            .map(|e| e.kind)
            .ok_or(KindleError::BadPhysAddr(pa))
    }

    /// The first (and in the flat layout, only) range of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if no range of `kind` exists.
    pub fn range(&self, kind: MemKind) -> E820Entry {
        *self
            .entries
            .iter()
            .find(|e| e.kind == kind)
            .expect("memory map must contain the requested kind")
    }

    /// Total bytes of `kind` memory.
    pub fn total(&self, kind: MemKind) -> u64 {
        self.entries.iter().filter(|e| e.kind == kind).map(|e| e.size).sum()
    }

    /// One past the highest mapped physical address.
    pub fn end(&self) -> PhysAddr {
        self.entries.last().map(|e| e.end()).unwrap_or(PhysAddr::new(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_layout_dispatch() {
        let m = E820Map::flat(3 << 30, 2 << 30);
        assert_eq!(m.kind_of(PhysAddr::new(0)).unwrap(), MemKind::Dram);
        assert_eq!(m.kind_of(PhysAddr::new((3 << 30) - 1)).unwrap(), MemKind::Dram);
        assert_eq!(m.kind_of(PhysAddr::new(3 << 30)).unwrap(), MemKind::Nvm);
        assert_eq!(m.kind_of(PhysAddr::new((5u64 << 30) - 1)).unwrap(), MemKind::Nvm);
        assert!(m.kind_of(PhysAddr::new(5 << 30)).is_err());
    }

    #[test]
    fn totals_and_frames() {
        let m = E820Map::flat(1 << 30, 1 << 29);
        assert_eq!(m.total(MemKind::Dram), 1 << 30);
        assert_eq!(m.total(MemKind::Nvm), 1 << 29);
        assert_eq!(m.range(MemKind::Nvm).frames(), (1 << 29) / 4096);
        assert_eq!(m.end().as_u64(), (1 << 30) + (1 << 29));
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn rejects_overlap() {
        E820Map::new(vec![
            E820Entry { base: PhysAddr::new(0), size: 8192, kind: MemKind::Dram },
            E820Entry { base: PhysAddr::new(4096), size: 8192, kind: MemKind::Nvm },
        ]);
    }
}
