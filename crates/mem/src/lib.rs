//! Memory substrate for the Kindle framework.
//!
//! Models the hybrid physical memory of the paper's gem5 configuration
//! (Table I): a DDR4-2400 DRAM device with per-bank open rows, a PCM NVM
//! device with asymmetric read/write latency and a 48-entry write buffer /
//! 64-entry read buffer, an e820-style physical memory map that partitions
//! the physical address space between the two, and a memory controller that
//! dispatches accesses and owns the backing data image with crash-durability
//! semantics (NVM lines only become durable once written back).
//!
//! # Examples
//!
//! ```
//! use kindle_mem::{MemConfig, MemoryController};
//! use kindle_types::{AccessKind, Cycles, MemKind};
//!
//! let cfg = MemConfig::default(); // 3 GB DRAM + 2 GB NVM, Table I timings
//! let mut mc = MemoryController::new(&cfg);
//! let nvm_pa = cfg.layout.range(MemKind::Nvm).base;
//! let lat = mc.access(nvm_pa, AccessKind::Read, Cycles::ZERO);
//! assert!(lat > Cycles::ZERO);
//! ```

pub mod backend;
pub mod config;
pub mod controller;
pub mod dram;
pub mod e820;
pub mod legacy;
pub mod nvm;
pub mod stats;
pub mod store;

pub use backend::{
    Backend, CxlBackend, MemoryBackend, NumaBackend, OptaneDcBackend, PcmBackend, ReRamBackend,
    SttRamBackend,
};
pub use config::{DramConfig, MediaFaultConfig, MemConfig, NvmConfig};
pub use controller::{MemoryController, PatrolOutcome, PowerSwitch};
pub use dram::DramDevice;
pub use e820::{E820Entry, E820Map};
pub use nvm::{
    CorrectionOutcome, MediaFaults, MediaStats, NvmDevice, WriteOutcome, CELLS_PER_LINE,
};
pub use stats::MemStats;
