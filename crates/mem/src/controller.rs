//! The memory controller: dispatch, data image, and crash durability.
//!
//! The controller owns two things:
//!
//! 1. **Timing**: it routes each cache-line access to the DRAM or NVM device
//!    model according to the e820 layout and returns the latency.
//! 2. **Data**: a sparse byte image of physical memory. Stores land in the
//!    *volatile* image immediately (that is what subsequent loads see — it
//!    stands in for data sitting in caches or memory). For NVM addresses the
//!    controller snapshots the previous durable value of a line the first
//!    time it is dirtied; [`commit_line`](MemoryController::commit_line)
//!    (called on cache write-back or `clwb`) promotes the volatile value to
//!    durable. On [`crash`](MemoryController::crash), un-committed NVM lines
//!    revert and all DRAM contents are wiped — exactly the semantics the
//!    paper's process-persistence machinery must survive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kindle_types::rng::Rng64;
use kindle_types::sanitize::{self, Event};
use kindle_types::{
    checksum64, AccessKind, Cycles, MemKind, PhysAddr, Result, PAGE_SHIFT, PAGE_SIZE,
};

use crate::backend::Backend;
use crate::config::MemConfig;
use crate::dram::DramDevice;
use crate::e820::E820Map;
use crate::nvm::{CorrectionOutcome, MediaFaults, NvmDevice, WriteOutcome};
use crate::stats::MemStats;
use crate::store::{FrameSet, PageBox, PageStore, SumStore, UndoStore};

/// Shared power-cut flag connecting a fault-injection trigger to an armed
/// controller. Once [`cut`](PowerSwitch::cut) is called, the controller
/// stops making anything durable: the simulation may keep executing (the
/// "doomed" post-cut instructions), but none of its write-backs reach
/// media, so the eventual [`MemoryController::crash_torn`] reverts state to
/// exactly the cut instant.
#[derive(Clone, Debug, Default)]
pub struct PowerSwitch(Arc<AtomicBool>);

impl PowerSwitch {
    /// Creates a switch with power on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cuts power.
    pub fn cut(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once power has been cut.
    pub fn is_cut(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Restores power (after the post-crash reboot).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// Outcome of one [`MemoryController::patrol_frame`] read-verify pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatrolOutcome {
    /// Every checksummed line of the frame verified.
    Clean,
    /// Mismatched lines were all reconstructed in place.
    Healed {
        /// Number of lines healed.
        lines: u32,
    },
    /// At least one mismatched line could not be reconstructed; the frame
    /// must leave service (retire, or poison its mappings).
    Uncorrectable {
        /// The unhealable line-base addresses (healed lines, if any, were
        /// still fixed).
        lines: Vec<u64>,
    },
}

/// Hybrid DRAM + NVM memory controller. See the module docs.
#[derive(Clone, Debug)]
pub struct MemoryController {
    layout: E820Map,
    dram: DramDevice,
    nvm: NvmDevice,
    /// Sparse volatile image: what loads observe. Pfn-indexed flat arena
    /// by default, the legacy ordered map under `MemConfig::legacy_maps`.
    pages: PageStore,
    /// Single-entry MRU page cache: the one page most recently touched,
    /// held *out* of `pages` so the common same-page-as-last-access case
    /// skips the store lookup entirely. Disjoint from `pages` by
    /// construction; [`flush_mru`](Self::flush_mru) reunites them before
    /// any whole-image operation.
    mru: Option<(u64, PageBox)>,
    /// MRU cache enabled (config; off only for equivalence testing).
    mru_enabled: bool,
    /// Durable snapshots for dirtied-but-not-committed NVM lines, keyed by
    /// line base address.
    nvm_undo: UndoStore,
    /// When power-cut injection is armed: the previous *durable* value of
    /// each line committed into the device write buffer and not yet
    /// drained. A power cut tears or drops these per the buffer state.
    wbuf_undo: UndoStore,
    /// Power-cut arming (None = classic ADR semantics: committed == durable).
    power: Option<PowerSwitch>,
    /// Device-pending lines captured at the instant the power cut was first
    /// observed; `Some` also means "power is off, freeze all durability".
    cut_pending: Option<Vec<u64>>,
    /// Most recent access time seen (used to age the write buffer when an
    /// operation carries no explicit `now`).
    last_now: Cycles,
    /// NVM media-fault model (wear-out, stuck cells), when configured.
    media: Option<MediaFaults>,
    /// Reference checksum per NVM data line, keyed by line base address.
    /// Recorded at store time over the *intended* bytes (before stuck
    /// cells force their values into the image), so a mismatch on a later
    /// read-verify means the stored copy no longer holds what was written.
    /// Maintained only while a media-fault model is armed; like ECP
    /// metadata it lives with the media and survives crashes.
    nvm_sums: SumStore,
    /// Frames whose NVM writes exhausted their retries, pending OS
    /// retirement; `failed_set` dedupes repeat offenders.
    failed_frames: Vec<u64>,
    failed_set: FrameSet,
    retry_limit: u32,
    retry_backoff: Cycles,
    write_service: Cycles,
    /// Far-tier backend identity; its instance supplied the timing, the
    /// fault filter and the penalties below at construction time.
    backend: Backend,
    /// Per-access interconnect penalties (CXL link + far controller),
    /// precomputed from the backend. `ZERO` for bus-attached tiers.
    read_penalty: Cycles,
    write_penalty: Cycles,
    /// Whether the backend participates in checksum patrol / ECP; when
    /// false, `patrol_frame` reports `Clean` by contract.
    patrol_capable: bool,
    nvm_lines_committed: u64,
    nvm_lines_lost_on_crash: u64,
    nvm_lines_torn_on_crash: u64,
    nvm_write_retries: u64,
    nvm_frames_failed: u64,
    crashes: u64,
}

impl MemoryController {
    /// Creates a controller for the given configuration, with all memory
    /// reading as zero.
    ///
    /// The far tier's semantics come from `cfg.backend` (PCM when unset):
    /// device timing is the backend's — except for PCM, which keeps
    /// honouring `cfg.nvm` verbatim so explicit timing overrides and the
    /// pre-trait path stay byte-identical — and the requested fault model
    /// is filtered through [`crate::backend::MemoryBackend::fault_model`]
    /// before arming.
    pub fn new(cfg: &MemConfig) -> Self {
        let backend = cfg.backend.unwrap_or(Backend::Pcm);
        let bi = backend.instance();
        let nvm_cfg = if backend == Backend::Pcm { cfg.nvm.clone() } else { bi.timing() };
        let faults = bi.fault_model(cfg.faults);
        let media = faults.as_ref().map(|f| {
            let nvm = cfg.layout.range(MemKind::Nvm);
            MediaFaults::new(*f, nvm.base.as_u64(), nvm.size)
        });
        let nvm_base = cfg.layout.range(MemKind::Nvm).base.as_u64();
        let frames = cfg.layout.end().as_u64() >> PAGE_SHIFT;
        MemoryController {
            layout: cfg.layout.clone(),
            dram: DramDevice::new(cfg.dram.clone()),
            nvm: NvmDevice::new(nvm_cfg.clone()),
            pages: PageStore::new(cfg.legacy_maps, frames),
            mru: None,
            mru_enabled: cfg.mru_page_cache,
            nvm_undo: UndoStore::new(cfg.legacy_maps, nvm_base),
            wbuf_undo: UndoStore::new(cfg.legacy_maps, nvm_base),
            power: None,
            cut_pending: None,
            last_now: Cycles::ZERO,
            media,
            nvm_sums: SumStore::new(cfg.legacy_maps, nvm_base),
            failed_frames: Vec::new(),
            failed_set: FrameSet::with_base(nvm_base >> PAGE_SHIFT),
            retry_limit: faults.as_ref().map_or(0, |f| f.retry_limit),
            retry_backoff: Cycles::from_nanos(faults.as_ref().map_or(0, |f| f.retry_backoff_ns)),
            write_service: Cycles::from_nanos(nvm_cfg.write_service_ns),
            backend,
            read_penalty: Cycles::from_nanos(bi.access_penalty_ns(false)),
            write_penalty: Cycles::from_nanos(bi.access_penalty_ns(true)),
            patrol_capable: bi.patrol_capable(),
            nvm_lines_committed: 0,
            nvm_lines_lost_on_crash: 0,
            nvm_lines_torn_on_crash: 0,
            nvm_write_retries: 0,
            nvm_frames_failed: 0,
            crashes: 0,
        }
    }

    /// Arms power-cut injection: committed lines are tracked through the
    /// device write buffer (so a cut can tear them), and once `switch` is
    /// cut, nothing further becomes durable until the crash.
    pub fn arm_power_cut(&mut self, switch: PowerSwitch) {
        self.power = Some(switch);
    }

    /// Disarms power-cut injection: drops the switch and any latched cut
    /// state. Used when capturing a [`Clone`]-based machine snapshot so the
    /// copy never carries a live trigger wiring from the run it forked off.
    pub fn disarm_power_cut(&mut self) {
        self.power = None;
        self.cut_pending = None;
    }

    /// Latches the power cut the first time any operation observes the
    /// switch cut: snapshots which lines the device still had buffered.
    fn check_cut(&mut self) {
        if self.cut_pending.is_none() && self.power.as_ref().is_some_and(|p| p.is_cut()) {
            self.cut_pending = Some(self.nvm.pending_lines(self.last_now));
        }
    }

    /// True while a latched power cut is freezing durability.
    fn frozen(&self) -> bool {
        self.cut_pending.is_some()
    }

    /// The physical layout.
    pub fn layout(&self) -> &E820Map {
        &self.layout
    }

    /// Backing kind of `pa`.
    ///
    /// # Errors
    ///
    /// Returns [`KindleError::BadPhysAddr`] for addresses outside the map.
    pub fn kind_of(&self, pa: PhysAddr) -> Result<MemKind> {
        self.layout.kind_of(pa)
    }

    /// Services the timing of one cache-line access.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is outside the memory map (simulation bug).
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, now: Cycles) -> Cycles {
        self.last_now = self.last_now.max(now);
        self.check_cut();
        match self.layout.kind_of(pa).expect("access within memory map") {
            MemKind::Dram => self.dram.access(pa, kind, now),
            MemKind::Nvm => {
                let mut lat = self.nvm.access(pa, kind, now);
                // Backend interconnect cost (Cycles::ZERO off-CXL).
                lat +=
                    if kind == AccessKind::Write { self.write_penalty } else { self.read_penalty };
                if kind == AccessKind::Write && self.media.is_some() {
                    lat += self.media_write_penalty(pa.line_base().as_u64());
                }
                lat
            }
        }
    }

    /// Rolls the media-fault outcome for one NVM line write and charges the
    /// retry-with-bounded-backoff policy. On permanent failure the line's
    /// frame is queued for OS retirement.
    fn media_write_penalty(&mut self, line: u64) -> Cycles {
        let Some(media) = self.media.as_mut() else {
            return Cycles::ZERO;
        };
        let mut outcome = media.on_write(line);
        let mut penalty = Cycles::ZERO;
        let mut attempts = 0u32;
        while outcome != WriteOutcome::Ok && attempts < self.retry_limit {
            attempts += 1;
            // Each retry backs off a little longer, then re-services the write.
            penalty += self.retry_backoff * attempts as u64 + self.write_service;
            self.nvm_write_retries += 1;
            outcome = media.on_write(line);
        }
        if outcome != WriteOutcome::Ok {
            let pfn = line >> PAGE_SHIFT;
            if self.failed_set.insert(pfn) {
                self.failed_frames.push(pfn);
                self.nvm_frames_failed += 1;
            }
        }
        penalty
    }

    /// The NVM media-fault model, when configured. Mutable so directed
    /// fault-injection harnesses can place stuck cells at chosen lines —
    /// random seeding cannot reliably land a cell in, say, a specific
    /// page-table frame.
    pub fn media_mut(&mut self) -> Option<&mut MediaFaults> {
        self.media.as_mut()
    }

    /// Drains frames whose writes permanently failed since the last poll;
    /// the OS is expected to retire and remap them.
    pub fn take_failed_frames(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.failed_frames)
    }

    /// Latency of draining the NVM write buffer (durability barrier).
    pub fn nvm_drain_latency(&mut self, now: Cycles) -> Cycles {
        self.last_now = self.last_now.max(now);
        self.check_cut();
        if self.frozen() {
            // Power is off; nothing drains and no time matters any more.
            return Cycles::ZERO;
        }
        sanitize::emit(|| Event::NvmDrain { cycle: now.as_u64() });
        let wait = self.nvm.drain_latency(now);
        // Everything the buffer held is now on media.
        self.wbuf_undo.clear();
        wait
    }

    // ---- data plane -----------------------------------------------------

    fn page_mut(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE] {
        if !self.mru_enabled {
            return self.pages.get_mut_or_alloc(pfn);
        }
        if self.mru.as_ref().is_none_or(|&(cached, _)| cached != pfn) {
            self.flush_mru();
            let page = self.pages.remove(pfn).unwrap_or_else(|| Box::new([0u8; PAGE_SIZE]));
            self.mru = Some((pfn, page));
        }
        &mut self.mru.as_mut().expect("mru slot just filled").1
    }

    /// The page's bytes, if it was ever touched (MRU slot first).
    fn page_ref(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE]> {
        if let Some((cached, page)) = &self.mru {
            if *cached == pfn {
                return Some(page);
            }
        }
        self.pages.get(pfn)
    }

    /// Moves the MRU slot's page back into the map, restoring the
    /// invariant that `pages` alone holds the whole image. Must run before
    /// any operation that iterates or retains `pages` wholesale.
    fn flush_mru(&mut self) {
        if let Some((pfn, page)) = self.mru.take() {
            self.pages.insert(pfn, page);
        }
    }

    /// Reads bytes from the volatile image (zero-filled where untouched).
    pub fn load_bytes(&self, pa: PhysAddr, buf: &mut [u8]) {
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < buf.len() {
            let pfn = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            match self.page_ref(pfn) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
            addr += chunk as u64;
        }
    }

    /// Writes bytes to the volatile image, snapshotting NVM lines for crash
    /// rollback the first time each line is dirtied.
    ///
    /// The emitted `NvmWrite` events carry no thread id themselves: the
    /// sanitizer layer stamps them with the ambient simulated kthread
    /// (`kindle_types::sanitize::current_thread`), which the machine's
    /// scheduler keeps up to date — that attribution is what the race
    /// detector keys on.
    pub fn store_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        // Snapshot undo state for NVM lines before mutating.
        if self.layout.kind_of(pa) == Ok(MemKind::Nvm) {
            let first = pa.line_base().as_u64();
            let last = (pa.as_u64() + data.len().max(1) as u64 - 1) & !63;
            let mut line = first;
            while line <= last {
                sanitize::emit(|| Event::NvmWrite { line, cycle: 0 });
                if !self.nvm_undo.contains(line) {
                    let mut snap = [0u8; 64];
                    self.load_bytes(PhysAddr::new(line), &mut snap);
                    self.nvm_undo.insert_absent(line, snap);
                }
                line += 64;
            }
        }
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < data.len() {
            let pfn = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            self.page_mut(pfn)[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
            addr += chunk as u64;
        }
        if self.media.is_some() && self.layout.kind_of(pa) == Ok(MemKind::Nvm) {
            // Checksum the intended bytes first: stuck cells then force
            // their values into the image, so a line whose store was
            // corrupted past the ECP budget mismatches its recorded sum —
            // which is exactly what the patrol pass verifies.
            let first = pa.line_base().as_u64();
            let last = (pa.as_u64() + data.len().max(1) as u64 - 1) & !63;
            let mut line = first;
            while line <= last {
                self.record_line_checksum(line);
                line += 64;
            }
            self.apply_stuck_cells(pa, data.len());
        }
    }

    /// Records the line's current stored content as its reference checksum
    /// — the named integrity primitive [`patrol_frame`](Self::patrol_frame)
    /// verifies against.
    fn record_line_checksum(&mut self, line: u64) {
        let sum = self.line_checksum(line);
        self.nvm_sums.insert(line, sum);
    }

    /// Checksum of the line's current stored bytes (8 words, FNV-1a fold).
    fn line_checksum(&self, line: u64) -> u64 {
        let mut buf = [0u8; 64];
        self.load_bytes(PhysAddr::new(line), &mut buf);
        let mut words = [0u64; 8];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"));
        }
        checksum64(&words)
    }

    /// Applies the stuck-cell model to every line of a store: when ECP
    /// correction is enabled the line's stuck cells are first covered by
    /// correction entries (a fully covered line stores faithfully — the
    /// entries hold the bits the cells cannot), and only cells beyond the
    /// per-line budget force their stuck values into the image.
    fn apply_stuck_cells(&mut self, pa: PhysAddr, len: usize) {
        let first = pa.line_base().as_u64();
        let last = (pa.as_u64() + len.max(1) as u64 - 1) & !63;
        let mut line = first;
        while line <= last {
            self.stuck_write_to_line(line);
            line += 64;
        }
    }

    /// One line of [`apply_stuck_cells`]. With a zero correction budget this
    /// is the raw stuck-at model: every uncorrected cell silently forces its
    /// bit. With correction enabled, newly allocated entries announce
    /// themselves (`ScrubCorrect`) and an over-budget line is declared
    /// uncorrectable: its corruption is flagged (`ScrubDetect`) and its
    /// frame queued for OS retirement alongside worn-out frames.
    fn stuck_write_to_line(&mut self, line: u64) {
        let Some(media) = self.media.as_mut() else {
            return;
        };
        let (mut newly, mut exhausted) = (0u32, false);
        if media.correction_enabled() {
            match media.correct_line(line) {
                CorrectionOutcome::Clean => return,
                CorrectionOutcome::Corrected { newly_allocated } => newly = newly_allocated,
                CorrectionOutcome::Exhausted { .. } => exhausted = true,
            }
        }
        let Some(cells) = media.uncorrected_stuck_in_line(line) else {
            return;
        };
        if newly > 0 {
            sanitize::emit(|| Event::ScrubCorrect { line });
        }
        if exhausted {
            sanitize::emit(|| Event::ScrubDetect { line });
            let pfn = line >> PAGE_SHIFT;
            if self.failed_set.insert(pfn) {
                self.failed_frames.push(pfn);
                self.nvm_frames_failed += 1;
            }
        }
        for (bit, val) in cells {
            let byte_addr = line + u64::from(bit / 8);
            let pfn = byte_addr >> PAGE_SHIFT;
            let off = (byte_addr & (PAGE_SIZE as u64 - 1)) as usize;
            let mask = 1u8 << (bit % 8);
            let b = &mut self.page_mut(pfn)[off];
            *b = if val { *b | mask } else { *b & !mask };
        }
    }

    /// Read-verifies every checksummed line of the NVM frame at
    /// `frame_base` against its recorded sum — the DIMM-style patrol scrub
    /// step. A mismatched line is flagged (`PatrolDetect`) and
    /// reconstruction is attempted: the ECP path first covers the line's
    /// stuck cells (retried up to the configured retry budget), then the
    /// stuck positions are treated as erasures and the assignment matching
    /// the recorded checksum is written back (`PatrolCorrect`). Lines that
    /// cannot be reconstructed — ECP budget exhausted, or content torn at a
    /// crash — are reported [`PatrolOutcome::Uncorrectable`].
    pub fn patrol_frame(&mut self, frame_base: u64) -> PatrolOutcome {
        if !self.patrol_capable {
            // DRAM-class far tiers record no line checksums: patrol is a
            // clean no-op by backend contract, not by accident.
            return PatrolOutcome::Clean;
        }
        let mut healed = 0u32;
        let mut bad = Vec::new();
        for i in 0..PAGE_SIZE / 64 {
            let line = frame_base + (i * 64) as u64;
            let Some(want) = self.nvm_sums.get(line) else {
                continue;
            };
            if self.line_checksum(line) == want {
                continue;
            }
            sanitize::emit(|| Event::PatrolDetect { line });
            if self.try_heal_line(line, want) {
                healed += 1;
            } else {
                bad.push(line);
            }
        }
        if !bad.is_empty() {
            PatrolOutcome::Uncorrectable { lines: bad }
        } else if healed > 0 {
            PatrolOutcome::Healed { lines: healed }
        } else {
            PatrolOutcome::Clean
        }
    }

    /// One line of [`patrol_frame`](Self::patrol_frame): cover the line's
    /// stuck cells through ECP (bounded retries), then erasure-decode the
    /// stored bytes — every stuck position's bit is suspect, and with at
    /// most [`crate::nvm::CELLS_PER_LINE`] of them the assignment matching
    /// the recorded checksum identifies the intended content. Returns
    /// `false` (line unhealable) when the ECP budget stays exhausted or no
    /// assignment matches (the line was torn, not stuck).
    fn try_heal_line(&mut self, line: u64, want: u64) -> bool {
        let retries = self.retry_limit;
        let Some(media) = self.media.as_mut() else {
            return false;
        };
        if !media.correction_enabled() {
            return false;
        }
        let mut covered = false;
        for _ in 0..=retries {
            match media.correct_line(line) {
                CorrectionOutcome::Exhausted { .. } => continue,
                _ => {
                    covered = true;
                    break;
                }
            }
        }
        if !covered {
            return false;
        }
        let cells = media.stuck_cells_in_line(line);
        let mut image = [0u8; 64];
        self.load_bytes(PhysAddr::new(line), &mut image);
        'assign: for mask in 0u32..1 << cells.len() {
            let mut candidate = image;
            for (i, &(bit, _)) in cells.iter().enumerate() {
                let byte = (bit / 8) as usize;
                let m = 1u8 << (bit % 8);
                if mask & (1 << i) != 0 {
                    candidate[byte] |= m;
                } else {
                    candidate[byte] &= !m;
                }
            }
            let mut words = [0u64; 8];
            for (i, w) in words.iter_mut().enumerate() {
                *w = u64::from_le_bytes(candidate[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            if checksum64(&words) != want {
                continue 'assign;
            }
            let pfn = line >> PAGE_SHIFT;
            let off = (line & (PAGE_SIZE as u64 - 1)) as usize;
            self.page_mut(pfn)[off..off + 64].copy_from_slice(&candidate);
            sanitize::emit(|| Event::PatrolCorrect { line });
            return true;
        }
        false
    }

    /// Directed injection: simulates retention drift flipping one stored
    /// bit of an NVM line. The flipped position is registered as a stuck
    /// cell (so a later ECP pass can cover it), the stored image is
    /// corrupted in place, and the line is flagged (`ScrubDetect`) — but
    /// unlike a write-time exhaustion nothing is queued for retirement:
    /// discovering the damage is the patrol pass's job. Returns `false`
    /// outside the armed NVM fault range or when the line's stuck-cell
    /// slots are full.
    pub fn degrade_line_bit(&mut self, line: u64, bit: u32) -> bool {
        let line = line & !63;
        if self.layout.kind_of(PhysAddr::new(line)) != Ok(MemKind::Nvm) {
            return false;
        }
        let byte_addr = line + u64::from(bit / 8);
        let pfn = byte_addr >> PAGE_SHIFT;
        let off = (byte_addr & (PAGE_SIZE as u64 - 1)) as usize;
        let mask = 1u8 << (bit % 8);
        let cur_set = self.page_ref(pfn).is_some_and(|p| p[off] & mask != 0);
        let stuck_val = !cur_set;
        let Some(media) = self.media.as_mut() else {
            return false;
        };
        if !media.add_stuck_cell(line, bit, stuck_val) {
            return false;
        }
        sanitize::emit(|| Event::ScrubDetect { line });
        let b = &mut self.page_mut(pfn)[off];
        *b = if stuck_val { *b | mask } else { *b & !mask };
        true
    }

    /// Marks the cache line containing `pa` durable (write-back reached the
    /// device). No-op for DRAM lines or lines never dirtied.
    pub fn commit_line(&mut self, pa: PhysAddr) {
        self.check_cut();
        if self.frozen() {
            // Power is off: the write-back never reaches the device. The
            // doomed post-cut execution continues purely volatilely.
            return;
        }
        sanitize::emit(|| Event::NvmCommit { line: pa.line_base().as_u64() });
        let line = pa.line_base().as_u64();
        if let Some(snap) = self.nvm_undo.remove(line) {
            self.nvm_lines_committed += 1;
            if self.power.is_some() {
                // Non-ADR mode: "committed" only means "accepted into the
                // device write buffer". Remember the previous durable value
                // (oldest wins) so a power cut can tear or drop the line.
                self.wbuf_undo.insert_absent(line, snap);
                self.prune_wbuf_undo();
            }
        }
    }

    /// Drops write-buffer undo entries for lines the device has already
    /// drained, keeping the store bounded while armed.
    fn prune_wbuf_undo(&mut self) {
        if self.wbuf_undo.len() < 256 {
            return;
        }
        let pending = self.nvm.pending_lines(self.last_now);
        self.wbuf_undo.retain_pending(&pending);
    }

    /// Commits every outstanding NVM line (orderly shutdown / full flush).
    pub fn commit_all(&mut self) {
        self.check_cut();
        if self.frozen() {
            return;
        }
        self.nvm_lines_committed += self.nvm_undo.len() as u64;
        let undo = self.nvm_undo.drain_sorted();
        if sanitize::installed() {
            for &(line, _) in &undo {
                sanitize::emit(|| Event::NvmCommit { line });
            }
        }
        if self.power.is_some() {
            for (line, snap) in undo {
                self.wbuf_undo.insert_absent(line, snap);
            }
            self.prune_wbuf_undo();
        }
    }

    /// Number of NVM lines dirtied but not yet durable.
    pub fn volatile_nvm_lines(&self) -> usize {
        self.nvm_undo.len()
    }

    /// Simulates a power failure: un-committed NVM lines revert to their
    /// durable contents, all DRAM contents are wiped, and device state is
    /// reset. Caches/TLBs are the caller's responsibility.
    pub fn crash(&mut self) {
        sanitize::emit(|| Event::Crash);
        self.crashes += 1;
        self.nvm_lines_lost_on_crash = self.nvm_undo.len() as u64;
        self.nvm_lines_torn_on_crash = 0;
        for (line, snap) in self.nvm_undo.drain_sorted() {
            self.restore_line(line, &snap, true);
        }
        self.power_off_cleanup();
    }

    /// Simulates a power failure on a *non-ADR* platform: in addition to the
    /// classic rollback of never-committed lines, the contents of the device
    /// write buffer are lost — except that the entries mid-service in the
    /// write banks land partially, torn at the 8-byte atomic persist
    /// granularity (`rng` picks how many words made it). Requires
    /// [`arm_power_cut`](Self::arm_power_cut) for the write-buffer tracking
    /// to have been maintained; without it this degrades to [`crash`].
    pub fn crash_torn(&mut self, rng: &mut Rng64) {
        self.check_cut();
        let pending =
            self.cut_pending.take().unwrap_or_else(|| self.nvm.pending_lines(self.last_now));
        sanitize::emit(|| Event::Crash);
        self.crashes += 1;

        // 1. Cache contents never written back: full rollback, as in crash().
        let mut lost = self.nvm_undo.len() as u64;
        for (line, snap) in self.nvm_undo.drain_sorted() {
            self.restore_line(line, &snap, true);
        }

        // 2. Write-buffer contents: the oldest `banks` entries are
        //    mid-service and tear at 8-byte granularity; everything younger
        //    in the queue reverts entirely to the previous durable value.
        let banks = self.nvm.banks();
        let mut torn = 0u64;
        for (i, &line) in pending.iter().enumerate() {
            let Some(snap) = self.wbuf_undo.remove(line) else {
                // Drained earlier under the same address, or committed
                // before arming: already durable.
                continue;
            };
            if i < banks {
                // `split` words of the new value reached the cells.
                let split = rng.gen_below(9) as usize;
                let mut cur = [0u8; 64];
                self.load_bytes(PhysAddr::new(line), &mut cur);
                cur[split * 8..].copy_from_slice(&snap[split * 8..]);
                // No rehash: a torn mix of old and new words is honest data
                // loss, and keeping the new value's checksum lets the
                // patrol pass detect it after recovery.
                self.restore_line(line, &cur, split == 8);
                if split < 8 {
                    torn += 1;
                }
            } else {
                self.restore_line(line, &snap, true);
                lost += 1;
            }
        }
        self.nvm_lines_lost_on_crash = lost;
        self.nvm_lines_torn_on_crash = torn;
        self.power_off_cleanup();
    }

    /// Writes a line image directly, bypassing undo tracking. With `rehash`
    /// the line's reference checksum is recomputed from the restored image
    /// (a rollback to the old durable value is valid data, not corruption);
    /// without it a stale checksum is kept deliberately — a torn line is
    /// real data loss and the patrol pass must be able to flag it.
    fn restore_line(&mut self, line: u64, image: &[u8; 64], rehash: bool) {
        let pfn = line >> PAGE_SHIFT;
        let off = (line & (PAGE_SIZE as u64 - 1)) as usize;
        // check:allow KD009: crash rollback restores the durable image; the
        // callers emit Event::Crash and the sanitizer resets write tracking.
        self.page_mut(pfn)[off..off + 64].copy_from_slice(image);
        if rehash && self.nvm_sums.contains(line) {
            // check:allow KD009: same crash-rollback context as above.
            self.record_line_checksum(line);
        }
    }

    /// Shared tail of both crash flavours: wipe DRAM, reset devices and
    /// fault-injection state, restore power for the reboot.
    fn power_off_cleanup(&mut self) {
        // The MRU slot holds a page *out* of the map; reunite them first or
        // a cached DRAM page would survive the wipe (and a cached NVM page
        // would be dropped by the retain below).
        self.flush_mru();
        let layout = self.layout.clone();
        self.pages.retain_frames(|pfn| {
            layout.kind_of(PhysAddr::new(pfn << PAGE_SHIFT)) == Ok(MemKind::Nvm)
        });
        self.dram.reset();
        self.nvm.reset();
        self.wbuf_undo.clear();
        self.cut_pending = None;
        if let Some(p) = &self.power {
            p.reset();
        }
        // Let the recovered kernel re-learn failed frames on the next write.
        self.failed_frames.clear();
        self.failed_set.clear();
    }

    /// The far-tier backend this controller was built with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            dram: self.dram.stats().clone(),
            nvm: self.nvm.stats().clone(),
            media: self.media.as_ref().map(|m| m.stats().clone()).unwrap_or_default(),
            nvm_lines_committed: self.nvm_lines_committed,
            nvm_lines_lost_on_crash: self.nvm_lines_lost_on_crash,
            nvm_lines_torn_on_crash: self.nvm_lines_torn_on_crash,
            nvm_write_retries: self.nvm_write_retries,
            nvm_frames_failed: self.nvm_frames_failed,
            crashes: self.crashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MediaFaultConfig;

    fn mc() -> (MemoryController, PhysAddr, PhysAddr) {
        let cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        let dram_pa = PhysAddr::new(0x1000);
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x1000;
        (MemoryController::new(&cfg), dram_pa, nvm_pa)
    }

    #[test]
    fn dispatch_by_kind() {
        let (mut m, dram_pa, nvm_pa) = mc();
        assert_eq!(m.kind_of(dram_pa).unwrap(), MemKind::Dram);
        assert_eq!(m.kind_of(nvm_pa).unwrap(), MemKind::Nvm);
        let d = m.access(dram_pa, AccessKind::Read, Cycles::ZERO);
        let n = m.access(nvm_pa, AccessKind::Read, Cycles::ZERO);
        assert!(n > d, "nvm read ({n}) should exceed dram read ({d})");
    }

    #[test]
    fn data_round_trip_across_pages() {
        let (mut m, dram_pa, _) = mc();
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        m.store_bytes(dram_pa, &data);
        let mut back = vec![0u8; data.len()];
        m.load_bytes(dram_pa, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let (m, dram_pa, _) = mc();
        let mut buf = [0xffu8; 32];
        m.load_bytes(dram_pa, &mut buf);
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn crash_wipes_dram() {
        let (mut m, dram_pa, _) = mc();
        m.store_bytes(dram_pa, b"volatile!");
        m.crash();
        let mut buf = [0u8; 9];
        m.load_bytes(dram_pa, &mut buf);
        assert_eq!(buf, [0u8; 9]);
    }

    #[test]
    fn crash_reverts_uncommitted_nvm() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"AAAA");
        m.commit_line(nvm_pa); // durable now
        m.store_bytes(nvm_pa, b"BBBB"); // dirty, not committed
        m.crash();
        let mut buf = [0u8; 4];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"AAAA", "uncommitted write must roll back");
        assert_eq!(m.stats().nvm_lines_lost_on_crash, 1);
    }

    #[test]
    fn committed_nvm_survives_crash() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"keepme");
        m.commit_line(nvm_pa);
        m.crash();
        let mut buf = [0u8; 6];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"keepme");
    }

    #[test]
    fn commit_all_flushes_everything() {
        let (mut m, _, nvm_pa) = mc();
        for i in 0..10u64 {
            m.store_bytes(nvm_pa + i * 64, &[i as u8; 8]);
        }
        assert_eq!(m.volatile_nvm_lines(), 10);
        m.commit_all();
        assert_eq!(m.volatile_nvm_lines(), 0);
        m.crash();
        let mut b = [0u8; 1];
        m.load_bytes(nvm_pa + 9 * 64, &mut b);
        assert_eq!(b[0], 9);
    }

    #[test]
    fn armed_cut_freezes_durability() {
        let (mut m, _, nvm_pa) = mc();
        let sw = PowerSwitch::new();
        m.arm_power_cut(sw.clone());
        m.store_bytes(nvm_pa, b"AAAAAAAA");
        m.commit_line(nvm_pa);
        m.nvm_drain_latency(Cycles::from_millis(1)); // fully durable
        sw.cut();
        // Doomed post-cut execution: stores and commits change nothing
        // durable.
        m.store_bytes(nvm_pa, b"BBBBBBBB");
        m.commit_line(nvm_pa);
        let mut rng = Rng64::new(1);
        m.crash_torn(&mut rng);
        let mut buf = [0u8; 8];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"AAAAAAAA", "post-cut commit must not stick");
        assert!(!sw.is_cut(), "power restored for the reboot");
    }

    #[test]
    fn crash_torn_tears_buffered_line_at_word_granularity() {
        // Put one committed-but-undrained line in the write buffer, then
        // tear it: the result must be a prefix of new words + suffix of old.
        let (mut m, _, nvm_pa) = mc();
        m.arm_power_cut(PowerSwitch::new());
        m.store_bytes(nvm_pa, &[0x11u8; 64]);
        m.commit_line(nvm_pa);
        m.nvm_drain_latency(Cycles::from_millis(1)); // old durable value: 0x11
        m.store_bytes(nvm_pa, &[0x22u8; 64]);
        m.commit_line(nvm_pa);
        // Enqueue the device write so the line is pending at crash time.
        m.access(nvm_pa, AccessKind::Write, Cycles::from_millis(1));
        let mut rng = Rng64::new(42);
        m.crash_torn(&mut rng);
        let mut buf = [0u8; 64];
        m.load_bytes(nvm_pa, &mut buf);
        for word in 0..8 {
            let w = &buf[word * 8..word * 8 + 8];
            assert!(
                w == [0x22u8; 8] || w == [0x11u8; 8],
                "word {word} must be atomically old or new, got {w:?}"
            );
        }
        // Words are a prefix of new followed by a suffix of old.
        let new_words = buf.chunks(8).take_while(|w| *w == [0x22u8; 8]).count();
        assert!(buf.chunks(8).skip(new_words).all(|w| w == [0x11u8; 8]));
    }

    #[test]
    fn crash_torn_same_seed_is_deterministic() {
        let run = |seed: u64| -> Vec<u8> {
            let (mut m, _, nvm_pa) = mc();
            m.arm_power_cut(PowerSwitch::new());
            for i in 0..20u64 {
                m.store_bytes(nvm_pa + i * 64, &[0xabu8; 64]);
                m.commit_line(nvm_pa + i * 64);
                m.access(nvm_pa + i * 64, AccessKind::Write, Cycles::ZERO);
            }
            let mut rng = Rng64::new(seed);
            m.crash_torn(&mut rng);
            let mut buf = vec![0u8; 20 * 64];
            m.load_bytes(nvm_pa, &mut buf);
            buf
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should tear differently");
    }

    #[test]
    fn unarmed_crash_torn_behaves_like_crash() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"AAAA");
        m.commit_line(nvm_pa); // ADR: committed == durable when unarmed
        m.store_bytes(nvm_pa, b"BBBB");
        let mut rng = Rng64::new(3);
        m.crash_torn(&mut rng);
        let mut buf = [0u8; 4];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"AAAA");
    }

    #[test]
    fn worn_line_fails_frame_once_and_charges_retries() {
        let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        cfg.faults = Some(crate::config::MediaFaultConfig {
            wear_limit: 32,
            ..MediaFaultConfig::with_seed(5)
        });
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x2000;
        let mut m = MemoryController::new(&cfg);
        let plain = m.access(nvm_pa, AccessKind::Write, Cycles::ZERO);
        for _ in 0..200 {
            m.access(nvm_pa, AccessKind::Write, Cycles::from_millis(2));
        }
        let s = m.stats();
        assert!(s.media.lines_worn_out >= 1, "32-write budget must wear out: {s:?}");
        assert_eq!(s.nvm_frames_failed, 1, "frame reported failed exactly once");
        assert_eq!(m.take_failed_frames(), vec![nvm_pa.as_u64() >> PAGE_SHIFT]);
        assert!(m.take_failed_frames().is_empty(), "queue drains");
        assert!(s.nvm_write_retries > 0, "transient zone must charge retries");
        let _ = plain;
    }

    #[test]
    fn stuck_cells_force_bits_on_store() {
        // Small NVM range so the seeded stuck cells are dense enough to hit.
        let mut cfg = MemConfig::with_capacities(16 << 20, 1 << 16);
        cfg.faults = Some(crate::config::MediaFaultConfig {
            stuck_cells: 16,
            wear_limit: 0,
            ..MediaFaultConfig::with_seed(9)
        });
        let mut m = MemoryController::new(&cfg);
        let nvm = cfg.layout.range(MemKind::Nvm);
        // Pass 1: all-ones exposes stuck-at-0 cells; pass 2: all-zeros
        // exposes stuck-at-1. Every stuck cell shows up in exactly one pass.
        let mut anomalies = 0u32;
        for (pattern, count_fn) in
            [(0xffu8, u8::count_zeros as fn(u8) -> u32), (0x00u8, u8::count_ones)]
        {
            for off in (0..nvm.size).step_by(PAGE_SIZE) {
                let pa = nvm.base + off;
                m.store_bytes(pa, &[pattern; PAGE_SIZE]);
                let mut buf = [0u8; PAGE_SIZE];
                m.load_bytes(pa, &mut buf);
                anomalies += buf.iter().map(|&b| count_fn(b)).sum::<u32>();
            }
        }
        assert!(anomalies >= 1, "16 stuck cells in 1024 lines must be visible");
        assert!(anomalies <= 16, "at most one stuck bit per seeded cell");
        assert!(m.stats().media.stuck_line_writes >= anomalies as u64);
    }

    #[test]
    fn correction_entries_make_stuck_lines_store_faithfully() {
        // Same dense stuck-cell layout as stuck_cells_force_bits_on_store,
        // but with an ECP budget covering every line: no store may be
        // corrupted, and the allocations must be visible in the stats.
        let mut cfg = MemConfig::with_capacities(16 << 20, 1 << 16);
        cfg.faults = Some(crate::config::MediaFaultConfig {
            stuck_cells: 16,
            wear_limit: 0,
            correction_entries: 4,
            ..MediaFaultConfig::with_seed(9)
        });
        let mut m = MemoryController::new(&cfg);
        let nvm = cfg.layout.range(MemKind::Nvm);
        let mut anomalies = 0u32;
        for (pattern, count_fn) in
            [(0xffu8, u8::count_zeros as fn(u8) -> u32), (0x00u8, u8::count_ones)]
        {
            for off in (0..nvm.size).step_by(PAGE_SIZE) {
                let pa = nvm.base + off;
                m.store_bytes(pa, &[pattern; PAGE_SIZE]);
                let mut buf = [0u8; PAGE_SIZE];
                m.load_bytes(pa, &mut buf);
                anomalies += buf.iter().map(|&b| count_fn(b)).sum::<u32>();
            }
        }
        assert_eq!(anomalies, 0, "a within-budget line must store faithfully");
        let s = m.stats();
        assert!(s.media.corrections_allocated >= 1, "{s:?}");
        assert_eq!(s.media.uncorrectable_line_writes, 0);
        assert!(m.take_failed_frames().is_empty(), "no frame retirement needed");
    }

    #[test]
    fn exhausted_correction_budget_queues_frame_for_retirement() {
        // Zero-size budget... a 1-entry budget with a line that needs more
        // is hard to seed deterministically, so exercise the exhaustion
        // path with budget 1 on a range dense enough that some line packs
        // two or more cells.
        let mut cfg = MemConfig::with_capacities(16 << 20, 1 << 12);
        cfg.faults = Some(crate::config::MediaFaultConfig {
            stuck_cells: 64,
            wear_limit: 0,
            correction_entries: 1,
            ..MediaFaultConfig::with_seed(9)
        });
        let mut m = MemoryController::new(&cfg);
        let nvm = cfg.layout.range(MemKind::Nvm);
        for off in (0..nvm.size).step_by(PAGE_SIZE) {
            m.store_bytes(nvm.base + off, &[0xffu8; PAGE_SIZE]);
        }
        let s = m.stats();
        assert!(
            s.media.uncorrectable_line_writes >= 1,
            "64 cells in 64 lines must exhaust some 1-entry budget: {s:?}"
        );
        assert!(!m.take_failed_frames().is_empty(), "uncorrectable frame queued");
    }

    #[test]
    fn undo_snapshot_taken_once_per_line() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"first");
        m.commit_line(nvm_pa);
        m.store_bytes(nvm_pa, b"second");
        m.store_bytes(nvm_pa, b"third!"); // same line, snapshot must stay "first"
        m.crash();
        let mut buf = [0u8; 5];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"first");
    }

    /// Runs the same mixed workload on a controller and returns everything
    /// observable: the bytes read back plus the stats snapshot. Used to
    /// prove the MRU fast path changes no output.
    fn mru_workload(m: &mut MemoryController, dram_pa: PhysAddr, nvm_pa: PhysAddr) -> Vec<u8> {
        let mut observed = Vec::new();
        // Interleave pages so the MRU slot hits, misses, and swaps.
        for round in 0..3u64 {
            for page in 0..4u64 {
                let pa = dram_pa + page * PAGE_SIZE as u64;
                m.store_bytes(pa, &[(round * 4 + page) as u8; 100]);
                m.store_bytes(nvm_pa + page * 64, &[(round + page) as u8; 8]);
            }
        }
        m.commit_line(nvm_pa);
        m.crash(); // exercise the wipe/retain path with the slot occupied
        for page in 0..4u64 {
            let mut buf = [0u8; 100];
            m.load_bytes(dram_pa + page * PAGE_SIZE as u64, &mut buf);
            observed.extend_from_slice(&buf);
            let mut line = [0u8; 8];
            m.load_bytes(nvm_pa + page * 64, &mut line);
            observed.extend_from_slice(&line);
        }
        observed
    }

    #[test]
    fn mru_page_cache_is_observation_equivalent() {
        let cfg_on = MemConfig::with_capacities(16 << 20, 16 << 20);
        let mut cfg_off = cfg_on.clone();
        cfg_off.mru_page_cache = false;
        assert!(cfg_on.mru_page_cache, "fast path must default on");
        let dram_pa = PhysAddr::new(0x1000);
        let nvm_pa = cfg_on.layout.range(MemKind::Nvm).base + 0x1000;
        let mut fast = MemoryController::new(&cfg_on);
        let mut slow = MemoryController::new(&cfg_off);
        let a = mru_workload(&mut fast, dram_pa, nvm_pa);
        let b = mru_workload(&mut slow, dram_pa, nvm_pa);
        assert_eq!(a, b, "MRU cache must not change any observable byte");
        assert_eq!(fast.stats(), slow.stats(), "nor any statistic");
    }

    #[test]
    fn legacy_maps_is_observation_equivalent() {
        let cfg_flat = MemConfig::with_capacities(16 << 20, 16 << 20);
        let mut cfg_legacy = cfg_flat.clone();
        cfg_legacy.legacy_maps = true;
        assert!(!cfg_flat.legacy_maps, "flat stores must default on");
        let dram_pa = PhysAddr::new(0x1000);
        let nvm_pa = cfg_flat.layout.range(MemKind::Nvm).base + 0x1000;
        let mut flat = MemoryController::new(&cfg_flat);
        let mut legacy = MemoryController::new(&cfg_legacy);
        let a = mru_workload(&mut flat, dram_pa, nvm_pa);
        let b = mru_workload(&mut legacy, dram_pa, nvm_pa);
        assert_eq!(a, b, "flat stores must not change any observable byte");
        assert_eq!(flat.stats(), legacy.stats(), "nor any statistic");
    }

    #[test]
    fn legacy_maps_equivalent_with_media_and_torn_crash() {
        // Exercises every flattened store at once: pages (stores/loads),
        // nvm_sums (media armed records checksums; patrol reads them),
        // nvm_undo/wbuf_undo (armed power cut, commit, torn crash).
        let run = |legacy: bool| -> (Vec<u8>, MemStats, PatrolOutcome) {
            let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
            cfg.legacy_maps = legacy;
            cfg.faults = Some(MediaFaultConfig {
                stuck_cells: 0,
                wear_limit: 0,
                correction_entries: 2,
                ..MediaFaultConfig::with_seed(11)
            });
            let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x3000;
            let mut m = MemoryController::new(&cfg);
            let switch = PowerSwitch::new();
            m.arm_power_cut(switch.clone());
            for round in 0..4u64 {
                for i in 0..300u64 {
                    m.store_bytes(nvm_pa + i * 64, &[(round + i) as u8; 64]);
                    if i % 3 == 0 {
                        m.commit_line(nvm_pa + i * 64);
                    }
                }
            }
            m.commit_all();
            for i in 0..8u64 {
                m.store_bytes(nvm_pa + i * 64, &[0xEE; 64]);
                m.commit_line(nvm_pa + i * 64);
            }
            switch.cut();
            let mut rng = Rng64::new(7);
            m.crash_torn(&mut rng);
            let patrol = m.patrol_frame(nvm_pa.page_base().as_u64());
            let mut observed = vec![0u8; 300 * 64];
            m.load_bytes(nvm_pa, &mut observed);
            (observed, m.stats(), patrol)
        };
        let (bytes_flat, stats_flat, patrol_flat) = run(false);
        let (bytes_legacy, stats_legacy, patrol_legacy) = run(true);
        assert_eq!(bytes_flat, bytes_legacy, "post-crash image must match byte for byte");
        assert_eq!(stats_flat, stats_legacy, "every counter must match");
        assert_eq!(patrol_flat, patrol_legacy, "patrol verdicts must match");
    }

    #[test]
    fn backend_pcm_is_observation_equivalent() {
        let cfg_direct = MemConfig::with_capacities(16 << 20, 16 << 20);
        let mut cfg_trait = cfg_direct.clone();
        cfg_trait.backend = Some(Backend::Pcm);
        assert!(cfg_direct.backend.is_none(), "backend must default unset");
        let dram_pa = PhysAddr::new(0x1000);
        let nvm_pa = cfg_direct.layout.range(MemKind::Nvm).base + 0x1000;
        let mut direct = MemoryController::new(&cfg_direct);
        let mut via_trait = MemoryController::new(&cfg_trait);
        let a = mru_workload(&mut direct, dram_pa, nvm_pa);
        let b = mru_workload(&mut via_trait, dram_pa, nvm_pa);
        assert_eq!(a, b, "PCM via the trait must not change any observable byte");
        assert_eq!(direct.stats(), via_trait.stats(), "nor any statistic");
        assert_eq!(
            direct.access(nvm_pa, AccessKind::Read, Cycles::from_nanos(1 << 30)),
            via_trait.access(nvm_pa, AccessKind::Read, Cycles::from_nanos(1 << 30)),
            "nor any latency"
        );
    }

    #[test]
    fn backend_pcm_equivalent_with_media_and_torn_crash() {
        // Same armed-media torn-crash gauntlet as the legacy-maps proof,
        // but comparing the pre-trait default path against backend=Pcm.
        let run = |backend: Option<Backend>| -> (Vec<u8>, MemStats, PatrolOutcome) {
            let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
            cfg.backend = backend;
            cfg.faults = Some(MediaFaultConfig {
                stuck_cells: 0,
                wear_limit: 0,
                correction_entries: 2,
                ..MediaFaultConfig::with_seed(11)
            });
            let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x3000;
            let mut m = MemoryController::new(&cfg);
            let switch = PowerSwitch::new();
            m.arm_power_cut(switch.clone());
            for round in 0..4u64 {
                for i in 0..300u64 {
                    m.store_bytes(nvm_pa + i * 64, &[(round + i) as u8; 64]);
                    if i % 3 == 0 {
                        m.commit_line(nvm_pa + i * 64);
                    }
                }
            }
            m.commit_all();
            for i in 0..8u64 {
                m.store_bytes(nvm_pa + i * 64, &[0xEE; 64]);
                m.commit_line(nvm_pa + i * 64);
            }
            switch.cut();
            let mut rng = Rng64::new(7);
            m.crash_torn(&mut rng);
            let patrol = m.patrol_frame(nvm_pa.page_base().as_u64());
            let mut observed = vec![0u8; 300 * 64];
            m.load_bytes(nvm_pa, &mut observed);
            (observed, m.stats(), patrol)
        };
        let (bytes_direct, stats_direct, patrol_direct) = run(None);
        let (bytes_trait, stats_trait, patrol_trait) = run(Some(Backend::Pcm));
        assert_eq!(bytes_direct, bytes_trait, "post-crash image must match byte for byte");
        assert_eq!(stats_direct, stats_trait, "every counter must match");
        assert_eq!(patrol_direct, patrol_trait, "patrol verdicts must match");
    }

    /// Hammers one NVM line far past a tiny wear budget and reports the
    /// wear-visible counters.
    fn hammer_line(backend: Option<Backend>) -> MemStats {
        let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        cfg.backend = backend;
        cfg.faults = Some(MediaFaultConfig { wear_limit: 8, ..MediaFaultConfig::with_seed(5) });
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x2000;
        let mut m = MemoryController::new(&cfg);
        for i in 0..200u64 {
            m.access(nvm_pa, AccessKind::Write, Cycles::from_nanos(i * 1_000));
            m.store_bytes(nvm_pa, &[i as u8; 64]);
        }
        assert_eq!(
            m.take_failed_frames().is_empty(),
            m.stats().nvm_frames_failed == 0,
            "retirement queue must agree with the counter"
        );
        m.stats()
    }

    #[test]
    fn sttram_backend_never_wears_or_retires() {
        // The same hammering wears PCM out (the test is actually lethal)...
        let pcm = hammer_line(Some(Backend::Pcm));
        assert!(pcm.nvm_write_retries > 0, "wear budget of 8 must force PCM retries");
        assert!(pcm.nvm_frames_failed > 0, "and permanent failure");
        // ...but STT-RAM's fault filter zeroes the wear budget, so the
        // wear-out/retirement paths no-op through the trait.
        let stt = hammer_line(Some(Backend::SttRam));
        assert_eq!(stt.nvm_write_retries, 0, "STT-RAM must never retry for wear");
        assert_eq!(stt.nvm_frames_failed, 0, "nor retire frames");
        assert_eq!(stt.media.lines_worn_out, 0, "nor wear a line out");
    }

    #[test]
    fn numa_backend_has_no_media_machinery() {
        let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        cfg.backend = Some(Backend::Numa);
        // Even an explicit fault request is dropped: remote DRAM has no
        // NVM media to inject faults into.
        cfg.faults = Some(MediaFaultConfig::with_seed(5));
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x2000;
        let mut m = MemoryController::new(&cfg);
        for i in 0..64u64 {
            m.store_bytes(nvm_pa + i * 64, &[i as u8; 64]);
            m.commit_line(nvm_pa + i * 64);
        }
        assert!(m.media_mut().is_none(), "no media-fault model may arm");
        assert!(!m.degrade_line_bit(nvm_pa.as_u64(), 3), "no stuck cells to place");
        assert_eq!(
            m.patrol_frame(nvm_pa.page_base().as_u64()),
            PatrolOutcome::Clean,
            "patrol must be a clean no-op"
        );
        let stats = m.stats();
        assert_eq!(stats.media, Default::default(), "zero ECP/patrol/wear activity");
        assert_eq!(stats.nvm_write_retries, 0);
        assert_eq!(stats.nvm_frames_failed, 0);
    }

    #[test]
    fn cxl_backend_charges_link_and_controller_latency() {
        let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        cfg.backend = Some(Backend::Cxl);
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x1000;
        let mut m = MemoryController::new(&cfg);
        let cxl = Backend::Cxl.instance();
        assert_eq!(
            m.access(nvm_pa, AccessKind::Read, Cycles::ZERO),
            Cycles::from_nanos(cxl.read_latency_ns()),
            "idle far read = media latency + link/controller penalty"
        );
        assert_eq!(m.backend(), Backend::Cxl);
    }

    /// Controller with a media-fault model armed but no random faults:
    /// stuck cells are placed by the test (via `degrade_line_bit`).
    fn mc_with_media(correction_entries: u32) -> (MemoryController, PhysAddr) {
        let mut cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        cfg.faults = Some(MediaFaultConfig {
            stuck_cells: 0,
            wear_limit: 0,
            correction_entries,
            ..MediaFaultConfig::with_seed(11)
        });
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x3000;
        (MemoryController::new(&cfg), nvm_pa)
    }

    #[test]
    fn patrol_heals_degraded_line_within_budget() {
        let (mut m, pa) = mc_with_media(2);
        m.store_bytes(pa, &[0x5au8; 64]);
        m.commit_line(pa);
        assert!(m.degrade_line_bit(pa.as_u64(), 3));
        let mut buf = [0u8; 64];
        m.load_bytes(pa, &mut buf);
        assert_ne!(buf, [0x5au8; 64], "degrade must corrupt the stored copy");
        assert_eq!(m.patrol_frame(pa.as_u64()), PatrolOutcome::Healed { lines: 1 });
        m.load_bytes(pa, &mut buf);
        assert_eq!(buf, [0x5au8; 64], "healed line reads byte-identical");
        assert_eq!(m.patrol_frame(pa.as_u64()), PatrolOutcome::Clean);
    }

    #[test]
    fn patrol_heals_multiple_degraded_bits_per_line() {
        let (mut m, pa) = mc_with_media(4);
        let data: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x39).collect();
        m.store_bytes(pa, &data);
        m.commit_line(pa);
        for bit in [5, 200, 411] {
            assert!(m.degrade_line_bit(pa.as_u64(), bit));
        }
        assert_eq!(m.patrol_frame(pa.as_u64()), PatrolOutcome::Healed { lines: 1 });
        let mut buf = vec![0u8; 64];
        m.load_bytes(pa, &mut buf);
        assert_eq!(buf, data, "erasure decode over three suspect bits");
    }

    #[test]
    fn patrol_without_budget_reports_uncorrectable() {
        let (mut m, pa) = mc_with_media(0);
        m.store_bytes(pa, &[0x11u8; 64]);
        m.commit_line(pa);
        assert!(m.degrade_line_bit(pa.as_u64(), 7));
        assert_eq!(
            m.patrol_frame(pa.as_u64()),
            PatrolOutcome::Uncorrectable { lines: vec![pa.as_u64()] }
        );
    }

    #[test]
    fn patrol_is_clean_on_untouched_frames() {
        let (mut m, pa) = mc_with_media(2);
        assert_eq!(m.patrol_frame(pa.as_u64()), PatrolOutcome::Clean);
        m.store_bytes(pa, &[9u8; 64]);
        assert_eq!(m.patrol_frame(pa.as_u64()), PatrolOutcome::Clean);
    }

    #[test]
    fn degrade_refuses_dram_and_unarmed_media() {
        let (mut m, pa) = mc_with_media(2);
        assert!(!m.degrade_line_bit(0x1000, 0), "DRAM lines never degrade");
        let _ = pa;
        let (mut plain, _, nvm_pa) = mc();
        assert!(!plain.degrade_line_bit(nvm_pa.as_u64(), 0), "needs an armed fault model");
    }

    #[test]
    fn crash_rollback_rehashes_checksums() {
        // Satellite coverage: a crash must rebuild (not keep stale)
        // integrity state for rolled-back lines, mirroring the
        // failed_frames/failed_set clearing in power_off_cleanup.
        let (mut m, pa) = mc_with_media(2);
        m.store_bytes(pa, &[0xaau8; 64]);
        m.commit_line(pa);
        m.store_bytes(pa, &[0xbbu8; 64]); // dirty, never committed
        m.crash();
        let mut buf = [0u8; 64];
        m.load_bytes(pa, &mut buf);
        assert_eq!(buf, [0xaau8; 64]);
        assert_eq!(
            m.patrol_frame(pa.as_u64()),
            PatrolOutcome::Clean,
            "a rolled-back line holds valid old data, not corruption"
        );
    }

    #[test]
    fn committed_corruption_survives_crash_and_is_detected() {
        let (mut m, pa) = mc_with_media(0);
        m.store_bytes(pa, &[0x33u8; 64]);
        m.commit_line(pa);
        assert!(m.degrade_line_bit(pa.as_u64(), 100));
        m.crash();
        assert_eq!(
            m.patrol_frame(pa.as_u64()),
            PatrolOutcome::Uncorrectable { lines: vec![pa.as_u64()] },
            "checksums persist with the media across a crash"
        );
    }

    #[test]
    fn torn_line_keeps_stale_checksum_for_patrol() {
        for seed in 0..64u64 {
            let (mut m, pa) = mc_with_media(2);
            m.arm_power_cut(PowerSwitch::new());
            m.store_bytes(pa, &[0x11u8; 64]);
            m.commit_line(pa);
            m.nvm_drain_latency(Cycles::from_millis(1)); // old durable: 0x11
            m.store_bytes(pa, &[0x22u8; 64]);
            m.commit_line(pa);
            m.access(pa, AccessKind::Write, Cycles::from_millis(1));
            let mut rng = Rng64::new(seed);
            m.crash_torn(&mut rng);
            if m.stats().nvm_lines_torn_on_crash == 0 {
                continue; // this seed landed the full line; try the next
            }
            assert_eq!(
                m.patrol_frame(pa.as_u64()),
                PatrolOutcome::Uncorrectable { lines: vec![pa.as_u64()] },
                "a torn line is real data loss and must stay detectable"
            );
            return;
        }
        panic!("no seed in 0..64 tore the buffered line");
    }

    #[test]
    fn crash_wipes_dram_page_held_in_mru_slot() {
        // The MRU slot holds its page *out* of the map; a crash must not
        // let that page dodge the DRAM wipe.
        let (mut m, dram_pa, _) = mc();
        m.store_bytes(dram_pa, b"volatile!"); // now in the MRU slot
        m.crash();
        let mut buf = [0u8; 9];
        m.load_bytes(dram_pa, &mut buf);
        assert_eq!(buf, [0u8; 9], "MRU-cached DRAM page must not survive");
    }

    #[test]
    fn crash_keeps_nvm_page_held_in_mru_slot() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"keepme");
        m.commit_line(nvm_pa); // durable; page sits in the MRU slot
        m.crash();
        let mut buf = [0u8; 6];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"keepme", "MRU-cached NVM page must persist");
    }
}
