//! The memory controller: dispatch, data image, and crash durability.
//!
//! The controller owns two things:
//!
//! 1. **Timing**: it routes each cache-line access to the DRAM or NVM device
//!    model according to the e820 layout and returns the latency.
//! 2. **Data**: a sparse byte image of physical memory. Stores land in the
//!    *volatile* image immediately (that is what subsequent loads see — it
//!    stands in for data sitting in caches or memory). For NVM addresses the
//!    controller snapshots the previous durable value of a line the first
//!    time it is dirtied; [`commit_line`](MemoryController::commit_line)
//!    (called on cache write-back or `clwb`) promotes the volatile value to
//!    durable. On [`crash`](MemoryController::crash), un-committed NVM lines
//!    revert and all DRAM contents are wiped — exactly the semantics the
//!    paper's process-persistence machinery must survive.

use std::collections::BTreeMap;

use kindle_types::sanitize::{self, Event};
use kindle_types::{AccessKind, Cycles, MemKind, PhysAddr, Result, PAGE_SHIFT, PAGE_SIZE};

use crate::config::MemConfig;
use crate::dram::DramDevice;
use crate::e820::E820Map;
use crate::nvm::NvmDevice;
use crate::stats::MemStats;

type PageBox = Box<[u8; PAGE_SIZE]>;

/// Hybrid DRAM + NVM memory controller. See the module docs.
#[derive(Debug)]
pub struct MemoryController {
    layout: E820Map,
    dram: DramDevice,
    nvm: NvmDevice,
    /// Sparse volatile image: what loads observe.
    pages: BTreeMap<u64, PageBox>,
    /// Durable snapshots for dirtied-but-not-committed NVM lines, keyed by
    /// line base address.
    nvm_undo: BTreeMap<u64, [u8; 64]>,
    nvm_lines_committed: u64,
    nvm_lines_lost_on_crash: u64,
    crashes: u64,
}

impl MemoryController {
    /// Creates a controller for the given configuration, with all memory
    /// reading as zero.
    pub fn new(cfg: &MemConfig) -> Self {
        MemoryController {
            layout: cfg.layout.clone(),
            dram: DramDevice::new(cfg.dram.clone()),
            nvm: NvmDevice::new(cfg.nvm.clone()),
            pages: BTreeMap::new(),
            nvm_undo: BTreeMap::new(),
            nvm_lines_committed: 0,
            nvm_lines_lost_on_crash: 0,
            crashes: 0,
        }
    }

    /// The physical layout.
    pub fn layout(&self) -> &E820Map {
        &self.layout
    }

    /// Backing kind of `pa`.
    ///
    /// # Errors
    ///
    /// Returns [`KindleError::BadPhysAddr`] for addresses outside the map.
    pub fn kind_of(&self, pa: PhysAddr) -> Result<MemKind> {
        self.layout.kind_of(pa)
    }

    /// Services the timing of one cache-line access.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is outside the memory map (simulation bug).
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, now: Cycles) -> Cycles {
        match self.layout.kind_of(pa).expect("access within memory map") {
            MemKind::Dram => self.dram.access(pa, kind, now),
            MemKind::Nvm => self.nvm.access(pa, kind, now),
        }
    }

    /// Latency of draining the NVM write buffer (durability barrier).
    pub fn nvm_drain_latency(&mut self, now: Cycles) -> Cycles {
        sanitize::emit(|| Event::NvmDrain { cycle: now.as_u64() });
        self.nvm.drain_latency(now)
    }

    // ---- data plane -----------------------------------------------------

    fn page_mut(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(pfn).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads bytes from the volatile image (zero-filled where untouched).
    pub fn load_bytes(&self, pa: PhysAddr, buf: &mut [u8]) {
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < buf.len() {
            let pfn = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            match self.pages.get(&pfn) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
            addr += chunk as u64;
        }
    }

    /// Writes bytes to the volatile image, snapshotting NVM lines for crash
    /// rollback the first time each line is dirtied.
    pub fn store_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        // Snapshot undo state for NVM lines before mutating.
        if self.layout.kind_of(pa) == Ok(MemKind::Nvm) {
            let first = pa.line_base().as_u64();
            let last = (pa.as_u64() + data.len().max(1) as u64 - 1) & !63;
            let mut line = first;
            while line <= last {
                sanitize::emit(|| Event::NvmWrite { line, cycle: 0 });
                if !self.nvm_undo.contains_key(&line) {
                    let mut snap = [0u8; 64];
                    self.load_bytes(PhysAddr::new(line), &mut snap);
                    self.nvm_undo.insert(line, snap);
                }
                line += 64;
            }
        }
        let mut addr = pa.as_u64();
        let mut done = 0usize;
        while done < data.len() {
            let pfn = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            self.page_mut(pfn)[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
            addr += chunk as u64;
        }
    }

    /// Marks the cache line containing `pa` durable (write-back reached the
    /// device). No-op for DRAM lines or lines never dirtied.
    pub fn commit_line(&mut self, pa: PhysAddr) {
        sanitize::emit(|| Event::NvmCommit { line: pa.line_base().as_u64() });
        if self.nvm_undo.remove(&pa.line_base().as_u64()).is_some() {
            self.nvm_lines_committed += 1;
        }
    }

    /// Commits every outstanding NVM line (orderly shutdown / full flush).
    pub fn commit_all(&mut self) {
        if sanitize::installed() {
            for &line in self.nvm_undo.keys() {
                sanitize::emit(|| Event::NvmCommit { line });
            }
        }
        self.nvm_lines_committed += self.nvm_undo.len() as u64;
        self.nvm_undo.clear();
    }

    /// Number of NVM lines dirtied but not yet durable.
    pub fn volatile_nvm_lines(&self) -> usize {
        self.nvm_undo.len()
    }

    /// Simulates a power failure: un-committed NVM lines revert to their
    /// durable contents, all DRAM contents are wiped, and device state is
    /// reset. Caches/TLBs are the caller's responsibility.
    pub fn crash(&mut self) {
        sanitize::emit(|| Event::Crash);
        self.crashes += 1;
        self.nvm_lines_lost_on_crash = self.nvm_undo.len() as u64;
        let undo: Vec<(u64, [u8; 64])> = std::mem::take(&mut self.nvm_undo).into_iter().collect();
        for (line, snap) in undo {
            // Restore bytes directly without creating new undo entries.
            let pfn = line >> PAGE_SHIFT;
            let off = (line & (PAGE_SIZE as u64 - 1)) as usize;
            self.page_mut(pfn)[off..off + 64].copy_from_slice(&snap);
        }
        // Wipe DRAM pages.
        let layout = self.layout.clone();
        self.pages
            .retain(|&pfn, _| layout.kind_of(PhysAddr::new(pfn << PAGE_SHIFT)) == Ok(MemKind::Nvm));
        self.dram.reset();
        self.nvm.reset();
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            dram: self.dram.stats().clone(),
            nvm: self.nvm.stats().clone(),
            nvm_lines_committed: self.nvm_lines_committed,
            nvm_lines_lost_on_crash: self.nvm_lines_lost_on_crash,
            crashes: self.crashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> (MemoryController, PhysAddr, PhysAddr) {
        let cfg = MemConfig::with_capacities(16 << 20, 16 << 20);
        let dram_pa = PhysAddr::new(0x1000);
        let nvm_pa = cfg.layout.range(MemKind::Nvm).base + 0x1000;
        (MemoryController::new(&cfg), dram_pa, nvm_pa)
    }

    #[test]
    fn dispatch_by_kind() {
        let (mut m, dram_pa, nvm_pa) = mc();
        assert_eq!(m.kind_of(dram_pa).unwrap(), MemKind::Dram);
        assert_eq!(m.kind_of(nvm_pa).unwrap(), MemKind::Nvm);
        let d = m.access(dram_pa, AccessKind::Read, Cycles::ZERO);
        let n = m.access(nvm_pa, AccessKind::Read, Cycles::ZERO);
        assert!(n > d, "nvm read ({n}) should exceed dram read ({d})");
    }

    #[test]
    fn data_round_trip_across_pages() {
        let (mut m, dram_pa, _) = mc();
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        m.store_bytes(dram_pa, &data);
        let mut back = vec![0u8; data.len()];
        m.load_bytes(dram_pa, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let (m, dram_pa, _) = mc();
        let mut buf = [0xffu8; 32];
        m.load_bytes(dram_pa, &mut buf);
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn crash_wipes_dram() {
        let (mut m, dram_pa, _) = mc();
        m.store_bytes(dram_pa, b"volatile!");
        m.crash();
        let mut buf = [0u8; 9];
        m.load_bytes(dram_pa, &mut buf);
        assert_eq!(buf, [0u8; 9]);
    }

    #[test]
    fn crash_reverts_uncommitted_nvm() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"AAAA");
        m.commit_line(nvm_pa); // durable now
        m.store_bytes(nvm_pa, b"BBBB"); // dirty, not committed
        m.crash();
        let mut buf = [0u8; 4];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"AAAA", "uncommitted write must roll back");
        assert_eq!(m.stats().nvm_lines_lost_on_crash, 1);
    }

    #[test]
    fn committed_nvm_survives_crash() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"keepme");
        m.commit_line(nvm_pa);
        m.crash();
        let mut buf = [0u8; 6];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"keepme");
    }

    #[test]
    fn commit_all_flushes_everything() {
        let (mut m, _, nvm_pa) = mc();
        for i in 0..10u64 {
            m.store_bytes(nvm_pa + i * 64, &[i as u8; 8]);
        }
        assert_eq!(m.volatile_nvm_lines(), 10);
        m.commit_all();
        assert_eq!(m.volatile_nvm_lines(), 0);
        m.crash();
        let mut b = [0u8; 1];
        m.load_bytes(nvm_pa + 9 * 64, &mut b);
        assert_eq!(b[0], 9);
    }

    #[test]
    fn undo_snapshot_taken_once_per_line() {
        let (mut m, _, nvm_pa) = mc();
        m.store_bytes(nvm_pa, b"first");
        m.commit_line(nvm_pa);
        m.store_bytes(nvm_pa, b"second");
        m.store_bytes(nvm_pa, b"third!"); // same line, snapshot must stay "first"
        m.crash();
        let mut buf = [0u8; 5];
        m.load_bytes(nvm_pa, &mut buf);
        assert_eq!(&buf, b"first");
    }
}
