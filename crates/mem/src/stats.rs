//! Aggregated memory-system statistics.

use crate::dram::DramStats;
use crate::nvm::{MediaStats, NvmStats};

/// Roll-up of DRAM and NVM device statistics plus controller counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// DRAM device stats.
    pub dram: DramStats,
    /// NVM device stats.
    pub nvm: NvmStats,
    /// Media-fault model counters (all zero when fault injection is off).
    pub media: MediaStats,
    /// Cache-line write-backs committed to the durable NVM image.
    pub nvm_lines_committed: u64,
    /// NVM lines reverted to their durable value on the last crash.
    pub nvm_lines_lost_on_crash: u64,
    /// NVM lines left partially written (8-byte torn) by the last crash.
    pub nvm_lines_torn_on_crash: u64,
    /// NVM write retries charged by the media-fault retry policy.
    pub nvm_write_retries: u64,
    /// NVM frames declared failed (retries exhausted) and queued for
    /// OS retirement.
    pub nvm_frames_failed: u64,
    /// Number of crash events.
    pub crashes: u64,
}

impl MemStats {
    /// Total accesses across both devices.
    pub fn total_accesses(&self) -> u64 {
        self.dram.reads + self.dram.writes + self.nvm.reads + self.nvm.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_both_devices() {
        let mut s = MemStats::default();
        s.dram.reads = 3;
        s.nvm.writes = 4;
        assert_eq!(s.total_accesses(), 7);
    }
}
