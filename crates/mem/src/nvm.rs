//! PCM NVM timing model: asymmetric latencies and a draining write buffer.

use std::collections::VecDeque;

use kindle_types::{AccessKind, Cycles, PhysAddr};

use crate::config::NvmConfig;

/// Per-device NVM statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NvmStats {
    /// Array reads serviced.
    pub reads: u64,
    /// Reads forwarded from the write buffer.
    pub forwarded_reads: u64,
    /// Writes accepted.
    pub writes: u64,
    /// Writes that found the buffer full and stalled.
    pub write_stalls: u64,
    /// Cycles the requester spent stalled on a full write buffer.
    pub stall_cycles: Cycles,
    /// Total cycles of latency handed out.
    pub busy_cycles: Cycles,
}

/// A PCM device.
///
/// Writes are absorbed by a write buffer of `cfg.write_buffer` entries and
/// drained serially at the (slow) cell-write service latency; a write that
/// finds the buffer full stalls the requester until the oldest entry drains.
/// Reads check the write buffer first (forwarding), then pay the array read
/// latency. This reproduces the behaviour that matters in the paper: bursts
/// of NVM writes (checkpoints, logging, page-table updates in the
/// *persistent* scheme) are cheap while short, then hit a drain-rate wall.
#[derive(Clone, Debug)]
pub struct NvmDevice {
    cfg: NvmConfig,
    /// Completion time of each in-flight buffered write, oldest first,
    /// paired with the line address it targets.
    write_queue: VecDeque<(Cycles, u64)>,
    stats: NvmStats,
}

impl NvmDevice {
    /// Creates an idle device.
    pub fn new(cfg: NvmConfig) -> Self {
        NvmDevice {
            write_queue: VecDeque::with_capacity(cfg.write_buffer),
            cfg,
            stats: NvmStats::default(),
        }
    }

    /// Drops completed writes from the queue head.
    fn drain(&mut self, now: Cycles) {
        while let Some(&(done, _)) = self.write_queue.front() {
            if done <= now {
                self.write_queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// Services one cache-line access and returns its latency.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, now: Cycles) -> Cycles {
        self.drain(now);
        let line = pa.line_base().as_u64();
        let lat = match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                if self.write_queue.iter().any(|&(_, l)| l == line) {
                    self.stats.forwarded_reads += 1;
                    Cycles::from_nanos(self.cfg.forward_ns)
                } else {
                    Cycles::from_nanos(self.cfg.read_ns)
                }
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                let mut lat = Cycles::from_nanos(self.cfg.buffer_insert_ns);
                let mut effective_now = now;
                if self.write_queue.len() >= self.cfg.write_buffer {
                    // Stall until the oldest entry drains.
                    let (oldest, _) = self.write_queue.pop_front().expect("non-empty queue");
                    let stall = oldest.saturating_sub(now);
                    self.stats.write_stalls += 1;
                    self.stats.stall_cycles += stall;
                    lat += stall;
                    effective_now = effective_now.max(oldest);
                }
                // Banked drain: writes complete one inter-bank gap after the
                // previous one (or a full service time from idle).
                let gap = Cycles::from_nanos(
                    (self.cfg.write_service_ns / self.cfg.write_banks.max(1) as u64).max(1),
                );
                let done = match self.write_queue.back() {
                    Some(&(prev, _)) => prev.max(effective_now) + gap,
                    None => effective_now + Cycles::from_nanos(self.cfg.write_service_ns),
                };
                self.write_queue.push_back((done, line));
                lat
            }
        };
        self.stats.busy_cycles += lat;
        lat
    }

    /// Latency of waiting for the entire write buffer to drain (used by
    /// fence-like operations that require durability of all prior writes).
    pub fn drain_latency(&mut self, now: Cycles) -> Cycles {
        self.drain(now);
        let done = self.write_queue.back().map(|&(d, _)| d).unwrap_or(Cycles::ZERO);
        let wait = done.saturating_sub(now);
        self.write_queue.clear();
        wait
    }

    /// Number of writes currently buffered (after draining completed ones).
    pub fn pending_writes(&mut self, now: Cycles) -> usize {
        self.drain(now);
        self.write_queue.len()
    }

    /// Device statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Power-cycle: in-flight buffered writes are lost (the controller's
    /// durability image decides what data survived).
    pub fn reset(&mut self) {
        self.write_queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmDevice {
        NvmDevice::new(NvmConfig::default())
    }

    #[test]
    fn read_slower_than_buffered_write() {
        let mut d = dev();
        let w = d.access(PhysAddr::new(0), AccessKind::Write, Cycles::ZERO);
        let r = d.access(PhysAddr::new(4096), AccessKind::Read, Cycles::ZERO);
        assert!(w < r, "buffered write ({w}) should beat array read ({r})");
    }

    #[test]
    fn read_forwards_from_write_buffer() {
        let mut d = dev();
        d.access(PhysAddr::new(128), AccessKind::Write, Cycles::ZERO);
        let r = d.access(PhysAddr::new(128), AccessKind::Read, Cycles::ZERO);
        assert_eq!(r, Cycles::from_nanos(NvmConfig::default().forward_ns));
        assert_eq!(d.stats().forwarded_reads, 1);
    }

    #[test]
    fn write_burst_stalls_when_buffer_full() {
        let cfg = NvmConfig::default();
        let mut d = NvmDevice::new(cfg.clone());
        let now = Cycles::ZERO;
        for i in 0..cfg.write_buffer {
            let lat = d.access(PhysAddr::new(64 * i as u64), AccessKind::Write, now);
            assert_eq!(lat, Cycles::from_nanos(cfg.buffer_insert_ns));
        }
        let lat = d.access(PhysAddr::new(1 << 20), AccessKind::Write, now);
        assert!(
            lat > Cycles::from_nanos(cfg.write_service_ns / 2),
            "49th write at t=0 should stall on the drain: {lat}"
        );
        assert_eq!(d.stats().write_stalls, 1);
    }

    #[test]
    fn buffer_drains_over_time() {
        let cfg = NvmConfig::default();
        let mut d = NvmDevice::new(cfg.clone());
        for i in 0..cfg.write_buffer {
            d.access(PhysAddr::new(64 * i as u64), AccessKind::Write, Cycles::ZERO);
        }
        assert_eq!(d.pending_writes(Cycles::ZERO), cfg.write_buffer);
        let much_later = Cycles::from_millis(1);
        assert_eq!(d.pending_writes(much_later), 0);
        // After draining, a write is cheap again.
        let lat = d.access(PhysAddr::new(0), AccessKind::Write, much_later);
        assert_eq!(lat, Cycles::from_nanos(cfg.buffer_insert_ns));
    }

    #[test]
    fn drain_latency_waits_for_all() {
        let mut d = dev();
        for i in 0..10u64 {
            d.access(PhysAddr::new(64 * i), AccessKind::Write, Cycles::ZERO);
        }
        let cfg = NvmConfig::default();
        let gap = cfg.write_service_ns / cfg.write_banks as u64;
        let min_drain = cfg.write_service_ns + 9 * gap;
        let wait = d.drain_latency(Cycles::ZERO);
        assert!(wait >= Cycles::from_nanos(min_drain), "drain {wait} too short");
        assert_eq!(d.pending_writes(Cycles::ZERO), 0);
    }
}
