//! PCM NVM timing model: asymmetric latencies and a draining write buffer,
//! plus the deterministic media-fault model (wear-out and stuck-at cells).

use std::collections::VecDeque;

use kindle_types::rng::Rng64;
use kindle_types::{checksum64, AccessKind, Cycles, LineTable, PhysAddr, CACHE_LINE};

use crate::config::{MediaFaultConfig, NvmConfig};

/// Per-device NVM statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NvmStats {
    /// Array reads serviced.
    pub reads: u64,
    /// Reads forwarded from the write buffer.
    pub forwarded_reads: u64,
    /// Writes accepted.
    pub writes: u64,
    /// Writes that found the buffer full and stalled.
    pub write_stalls: u64,
    /// Cycles the requester spent stalled on a full write buffer.
    pub stall_cycles: Cycles,
    /// Total cycles of latency handed out.
    pub busy_cycles: Cycles,
}

/// A PCM device.
///
/// Writes are absorbed by a write buffer of `cfg.write_buffer` entries and
/// drained serially at the (slow) cell-write service latency; a write that
/// finds the buffer full stalls the requester until the oldest entry drains.
/// Reads check the write buffer first (forwarding), then pay the array read
/// latency. This reproduces the behaviour that matters in the paper: bursts
/// of NVM writes (checkpoints, logging, page-table updates in the
/// *persistent* scheme) are cheap while short, then hit a drain-rate wall.
#[derive(Clone, Debug)]
pub struct NvmDevice {
    cfg: NvmConfig,
    /// Completion time of each in-flight buffered write, oldest first,
    /// paired with the line address it targets.
    write_queue: VecDeque<(Cycles, u64)>,
    stats: NvmStats,
}

impl NvmDevice {
    /// Creates an idle device.
    pub fn new(cfg: NvmConfig) -> Self {
        NvmDevice {
            write_queue: VecDeque::with_capacity(cfg.write_buffer),
            cfg,
            stats: NvmStats::default(),
        }
    }

    /// Drops completed writes from the queue head.
    fn drain(&mut self, now: Cycles) {
        while let Some(&(done, _)) = self.write_queue.front() {
            if done <= now {
                self.write_queue.pop_front();
            } else {
                break;
            }
        }
    }

    /// Services one cache-line access and returns its latency.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind, now: Cycles) -> Cycles {
        self.drain(now);
        let line = pa.line_base().as_u64();
        let lat = match kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                if self.write_queue.iter().any(|&(_, l)| l == line) {
                    self.stats.forwarded_reads += 1;
                    Cycles::from_nanos(self.cfg.forward_ns)
                } else {
                    Cycles::from_nanos(self.cfg.read_ns)
                }
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                let mut lat = Cycles::from_nanos(self.cfg.buffer_insert_ns);
                let mut effective_now = now;
                if self.write_queue.len() >= self.cfg.write_buffer {
                    // Stall until the oldest entry drains.
                    let (oldest, _) = self.write_queue.pop_front().expect("non-empty queue");
                    let stall = oldest.saturating_sub(now);
                    self.stats.write_stalls += 1;
                    self.stats.stall_cycles += stall;
                    lat += stall;
                    effective_now = effective_now.max(oldest);
                }
                // Banked drain: writes complete one inter-bank gap after the
                // previous one (or a full service time from idle).
                let gap = Cycles::from_nanos(
                    (self.cfg.write_service_ns / self.cfg.write_banks.max(1) as u64).max(1),
                );
                let done = match self.write_queue.back() {
                    Some(&(prev, _)) => prev.max(effective_now) + gap,
                    None => effective_now + Cycles::from_nanos(self.cfg.write_service_ns),
                };
                self.write_queue.push_back((done, line));
                lat
            }
        };
        self.stats.busy_cycles += lat;
        lat
    }

    /// Latency of waiting for the entire write buffer to drain (used by
    /// fence-like operations that require durability of all prior writes).
    pub fn drain_latency(&mut self, now: Cycles) -> Cycles {
        self.drain(now);
        let done = self.write_queue.back().map(|&(d, _)| d).unwrap_or(Cycles::ZERO);
        let wait = done.saturating_sub(now);
        self.write_queue.clear();
        wait
    }

    /// Number of writes currently buffered (after draining completed ones).
    pub fn pending_writes(&mut self, now: Cycles) -> usize {
        self.drain(now);
        self.write_queue.len()
    }

    /// Line addresses still buffered at `now`, oldest first. A power cut
    /// loses (or tears, for the entries mid-service in the banks) exactly
    /// these lines.
    pub fn pending_lines(&mut self, now: Cycles) -> Vec<u64> {
        self.drain(now);
        self.write_queue.iter().map(|&(_, l)| l).collect()
    }

    /// Number of independent write banks (≥ 1).
    pub fn banks(&self) -> usize {
        self.cfg.write_banks.max(1)
    }

    /// Device statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Power-cycle: in-flight buffered writes are lost (the controller's
    /// durability image decides what data survived).
    pub fn reset(&mut self) {
        self.write_queue.clear();
    }
}

/// Outcome of one cell-write attempt under the media-fault model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The cells took the write.
    Ok,
    /// The write failed this attempt; a bounded retry may succeed.
    Transient,
    /// The line is past its endurance budget; writes can never succeed.
    WornOut,
}

/// Counters for the media-fault model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MediaStats {
    /// Write attempts that failed transiently (and were retried).
    pub transient_failures: u64,
    /// Lines that crossed their endurance budget.
    pub lines_worn_out: u64,
    /// Writes that landed in a line with a stuck-at cell.
    pub stuck_line_writes: u64,
    /// ECP correction entries allocated (each permanently heals one cell).
    pub corrections_allocated: u64,
    /// Writes that landed in a line whose stuck cells exceed the ECP
    /// budget: the stored data is corrupted and the frame must be retired.
    pub uncorrectable_line_writes: u64,
}

/// Outcome of asking the ECP layer to cover a line's stuck cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorrectionOutcome {
    /// No stuck cells in the line; nothing to correct.
    Clean,
    /// Every stuck cell is covered by a correction entry
    /// (`newly_allocated` of them were consumed by this call).
    Corrected {
        /// Correction entries allocated by this call (0 = already covered).
        newly_allocated: u32,
    },
    /// The line needs more correction entries than the per-line budget.
    Exhausted {
        /// Stuck cells in the line.
        cells: u32,
        /// The configured per-line correction-entry budget.
        budget: u32,
    },
}

/// Deterministic NVM media faults: per-line wear counters with jittered
/// endurance budgets, a soft-failure zone near end of life, and stuck-at
/// bit cells seeded over the NVM range. All decisions derive from the
/// config seed, so a run's fault history is exactly reproducible.
///
/// Wear and stuck state live in direct-indexed [`LineTable`]s keyed by the
/// line's offset into the NVM range; a line is worn exactly when its write
/// count has reached its (frozen-at-limit) endurance budget, so no
/// separate worn set is needed.
#[derive(Clone, Debug)]
pub struct MediaFaults {
    cfg: MediaFaultConfig,
    rng: Rng64,
    /// Base physical address of the NVM range the tables index.
    nvm_base: u64,
    /// Number of cache lines in the NVM range.
    nvm_lines: u64,
    /// Write count per line (counts freeze once the budget is reached).
    wear: LineTable,
    /// Stuck cells, up to [`CELLS_PER_LINE`] packed per entry (see
    /// [`encode_cell`]); 0 = none.
    stuck: LineTable,
    /// ECP correction entries allocated per line. The first `n` stuck
    /// cells (in slot order) are permanently healed; allocation is capped
    /// by `cfg.correction_entries`.
    corrected: LineTable,
    stats: MediaStats,
}

impl MediaFaults {
    /// Creates the model, scattering `cfg.stuck_cells` stuck bits across
    /// the NVM range `[nvm_base, nvm_base + nvm_size)`. Cells landing in
    /// the same line stack (up to [`CELLS_PER_LINE`]), which is how a
    /// line can come to need more correction entries than its budget.
    pub fn new(cfg: MediaFaultConfig, nvm_base: u64, nvm_size: u64) -> Self {
        let mut rng = Rng64::new(cfg.seed);
        let mut stuck = LineTable::default();
        let lines = (nvm_size / CACHE_LINE as u64).max(1);
        for _ in 0..cfg.stuck_cells {
            let idx = rng.gen_below(lines) as usize;
            let bit = rng.gen_below(8 * CACHE_LINE as u64);
            let val = rng.gen_below(2);
            stuck.set(idx, append_cell(stuck.get(idx), encode_cell(bit as u32, val == 1)));
        }
        MediaFaults {
            cfg,
            rng,
            nvm_base,
            nvm_lines: lines,
            wear: LineTable::default(),
            stuck,
            corrected: LineTable::default(),
            stats: MediaStats::default(),
        }
    }

    /// Places one stuck cell directly: bit `bit` (0..512) of the line
    /// holding physical address `line` sticks at `val`. Returns `false`
    /// (placing nothing) outside the NVM range or once the line already
    /// carries [`CELLS_PER_LINE`] cells. Directed fault-injection
    /// harnesses use this to corrupt a *chosen* structure — e.g. every
    /// line of a page-table frame — which uniform seeding cannot arrange.
    pub fn add_stuck_cell(&mut self, line: u64, bit: u32, val: bool) -> bool {
        let Some(idx) = self.line_index(line) else {
            return false;
        };
        let before = self.stuck.get(idx);
        let after = append_cell(before, encode_cell(bit, val));
        self.stuck.set(idx, after);
        after != before
    }

    /// The line's index into the tables, or `None` outside the NVM range.
    fn line_index(&self, line: u64) -> Option<usize> {
        let off = line.checked_sub(self.nvm_base)?;
        let idx = off / CACHE_LINE as u64;
        (idx < self.nvm_lines).then_some(idx as usize)
    }

    /// Per-line endurance budget: the configured mean plus a deterministic
    /// ±12.5% jitter derived from the line address, so lines do not all
    /// fail in the same burst.
    fn endurance(&self, line: u64) -> u64 {
        let span = (self.cfg.wear_limit / 4).max(1);
        let jitter = checksum64(&[self.cfg.seed, line]) % span;
        self.cfg.wear_limit - span / 2 + jitter
    }

    /// Records one write attempt to `line` and rolls its outcome. Retries
    /// count as further attempts (they wear the cells too).
    pub fn on_write(&mut self, line: u64) -> WriteOutcome {
        if self.cfg.wear_limit == 0 {
            return WriteOutcome::Ok;
        }
        let Some(idx) = self.line_index(line) else {
            return WriteOutcome::Ok;
        };
        let limit = self.endurance(line);
        let count = self.wear.get(idx);
        if count >= limit {
            // Already past the budget; the count froze when it got there.
            return WriteOutcome::WornOut;
        }
        let count = count + 1;
        self.wear.set(idx, count);
        if count >= limit {
            self.stats.lines_worn_out += 1;
            return WriteOutcome::WornOut;
        }
        // Soft-failure zone: the last tenth of the budget fails with
        // probability ramping linearly from 0 to 1.
        let soft = limit - limit / 10;
        if count > soft && self.rng.gen_below(limit - soft) < count - soft {
            self.stats.transient_failures += 1;
            return WriteOutcome::Transient;
        }
        WriteOutcome::Ok
    }

    /// Stuck cells in `line` that are NOT healed by a correction entry,
    /// in slot order. `None` (without counting a stuck write) when the
    /// line has no stuck cells at all; an empty vec means every cell is
    /// covered and stored data is trustworthy.
    pub fn uncorrected_stuck_in_line(&mut self, line: u64) -> Option<Vec<(u32, bool)>> {
        let idx = self.line_index(line)?;
        let e = self.stuck.get(idx);
        if e == 0 {
            return None;
        }
        self.stats.stuck_line_writes += 1;
        let healed = self.corrected.get(idx) as usize;
        Some(decode_cells(e).skip(healed).collect())
    }

    /// Every stuck cell in `line` (healed or not), in slot order, without
    /// counting a stuck write. Patrol scrub uses the positions as erasures
    /// when reconstructing a checksum-mismatched line: any stuck position's
    /// stored bit is suspect, whether or not ECP covers it today.
    pub fn stuck_cells_in_line(&self, line: u64) -> Vec<(u32, bool)> {
        match self.line_index(line) {
            Some(idx) => decode_cells(self.stuck.get(idx)).collect(),
            None => Vec::new(),
        }
    }

    /// Asks the ECP layer to cover every stuck cell in `line`: correction
    /// entries are allocated (within the per-line budget) for cells not
    /// already healed. An allocation is permanent — the entry replaces the
    /// stuck cell for the rest of the device's life.
    pub fn correct_line(&mut self, line: u64) -> CorrectionOutcome {
        let Some(idx) = self.line_index(line) else {
            return CorrectionOutcome::Clean;
        };
        let e = self.stuck.get(idx);
        if e == 0 {
            return CorrectionOutcome::Clean;
        }
        let cells = decode_cells(e).count() as u32;
        let have = self.corrected.get(idx) as u32;
        if cells <= have {
            return CorrectionOutcome::Corrected { newly_allocated: 0 };
        }
        if cells > self.cfg.correction_entries {
            self.stats.uncorrectable_line_writes += 1;
            return CorrectionOutcome::Exhausted { cells, budget: self.cfg.correction_entries };
        }
        let newly = cells - have;
        self.corrected.set(idx, u64::from(cells));
        self.stats.corrections_allocated += u64::from(newly);
        CorrectionOutcome::Corrected { newly_allocated: newly }
    }

    /// True when ECP correction is enabled (a non-zero per-line budget).
    pub fn correction_enabled(&self) -> bool {
        self.cfg.correction_entries > 0
    }

    /// True once `line` is past its endurance budget.
    pub fn is_worn(&self, line: u64) -> bool {
        if self.cfg.wear_limit == 0 {
            return false;
        }
        match self.line_index(line) {
            Some(idx) => self.wear.get(idx) >= self.endurance(line),
            None => false,
        }
    }

    /// All seeded stuck cells, one tuple per cell: line base address →
    /// (bit index, value), in address then slot order.
    pub fn stuck_cells(&self) -> Vec<(u64, (u32, bool))> {
        self.stuck
            .iter_set()
            .flat_map(|(idx, e)| {
                let base = self.nvm_base + idx as u64 * CACHE_LINE as u64;
                decode_cells(e).map(move |cell| (base, cell))
            })
            .collect()
    }

    /// Fault-model counters.
    pub fn stats(&self) -> &MediaStats {
        &self.stats
    }
}

/// Stuck cells tracked per line (packed 16 bits each into one table entry).
/// Matches the granularity real ECP proposals reason about: a handful of
/// failed cells per 64-byte line before the line must be retired.
pub const CELLS_PER_LINE: usize = 4;

/// Packs one stuck cell into a 16-bit slot: valid flag (bit 15), stuck
/// value (bit 14), bit index within the line (0..512) in the low 9 bits.
fn encode_cell(bit: u32, val: bool) -> u64 {
    0x8000 | (u64::from(val) << 14) | u64::from(bit & 0x1ff)
}

/// Appends `cell` to packed entry `e` in the first free slot. A full entry
/// is returned unchanged (further cells in an already-dead line change
/// nothing observable: the line is uncorrectable either way).
fn append_cell(e: u64, cell: u64) -> u64 {
    for slot in 0..CELLS_PER_LINE {
        if (e >> (16 * slot)) & 0x8000 == 0 {
            return e | (cell << (16 * slot));
        }
    }
    e
}

/// Decodes the packed stuck cells of entry `e` as (bit index, value), in
/// slot order (the order ECP entries are consumed in).
fn decode_cells(e: u64) -> impl Iterator<Item = (u32, bool)> {
    (0..CELLS_PER_LINE).filter_map(move |slot| {
        let s = (e >> (16 * slot)) & 0xffff;
        (s & 0x8000 != 0).then(|| ((s & 0x1ff) as u32, (s >> 14) & 1 == 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmDevice {
        NvmDevice::new(NvmConfig::default())
    }

    #[test]
    fn read_slower_than_buffered_write() {
        let mut d = dev();
        let w = d.access(PhysAddr::new(0), AccessKind::Write, Cycles::ZERO);
        let r = d.access(PhysAddr::new(4096), AccessKind::Read, Cycles::ZERO);
        assert!(w < r, "buffered write ({w}) should beat array read ({r})");
    }

    #[test]
    fn read_forwards_from_write_buffer() {
        let mut d = dev();
        d.access(PhysAddr::new(128), AccessKind::Write, Cycles::ZERO);
        let r = d.access(PhysAddr::new(128), AccessKind::Read, Cycles::ZERO);
        assert_eq!(r, Cycles::from_nanos(NvmConfig::default().forward_ns));
        assert_eq!(d.stats().forwarded_reads, 1);
    }

    #[test]
    fn write_burst_stalls_when_buffer_full() {
        let cfg = NvmConfig::default();
        let mut d = NvmDevice::new(cfg.clone());
        let now = Cycles::ZERO;
        for i in 0..cfg.write_buffer {
            let lat = d.access(PhysAddr::new(64 * i as u64), AccessKind::Write, now);
            assert_eq!(lat, Cycles::from_nanos(cfg.buffer_insert_ns));
        }
        let lat = d.access(PhysAddr::new(1 << 20), AccessKind::Write, now);
        assert!(
            lat > Cycles::from_nanos(cfg.write_service_ns / 2),
            "49th write at t=0 should stall on the drain: {lat}"
        );
        assert_eq!(d.stats().write_stalls, 1);
    }

    #[test]
    fn buffer_drains_over_time() {
        let cfg = NvmConfig::default();
        let mut d = NvmDevice::new(cfg.clone());
        for i in 0..cfg.write_buffer {
            d.access(PhysAddr::new(64 * i as u64), AccessKind::Write, Cycles::ZERO);
        }
        assert_eq!(d.pending_writes(Cycles::ZERO), cfg.write_buffer);
        let much_later = Cycles::from_millis(1);
        assert_eq!(d.pending_writes(much_later), 0);
        // After draining, a write is cheap again.
        let lat = d.access(PhysAddr::new(0), AccessKind::Write, much_later);
        assert_eq!(lat, Cycles::from_nanos(cfg.buffer_insert_ns));
    }

    #[test]
    fn pending_lines_match_queue_order() {
        let mut d = dev();
        for i in 0..5u64 {
            d.access(PhysAddr::new(64 * i), AccessKind::Write, Cycles::ZERO);
        }
        assert_eq!(d.pending_lines(Cycles::ZERO), vec![0, 64, 128, 192, 256]);
        assert!(d.pending_lines(Cycles::from_millis(1)).is_empty());
    }

    #[test]
    fn wear_out_is_permanent_and_deterministic() {
        let cfg = MediaFaultConfig { wear_limit: 64, ..MediaFaultConfig::with_seed(7) };
        let mut a = MediaFaults::new(cfg.clone(), 0, 1 << 20);
        let mut b = MediaFaults::new(cfg, 0, 1 << 20);
        let mut first_fail = None;
        for i in 0..200u64 {
            let (ra, rb) = (a.on_write(0x40), b.on_write(0x40));
            assert_eq!(ra, rb, "same seed must give same outcome at write {i}");
            if ra != WriteOutcome::Ok && first_fail.is_none() {
                first_fail = Some(i);
            }
        }
        assert!(first_fail.is_some(), "64-write budget must fail within 200 writes");
        assert!(a.is_worn(0x40));
        assert_eq!(a.on_write(0x40), WriteOutcome::WornOut);
        assert!(a.stats().lines_worn_out >= 1);
    }

    #[test]
    fn zero_wear_limit_disables_wear() {
        let cfg = MediaFaultConfig { wear_limit: 0, ..MediaFaultConfig::with_seed(1) };
        let mut m = MediaFaults::new(cfg, 0, 1 << 20);
        for _ in 0..10_000 {
            assert_eq!(m.on_write(0), WriteOutcome::Ok);
        }
    }

    #[test]
    fn stuck_cells_seeded_in_range() {
        let base = 1 << 30;
        let size = 1 << 20;
        let m = MediaFaults::new(MediaFaultConfig::with_seed(3), base, size);
        let cells = m.stuck_cells();
        assert_eq!(cells.len(), MediaFaultConfig::with_seed(3).stuck_cells);
        for (line, (bit, _)) in cells {
            assert!(line >= base && line < base + size);
            assert_eq!(line % CACHE_LINE as u64, 0);
            assert!(bit < 8 * CACHE_LINE as u32);
        }
    }

    #[test]
    fn packed_cells_roundtrip_in_slot_order() {
        let mut e = 0u64;
        e = append_cell(e, encode_cell(5, true));
        e = append_cell(e, encode_cell(511, false));
        assert_eq!(decode_cells(e).collect::<Vec<_>>(), vec![(5, true), (511, false)]);
        for b in 0..3 {
            e = append_cell(e, encode_cell(b, false));
        }
        assert_eq!(decode_cells(e).count(), CELLS_PER_LINE, "overflow cells are dropped");
    }

    #[test]
    fn correct_line_allocates_within_budget() {
        let cfg = MediaFaultConfig { correction_entries: 2, ..MediaFaultConfig::with_seed(3) };
        let mut m = MediaFaults::new(cfg, 0, 1 << 20);
        assert!(m.correction_enabled());
        let (line, _) = m.stuck_cells()[0];
        assert!(matches!(
            m.correct_line(line),
            CorrectionOutcome::Corrected { newly_allocated: 1.. }
        ));
        assert!(matches!(
            m.correct_line(line),
            CorrectionOutcome::Corrected { newly_allocated: 0 }
        ));
        assert_eq!(m.uncorrected_stuck_in_line(line), Some(vec![]), "every cell healed");
        assert!(m.stats().corrections_allocated >= 1);
        assert_eq!(m.correct_line(1 << 19 | 0x3f << 6), CorrectionOutcome::Clean);
    }

    #[test]
    fn stuck_cells_in_line_is_a_pure_query() {
        let cfg = MediaFaultConfig { correction_entries: 2, ..MediaFaultConfig::with_seed(3) };
        let mut m = MediaFaults::new(cfg, 0, 1 << 20);
        let (line, cell) = m.stuck_cells()[0];
        assert!(m.stuck_cells_in_line(line).contains(&cell));
        assert_eq!(m.stats().stuck_line_writes, 0, "query must not count a stuck write");
        // Healed cells stay visible: their stored bits remain suspect.
        m.correct_line(line);
        assert!(m.stuck_cells_in_line(line).contains(&cell));
        assert!(m.stuck_cells_in_line(1 << 19 | 0x3f << 6).is_empty());
    }

    #[test]
    fn exhausted_budget_reports_uncorrectable() {
        let cfg = MediaFaultConfig { correction_entries: 0, ..MediaFaultConfig::with_seed(3) };
        let mut m = MediaFaults::new(cfg, 0, 1 << 20);
        assert!(!m.correction_enabled());
        let (line, _) = m.stuck_cells()[0];
        assert!(matches!(m.correct_line(line), CorrectionOutcome::Exhausted { budget: 0, .. }));
        assert_eq!(m.stats().uncorrectable_line_writes, 1);
        let cells = m.uncorrected_stuck_in_line(line).expect("seeded cells stay uncorrected");
        assert!(!cells.is_empty());
    }

    #[test]
    fn out_of_range_lines_never_wear() {
        let cfg = MediaFaultConfig { wear_limit: 8, ..MediaFaultConfig::with_seed(2) };
        let mut m = MediaFaults::new(cfg, 1 << 30, 1 << 20);
        for _ in 0..100 {
            assert_eq!(m.on_write(0x40), WriteOutcome::Ok, "below the NVM base");
        }
        assert!(!m.is_worn(0x40));
        assert_eq!(m.stats().lines_worn_out, 0);
    }

    #[test]
    fn drain_latency_waits_for_all() {
        let mut d = dev();
        for i in 0..10u64 {
            d.access(PhysAddr::new(64 * i), AccessKind::Write, Cycles::ZERO);
        }
        let cfg = NvmConfig::default();
        let gap = cfg.write_service_ns / cfg.write_banks as u64;
        let min_drain = cfg.write_service_ns + 9 * gap;
        let wait = d.drain_latency(Cycles::ZERO);
        assert!(wait >= Cycles::from_nanos(min_drain), "drain {wait} too short");
        assert_eq!(d.pending_writes(Cycles::ZERO), 0);
    }
}
