//! Legacy ordered-map stores for the controller's hot-path state.
//!
//! These are the original `BTreeMap`-backed implementations of the page
//! image, the per-line checksum table and the undo snapshots, kept — byte
//! for byte in behaviour — behind `MemConfig::legacy_maps` so the flat
//! direct-indexed stores in [`crate::store`] can be proven observation
//! equivalent and benchmarked against them (`hotpath` bench). This module
//! is the allowlisted cold path for the KD012 lint: ordered maps are
//! banned everywhere else in `kindle-mem`.

use std::collections::{BTreeMap, BTreeSet};

use kindle_types::PAGE_SIZE;

use crate::store::{LineSnap, PageBox};

/// The original sparse volatile page image: pfn → page, O(log n) per touch.
#[derive(Clone, Debug, Default)]
pub struct LegacyPages {
    map: BTreeMap<u64, PageBox>,
}

impl LegacyPages {
    pub fn get(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.map.get(&pfn).map(|p| &**p)
    }

    pub fn get_mut_or_alloc(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE] {
        self.map.entry(pfn).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    pub fn remove(&mut self, pfn: u64) -> Option<PageBox> {
        self.map.remove(&pfn)
    }

    pub fn insert(&mut self, pfn: u64, page: PageBox) {
        self.map.insert(pfn, page);
    }

    pub fn retain_frames(&mut self, keep: impl Fn(u64) -> bool) {
        self.map.retain(|&pfn, _| keep(pfn));
    }
}

/// The original reference-checksum map: line base address → FNV sum.
#[derive(Clone, Debug, Default)]
pub struct LegacySums {
    map: BTreeMap<u64, u64>,
}

impl LegacySums {
    pub fn get(&self, line: u64) -> Option<u64> {
        self.map.get(&line).copied()
    }

    pub fn contains(&self, line: u64) -> bool {
        self.map.contains_key(&line)
    }

    pub fn insert(&mut self, line: u64, sum: u64) {
        self.map.insert(line, sum);
    }
}

/// The original undo-snapshot map: line base address → previous durable
/// 64-byte image, with first-write-wins inserts.
#[derive(Clone, Debug, Default)]
pub struct LegacyUndo {
    map: BTreeMap<u64, LineSnap>,
}

impl LegacyUndo {
    pub fn contains(&self, line: u64) -> bool {
        self.map.contains_key(&line)
    }

    pub fn insert_absent(&mut self, line: u64, snap: LineSnap) {
        self.map.entry(line).or_insert(snap);
    }

    pub fn remove(&mut self, line: u64) -> Option<LineSnap> {
        self.map.remove(&line)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Takes every entry in ascending line order, leaving the map empty.
    pub fn drain_sorted(&mut self) -> Vec<(u64, LineSnap)> {
        std::mem::take(&mut self.map).into_iter().collect()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Keeps only the lines present in `pending` (the original
    /// `prune_wbuf_undo` set-membership retain).
    pub fn retain_pending(&mut self, pending: &[u64]) {
        let pending: BTreeSet<u64> = pending.iter().copied().collect();
        self.map.retain(|line, _| pending.contains(line));
    }
}
