//! Direct-indexed hot-path stores for the memory controller.
//!
//! Every simulated access funnels through the controller's page image,
//! and — when persistence or media faults are armed — through the undo
//! snapshots and per-line checksum table as well. Storing those in
//! ordered maps costs an O(log n) pointer-chase per touch on the single
//! hottest path of the framework. This module flattens them:
//!
//! * [`PageArena`] — a pfn-indexed chunked arena for the volatile page
//!   image (two array indexings per page lookup),
//! * a checksum store built on [`kindle_types::SumTable`] (validity bit,
//!   because 0 is a legal FNV digest),
//! * [`UndoTable`] — an epoch-tagged flat slot table plus a dirty-line
//!   list, so arming a power cut costs O(dirty lines) and a store's
//!   insert-if-absent is O(1); rollback iterates the dirty list.
//!
//! Each store also has a legacy ordered-map twin in [`crate::legacy`],
//! selected by `MemConfig::legacy_maps`, so equivalence tests and the
//! `hotpath` bench can hold the two layouts side by side. Everything
//! observable — event order, iteration order at commit/rollback, byte
//! images — is identical between the variants: wherever the old maps
//! iterated in key order, the flat stores sort the (small) live set
//! before iterating.

use kindle_types::{LineTable, SumTable, CACHE_LINE_SHIFT, PAGE_SIZE};

use crate::legacy::{LegacyPages, LegacySums, LegacyUndo};

/// A whole simulated page, boxed so map/arena moves are pointer-sized.
pub type PageBox = Box<[u8; PAGE_SIZE]>;

/// One cache line's previous durable image.
pub type LineSnap = [u8; 64];

/// Page frames per lazily allocated chunk of a [`PageArena`] (a chunk
/// spine entry covers 2 MiB of simulated memory).
const PAGES_PER_CHUNK: usize = 512;

/// A pfn-indexed chunked arena for the sparse volatile page image. The
/// spine is sized from the pool map up front; chunks allocate on first
/// touch so a machine that only ever uses a few megabytes stays small,
/// and cloning a controller (snapshot-forked sweeps) walks only the
/// chunks that exist.
#[derive(Clone, Debug, Default)]
pub struct PageArena {
    chunks: Vec<Option<Box<[Option<PageBox>; PAGES_PER_CHUNK]>>>,
}

impl PageArena {
    /// An arena covering `frames` page frames.
    pub fn with_frames(frames: u64) -> Self {
        let spine = (frames as usize).div_ceil(PAGES_PER_CHUNK);
        let mut chunks = Vec::new();
        chunks.resize_with(spine, || None);
        PageArena { chunks }
    }

    fn empty_chunk() -> Box<[Option<PageBox>; PAGES_PER_CHUNK]> {
        Box::new(std::array::from_fn(|_| None))
    }

    pub fn get(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE]> {
        match self.chunks.get(pfn as usize / PAGES_PER_CHUNK) {
            Some(Some(chunk)) => chunk[pfn as usize % PAGES_PER_CHUNK].as_deref(),
            _ => None,
        }
    }

    fn slot_mut(&mut self, pfn: u64) -> &mut Option<PageBox> {
        let c = pfn as usize / PAGES_PER_CHUNK;
        if c >= self.chunks.len() {
            // Defensive: the spine is pre-sized from the pool map, but an
            // out-of-map pfn must degrade to the map semantics, not panic.
            self.chunks.resize_with(c + 1, || None);
        }
        let chunk = self.chunks[c].get_or_insert_with(Self::empty_chunk);
        &mut chunk[pfn as usize % PAGES_PER_CHUNK]
    }

    pub fn get_mut_or_alloc(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE] {
        self.slot_mut(pfn).get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    pub fn remove(&mut self, pfn: u64) -> Option<PageBox> {
        match self.chunks.get_mut(pfn as usize / PAGES_PER_CHUNK) {
            Some(Some(chunk)) => chunk[pfn as usize % PAGES_PER_CHUNK].take(),
            _ => None,
        }
    }

    pub fn insert(&mut self, pfn: u64, page: PageBox) {
        *self.slot_mut(pfn) = Some(page);
    }

    pub fn retain_frames(&mut self, keep: impl Fn(u64) -> bool) {
        for (c, chunk) in self.chunks.iter_mut().enumerate() {
            let Some(chunk) = chunk else { continue };
            for (i, slot) in chunk.iter_mut().enumerate() {
                if slot.is_some() && !keep((c * PAGES_PER_CHUNK + i) as u64) {
                    *slot = None;
                }
            }
        }
    }
}

/// The volatile page image, in either layout.
#[derive(Clone, Debug)]
pub enum PageStore {
    Flat(PageArena),
    Legacy(LegacyPages),
}

impl PageStore {
    /// Builds the store `MemConfig::legacy_maps` asks for, sizing the flat
    /// arena's spine for `frames` page frames.
    pub fn new(legacy: bool, frames: u64) -> Self {
        if legacy {
            PageStore::Legacy(LegacyPages::default())
        } else {
            PageStore::Flat(PageArena::with_frames(frames))
        }
    }

    pub fn get(&self, pfn: u64) -> Option<&[u8; PAGE_SIZE]> {
        match self {
            PageStore::Flat(a) => a.get(pfn),
            PageStore::Legacy(m) => m.get(pfn),
        }
    }

    pub fn get_mut_or_alloc(&mut self, pfn: u64) -> &mut [u8; PAGE_SIZE] {
        match self {
            PageStore::Flat(a) => a.get_mut_or_alloc(pfn),
            PageStore::Legacy(m) => m.get_mut_or_alloc(pfn),
        }
    }

    pub fn remove(&mut self, pfn: u64) -> Option<PageBox> {
        match self {
            PageStore::Flat(a) => a.remove(pfn),
            PageStore::Legacy(m) => m.remove(pfn),
        }
    }

    pub fn insert(&mut self, pfn: u64, page: PageBox) {
        match self {
            PageStore::Flat(a) => a.insert(pfn, page),
            PageStore::Legacy(m) => m.insert(pfn, page),
        }
    }

    /// Drops every page whose pfn fails `keep` (the crash-wipe retain).
    pub fn retain_frames(&mut self, keep: impl Fn(u64) -> bool) {
        match self {
            PageStore::Flat(a) => a.retain_frames(keep),
            PageStore::Legacy(m) => m.retain_frames(keep),
        }
    }
}

/// The per-line reference checksums, in either layout. The flat side
/// indexes a [`SumTable`] by the line's offset into the NVM range; sums
/// are only ever recorded for NVM lines, so out-of-range reads simply
/// miss (matching the map).
#[derive(Clone, Debug)]
pub enum SumStore {
    Flat { base: u64, table: SumTable },
    Legacy(LegacySums),
}

impl SumStore {
    /// Builds the store for an NVM range starting at `nvm_base`.
    pub fn new(legacy: bool, nvm_base: u64) -> Self {
        if legacy {
            SumStore::Legacy(LegacySums::default())
        } else {
            SumStore::Flat { base: nvm_base, table: SumTable::default() }
        }
    }

    fn index(base: u64, line: u64) -> Option<usize> {
        line.checked_sub(base).map(|off| (off >> CACHE_LINE_SHIFT) as usize)
    }

    pub fn get(&self, line: u64) -> Option<u64> {
        match self {
            SumStore::Flat { base, table } => Self::index(*base, line).and_then(|i| table.get(i)),
            SumStore::Legacy(m) => m.get(line),
        }
    }

    pub fn contains(&self, line: u64) -> bool {
        self.get(line).is_some()
    }

    pub fn insert(&mut self, line: u64, sum: u64) {
        match self {
            SumStore::Flat { base, table } => {
                let Some(i) = Self::index(*base, line) else {
                    debug_assert!(false, "checksum recorded for non-NVM line {line:#x}");
                    return;
                };
                table.set(i, sum);
            }
            SumStore::Legacy(m) => m.insert(line, sum),
        }
    }
}

/// One undo record: the line, its previous durable image, and whether the
/// record is still live (remove tombstones instead of shifting the list).
#[derive(Clone, Debug)]
struct UndoEntry {
    line: u64,
    snap: LineSnap,
    live: bool,
}

/// Epoch-tagged flat undo store: a [`LineTable`] slot per NVM line packing
/// `(epoch << 32) | (list position + 1)`, plus the dirty-line list itself.
/// Insert-if-absent, membership and remove are O(1); `clear` is an epoch
/// bump (no per-line walk), which is what makes arming a power cut O(dirty
/// lines); rollback and commit-all iterate the live list, sorted to match
/// the ordered map's key order exactly.
#[derive(Clone, Debug)]
pub struct UndoTable {
    /// Base address of the NVM range; lines below it (DRAM write-backs
    /// probing `remove`) are simply absent.
    base: u64,
    epoch: u32,
    slots: LineTable,
    entries: Vec<UndoEntry>,
    live: usize,
}

impl UndoTable {
    pub fn with_base(base: u64) -> Self {
        UndoTable { base, epoch: 0, slots: LineTable::default(), entries: Vec::new(), live: 0 }
    }

    fn index(&self, line: u64) -> Option<usize> {
        line.checked_sub(self.base).map(|off| (off >> CACHE_LINE_SHIFT) as usize)
    }

    fn pack(&self, pos: usize) -> u64 {
        (u64::from(self.epoch) << 32) | (pos as u64 + 1)
    }

    /// The live-list position of `line`, if present this epoch.
    fn pos(&self, line: u64) -> Option<usize> {
        let v = self.slots.get(self.index(line)?);
        if v >> 32 == u64::from(self.epoch) && v & 0xffff_ffff != 0 {
            Some((v & 0xffff_ffff) as usize - 1)
        } else {
            None
        }
    }

    pub fn contains(&self, line: u64) -> bool {
        self.pos(line).is_some()
    }

    pub fn insert_absent(&mut self, line: u64, snap: LineSnap) {
        if self.contains(line) {
            return;
        }
        if self.entries.len() >= 64 && self.live * 2 < self.entries.len() {
            self.compact();
        }
        let Some(idx) = self.index(line) else {
            debug_assert!(false, "undo snapshot for non-NVM line {line:#x}");
            return;
        };
        self.entries.push(UndoEntry { line, snap, live: true });
        self.slots.set(idx, self.pack(self.entries.len() - 1));
        self.live += 1;
    }

    pub fn remove(&mut self, line: u64) -> Option<LineSnap> {
        let pos = self.pos(line)?;
        let idx = self.index(line).expect("pos implies in-range");
        self.slots.set(idx, 0);
        self.entries[pos].live = false;
        self.live -= 1;
        Some(self.entries[pos].snap)
    }

    pub fn len(&self) -> usize {
        self.live
    }

    /// Takes every live entry in ascending line order, leaving the table
    /// empty (matching the ordered map's drain order byte for byte).
    pub fn drain_sorted(&mut self) -> Vec<(u64, LineSnap)> {
        let mut out: Vec<(u64, LineSnap)> =
            self.entries.iter().filter(|e| e.live).map(|e| (e.line, e.snap)).collect();
        out.sort_unstable_by_key(|&(line, _)| line);
        self.clear();
        out
    }

    /// Forgets everything by bumping the epoch: stale slots fail the epoch
    /// check, so no per-line wipe is needed.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.live = 0;
        if self.epoch == u32::MAX {
            // One epoch wrap per 2^32 clears: pay for a real wipe so old
            // epochs can never alias.
            self.slots.clear();
            self.epoch = 0;
        } else {
            self.epoch += 1;
        }
    }

    /// Keeps only the lines present in `pending`, tombstoning the rest.
    pub fn retain_pending(&mut self, pending: &[u64]) {
        let mut pending = pending.to_vec();
        pending.sort_unstable();
        for pos in 0..self.entries.len() {
            let UndoEntry { line, live, .. } = self.entries[pos];
            if live && pending.binary_search(&line).is_err() {
                let idx = self.index(line).expect("live entry is in range");
                self.slots.set(idx, 0);
                self.entries[pos].live = false;
                self.live -= 1;
            }
        }
    }

    /// Rebuilds the live list without tombstones, re-pointing the slots.
    /// Triggered from `insert_absent` once tombstones outnumber live
    /// entries, which keeps the list O(live) amortized even under long
    /// store/commit churn between clears.
    fn compact(&mut self) {
        self.entries.retain(|e| e.live);
        if self.epoch == u32::MAX {
            self.slots.clear();
            self.epoch = 0;
        } else {
            self.epoch += 1;
        }
        for pos in 0..self.entries.len() {
            let idx = self.index(self.entries[pos].line).expect("live entry is in range");
            self.slots.set(idx, self.pack(pos));
        }
    }
}

/// Undo snapshots (`nvm_undo` / `wbuf_undo`), in either layout.
#[derive(Clone, Debug)]
pub enum UndoStore {
    Flat(UndoTable),
    Legacy(LegacyUndo),
}

impl UndoStore {
    /// Builds the store for an NVM range starting at `nvm_base`.
    pub fn new(legacy: bool, nvm_base: u64) -> Self {
        if legacy {
            UndoStore::Legacy(LegacyUndo::default())
        } else {
            UndoStore::Flat(UndoTable::with_base(nvm_base))
        }
    }

    pub fn contains(&self, line: u64) -> bool {
        match self {
            UndoStore::Flat(t) => t.contains(line),
            UndoStore::Legacy(m) => m.contains(line),
        }
    }

    /// First-write-wins insert: a line already snapshotted keeps its
    /// original (oldest) image.
    pub fn insert_absent(&mut self, line: u64, snap: LineSnap) {
        match self {
            UndoStore::Flat(t) => t.insert_absent(line, snap),
            UndoStore::Legacy(m) => m.insert_absent(line, snap),
        }
    }

    pub fn remove(&mut self, line: u64) -> Option<LineSnap> {
        match self {
            UndoStore::Flat(t) => t.remove(line),
            UndoStore::Legacy(m) => m.remove(line),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            UndoStore::Flat(t) => t.len(),
            UndoStore::Legacy(m) => m.len(),
        }
    }

    /// Takes every entry in ascending line order, leaving the store empty.
    pub fn drain_sorted(&mut self) -> Vec<(u64, LineSnap)> {
        match self {
            UndoStore::Flat(t) => t.drain_sorted(),
            UndoStore::Legacy(m) => m.drain_sorted(),
        }
    }

    pub fn clear(&mut self) {
        match self {
            UndoStore::Flat(t) => t.clear(),
            UndoStore::Legacy(m) => m.clear(),
        }
    }

    /// Keeps only the lines present in `pending`.
    pub fn retain_pending(&mut self, pending: &[u64]) {
        match self {
            UndoStore::Flat(t) => t.retain_pending(pending),
            UndoStore::Legacy(m) => m.retain_pending(pending),
        }
    }
}

/// A flat set of page frames (failed-frame dedup): a bitmap over the NVM
/// range plus a sorted overflow list for anything outside it, replacing
/// the old ordered set unconditionally — the failure path is cold, but
/// the controller is a KD012 hot-path module.
#[derive(Clone, Debug)]
pub struct FrameSet {
    base_pfn: u64,
    bits: Vec<u64>,
    overflow: Vec<u64>,
}

impl FrameSet {
    pub fn with_base(base_pfn: u64) -> Self {
        FrameSet { base_pfn, bits: Vec::new(), overflow: Vec::new() }
    }

    /// Inserts `pfn`, returning whether it was newly added.
    pub fn insert(&mut self, pfn: u64) -> bool {
        match pfn.checked_sub(self.base_pfn) {
            Some(off) => {
                let (word, bit) = (off as usize / 64, off % 64);
                if word >= self.bits.len() {
                    self.bits.resize(word + 1, 0);
                }
                let fresh = self.bits[word] >> bit & 1 == 0;
                self.bits[word] |= 1 << bit;
                fresh
            }
            None => match self.overflow.binary_search(&pfn) {
                Ok(_) => false,
                Err(at) => {
                    self.overflow.insert(at, pfn);
                    true
                }
            },
        }
    }

    pub fn clear(&mut self) {
        self.bits.clear();
        self.overflow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_matches_map_semantics() {
        let mut a = PageArena::with_frames(1024);
        assert!(a.get(0).is_none());
        assert!(a.get(5000).is_none(), "reads past the spine never allocate");
        a.get_mut_or_alloc(3)[7] = 9;
        assert_eq!(a.get(3).expect("allocated")[7], 9);
        let taken = a.remove(3).expect("present");
        assert_eq!(taken[7], 9);
        assert!(a.get(3).is_none());
        a.insert(700, taken);
        assert_eq!(a.get(700).expect("inserted")[7], 9);
        a.get_mut_or_alloc(2000); // past the pre-sized spine: grows, no panic
        assert!(a.get(2000).is_some());
        a.retain_frames(|pfn| pfn == 700);
        assert!(a.get(2000).is_none());
        assert!(a.get(700).is_some());
    }

    #[test]
    fn undo_table_matches_map_semantics() {
        let mut t = UndoTable::with_base(1 << 20);
        let line = |i: u64| (1 << 20) + 64 * i;
        assert!(!t.contains(line(0)));
        assert!(t.remove(64).is_none(), "DRAM probe below base is absent");
        t.insert_absent(line(2), [2; 64]);
        t.insert_absent(line(0), [0; 64]);
        t.insert_absent(line(2), [9; 64]); // first write wins
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(line(2)), Some([2; 64]));
        assert!(t.remove(line(2)).is_none(), "second remove misses");
        t.insert_absent(line(2), [9; 64]); // re-dirty after commit
        t.insert_absent(line(7), [7; 64]);
        assert_eq!(
            t.drain_sorted().iter().map(|&(l, s)| (l, s[0])).collect::<Vec<_>>(),
            vec![(line(0), 0), (line(2), 9), (line(7), 7)],
            "drain is ascending by line with the live images"
        );
        assert_eq!(t.len(), 0);
        assert!(!t.contains(line(0)), "epoch bump forgets old slots");
        t.insert_absent(line(1), [1; 64]);
        t.insert_absent(line(3), [3; 64]);
        t.retain_pending(&[line(3)]);
        assert_eq!(t.len(), 1);
        assert!(!t.contains(line(1)));
        assert_eq!(t.remove(line(3)), Some([3; 64]));
    }

    #[test]
    fn undo_table_compacts_tombstones() {
        let mut t = UndoTable::with_base(0);
        // Churn far past the compaction threshold: insert+remove the same
        // few lines many times. Without compaction the entry list would
        // hold one record per iteration.
        for round in 0..1000u64 {
            let line = 64 * (round % 4);
            t.insert_absent(line, [round as u8; 64]);
            assert_eq!(t.remove(line), Some([round as u8; 64]));
        }
        assert_eq!(t.len(), 0);
        assert!(t.entries.len() <= 130, "tombstones bounded, got {}", t.entries.len());
        t.insert_absent(64, [1; 64]);
        assert_eq!(t.drain_sorted().len(), 1);
    }

    #[test]
    fn frame_set_dedupes_in_and_out_of_range() {
        let mut s = FrameSet::with_base(100);
        assert!(s.insert(100));
        assert!(!s.insert(100));
        assert!(s.insert(163));
        assert!(s.insert(3), "below-base pfn goes to the overflow list");
        assert!(!s.insert(3));
        s.clear();
        assert!(s.insert(100), "clear forgets everything");
        assert!(s.insert(3));
    }
}
