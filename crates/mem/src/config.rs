//! Memory configuration, defaulting to the paper's Table I settings.

use crate::e820::E820Map;

/// Gibibyte shorthand.
pub const GIB: u64 = 1 << 30;

/// DRAM device timing and geometry (DDR4-2400-ish).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramConfig {
    /// Latency of an access that hits the open row of a bank, in ns.
    pub row_hit_ns: u64,
    /// Latency of an access that must open a new row, in ns.
    pub row_miss_ns: u64,
    /// Number of independent banks.
    pub banks: usize,
    /// Row (page) size per bank in bytes.
    pub row_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR4-2400: CAS-limited hit ~ 25 ns, full ACT+CAS ~ 50 ns.
        DramConfig { row_hit_ns: 25, row_miss_ns: 50, banks: 16, row_bytes: 8192 }
    }
}

/// NVM (PCM) device timing, based on the parameters of Song et al. that the
/// paper cites for its gem5 PCM interface.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NvmConfig {
    /// Array read latency in ns.
    pub read_ns: u64,
    /// Cell write (service) latency in ns — PCM writes are slow.
    pub write_service_ns: u64,
    /// Entries in the write buffer (Table I: 48).
    pub write_buffer: usize,
    /// Independent write banks draining the buffer in parallel (sustained
    /// write throughput = banks / write_service_ns).
    pub write_banks: usize,
    /// Entries in the read buffer (Table I: 64).
    pub read_buffer: usize,
    /// Cost of inserting a write into a non-full buffer, in ns.
    pub buffer_insert_ns: u64,
    /// Latency of a read forwarded from a pending buffered write, in ns.
    pub forward_ns: u64,
}

impl NvmConfig {
    /// Phase-change memory — the paper's Table I configuration (timings
    /// after Song et al.). This is the default.
    pub fn pcm() -> Self {
        NvmConfig {
            read_ns: 150,
            write_service_ns: 500,
            write_buffer: 48,
            write_banks: 8,
            read_buffer: 64,
            buffer_insert_ns: 10,
            forward_ns: 30,
        }
    }

    /// STT-MRAM: near-DRAM reads, moderately slow writes.
    pub fn stt_mram() -> Self {
        NvmConfig { read_ns: 35, write_service_ns: 100, ..Self::pcm() }
    }

    /// ReRAM: between PCM and STT-MRAM on both paths.
    pub fn reram() -> Self {
        NvmConfig { read_ns: 100, write_service_ns: 300, ..Self::pcm() }
    }

    /// Optane-DC-like: slow loaded reads, writes absorbed by a large
    /// on-DIMM buffer draining fast.
    pub fn optane_dc() -> Self {
        NvmConfig {
            read_ns: 300,
            write_service_ns: 100,
            write_buffer: 64,
            write_banks: 8,
            ..Self::pcm()
        }
    }

    /// All named technology profiles with labels (for sweeps).
    ///
    /// Delegates to the backend registry so a preset can never drift
    /// from its [`crate::backend::MemoryBackend`] instance — the
    /// registry is the single source of truth for both.
    pub fn technologies() -> Vec<(&'static str, NvmConfig)> {
        crate::backend::Backend::registry()
            .iter()
            .map(|b| b.instance())
            .filter(|i| i.is_nvm_technology())
            .map(|i| (i.label(), i.timing()))
            .collect()
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        Self::pcm()
    }
}

/// Deterministic NVM media-fault model: per-line wear-out plus stuck-at
/// cells. All randomness is derived from `seed` through the in-tree
/// `Rng64`, so a given seed reproduces the exact same fault history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MediaFaultConfig {
    /// Seed for fault placement and transient-failure rolls.
    pub seed: u64,
    /// Mean per-line write endurance. A line's writes start failing inside
    /// the last tenth of its (jittered) endurance budget and fail
    /// permanently beyond it. `0` disables wear-out.
    pub wear_limit: u64,
    /// Number of stuck-at bit cells scattered over the NVM range.
    pub stuck_cells: usize,
    /// Write retries the controller attempts before declaring the line's
    /// frame failed.
    pub retry_limit: u32,
    /// Extra latency charged per retry, in nanoseconds (bounded backoff).
    pub retry_backoff_ns: u64,
    /// ECP-style correction entries available per cache line. Each entry
    /// permanently replaces one stuck cell; a line needing more than this
    /// budget stays corrupted and its frame must be retired. `0` (the
    /// default) disables correction, reproducing raw stuck-at corruption.
    pub correction_entries: u32,
}

impl MediaFaultConfig {
    /// Default model for a given seed: endurance low enough that sustained
    /// test workloads actually wear lines out, a handful of stuck cells,
    /// and a short bounded retry loop.
    pub fn with_seed(seed: u64) -> Self {
        MediaFaultConfig {
            seed,
            wear_limit: 4096,
            stuck_cells: 4,
            retry_limit: 3,
            retry_backoff_ns: 200,
            correction_entries: 0,
        }
    }
}

/// Complete memory-system configuration: device timings plus the physical
/// layout (which address ranges are DRAM vs. NVM).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemConfig {
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// NVM timing/buffering.
    pub nvm: NvmConfig,
    /// Physical address layout.
    pub layout: E820Map,
    /// Optional NVM media-fault injection (off by default).
    pub faults: Option<MediaFaultConfig>,
    /// Single-entry MRU page cache in front of the controller's page map
    /// (on by default; off exists so equivalence tests can prove the fast
    /// path changes no observable output).
    pub mru_page_cache: bool,
    /// Use the legacy ordered-map stores for pages, checksums and undo
    /// state instead of the direct-indexed flat tables (off by default;
    /// on exists so equivalence tests and the `hotpath` bench can prove
    /// the flat layout changes no observable output).
    pub legacy_maps: bool,
    /// Far-tier backend selection. `None` (the default) means PCM with
    /// this config's `nvm` timings — byte-identical to the pre-trait
    /// path. `Some(b)` routes timing, fault filtering, patrol
    /// capability and access penalties through `b`'s
    /// [`crate::backend::MemoryBackend`] instance.
    pub backend: Option<crate::backend::Backend>,
}

impl MemConfig {
    /// Builds a config with the given capacities and default timings.
    /// DRAM occupies `[0, dram_bytes)`, NVM follows contiguously — the same
    /// flat-address-mode partitioning Kindle inserts into the gem5 e820 map.
    pub fn with_capacities(dram_bytes: u64, nvm_bytes: u64) -> Self {
        MemConfig {
            dram: DramConfig::default(),
            nvm: NvmConfig::default(),
            layout: E820Map::flat(dram_bytes, nvm_bytes),
            faults: None,
            mru_page_cache: true,
            legacy_maps: false,
            backend: None,
        }
    }
}

impl Default for MemConfig {
    /// Table I: 3 GB DRAM + 2 GB NVM.
    fn default() -> Self {
        MemConfig::with_capacities(3 * GIB, 2 * GIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::MemKind;

    #[test]
    fn default_matches_table_i() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.nvm.write_buffer, 48);
        assert_eq!(cfg.nvm.read_buffer, 64);
        assert_eq!(cfg.layout.range(MemKind::Dram).size, 3 * GIB);
        assert_eq!(cfg.layout.range(MemKind::Nvm).size, 2 * GIB);
    }

    #[test]
    fn nvm_write_slower_than_read() {
        let cfg = NvmConfig::default();
        assert!(cfg.write_service_ns > cfg.read_ns);
    }
}
