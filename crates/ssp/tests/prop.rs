//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for SSP's routing algebra and metadata cache.

use proptest::prelude::*;

use kindle_os::Region;
use kindle_ssp::{SspCache, SspCacheEntry};
use kindle_tlb::SspTlbExt;
use kindle_types::physmem::FlatMem;
use kindle_types::{Pfn, PhysAddr, Vpn};

proptest! {
    /// Routing invariant: for any bitmap state and line, a write goes to
    /// the opposite side of the committed copy, and a read after that
    /// write (same interval) observes the written side.
    #[test]
    fn write_then_read_same_interval_sees_new_data(
        current in any::<u64>(),
        line in 0usize..64,
    ) {
        let orig = Pfn::new(10);
        let shadow = Pfn::new(20);
        let mut ext = SspTlbExt { shadow_pfn: shadow, updated: 0, current };
        let target = ext.write_target(orig, line);
        ext.updated |= 1 << line;
        prop_assert_eq!(ext.read_target(orig, line), target);
        // And the two sides really are opposite.
        let committed = if current >> line & 1 == 1 { shadow } else { orig };
        prop_assert_ne!(target, committed);
    }

    /// Commit algebra: after commit, reads observe what was last written;
    /// untouched lines keep reading the old committed side. Repeated over
    /// arbitrary interval histories.
    #[test]
    fn commit_history_converges(writes in prop::collection::vec((0usize..64, any::<bool>()), 0..200)) {
        let orig = Pfn::new(1);
        let shadow = Pfn::new(2);
        let mut ext = SspTlbExt { shadow_pfn: shadow, updated: 0, current: 0 };
        // Model: where the latest data for each line lives.
        let mut latest = [orig; 64];
        for (line, end_interval) in writes {
            let t = ext.write_target(orig, line);
            ext.updated |= 1 << line;
            latest[line] = t;
            prop_assert_eq!(ext.read_target(orig, line), t);
            if end_interval {
                ext.commit();
                prop_assert_eq!(ext.updated, 0);
            }
            // All lines always read their latest data, committed or not.
            for l in 0..64 {
                prop_assert_eq!(ext.read_target(orig, l), latest[l], "line {}", l);
            }
        }
    }

    /// The metadata cache round-trips arbitrary entries and its index
    /// never aliases two vpns to one slot.
    #[test]
    fn cache_entries_round_trip(
        entries in prop::collection::vec((0u64..1 << 30, any::<u64>(), any::<u64>(), any::<bool>()), 1..40)
    ) {
        let mut mem = FlatMem::new(1 << 20);
        let mut cache = SspCache::new(Region { base: PhysAddr::new(0x8000), size: 64 * 64 });
        let mut used = std::collections::HashMap::new();
        for (i, (vpn_raw, current, updated, evicted)) in entries.iter().enumerate() {
            let vpn = Vpn::new(*vpn_raw);
            let Ok(idx) = cache.register(&mut mem, vpn, Pfn::new(i as u64), Pfn::new(100 + i as u64)) else {
                break; // capacity reached
            };
            if let Some(&prev) = used.get(&vpn.as_u64()) {
                prop_assert_eq!(idx, prev, "re-registration must reuse the slot");
                continue;
            }
            used.insert(vpn.as_u64(), idx);
            let mut e = cache.read(&mut mem, idx);
            e.current = *current;
            e.updated = *updated;
            e.evicted = *evicted;
            cache.write(&mut mem, idx, &e);
            let back: SspCacheEntry = cache.read(&mut mem, idx);
            prop_assert_eq!(back, e);
        }
        // Distinct vpns map to distinct indices.
        let mut idxs: Vec<u64> = used.values().copied().collect();
        idxs.sort_unstable();
        idxs.dedup();
        prop_assert_eq!(idxs.len(), used.len());
    }
}
