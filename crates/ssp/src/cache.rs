//! The SSP metadata cache: one 64-byte entry per shadowed page, in NVM.
//!
//! Entry layout (one cache line, so a metadata update is one `clwb`):
//!
//! ```text
//!  0  vpn
//!  8  original pfn
//! 16  shadow pfn
//! 24  current bitmap  (per line: 0 = committed copy on original, 1 = shadow)
//! 32  updated bitmap  (lines written in the open interval)
//! 40  flags           (bit 0: TLB-evicted, pending consolidation)
//! 48  reserved
//! ```

use std::collections::BTreeMap;

use kindle_os::Region;
use kindle_types::{KindleError, Pfn, PhysAddr, PhysMem, Result, Vpn};

/// Size of one metadata entry.
pub const ENTRY_BYTES: u64 = 64;

const FLAG_EVICTED: u64 = 1;

/// A decoded metadata entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SspCacheEntry {
    /// Shadowed virtual page.
    pub vpn: Vpn,
    /// Original physical frame.
    pub orig: Pfn,
    /// Shadow physical frame.
    pub shadow: Pfn,
    /// Committed-side bitmap.
    pub current: u64,
    /// Written-this-interval bitmap.
    pub updated: u64,
    /// Pending consolidation after TLB eviction.
    pub evicted: bool,
}

/// The metadata region plus a host-side index (standing in for the
/// hardware's direct-mapped lookup; every access still touches the NVM
/// line so the timing is honest).
#[derive(Clone, Debug)]
pub struct SspCache {
    region: Region,
    index: BTreeMap<Vpn, u64>,
    next: u64,
    capacity: u64,
}

impl SspCache {
    /// Wraps the reserved NVM region.
    pub fn new(region: Region) -> Self {
        let capacity = region.size / ENTRY_BYTES;
        SspCache { region, index: BTreeMap::new(), next: 0, capacity }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Registered entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Physical address of entry `idx`.
    pub fn entry_pa(&self, idx: u64) -> PhysAddr {
        self.region.base + idx * ENTRY_BYTES
    }

    /// Index of the entry for `vpn`, if registered.
    pub fn lookup(&self, vpn: Vpn) -> Option<u64> {
        self.index.get(&vpn).copied()
    }

    /// Registers a page pair, writing the entry durably.
    ///
    /// # Errors
    ///
    /// [`KindleError::RegionFull`] when the metadata region is exhausted.
    pub fn register(
        &mut self,
        mem: &mut dyn PhysMem,
        vpn: Vpn,
        orig: Pfn,
        shadow: Pfn,
    ) -> Result<u64> {
        if let Some(idx) = self.lookup(vpn) {
            return Ok(idx);
        }
        if self.next >= self.capacity {
            return Err(KindleError::RegionFull("ssp cache"));
        }
        let idx = self.next;
        self.next += 1;
        self.index.insert(vpn, idx);
        self.write(
            mem,
            idx,
            &SspCacheEntry { vpn, orig, shadow, current: 0, updated: 0, evicted: false },
        );
        Ok(idx)
    }

    /// Reads entry `idx` (charged reads).
    pub fn read(&self, mem: &mut dyn PhysMem, idx: u64) -> SspCacheEntry {
        let pa = self.entry_pa(idx);
        SspCacheEntry {
            vpn: Vpn::new(mem.read_u64(pa)),
            orig: Pfn::new(mem.read_u64(pa + 8)),
            shadow: Pfn::new(mem.read_u64(pa + 16)),
            current: mem.read_u64(pa + 24),
            updated: mem.read_u64(pa + 32),
            evicted: mem.read_u64(pa + 40) & FLAG_EVICTED != 0,
        }
    }

    /// Writes entry `idx` durably (one line + clwb + fence).
    pub fn write(&self, mem: &mut dyn PhysMem, idx: u64, e: &SspCacheEntry) {
        let pa = self.entry_pa(idx);
        mem.write_u64(pa, e.vpn.as_u64());
        mem.write_u64(pa + 8, e.orig.as_u64());
        mem.write_u64(pa + 16, e.shadow.as_u64());
        mem.write_u64(pa + 24, e.current);
        mem.write_u64(pa + 32, e.updated);
        mem.write_u64(pa + 40, e.evicted as u64 * FLAG_EVICTED);
        mem.clwb(pa);
        mem.sfence();
    }

    /// Iterates all registered (vpn, idx) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, u64)> + '_ {
        self.index.iter().map(|(&v, &i)| (v, i))
    }

    /// Indices of entries currently flagged evicted (reads each entry's
    /// flag word — charged).
    pub fn evicted_entries(&self, mem: &mut dyn PhysMem) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .index
            .values()
            .copied()
            .filter(|&idx| mem.read_u64(self.entry_pa(idx) + 40) & FLAG_EVICTED != 0)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;

    fn cache() -> (FlatMem, SspCache) {
        let mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0x10000), size: 64 * 100 };
        (mem, SspCache::new(region))
    }

    #[test]
    fn register_and_round_trip() {
        let (mut mem, mut c) = cache();
        let idx = c.register(&mut mem, Vpn::new(5), Pfn::new(10), Pfn::new(11)).unwrap();
        let e = c.read(&mut mem, idx);
        assert_eq!(e.vpn, Vpn::new(5));
        assert_eq!(e.orig, Pfn::new(10));
        assert_eq!(e.shadow, Pfn::new(11));
        assert_eq!(e.current, 0);
        assert!(!e.evicted);
    }

    #[test]
    fn register_is_idempotent() {
        let (mut mem, mut c) = cache();
        let a = c.register(&mut mem, Vpn::new(5), Pfn::new(10), Pfn::new(11)).unwrap();
        let b = c.register(&mut mem, Vpn::new(5), Pfn::new(99), Pfn::new(98)).unwrap();
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        // Original registration wins.
        assert_eq!(c.read(&mut mem, a).orig, Pfn::new(10));
    }

    #[test]
    fn capacity_enforced() {
        let mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0), size: 2 * ENTRY_BYTES };
        let mut c = SspCache::new(region);
        let mut mem = mem;
        c.register(&mut mem, Vpn::new(1), Pfn::new(1), Pfn::new(2)).unwrap();
        c.register(&mut mem, Vpn::new(2), Pfn::new(3), Pfn::new(4)).unwrap();
        assert!(matches!(
            c.register(&mut mem, Vpn::new(3), Pfn::new(5), Pfn::new(6)),
            Err(KindleError::RegionFull(_))
        ));
    }

    #[test]
    fn evicted_flag_round_trip() {
        let (mut mem, mut c) = cache();
        let i1 = c.register(&mut mem, Vpn::new(1), Pfn::new(1), Pfn::new(2)).unwrap();
        let i2 = c.register(&mut mem, Vpn::new(2), Pfn::new(3), Pfn::new(4)).unwrap();
        let mut e = c.read(&mut mem, i2);
        e.evicted = true;
        e.current = 0xff;
        c.write(&mut mem, i2, &e);
        assert_eq!(c.evicted_entries(&mut mem), vec![i2]);
        let back = c.read(&mut mem, i2);
        assert!(back.evicted);
        assert_eq!(back.current, 0xff);
        assert!(!c.read(&mut mem, i1).evicted);
    }
}
