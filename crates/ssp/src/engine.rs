//! The SSP engine: FASE state, interval commits, consolidation thread.

use std::collections::BTreeSet;

use kindle_os::{FramePools, KernelCosts, NvmLayout};
use kindle_tlb::{SspTlbExt, TlbEntry, TwoLevelTlb};
use kindle_types::{
    Cycles, MemKind, Pfn, PhysAddr, PhysMem, Result, Vpn, CACHE_LINE, LINES_PER_PAGE,
};

use crate::cache::SspCache;

/// SSP engine parameters (paper §III-B).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SspConfig {
    /// Consistency interval (paper sweeps 1, 5, 10 ms).
    pub consistency_interval: Cycles,
    /// Consolidation-thread period (paper fixes 1 ms).
    pub consolidation_interval: Cycles,
}

impl Default for SspConfig {
    fn default() -> Self {
        SspConfig {
            consistency_interval: Cycles::from_millis(5),
            consolidation_interval: Cycles::from_millis(1),
        }
    }
}

/// SSP activity counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SspStats {
    /// Pages registered (original+shadow pairs created).
    pub pages_registered: u64,
    /// Consistency intervals committed.
    pub intervals: u64,
    /// TLB bitmap write-outs to the metadata cache.
    pub bitmap_writeouts: u64,
    /// Data lines flushed with `clwb` at interval ends.
    pub data_lines_flushed: u64,
    /// Consolidation-thread invocations.
    pub consolidations: u64,
    /// Metadata entries inspected at interval ends.
    pub metadata_inspections: u64,
    /// Pages merged by the consolidation thread.
    pub pages_consolidated: u64,
    /// Cache lines copied during consolidation.
    pub lines_merged: u64,
    /// TLB evictions that spilled bitmaps to the metadata cache.
    pub tlb_evictions: u64,
}

/// The SSP engine. The simulator calls into it from the access path (write
/// routing bookkeeping, TLB-eviction spills) and from the timer loop
/// (interval ends, consolidation-thread wakeups).
#[derive(Clone, Debug)]
pub struct SspEngine {
    cfg: SspConfig,
    cache: SspCache,
    /// Next consistency-interval deadline.
    next_interval: Cycles,
    /// Next consolidation-thread wakeup.
    next_consolidation: Cycles,
    /// Inside a failure-atomic section?
    in_fase: bool,
    /// NVM data lines written during the open interval (need clwb).
    written_lines: BTreeSet<u64>,
    /// Entries flagged by TLB eviction, queued for consolidation (the
    /// hardware keeps this list so the thread need not scan the whole
    /// metadata cache every wakeup).
    pending_consolidation: BTreeSet<u64>,
    stats: SspStats,
}

impl SspEngine {
    /// Creates the engine over the kernel's reserved SSP region.
    pub fn new(layout: &NvmLayout, cfg: SspConfig) -> Self {
        SspEngine {
            next_interval: cfg.consistency_interval,
            next_consolidation: cfg.consolidation_interval,
            cache: SspCache::new(layout.ssp_cache),
            cfg,
            in_fase: false,
            written_lines: BTreeSet::new(),
            pending_consolidation: BTreeSet::new(),
            stats: SspStats::default(),
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> &SspConfig {
        &self.cfg
    }

    /// The metadata cache.
    pub fn cache(&self) -> &SspCache {
        &self.cache
    }

    /// Counters.
    pub fn stats(&self) -> &SspStats {
        &self.stats
    }

    /// `checkpoint_start`: enables the custom hardware paths.
    pub fn fase_begin(&mut self, now: Cycles) {
        self.in_fase = true;
        self.next_interval = now + self.cfg.consistency_interval;
        self.next_consolidation = now + self.cfg.consolidation_interval;
    }

    /// `checkpoint_end`: closes the FASE (the caller should run one final
    /// [`SspEngine::end_interval`] first).
    pub fn fase_end(&mut self) {
        self.in_fase = false;
    }

    /// Inside a FASE?
    pub fn in_fase(&self) -> bool {
        self.in_fase
    }

    /// Registers an NVM page on first touch inside a FASE: allocates the
    /// supplementary physical page and the metadata entry. Returns the TLB
    /// extension to install.
    ///
    /// # Errors
    ///
    /// Propagates NVM pool exhaustion and metadata-region overflow.
    pub fn register_page(
        &mut self,
        mem: &mut dyn PhysMem,
        pools: &mut FramePools,
        vpn: Vpn,
        orig: Pfn,
    ) -> Result<SspTlbExt> {
        if let Some(idx) = self.cache.lookup(vpn) {
            let e = self.cache.read(mem, idx);
            return Ok(SspTlbExt { shadow_pfn: e.shadow, updated: e.updated, current: e.current });
        }
        let shadow = pools.alloc(mem, MemKind::Nvm)?;
        self.cache.register(mem, vpn, orig, shadow)?;
        self.stats.pages_registered += 1;
        Ok(SspTlbExt { shadow_pfn: shadow, updated: 0, current: 0 })
    }

    /// Records that a routed NVM write dirtied `line_pa` (flushed at the
    /// interval end).
    pub fn on_write(&mut self, line_pa: PhysAddr) {
        self.written_lines.insert(line_pa.line_base().as_u64());
    }

    /// Handles a TLB eviction of an SSP-extended entry: the hardware issues
    /// a memory request writing the bitmaps to the metadata cache and flags
    /// the entry for consolidation.
    pub fn on_tlb_evict(&mut self, mem: &mut dyn PhysMem, entry: &TlbEntry) {
        let Some(ext) = entry.ssp else { return };
        let Some(idx) = self.cache.lookup(entry.vpn) else { return };
        let mut e = self.cache.read(mem, idx);
        e.current = ext.current;
        e.updated = ext.updated;
        e.evicted = true;
        self.cache.write(mem, idx, &e);
        self.pending_consolidation.insert(idx);
        self.stats.tlb_evictions += 1;
    }

    /// Is an interval end due?
    pub fn interval_due(&self, now: Cycles) -> bool {
        self.in_fase && now >= self.next_interval
    }

    /// Is a consolidation-thread wakeup due?
    pub fn consolidation_due(&self, now: Cycles) -> bool {
        self.in_fase && now >= self.next_consolidation
    }

    /// Ends the current consistency interval:
    ///
    /// 1. every SSP-extended TLB entry's `updated` bitmap is sent to the
    ///    metadata cache (a memory request per entry) and committed
    ///    (`current ^= updated`);
    /// 2. all data lines written during the interval are `clwb`-ed;
    /// 3. a fence orders everything.
    ///
    /// Returns the set of data lines that were flushed so the caller can
    /// drive its cache hierarchy / durability image.
    pub fn end_interval(
        &mut self,
        mem: &mut dyn PhysMem,
        tlb: &mut TwoLevelTlb,
        costs: &KernelCosts,
    ) -> Vec<PhysAddr> {
        mem.advance(Cycles::new(costs.kthread_switch));
        // 1. The kernel instructs the translation hardware, entry by entry,
        //    to send the modified bitmaps in the TLBs to the metadata
        //    region: a per-entry kernel/hardware handshake (MSR pokes plus
        //    the posted memory request) followed by a metadata inspection
        //    and clwb. This per-interval-end pass over the TLB is the
        //    interval-frequency-dependent cost behind Fig. 5.
        for entry in tlb.iter_mut() {
            let Some(ext) = entry.ssp.as_mut() else { continue };
            let Some(idx) = self.cache.lookup(entry.vpn) else { continue };
            let pa = self.cache.entry_pa(idx);
            mem.advance(Cycles::new(costs.ssp_inspect_op));
            mem.read_u64(pa + 24);
            self.stats.metadata_inspections += 1;
            if ext.updated != 0 {
                ext.commit();
                mem.write_u64(pa + 24, ext.current);
                mem.write_u64(pa + 32, 0);
                self.stats.bitmap_writeouts += 1;
            }
            mem.clwb(pa);
        }
        // 2. clwb every data line written this interval.
        let mut flushed: Vec<PhysAddr> = Vec::with_capacity(self.written_lines.len());
        for &line in &self.written_lines {
            let pa = PhysAddr::new(line);
            mem.clwb(pa);
            flushed.push(pa);
        }
        self.stats.data_lines_flushed += flushed.len() as u64;
        self.written_lines.clear();
        // 3. Order everything.
        mem.sfence();
        self.stats.intervals += 1;
        self.next_interval = mem.now() + self.cfg.consistency_interval;
        flushed
    }

    /// One consolidation-thread pass: merges the page pairs of entries
    /// flagged evicted by copying committed shadow lines back to the
    /// original page and clearing `current`.
    pub fn consolidate(&mut self, mem: &mut dyn PhysMem, costs: &KernelCosts) {
        mem.advance(Cycles::new(costs.kthread_switch));
        self.stats.consolidations += 1;
        let pending: Vec<u64> =
            std::mem::take(&mut self.pending_consolidation).into_iter().collect();
        for idx in pending {
            let mut e = self.cache.read(mem, idx);
            let mut merged_lines = 0u64;
            for line in 0..LINES_PER_PAGE {
                if e.current >> line & 1 == 1 {
                    let off = (line * CACHE_LINE) as u64;
                    let mut buf = [0u8; CACHE_LINE];
                    mem.read_bytes(e.shadow.base() + off, &mut buf);
                    mem.write_bytes(e.orig.base() + off, &buf);
                    mem.clwb(e.orig.base() + off);
                    merged_lines += 1;
                }
            }
            e.current = 0;
            e.evicted = false;
            self.cache.write(mem, idx, &e);
            self.stats.pages_consolidated += 1;
            self.stats.lines_merged += merged_lines;
        }
        self.next_consolidation = mem.now() + self.cfg.consolidation_interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_mem::E820Map;
    use kindle_os::{FrameAllocator, PersistentFrameAllocator};
    use kindle_tlb::TwoLevelTlbConfig;
    use kindle_types::physmem::FlatMem;
    use kindle_types::MemKind;

    fn setup() -> (FlatMem, FramePools, SspEngine, TwoLevelTlb) {
        let mem = FlatMem::new(128 << 20);
        let map = E820Map::flat(64 << 20, 64 << 20);
        let layout = NvmLayout::from_map(&map);
        let pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(16), 1024),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new(
                    "nvm",
                    layout.general.base.page_number(),
                    layout.general.frames(),
                ),
                layout.alloc_bitmap,
            ),
        };
        let engine = SspEngine::new(&layout, SspConfig::default());
        let tlb = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        (mem, pools, engine, tlb)
    }

    #[test]
    fn register_allocates_shadow_once() {
        let (mut mem, mut pools, mut engine, _tlb) = setup();
        let orig = pools.alloc(&mut mem, MemKind::Nvm).unwrap();
        let used = pools.nvm.used();
        let ext = engine.register_page(&mut mem, &mut pools, Vpn::new(0x40), orig).unwrap();
        assert_eq!(pools.nvm.used(), used + 1);
        assert_ne!(ext.shadow_pfn, orig);
        // Second registration reuses the entry.
        let ext2 = engine.register_page(&mut mem, &mut pools, Vpn::new(0x40), orig).unwrap();
        assert_eq!(ext2.shadow_pfn, ext.shadow_pfn);
        assert_eq!(pools.nvm.used(), used + 1);
        assert_eq!(engine.stats().pages_registered, 1);
    }

    #[test]
    fn interval_commits_tlb_bitmaps() {
        let (mut mem, mut pools, mut engine, mut tlb) = setup();
        engine.fase_begin(Cycles::ZERO);
        let vpn = Vpn::new(0x40);
        let orig = pools.alloc(&mut mem, MemKind::Nvm).unwrap();
        let ext = engine.register_page(&mut mem, &mut pools, vpn, orig).unwrap();
        let mut entry = TlbEntry::new(vpn, orig, true, MemKind::Nvm);
        entry.ssp = Some(ext);
        tlb.install(entry);

        // Simulate writes to lines 2 and 7.
        {
            let (_, hit, _) = tlb.lookup(vpn);
            let e = hit.unwrap();
            let x = e.ssp.as_mut().unwrap();
            x.updated |= (1 << 2) | (1 << 7);
        }
        engine.on_write(orig.base() + 2 * 64);
        engine.on_write(orig.base() + 7 * 64);

        let flushed = engine.end_interval(&mut mem, &mut tlb, &KernelCosts::for_test());
        assert_eq!(flushed.len(), 2);
        assert_eq!(engine.stats().bitmap_writeouts, 1);
        assert_eq!(engine.stats().intervals, 1);

        // TLB ext committed.
        let (_, hit, _) = tlb.lookup(vpn);
        let x = hit.unwrap().ssp.unwrap();
        assert_eq!(x.updated, 0);
        assert_eq!(x.current, (1 << 2) | (1 << 7));
        // Metadata mirrors the commit.
        let idx = engine.cache().lookup(vpn).unwrap();
        let e = engine.cache().read(&mut mem, idx);
        assert_eq!(e.current, (1 << 2) | (1 << 7));
        assert_eq!(e.updated, 0);
    }

    #[test]
    fn eviction_then_consolidation_merges_lines() {
        let (mut mem, mut pools, mut engine, _tlb) = setup();
        engine.fase_begin(Cycles::ZERO);
        let vpn = Vpn::new(0x80);
        let orig = pools.alloc(&mut mem, MemKind::Nvm).unwrap();
        let ext = engine.register_page(&mut mem, &mut pools, vpn, orig).unwrap();
        let shadow = ext.shadow_pfn;

        // Committed data for line 3 lives on the shadow page.
        mem.write_bytes(shadow.base() + 3 * 64, &[0xaa; 64]);
        let mut entry = TlbEntry::new(vpn, orig, true, MemKind::Nvm);
        entry.ssp = Some(SspTlbExt { shadow_pfn: shadow, updated: 0, current: 1 << 3 });
        engine.on_tlb_evict(&mut mem, &entry);
        assert_eq!(engine.stats().tlb_evictions, 1);

        engine.consolidate(&mut mem, &KernelCosts::for_test());
        assert_eq!(engine.stats().pages_consolidated, 1);
        assert_eq!(engine.stats().lines_merged, 1);

        // Line 3 now lives on the original page; current cleared.
        let mut buf = [0u8; 64];
        mem.read_bytes(orig.base() + 3 * 64, &mut buf);
        assert_eq!(buf, [0xaa; 64]);
        let idx = engine.cache().lookup(vpn).unwrap();
        let e = engine.cache().read(&mut mem, idx);
        assert_eq!(e.current, 0);
        assert!(!e.evicted);
    }

    #[test]
    fn timers_respect_fase() {
        let (_mem, _pools, mut engine, _tlb) = setup();
        assert!(!engine.interval_due(Cycles::from_secs(10)), "no FASE, no intervals");
        engine.fase_begin(Cycles::ZERO);
        assert!(!engine.interval_due(Cycles::from_millis(4)));
        assert!(engine.interval_due(Cycles::from_millis(5)));
        assert!(engine.consolidation_due(Cycles::from_millis(1)));
        engine.fase_end();
        assert!(!engine.interval_due(Cycles::from_secs(10)));
    }
}
