//! Shadow Sub-Paging (SSP) prototype — paper §III-B, after Ni et al.
//!
//! SSP gives applications a failure-atomic view of NVM memory: every NVM
//! virtual page gets *two* physical pages (original + shadow), and the
//! cache/translation hardware routes each cache-line write to the page that
//! does **not** hold the line's committed copy. At the end of a consistency
//! interval the modified-line bitmaps collected in the TLB are written to
//! the SSP metadata cache in NVM, dirty lines are `clwb`-ed, and the
//! `current` bitmaps flip — committing the interval atomically. A background
//! consolidation thread later merges the split pages of TLB-evicted entries.
//!
//! The hardware halves (TLB bitmap fields, write routing) live in
//! `kindle-tlb` and the machine's access path; this crate owns the metadata
//! cache, the interval engine, the FASE programming model and the
//! consolidation thread.

pub mod cache;
pub mod engine;

pub use cache::{SspCache, SspCacheEntry, ENTRY_BYTES};
pub use engine::{SspConfig, SspEngine, SspStats};
