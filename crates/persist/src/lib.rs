//! Process persistence for the Kindle framework (paper §II-A / §III-A).
//!
//! A persistent process can be restarted after a crash in a consistent
//! state. The machinery, all hosted in reserved NVM regions laid out by
//! [`kindle_os::NvmLayout`]:
//!
//! * a **saved-state area** ([`SavedStateArea`]) holding, per process, two
//!   copies of the execution context (registers, VMA layout, PTBR) plus two
//!   copies of the virtual→NVM-frame mapping list, with a valid-copy flag
//!   flipped atomically at the end of each checkpoint;
//! * a **redo log** ([`RedoLog`]) capturing OS metadata modifications
//!   between checkpoints;
//! * a **checkpoint engine** ([`CheckpointEngine`]) that fires at a fixed
//!   interval, applies the redo log to the working copy, maintains the
//!   mapping list (rebuild scheme) by traversing the page table, and commits;
//! * a **recovery procedure** ([`recover_all`]) that scans the saved-state
//!   area after a crash and reconstructs every process — rebuilding page
//!   tables from the mapping list (*rebuild*) or simply restoring the PTBR
//!   (*persistent*).
//!
//! All reads and writes go through [`kindle_types::PhysMem`], so the cost
//! difference between the two page-table schemes emerges from real memory
//! traffic rather than hard-coded constants.

pub mod checkpoint;
pub mod log;
pub mod recovery;
pub mod slot;

pub use checkpoint::{CheckpointEngine, CheckpointScheme, CheckpointStats};
pub use log::{LogRecord, RedoLog};
pub use recovery::{recover_all, RecoveryReport};
pub use slot::{SavedContext, SavedStateArea, SlotHandle};
