//! Crash recovery: rebuilding processes from the saved-state area.
//!
//! The recovery procedure scans the saved-state slots and, for each one
//! with a consistent copy, recreates the execution context: registers and
//! VMA layout from the context copy, and the address space either by
//! remapping every entry of the virtual→NVM-frame mapping list (*rebuild*
//! scheme) or by restoring the PTBR (*persistent* scheme). DRAM-backed
//! mappings are discarded — their frames were volatile.
//!
//! Against *torn* crashes (8-byte persist granularity, write-buffer
//! contents lost mid-flight) recovery additionally:
//!
//! - checksum-verifies the valid copy and falls back to the other copy
//!   when it is corrupt (a process is lost only when both copies fail);
//! - repairs allocation-bitmap bits whose persist was torn away, before
//!   installing any mapping that needs the frame;
//! - replays the redo log's valid prefix idempotently on top of the
//!   checkpointed state, dropping the torn tail.

use kindle_cpu::RegisterFile;
use kindle_os::{AddressSpace, Kernel, MetaRecord, ProcState, Process, PtMode, VmaList};
use kindle_types::{AccessKind, Cycles, KindleError, MapFlags, MemKind, PhysMem, Pte, Result, Vpn};

use crate::log::RedoLog;
use crate::slot::{SavedContext, SavedStateArea, SlotHandle};

/// Summary of a completed recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryReport {
    /// Pids successfully recovered.
    pub recovered_pids: Vec<u32>,
    /// Pages remapped from mapping lists (rebuild scheme).
    pub pages_remapped: u64,
    /// Stale DRAM leaf entries dropped from NVM-resident tables
    /// (persistent scheme).
    pub dram_entries_dropped: u64,
    /// Slots whose valid copy failed its checksum and were recovered from
    /// the other copy.
    pub copy_fallbacks: u64,
    /// Pids lost because no copy of their slot passed verification.
    pub lost_pids: Vec<u32>,
    /// Allocation-bitmap bits repaired (set) because a recovered mapping
    /// referenced a frame the persisted bitmap had lost.
    pub frames_repaired: u64,
    /// Redo-log records replayed on top of the checkpointed state.
    pub log_records_replayed: u64,
    /// Redo-log records dropped as torn (invalid checksum and after).
    pub torn_log_records: u64,
    /// Simulated time the recovery took.
    pub cycles: Cycles,
}

/// Loads and checksum-verifies one copy of a slot: the context, plus (for
/// the rebuild scheme) the mapping list. `None` means the copy is torn.
fn load_copy(
    mem: &mut dyn PhysMem,
    slot: &SlotHandle,
    copy: u64,
    mode: PtMode,
) -> Option<(SavedContext, Vec<(Vpn, kindle_types::Pfn)>)> {
    let ctx = slot.read_context_checked(mem, copy)?;
    let list = if mode == PtMode::Rebuild {
        slot.read_mapping_list_checked(mem, copy)?
    } else {
        Vec::new()
    };
    Some((ctx, list))
}

/// Recovers every process with a consistent saved state into `kernel`,
/// then replays the redo log's valid prefix idempotently on top.
///
/// `kernel` must be freshly booted (post-crash) with the same memory map;
/// its NVM allocator is re-synchronised from the persisted bitmap first.
/// The log is *not* truncated here — the next checkpoint truncates it, so
/// a crash during recovery simply replays again.
///
/// # Errors
///
/// Propagates pool exhaustion while rebuilding page tables.
pub fn recover_all(
    mem: &mut dyn PhysMem,
    kernel: &mut Kernel,
    area: &SavedStateArea,
    log: &RedoLog,
) -> Result<RecoveryReport> {
    let start = mem.now();
    let mut report = RecoveryReport::default();

    // Re-synchronise NVM allocation state from the persisted bitmap.
    kernel.pools.nvm.recover(mem);

    for idx in area.occupied(mem) {
        let slot = area.slot(idx);
        let Some(valid) = slot.valid_copy(mem) else {
            // Crashed before the first checkpoint: the process is lost.
            continue;
        };
        let pid = slot.pid(mem) as u32;
        let mode = kernel.pt_mode();
        let (ctx, list) = match load_copy(mem, &slot, valid, mode) {
            Some(loaded) => loaded,
            None => match load_copy(mem, &slot, 1 - valid, mode) {
                // The flagged copy is torn; the previous checkpoint's copy
                // is still intact.
                Some(loaded) => {
                    report.copy_fallbacks += 1;
                    loaded
                }
                None => {
                    report.lost_pids.push(pid);
                    continue;
                }
            },
        };

        let mut vmas = VmaList::new();
        for vma in &ctx.vmas {
            vmas.insert(*vma)?;
        }

        let aspace = match mode {
            PtMode::Persistent => {
                let mut aspace = AddressSpace::adopt_persistent(
                    ctx.root,
                    kernel.layout.pt_log,
                    ctx.mapped_pages,
                );
                // Drop leaf entries whose frames lived in volatile DRAM,
                // and heal bitmap bits for surviving NVM frames whose
                // persisted word was lost in the write buffer.
                let mut stale: Vec<Vpn> = Vec::new();
                let mut nvm_frames: Vec<kindle_types::Pfn> = Vec::new();
                aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                    if pte.mem_kind() == MemKind::Dram {
                        stale.push(vpn);
                    } else {
                        nvm_frames.push(pte.pfn());
                    }
                });
                for pfn in nvm_frames {
                    if kernel.pools.nvm.inner().contains(pfn)
                        && kernel.pools.nvm.ensure_allocated(mem, pfn)
                    {
                        report.frames_repaired += 1;
                    }
                }
                for vpn in stale {
                    aspace.unmap(mem, &mut kernel.pools, &kernel.costs, vpn.base())?;
                    report.dram_entries_dropped += 1;
                }
                aspace
            }
            PtMode::Rebuild => {
                let mut aspace = AddressSpace::new(
                    mem,
                    &mut kernel.pools,
                    PtMode::Rebuild,
                    kernel.layout.pt_log,
                )?;
                for (vpn, pfn) in list {
                    let va = vpn.base();
                    let writable =
                        vmas.find(va).map(|v| v.prot.allows(AccessKind::Write)).unwrap_or(false);
                    let mut flags = Pte::NVM;
                    if writable {
                        flags |= Pte::WRITABLE;
                    }
                    // Heal the allocation bit *before* installing the
                    // mapping, so no PTE ever points into an unallocated
                    // frame.
                    if kernel.pools.nvm.inner().contains(pfn)
                        && kernel.pools.nvm.ensure_allocated(mem, pfn)
                    {
                        report.frames_repaired += 1;
                    }
                    aspace.map(mem, &mut kernel.pools, &kernel.costs, va, pfn, flags)?;
                    report.pages_remapped += 1;
                }
                aspace
            }
        };

        let mut proc = Process::new(pid, aspace);
        proc.regs = RegisterFile::from(ctx.regs);
        proc.vmas = vmas;
        proc.state = ProcState::Recovered;
        kernel.adopt_process(proc);
        report.recovered_pids.push(pid);
    }

    // Replay the redo log's valid prefix on top of the checkpointed state.
    // Replay goes through the regular syscall paths, which are idempotent
    // against already-applied records: a VmaAdd that overlaps is a no-op,
    // a VmaRemove of an absent range removes nothing.
    let (records, torn) = log.read_valid(mem);
    report.torn_log_records = torn;
    for rec in records {
        if kernel.process(rec.pid()).is_err() {
            // The owner was lost or never checkpointed; nothing to replay
            // onto.
            continue;
        }
        match rec {
            MetaRecord::ProcessCreate { .. } | MetaRecord::RegsUpdated { .. } => {}
            MetaRecord::VmaAdd { pid, start, end, prot, kind } => {
                let mut flags = MapFlags::FIXED;
                if kind == MemKind::Nvm {
                    flags |= MapFlags::NVM;
                }
                match kernel.sys_mmap(mem, pid, Some(start), end - start, prot, flags) {
                    Ok(_) => {}
                    Err(KindleError::Overlap(_)) => {} // applied before the crash
                    Err(e) => return Err(e),
                }
            }
            MetaRecord::VmaRemove { pid, start, end } => {
                kernel.sys_munmap(mem, pid, start, end - start)?;
            }
            MetaRecord::VmaProtect { pid, start, end, prot } => {
                kernel.sys_mprotect(mem, pid, start, end - start, prot)?;
            }
            // Page map/unmap records are never logged (see the checkpoint
            // engine); decoding them here would be a stale-log bug, not
            // state to replay.
            MetaRecord::PageMapped { .. } | MetaRecord::PageUnmapped { .. } => {}
        }
        report.log_records_replayed += 1;
    }
    // Replay must not re-log: discard records the syscalls emitted.
    kernel.take_meta_records();

    report.cycles = mem.now() - start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointEngine, CheckpointScheme};
    use kindle_os::KernelConfig;
    use kindle_types::physmem::FlatMem;
    use kindle_types::{MapFlags, Prot, VirtAddr, PAGE_SIZE};

    /// FlatMem cannot lose data, so these tests exercise the *logic* of
    /// recovery (bitmap resync, list replay, PTBR adoption); true crash
    /// semantics are integration-tested against the full machine in `sim`.
    fn run_scheme(
        scheme: CheckpointScheme,
    ) -> (FlatMem, Kernel, SavedStateArea, RedoLog, u32, VirtAddr) {
        let mut mem = FlatMem::new(128 << 20);
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = scheme;
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let mut engine = CheckpointEngine::new(&layout, scheme, Cycles::from_millis(10), 4);
        let pid = kernel.create_process(&mut mem).unwrap();
        let va = kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                6 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        kernel.process_mut(pid).unwrap().regs.rip = 0xabcd;
        let recs = kernel.take_meta_records();
        engine.on_meta_records(&mut mem, &mut kernel, recs).unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let area = *engine.area();
        let log = *engine.log();
        (mem, kernel, area, log, pid, va)
    }

    fn reboot(scheme: CheckpointScheme, mem: &mut FlatMem) -> Kernel {
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = scheme;
        Kernel::new(cfg, mem).unwrap()
    }

    #[test]
    fn rebuild_recovery_replays_mapping_list() {
        let (mut mem, old_kernel, area, log, pid, va) = run_scheme(CheckpointScheme::Rebuild);
        let old_pfn = old_kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        drop(old_kernel);

        let mut kernel = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert_eq!(report.recovered_pids, vec![pid]);
        assert_eq!(report.pages_remapped, 6);
        assert!(report.lost_pids.is_empty());
        assert_eq!(report.copy_fallbacks, 0);

        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.state, ProcState::Recovered);
        assert_eq!(proc.regs.rip, 0xabcd);
        assert_eq!(proc.vmas.len(), 1);
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), old_pfn, "rebuilt table maps the same NVM frame");
        assert!(pte.is_writable());
        assert!(kernel.pools.nvm.is_allocated(old_pfn), "bitmap recovery keeps frame");
    }

    #[test]
    fn persistent_recovery_restores_ptbr() {
        let (mut mem, old_kernel, area, log, pid, va) = run_scheme(CheckpointScheme::Persistent);
        let old_root = old_kernel.process(pid).unwrap().aspace.root();
        let old_pfn = old_kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        drop(old_kernel);

        let mut kernel = reboot(CheckpointScheme::Persistent, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert_eq!(report.recovered_pids, vec![pid]);
        assert_eq!(report.pages_remapped, 0, "persistent scheme remaps nothing");

        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.aspace.root(), old_root, "PTBR simply restored");
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), old_pfn);
    }

    #[test]
    fn persistent_recovery_drops_dram_mappings() {
        let mut mem = FlatMem::new(128 << 20);
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = CheckpointScheme::Persistent;
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let mut engine = CheckpointEngine::new(
            &layout,
            CheckpointScheme::Persistent,
            Cycles::from_millis(10),
            4,
        );
        let pid = kernel.create_process(&mut mem).unwrap();
        // One NVM area + one DRAM area.
        let nva = kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let dva = kernel
            .sys_mmap(&mut mem, pid, None, PAGE_SIZE as u64, Prot::RW, MapFlags::POPULATE)
            .unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let area = *engine.area();
        let log = *engine.log();
        drop(kernel);

        let mut kernel = reboot(CheckpointScheme::Persistent, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert_eq!(report.dram_entries_dropped, 1);
        assert!(kernel.translate(&mut mem, pid, nva).unwrap().is_some());
        assert!(
            kernel.translate(&mut mem, pid, dva).unwrap().is_none(),
            "volatile DRAM mapping must be dropped"
        );
    }

    #[test]
    fn unclean_slot_without_valid_copy_is_skipped() {
        let mut mem = FlatMem::new(128 << 20);
        let cfg = KernelConfig::for_test(128 << 20);
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let area = SavedStateArea::new(layout.saved_state, 4);
        let log = RedoLog::new(layout.meta_log);
        // Slot claimed but never checkpointed.
        area.find_or_alloc(&mut mem, 42).unwrap();
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert!(report.recovered_pids.is_empty());
        assert!(kernel.process(42).is_err());
    }

    #[test]
    fn torn_valid_copy_falls_back_to_other_copy() {
        let (mut mem, mut old_kernel, area, log, pid, _va) = run_scheme(CheckpointScheme::Rebuild);
        // Second checkpoint publishes the *other* copy with rip=0xbeef.
        let layout = old_kernel.layout;
        let mut engine =
            CheckpointEngine::new(&layout, CheckpointScheme::Rebuild, Cycles::from_millis(10), 4);
        old_kernel.process_mut(pid).unwrap().regs.rip = 0xbeef;
        engine.checkpoint(&mut mem, &mut old_kernel).unwrap();
        drop(old_kernel);

        // Tear one word of the newly published copy.
        let idx = area.find(&mut mem, pid).unwrap();
        let slot = area.slot(idx);
        let valid = slot.valid_copy(&mut mem).unwrap();
        let victim = slot.copy_base(valid) + 8;
        let w = mem.read_u64(victim);
        mem.write_u64(victim, w ^ 0xff);

        let mut kernel = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert_eq!(report.copy_fallbacks, 1);
        assert_eq!(report.recovered_pids, vec![pid]);
        assert_eq!(
            kernel.process(pid).unwrap().regs.rip,
            0xabcd,
            "fallback restores the previous checkpoint's state"
        );
    }

    #[test]
    fn both_copies_torn_loses_process() {
        let (mut mem, old_kernel, area, log, pid, _va) = run_scheme(CheckpointScheme::Rebuild);
        drop(old_kernel);
        let idx = area.find(&mut mem, pid).unwrap();
        let slot = area.slot(idx);
        for copy in 0..2 {
            let victim = slot.copy_base(copy) + 8;
            let w = mem.read_u64(victim);
            mem.write_u64(victim, w ^ 0xff);
        }
        let mut kernel = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert_eq!(report.lost_pids, vec![pid]);
        assert!(report.recovered_pids.is_empty());
        assert!(kernel.process(pid).is_err());
    }

    #[test]
    fn log_replay_restores_post_checkpoint_vma_ops() {
        let (mut mem, mut old_kernel, area, log, pid, va) = run_scheme(CheckpointScheme::Rebuild);
        // After the checkpoint: one new VMA, one removal — logged but not
        // yet checkpointed when the crash hits.
        let mut engine = CheckpointEngine::new(
            &old_kernel.layout,
            CheckpointScheme::Rebuild,
            Cycles::from_millis(10),
            4,
        );
        // Re-attach the engine to the already-truncated log state.
        let extra = old_kernel
            .sys_mmap(&mut mem, pid, None, 2 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)
            .unwrap();
        old_kernel.sys_munmap(&mut mem, pid, va, PAGE_SIZE as u64).unwrap();
        let recs = old_kernel.take_meta_records();
        engine.on_meta_records(&mut mem, &mut old_kernel, recs).unwrap();
        drop(old_kernel);

        let mut kernel = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area, &log).unwrap();
        assert!(report.log_records_replayed >= 2, "{report:?}");
        assert_eq!(report.torn_log_records, 0);
        let proc = kernel.process(pid).unwrap();
        assert!(proc.vmas.find(extra).is_some(), "logged mmap replayed");
        assert!(proc.vmas.find(va).is_none(), "logged munmap replayed");
        // Replay is idempotent: running recovery again on a fresh kernel
        // yields the same VMA layout.
        let mut kernel2 = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report2 = recover_all(&mut mem, &mut kernel2, &area, &log).unwrap();
        assert_eq!(report2.log_records_replayed, report.log_records_replayed);
        assert_eq!(kernel2.process(pid).unwrap().vmas, kernel.process(pid).unwrap().vmas);
    }
}
