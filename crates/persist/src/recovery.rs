//! Crash recovery: rebuilding processes from the saved-state area.
//!
//! The recovery procedure scans the saved-state slots and, for each one
//! with a consistent copy, recreates the execution context: registers and
//! VMA layout from the context copy, and the address space either by
//! remapping every entry of the virtual→NVM-frame mapping list (*rebuild*
//! scheme) or by restoring the PTBR (*persistent* scheme). DRAM-backed
//! mappings are discarded — their frames were volatile.

use kindle_cpu::RegisterFile;
use kindle_os::{AddressSpace, Kernel, ProcState, Process, PtMode, VmaList};
use kindle_types::{AccessKind, Cycles, MemKind, PhysMem, Pte, Result, Vpn};

use crate::slot::SavedStateArea;

/// Summary of a completed recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryReport {
    /// Pids successfully recovered.
    pub recovered_pids: Vec<u32>,
    /// Pages remapped from mapping lists (rebuild scheme).
    pub pages_remapped: u64,
    /// Stale DRAM leaf entries dropped from NVM-resident tables
    /// (persistent scheme).
    pub dram_entries_dropped: u64,
    /// Simulated time the recovery took.
    pub cycles: Cycles,
}

/// Recovers every process with a consistent saved state into `kernel`.
///
/// `kernel` must be freshly booted (post-crash) with the same memory map;
/// its NVM allocator is re-synchronised from the persisted bitmap first.
///
/// # Errors
///
/// Propagates pool exhaustion while rebuilding page tables.
pub fn recover_all(
    mem: &mut dyn PhysMem,
    kernel: &mut Kernel,
    area: &SavedStateArea,
) -> Result<RecoveryReport> {
    let start = mem.now();
    let mut report = RecoveryReport::default();

    // Re-synchronise NVM allocation state from the persisted bitmap.
    kernel.pools.nvm.recover(mem);

    for idx in area.occupied(mem) {
        let slot = area.slot(idx);
        let Some(valid) = slot.valid_copy(mem) else {
            // Crashed before the first checkpoint: the process is lost.
            continue;
        };
        let pid = slot.pid(mem) as u32;
        let ctx = slot.read_context(mem, valid);

        let mut vmas = VmaList::new();
        for vma in &ctx.vmas {
            vmas.insert(*vma)?;
        }

        let aspace = match kernel.pt_mode() {
            PtMode::Persistent => {
                let mut aspace = AddressSpace::adopt_persistent(
                    ctx.root,
                    kernel.layout.pt_log,
                    ctx.mapped_pages,
                );
                // Drop leaf entries whose frames lived in volatile DRAM.
                let mut stale: Vec<Vpn> = Vec::new();
                aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                    if pte.mem_kind() == MemKind::Dram {
                        stale.push(vpn);
                    }
                });
                for vpn in stale {
                    aspace.unmap(mem, &mut kernel.pools, &kernel.costs, vpn.base())?;
                    report.dram_entries_dropped += 1;
                }
                aspace
            }
            PtMode::Rebuild => {
                let mut aspace = AddressSpace::new(
                    mem,
                    &mut kernel.pools,
                    PtMode::Rebuild,
                    kernel.layout.pt_log,
                )?;
                let list = slot.read_mapping_list(mem, valid);
                for (vpn, pfn) in list {
                    let va = vpn.base();
                    let writable =
                        vmas.find(va).map(|v| v.prot.allows(AccessKind::Write)).unwrap_or(false);
                    let mut flags = Pte::NVM;
                    if writable {
                        flags |= Pte::WRITABLE;
                    }
                    aspace.map(mem, &mut kernel.pools, &kernel.costs, va, pfn, flags)?;
                    report.pages_remapped += 1;
                }
                aspace
            }
        };

        let mut proc = Process::new(pid, aspace);
        proc.regs = RegisterFile::from(ctx.regs);
        proc.vmas = vmas;
        proc.state = ProcState::Recovered;
        kernel.adopt_process(proc);
        report.recovered_pids.push(pid);
    }

    report.cycles = mem.now() - start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointEngine, CheckpointScheme};
    use kindle_os::KernelConfig;
    use kindle_types::physmem::FlatMem;
    use kindle_types::{MapFlags, Prot, VirtAddr, PAGE_SIZE};

    /// FlatMem cannot lose data, so these tests exercise the *logic* of
    /// recovery (bitmap resync, list replay, PTBR adoption); true crash
    /// semantics are integration-tested against the full machine in `sim`.
    fn run_scheme(scheme: CheckpointScheme) -> (FlatMem, Kernel, SavedStateArea, u32, VirtAddr) {
        let mut mem = FlatMem::new(128 << 20);
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = scheme;
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let mut engine = CheckpointEngine::new(&layout, scheme, Cycles::from_millis(10), 4);
        let pid = kernel.create_process(&mut mem).unwrap();
        let va = kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                6 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        kernel.process_mut(pid).unwrap().regs.rip = 0xabcd;
        let recs = kernel.take_meta_records();
        engine.on_meta_records(&mut mem, &mut kernel, recs).unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let area = *engine.area();
        (mem, kernel, area, pid, va)
    }

    fn reboot(scheme: CheckpointScheme, mem: &mut FlatMem) -> Kernel {
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = scheme;
        Kernel::new(cfg, mem).unwrap()
    }

    #[test]
    fn rebuild_recovery_replays_mapping_list() {
        let (mut mem, old_kernel, area, pid, va) = run_scheme(CheckpointScheme::Rebuild);
        let old_pfn = old_kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        drop(old_kernel);

        let mut kernel = reboot(CheckpointScheme::Rebuild, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area).unwrap();
        assert_eq!(report.recovered_pids, vec![pid]);
        assert_eq!(report.pages_remapped, 6);

        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.state, ProcState::Recovered);
        assert_eq!(proc.regs.rip, 0xabcd);
        assert_eq!(proc.vmas.len(), 1);
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), old_pfn, "rebuilt table maps the same NVM frame");
        assert!(pte.is_writable());
        assert!(kernel.pools.nvm.is_allocated(old_pfn), "bitmap recovery keeps frame");
    }

    #[test]
    fn persistent_recovery_restores_ptbr() {
        let (mut mem, old_kernel, area, pid, va) = run_scheme(CheckpointScheme::Persistent);
        let old_root = old_kernel.process(pid).unwrap().aspace.root();
        let old_pfn = old_kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        drop(old_kernel);

        let mut kernel = reboot(CheckpointScheme::Persistent, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area).unwrap();
        assert_eq!(report.recovered_pids, vec![pid]);
        assert_eq!(report.pages_remapped, 0, "persistent scheme remaps nothing");

        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.aspace.root(), old_root, "PTBR simply restored");
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.pfn(), old_pfn);
    }

    #[test]
    fn persistent_recovery_drops_dram_mappings() {
        let mut mem = FlatMem::new(128 << 20);
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = CheckpointScheme::Persistent;
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let mut engine = CheckpointEngine::new(
            &layout,
            CheckpointScheme::Persistent,
            Cycles::from_millis(10),
            4,
        );
        let pid = kernel.create_process(&mut mem).unwrap();
        // One NVM area + one DRAM area.
        let nva = kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let dva = kernel
            .sys_mmap(&mut mem, pid, None, PAGE_SIZE as u64, Prot::RW, MapFlags::POPULATE)
            .unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let area = *engine.area();
        drop(kernel);

        let mut kernel = reboot(CheckpointScheme::Persistent, &mut mem);
        let report = recover_all(&mut mem, &mut kernel, &area).unwrap();
        assert_eq!(report.dram_entries_dropped, 1);
        assert!(kernel.translate(&mut mem, pid, nva).unwrap().is_some());
        assert!(
            kernel.translate(&mut mem, pid, dva).unwrap().is_none(),
            "volatile DRAM mapping must be dropped"
        );
    }

    #[test]
    fn unclean_slot_without_valid_copy_is_skipped() {
        let mut mem = FlatMem::new(128 << 20);
        let cfg = KernelConfig::for_test(128 << 20);
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let area = SavedStateArea::new(layout.saved_state, 4);
        // Slot claimed but never checkpointed.
        area.find_or_alloc(&mut mem, 42).unwrap();
        let report = recover_all(&mut mem, &mut kernel, &area).unwrap();
        assert!(report.recovered_pids.is_empty());
        assert!(kernel.process(42).is_err());
    }
}
