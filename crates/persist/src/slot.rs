//! The saved-state area: per-process persistent slots in NVM.
//!
//! Slot layout (all offsets in bytes from the slot base):
//!
//! ```text
//!    0  pid        (u64; 0 = empty slot)
//!    8  valid copy (u64; 0 or 1, u64::MAX = no consistent copy yet)
//!   16  reserved
//!   64  context copy 0 (checksum word at copy-relative 2616)
//! 2688  context copy 1
//! 5312  mapping list copy 0 (count, checksum, then (vpn, pfn) pairs)
//!   ..  mapping list copy 1
//! ```
//!
//! A context copy holds the register file, the PTBR (persistent scheme),
//! the mapped-page count and the VMA table (up to [`MAX_VMAS`] entries).
//! Checkpoints write the *non-valid* copy and flip `valid` last, so a crash
//! at any point leaves one complete consistent copy.
//!
//! Each copy carries an FNV-1a checksum over its logical contents so that
//! recovery can detect a copy corrupted by a power cut that tore buffered
//! NVM writes (8-byte persist granularity). The `valid` flag itself is
//! *not* checksummed: it is a single 8-byte word whose atomic flip is the
//! checkpoint commit point, and [`publish`] drains the NVM write buffer on
//! both sides of the flip so it can never claim an undrained copy.
//!
//! [`publish`]: SlotHandle::publish

use kindle_cpu::RegisterFile;
use kindle_os::{Region, Vma};
use kindle_types::sanitize::{self, Event};
use kindle_types::{
    checksum64, KindleError, MemKind, Pfn, PhysAddr, PhysMem, Prot, Result, VirtAddr, Vpn,
};

/// Maximum VMAs storable in one context copy.
pub const MAX_VMAS: usize = 64;

const PID_OFF: u64 = 0;
const VALID_OFF: u64 = 8;
const COPY0_OFF: u64 = 64;
const COPY_BYTES: u64 = 2624;
const COPY1_OFF: u64 = COPY0_OFF + COPY_BYTES;
const LIST_OFF: u64 = COPY1_OFF + COPY_BYTES;

// Context-copy internal offsets.
const REGS_OFF: u64 = 0;
const ROOT_OFF: u64 = 152;
const MAPPED_OFF: u64 = 160;
const VMA_COUNT_OFF: u64 = 168;
const VMAS_OFF: u64 = 176;
const VMA_BYTES: u64 = 32;
// VMAs end at 176 + 64 * 32 = 2224; the checksum sits in the copy's last
// word (COPY_BYTES - 8).
const COPY_CKSUM_OFF: u64 = COPY_BYTES - 8;

// Mapping-list internal offsets (relative to the list copy base).
const LIST_CKSUM_OFF: u64 = 8;
const LIST_ENTRIES_OFF: u64 = 16;

/// No consistent copy exists yet.
pub const NO_VALID_COPY: u64 = u64::MAX;

/// A deserialized context copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedContext {
    /// Register file at the last checkpoint.
    pub regs: RegisterFile,
    /// PTBR (root table frame) — meaningful for the persistent scheme.
    pub root: Pfn,
    /// Leaf pages mapped at the last checkpoint.
    pub mapped_pages: u64,
    /// VMA layout at the last checkpoint.
    pub vmas: Vec<Vma>,
}

/// The saved-state area carved into fixed-size per-process slots.
#[derive(Clone, Copy, Debug)]
pub struct SavedStateArea {
    region: Region,
    slot_size: u64,
    max_procs: usize,
}

impl SavedStateArea {
    /// Divides `region` into `max_procs` slots.
    ///
    /// # Panics
    ///
    /// Panics if slots would be too small to hold even an empty context.
    pub fn new(region: Region, max_procs: usize) -> Self {
        let slot_size = region.size / max_procs as u64;
        assert!(slot_size >= LIST_OFF + 2 * 16, "saved-state slots too small: {slot_size} bytes");
        SavedStateArea { region, slot_size, max_procs }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.max_procs
    }

    /// Mapping-list capacity (entries) per copy.
    pub fn list_capacity(&self) -> u64 {
        ((self.slot_size - LIST_OFF) / 2 - LIST_ENTRIES_OFF) / 16
    }

    fn slot_base(&self, idx: usize) -> PhysAddr {
        assert!(idx < self.max_procs, "slot index out of range");
        self.region.base + idx as u64 * self.slot_size
    }

    /// Handle to slot `idx`.
    pub fn slot(&self, idx: usize) -> SlotHandle {
        SlotHandle { base: self.slot_base(idx), slot_size: self.slot_size }
    }

    /// Finds the slot owned by `pid` (reads each slot header).
    pub fn find(&self, mem: &mut dyn PhysMem, pid: u32) -> Option<usize> {
        (0..self.max_procs).find(|&i| self.slot(i).pid(mem) == pid as u64)
    }

    /// Finds or allocates a slot for `pid`.
    ///
    /// # Errors
    ///
    /// [`KindleError::RegionFull`] when all slots are taken.
    pub fn find_or_alloc(&self, mem: &mut dyn PhysMem, pid: u32) -> Result<usize> {
        if let Some(i) = self.find(mem, pid) {
            return Ok(i);
        }
        for i in 0..self.max_procs {
            let s = self.slot(i);
            if s.pid(mem) == 0 {
                s.init(mem, pid);
                return Ok(i);
            }
        }
        Err(KindleError::RegionFull("saved-state area"))
    }

    /// Iterates indices of occupied slots.
    pub fn occupied(&self, mem: &mut dyn PhysMem) -> Vec<usize> {
        (0..self.max_procs).filter(|&i| self.slot(i).pid(mem) != 0).collect()
    }
}

/// Accessor for one slot.
#[derive(Clone, Copy, Debug)]
pub struct SlotHandle {
    base: PhysAddr,
    slot_size: u64,
}

impl SlotHandle {
    pub(crate) fn list_base(&self, copy: u64) -> PhysAddr {
        let half = (self.slot_size - LIST_OFF) / 2;
        self.base + LIST_OFF + copy * half
    }

    pub(crate) fn copy_base(&self, copy: u64) -> PhysAddr {
        self.base + if copy == 0 { COPY0_OFF } else { COPY1_OFF }
    }

    /// Owning pid (0 = free).
    pub fn pid(&self, mem: &mut dyn PhysMem) -> u64 {
        mem.read_u64(self.base + PID_OFF)
    }

    /// Claims the slot for `pid` with no valid copy.
    pub fn init(&self, mem: &mut dyn PhysMem, pid: u32) {
        mem.write_u64(self.base + PID_OFF, pid as u64);
        mem.write_u64(self.base + VALID_OFF, NO_VALID_COPY);
        mem.clwb(self.base);
        mem.sfence();
    }

    /// Releases the slot.
    pub fn clear(&self, mem: &mut dyn PhysMem) {
        mem.write_u64(self.base + PID_OFF, 0);
        mem.write_u64(self.base + VALID_OFF, NO_VALID_COPY);
        mem.clwb(self.base);
        mem.sfence();
    }

    /// Index (0/1) of the consistent copy, if any.
    pub fn valid_copy(&self, mem: &mut dyn PhysMem) -> Option<u64> {
        match mem.read_u64(self.base + VALID_OFF) {
            NO_VALID_COPY => None,
            v => Some(v & 1),
        }
    }

    /// Copy index the next checkpoint must write (the non-valid one).
    pub fn working_copy(&self, mem: &mut dyn PhysMem) -> u64 {
        match self.valid_copy(mem) {
            Some(v) => 1 - v,
            None => 0,
        }
    }

    /// Atomically publishes `copy` as the consistent one — the commit point
    /// of a checkpoint. The NVM write buffer is drained on both sides of
    /// the 8-byte flip: before, so the flip can never outrun the copy data
    /// it names; after, so the flip itself is durable when this returns.
    pub fn publish(&self, mem: &mut dyn PhysMem, copy: u64) {
        mem.persist_barrier();
        self.flip_valid_copy(mem, copy);
        mem.persist_barrier();
        // Reported after the drain: any line of this slot still pending now
        // is a write the checkpoint claims durable but never drained.
        sanitize::emit(|| Event::CheckpointPublish {
            lo: self.base.as_u64(),
            hi: self.base.as_u64() + self.slot_size,
            copy: copy & 1,
            cycle: mem.now().as_u64(),
        });
    }

    /// The 8-byte valid-copy flip — the designated NVM-mutating primitive
    /// for checkpoint commits: the static pass (KD009) requires every call
    /// to be covered by a `CheckpointPublish` sanitize event in the same
    /// function. Slot lifecycle writes (`init`/`clear`) set the field to
    /// `NO_VALID_COPY` and are not commits.
    fn flip_valid_copy(&self, mem: &mut dyn PhysMem, copy: u64) {
        mem.write_u64(self.base + VALID_OFF, copy & 1);
        mem.clwb(self.base + VALID_OFF);
    }

    /// Serializes a context into copy `copy` and flushes it.
    ///
    /// # Errors
    ///
    /// [`KindleError::RegionFull`] if the VMA table exceeds [`MAX_VMAS`].
    pub fn write_context(
        &self,
        mem: &mut dyn PhysMem,
        copy: u64,
        ctx: &SavedContext,
    ) -> Result<()> {
        if ctx.vmas.len() > MAX_VMAS {
            return Err(KindleError::RegionFull("slot vma table"));
        }
        let base = self.copy_base(copy);
        mem.write_bytes(base + REGS_OFF, &ctx.regs.to_bytes());
        mem.write_u64(base + ROOT_OFF, ctx.root.as_u64());
        mem.write_u64(base + MAPPED_OFF, ctx.mapped_pages);
        mem.write_u64(base + VMA_COUNT_OFF, ctx.vmas.len() as u64);
        for (i, v) in ctx.vmas.iter().enumerate() {
            let vb = base + VMAS_OFF + i as u64 * VMA_BYTES;
            mem.write_u64(vb, v.start.as_u64());
            mem.write_u64(vb + 8, v.end.as_u64());
            mem.write_u64(vb + 16, prot_bits(v.prot));
            mem.write_u64(vb + 24, matches!(v.kind, MemKind::Nvm) as u64);
        }
        mem.write_u64(base + COPY_CKSUM_OFF, checksum64(&context_words(ctx)));
        // Flush the written extent plus the checksum line.
        let extent = VMAS_OFF + ctx.vmas.len() as u64 * VMA_BYTES;
        let mut off = 0;
        while off < extent {
            mem.clwb(base + off);
            off += 64;
        }
        mem.clwb(base + COPY_CKSUM_OFF);
        mem.sfence();
        Ok(())
    }

    /// Deserializes copy `copy`.
    pub fn read_context(&self, mem: &mut dyn PhysMem, copy: u64) -> SavedContext {
        let base = self.copy_base(copy);
        let mut regs_bytes = [0u8; RegisterFile::BYTES];
        mem.read_bytes(base + REGS_OFF, &mut regs_bytes);
        let root = Pfn::new(mem.read_u64(base + ROOT_OFF));
        let mapped_pages = mem.read_u64(base + MAPPED_OFF);
        let count = mem.read_u64(base + VMA_COUNT_OFF).min(MAX_VMAS as u64);
        let mut vmas = Vec::with_capacity(count as usize);
        for i in 0..count {
            let vb = base + VMAS_OFF + i * VMA_BYTES;
            vmas.push(Vma {
                start: VirtAddr::new(mem.read_u64(vb)),
                end: VirtAddr::new(mem.read_u64(vb + 8)),
                prot: prot_from_bits(mem.read_u64(vb + 16)),
                kind: if mem.read_u64(vb + 24) == 1 { MemKind::Nvm } else { MemKind::Dram },
            });
        }
        SavedContext { regs: RegisterFile::from_bytes(&regs_bytes), root, mapped_pages, vmas }
    }

    /// Deserializes copy `copy`, returning `None` when its stored checksum
    /// does not match the contents (a torn or never-completed copy).
    pub fn read_context_checked(&self, mem: &mut dyn PhysMem, copy: u64) -> Option<SavedContext> {
        let ctx = self.read_context(mem, copy);
        let stored = mem.read_u64(self.copy_base(copy) + COPY_CKSUM_OFF);
        (stored == checksum64(&context_words(&ctx))).then_some(ctx)
    }

    /// Positionally diff-updates mapping-list copy `copy` against the walk
    /// sequence `entries` (sorted by vpn). Reads every stored entry
    /// (charged), writes only changed entries, and returns the number of
    /// entries written. This is the rebuild scheme's per-checkpoint cost.
    ///
    /// # Errors
    ///
    /// [`KindleError::RegionFull`] if `entries` exceeds the list capacity.
    pub fn update_mapping_list(
        &self,
        mem: &mut dyn PhysMem,
        copy: u64,
        entries: &[(Vpn, Pfn)],
        per_entry_instr: u64,
        capacity: u64,
    ) -> Result<u64> {
        if entries.len() as u64 > capacity {
            return Err(KindleError::RegionFull("mapping list"));
        }
        let base = self.list_base(copy);
        let mut written = 0u64;
        let old_count = mem.read_u64(base);
        for (i, &(vpn, pfn)) in entries.iter().enumerate() {
            let epa = base + LIST_ENTRIES_OFF + i as u64 * 16;
            mem.advance(kindle_types::Cycles::new(per_entry_instr));
            let old_vpn = mem.read_u64(epa);
            let old_pfn = mem.read_u64(epa + 8);
            if old_vpn != vpn.as_u64() || old_pfn != pfn.as_u64() || i as u64 >= old_count {
                mem.write_u64(epa, vpn.as_u64());
                mem.write_u64(epa + 8, pfn.as_u64());
                // Entries are 16 bytes and may straddle two cache lines;
                // both must reach NVM.
                mem.clwb(epa);
                if (epa + 8).line_base() != epa.line_base() {
                    mem.clwb(epa + 8);
                }
                written += 1;
            }
        }
        if old_count != entries.len() as u64 {
            mem.write_u64(base, entries.len() as u64);
            mem.clwb(base);
        }
        let cksum = checksum64(&list_words(entries));
        if mem.read_u64(base + LIST_CKSUM_OFF) != cksum {
            mem.write_u64(base + LIST_CKSUM_OFF, cksum);
            mem.clwb(base + LIST_CKSUM_OFF);
        }
        mem.sfence();
        Ok(written)
    }

    /// Reads mapping-list copy `copy` without verifying its checksum.
    pub fn read_mapping_list(&self, mem: &mut dyn PhysMem, copy: u64) -> Vec<(Vpn, Pfn)> {
        let base = self.list_base(copy);
        // Clamp a (possibly torn) count to what physically fits.
        let cap = ((self.slot_size - LIST_OFF) / 2 - LIST_ENTRIES_OFF) / 16;
        let count = mem.read_u64(base).min(cap);
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let epa = base + LIST_ENTRIES_OFF + i * 16;
            out.push((Vpn::new(mem.read_u64(epa)), Pfn::new(mem.read_u64(epa + 8))));
        }
        out
    }

    /// Reads mapping-list copy `copy`, returning `None` when the stored
    /// checksum does not match the contents.
    pub fn read_mapping_list_checked(
        &self,
        mem: &mut dyn PhysMem,
        copy: u64,
    ) -> Option<Vec<(Vpn, Pfn)>> {
        let base = self.list_base(copy);
        let raw_count = mem.read_u64(base);
        let list = self.read_mapping_list(mem, copy);
        // A count beyond capacity was clamped by the read and can never
        // re-produce the stored checksum; reject it outright.
        if raw_count != list.len() as u64 {
            return None;
        }
        let stored = mem.read_u64(base + LIST_CKSUM_OFF);
        (stored == checksum64(&list_words(&list))).then_some(list)
    }
}

/// Logical word sequence a context copy's checksum covers. Built from the
/// in-memory form so writer and (round-tripping) reader agree.
fn context_words(ctx: &SavedContext) -> Vec<u64> {
    let bytes = ctx.regs.to_bytes();
    let mut words = Vec::with_capacity(bytes.len() / 8 + 3 + ctx.vmas.len() * 4);
    for c in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..c.len()].copy_from_slice(c);
        words.push(u64::from_le_bytes(w));
    }
    words.push(ctx.root.as_u64());
    words.push(ctx.mapped_pages);
    words.push(ctx.vmas.len() as u64);
    for v in &ctx.vmas {
        words.push(v.start.as_u64());
        words.push(v.end.as_u64());
        words.push(prot_bits(v.prot));
        words.push(matches!(v.kind, MemKind::Nvm) as u64);
    }
    words
}

/// Logical word sequence a mapping-list copy's checksum covers.
fn list_words(entries: &[(Vpn, Pfn)]) -> Vec<u64> {
    let mut words = Vec::with_capacity(1 + entries.len() * 2);
    words.push(entries.len() as u64);
    for &(vpn, pfn) in entries {
        words.push(vpn.as_u64());
        words.push(pfn.as_u64());
    }
    words
}

fn prot_bits(p: Prot) -> u64 {
    // Prot has no public bit accessor; encode via behaviour.
    let mut b = 0u64;
    if p.allows(kindle_types::AccessKind::Read) {
        b |= 1;
    }
    if p.allows(kindle_types::AccessKind::Write) {
        b |= 2;
    }
    b
}

fn prot_from_bits(b: u64) -> Prot {
    match b & 3 {
        0 => Prot::NONE,
        1 => Prot::READ,
        _ => Prot::RW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;

    fn area() -> (FlatMem, SavedStateArea) {
        let mem = FlatMem::new(8 << 20);
        let region = Region { base: PhysAddr::new(0x10000), size: 4 << 20 };
        (mem, SavedStateArea::new(region, 4))
    }

    fn ctx() -> SavedContext {
        let mut regs = RegisterFile::new();
        regs.rip = 0x1234;
        regs.gpr[0] = 99;
        SavedContext {
            regs,
            root: Pfn::new(0x55),
            mapped_pages: 3,
            vmas: vec![Vma {
                start: VirtAddr::new(0x4000_0000),
                end: VirtAddr::new(0x4000_3000),
                prot: Prot::RW,
                kind: MemKind::Nvm,
            }],
        }
    }

    #[test]
    fn slot_allocation_and_lookup() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 7).unwrap();
        let j = area.find_or_alloc(&mut mem, 9).unwrap();
        assert_ne!(i, j);
        assert_eq!(area.find(&mut mem, 7), Some(i));
        assert_eq!(area.find_or_alloc(&mut mem, 7).unwrap(), i);
        assert_eq!(area.occupied(&mut mem), vec![i, j]);
    }

    #[test]
    fn slots_exhaust() {
        let (mut mem, area) = area();
        for pid in 1..=4 {
            area.find_or_alloc(&mut mem, pid).unwrap();
        }
        assert_eq!(
            area.find_or_alloc(&mut mem, 5).unwrap_err(),
            KindleError::RegionFull("saved-state area")
        );
    }

    #[test]
    fn context_round_trip() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        let c = ctx();
        s.write_context(&mut mem, 0, &c).unwrap();
        assert_eq!(s.read_context(&mut mem, 0), c);
    }

    #[test]
    fn publish_flips_working_copy() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        assert_eq!(s.valid_copy(&mut mem), None);
        assert_eq!(s.working_copy(&mut mem), 0);
        s.publish(&mut mem, 0);
        assert_eq!(s.valid_copy(&mut mem), Some(0));
        assert_eq!(s.working_copy(&mut mem), 1);
        s.publish(&mut mem, 1);
        assert_eq!(s.valid_copy(&mut mem), Some(1));
    }

    #[test]
    fn mapping_list_diff_updates() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        let cap = area.list_capacity();
        let entries: Vec<_> =
            (0..100u64).map(|k| (Vpn::new(0x40000 + k), Pfn::new(0x1000 + k))).collect();
        let w1 = s.update_mapping_list(&mut mem, 0, &entries, 1, cap).unwrap();
        assert_eq!(w1, 100, "first pass writes everything");
        let w2 = s.update_mapping_list(&mut mem, 0, &entries, 1, cap).unwrap();
        assert_eq!(w2, 0, "unchanged list writes nothing");
        let mut changed = entries.clone();
        changed[5].1 = Pfn::new(0xdead);
        let w3 = s.update_mapping_list(&mut mem, 0, &changed, 1, cap).unwrap();
        assert_eq!(w3, 1, "one changed entry writes once");
        assert_eq!(s.read_mapping_list(&mut mem, 0), changed);
    }

    #[test]
    fn mapping_list_capacity_enforced() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        let entries: Vec<_> = (0..10u64).map(|k| (Vpn::new(k), Pfn::new(k))).collect();
        assert!(matches!(
            s.update_mapping_list(&mut mem, 0, &entries, 1, 5),
            Err(KindleError::RegionFull(_))
        ));
    }

    #[test]
    fn context_checksum_detects_corruption() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        let c = ctx();
        s.write_context(&mut mem, 0, &c).unwrap();
        assert_eq!(s.read_context_checked(&mut mem, 0), Some(c));
        // Flip one word of the serialized VMA table (a torn 8-byte persist).
        let victim = s.copy_base(0) + VMAS_OFF + 8;
        let old = mem.read_u64(victim);
        mem.write_u64(victim, old ^ 0x1000);
        assert_eq!(s.read_context_checked(&mut mem, 0), None);
    }

    #[test]
    fn mapping_list_checksum_detects_corruption() {
        let (mut mem, area) = area();
        let i = area.find_or_alloc(&mut mem, 3).unwrap();
        let s = area.slot(i);
        let cap = area.list_capacity();
        let entries: Vec<_> =
            (0..10u64).map(|k| (Vpn::new(0x40000 + k), Pfn::new(0x1000 + k))).collect();
        s.update_mapping_list(&mut mem, 0, &entries, 1, cap).unwrap();
        assert_eq!(s.read_mapping_list_checked(&mut mem, 0), Some(entries));
        let victim = s.list_base(0) + LIST_ENTRIES_OFF + 3 * 16;
        let old = mem.read_u64(victim);
        mem.write_u64(victim, old ^ 1);
        assert_eq!(s.read_mapping_list_checked(&mut mem, 0), None);
    }

    #[test]
    fn copies_are_independent() {
        let (mut mem, area) = area();
        let s = area.slot(0);
        s.init(&mut mem, 1);
        let mut c0 = ctx();
        c0.mapped_pages = 10;
        let mut c1 = ctx();
        c1.mapped_pages = 20;
        s.write_context(&mut mem, 0, &c0).unwrap();
        s.write_context(&mut mem, 1, &c1).unwrap();
        assert_eq!(s.read_context(&mut mem, 0).mapped_pages, 10);
        assert_eq!(s.read_context(&mut mem, 1).mapped_pages, 20);
    }
}
