//! The periodic checkpoint engine.
//!
//! At the end of each checkpoint interval (paper default: 10 ms, after
//! Aurora) the engine, for every process:
//!
//! 1. saves the CPU state and OS metadata into the *working* context copy
//!    (reading the redo log to apply accumulated metadata changes);
//! 2. under the **rebuild** scheme, traverses the page table and
//!    diff-updates the virtual→NVM-frame mapping list in NVM — the cost
//!    that grows with mapped size and checkpoint frequency;
//! 3. atomically publishes the working copy as consistent;
//!
//! and finally truncates the redo log.

use kindle_os::{Kernel, MetaRecord, NvmLayout, PtMode};
use kindle_types::sanitize::{self, Event};
use kindle_types::{Cycles, MemKind, Pfn, PhysMem, Pte, Result, Vpn};

use crate::log::RedoLog;
use crate::slot::{SavedContext, SavedStateArea};

/// Scheme for keeping translation info consistent (paper §III-A). This is
/// deliberately the same type as [`PtMode`]: the checkpoint behaviour and
/// the page-table hosting are two halves of one design choice.
pub type CheckpointScheme = PtMode;

/// Counters kept by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CheckpointStats {
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Context copies written.
    pub contexts_saved: u64,
    /// Redo-log records appended.
    pub log_appends: u64,
    /// Redo-log records read back during checkpoints.
    pub log_applied: u64,
    /// Mapping-list entries compared (rebuild scheme).
    pub list_checked: u64,
    /// Mapping-list entries rewritten (rebuild scheme).
    pub list_written: u64,
    /// Checkpoints forced early by log overflow.
    pub forced_by_overflow: u64,
    /// Total simulated time spent inside checkpoints.
    pub cycles_in_checkpoints: Cycles,
}

/// The periodic checkpoint engine. See the module docs.
#[derive(Clone, Debug)]
pub struct CheckpointEngine {
    scheme: CheckpointScheme,
    interval: Cycles,
    next_due: Cycles,
    area: SavedStateArea,
    log: RedoLog,
    stats: CheckpointStats,
}

impl CheckpointEngine {
    /// Creates an engine over the kernel's NVM layout.
    pub fn new(
        layout: &NvmLayout,
        scheme: CheckpointScheme,
        interval: Cycles,
        max_procs: usize,
    ) -> Self {
        CheckpointEngine {
            scheme,
            interval,
            next_due: interval,
            area: SavedStateArea::new(layout.saved_state, max_procs),
            log: RedoLog::new(layout.meta_log),
            stats: CheckpointStats::default(),
        }
    }

    /// The saved-state area (recovery needs it).
    pub fn area(&self) -> &SavedStateArea {
        &self.area
    }

    /// The redo log.
    pub fn log(&self) -> &RedoLog {
        &self.log
    }

    /// Scheme in force.
    pub fn scheme(&self) -> CheckpointScheme {
        self.scheme
    }

    /// Checkpoint interval.
    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// Counters.
    pub fn stats(&self) -> &CheckpointStats {
        &self.stats
    }

    /// Appends kernel metadata records to the redo log, forcing an early
    /// checkpoint (and retrying) if the log fills.
    ///
    /// Page map/unmap records are *not* logged: page-allocation metadata is
    /// persisted by the frame allocator's bitmap, and the mapping list is
    /// maintained by page-table traversal at checkpoint time.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint failures.
    pub fn on_meta_records(
        &mut self,
        mem: &mut dyn PhysMem,
        kernel: &mut Kernel,
        records: Vec<MetaRecord>,
    ) -> Result<()> {
        for rec in records {
            if matches!(rec, MetaRecord::PageMapped { .. } | MetaRecord::PageUnmapped { .. }) {
                continue;
            }
            mem.advance(Cycles::new(kernel.costs.meta_log_op));
            if self.log.append(mem, &rec).is_err() {
                self.stats.forced_by_overflow += 1;
                self.checkpoint(mem, kernel)?;
                self.log.append(mem, &rec)?;
            } else {
                self.stats.log_appends += 1;
            }
        }
        Ok(())
    }

    /// True if a checkpoint is due at the current simulated time.
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_due
    }

    /// Runs a checkpoint if due. Returns whether one ran. The next deadline
    /// is scheduled one interval after *completion*, so an overlong
    /// checkpoint does not create a backlog.
    ///
    /// # Errors
    ///
    /// Propagates slot exhaustion or list overflow.
    pub fn tick(&mut self, mem: &mut dyn PhysMem, kernel: &mut Kernel) -> Result<bool> {
        if !self.due(mem.now()) {
            return Ok(false);
        }
        self.checkpoint(mem, kernel)?;
        self.next_due = mem.now() + self.interval;
        Ok(true)
    }

    /// Runs one full checkpoint now.
    ///
    /// # Errors
    ///
    /// Propagates slot exhaustion or list overflow.
    pub fn checkpoint(&mut self, mem: &mut dyn PhysMem, kernel: &mut Kernel) -> Result<()> {
        // The whole checkpoint runs under the (simulated) big kernel lock:
        // its NVM traffic is ordered against the foreground thread's. The
        // lock events bracket the *call*, not the body, so the release is
        // reached even when the body propagates an error (KD010).
        sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_KERNEL });
        let result = self.checkpoint_locked(mem, kernel);
        sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_KERNEL });
        result
    }

    /// The checkpoint body; runs with `LOCK_KERNEL` held by the caller.
    fn checkpoint_locked(&mut self, mem: &mut dyn PhysMem, kernel: &mut Kernel) -> Result<()> {
        let start = mem.now();
        // Apply accumulated metadata changes: read the log (charged). The
        // kernel's live state already reflects them; the reads model the
        // "get working copy and apply changes" step.
        let applied = self.log.read_all(mem).len() as u64;
        self.stats.log_applied += applied;

        for pid in kernel.pids() {
            let idx = self.area.find_or_alloc(mem, pid)?;
            let slot = self.area.slot(idx);
            let working = slot.working_copy(mem);

            // Gather the current context.
            let (ctx, entries) = {
                let proc = kernel.process(pid)?;
                let ctx = SavedContext {
                    regs: proc.regs,
                    root: proc.aspace.root(),
                    mapped_pages: proc.aspace.mapped_pages(),
                    vmas: proc.vmas.iter().copied().collect(),
                };
                let entries = match self.scheme {
                    CheckpointScheme::Persistent => Vec::new(),
                    CheckpointScheme::Rebuild => {
                        // Traverse the page table (charged reads) collecting
                        // virtual → NVM-frame pairs.
                        let mut v: Vec<(Vpn, Pfn)> = Vec::new();
                        proc.aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                            if pte.mem_kind() == MemKind::Nvm {
                                v.push((vpn, pte.pfn()));
                            }
                        });
                        v
                    }
                };
                (ctx, entries)
            };

            slot.write_context(mem, working, &ctx)?;
            self.stats.contexts_saved += 1;

            if self.scheme == CheckpointScheme::Rebuild {
                self.stats.list_checked += entries.len() as u64;
                let written = slot.update_mapping_list(
                    mem,
                    working,
                    &entries,
                    kernel.costs.mapping_list_op,
                    self.area.list_capacity(),
                )?;
                self.stats.list_written += written;
            }

            slot.publish(mem, working);
        }

        self.log.truncate(mem);
        self.stats.checkpoints += 1;
        self.stats.cycles_in_checkpoints += mem.now() - start;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_os::{KernelConfig, NvmLayout};
    use kindle_types::physmem::FlatMem;
    use kindle_types::{MapFlags, Prot, PAGE_SIZE};

    fn setup(scheme: CheckpointScheme) -> (FlatMem, Kernel, CheckpointEngine, u32) {
        let mut mem = FlatMem::new(128 << 20);
        let mut cfg = KernelConfig::for_test(128 << 20);
        cfg.pt_mode = scheme;
        let mut kernel = Kernel::new(cfg, &mut mem).unwrap();
        let layout = kernel.layout;
        let engine = CheckpointEngine::new(&layout, scheme, Cycles::from_millis(10), 4);
        let pid = kernel.create_process(&mut mem).unwrap();
        (mem, kernel, engine, pid)
    }

    fn layout_of(kernel: &Kernel) -> NvmLayout {
        kernel.layout
    }

    #[test]
    fn checkpoint_saves_context_and_list() {
        let (mut mem, mut kernel, mut engine, pid) = setup(CheckpointScheme::Rebuild);
        let va = kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                8 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let recs = kernel.take_meta_records();
        engine.on_meta_records(&mut mem, &mut kernel, recs).unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();

        let idx = engine.area().find(&mut mem, pid).unwrap();
        let slot = engine.area().slot(idx);
        let valid = slot.valid_copy(&mut mem).expect("consistent copy published");
        let ctx = slot.read_context(&mut mem, valid);
        assert_eq!(ctx.mapped_pages, 8);
        assert_eq!(ctx.vmas.len(), 1);
        assert_eq!(ctx.vmas[0].start, va);
        let list = slot.read_mapping_list(&mut mem, valid);
        assert_eq!(list.len(), 8, "all NVM pages recorded");
        assert!(engine.log().is_empty(&mut mem), "log truncated after checkpoint");
        assert_eq!(engine.stats().checkpoints, 1);
    }

    #[test]
    fn persistent_scheme_skips_list() {
        let (mut mem, mut kernel, mut engine, pid) = setup(CheckpointScheme::Persistent);
        kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                4 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let idx = engine.area().find(&mut mem, pid).unwrap();
        let slot = engine.area().slot(idx);
        let valid = slot.valid_copy(&mut mem).unwrap();
        let ctx = slot.read_context(&mut mem, valid);
        assert_eq!(ctx.root, kernel.process(pid).unwrap().aspace.root());
        assert_eq!(engine.stats().list_checked, 0);
        assert_eq!(slot.read_mapping_list(&mut mem, valid).len(), 0);
    }

    #[test]
    fn second_checkpoint_writes_nothing_when_unchanged() {
        let (mut mem, mut kernel, mut engine, pid) = setup(CheckpointScheme::Rebuild);
        kernel
            .sys_mmap(
                &mut mem,
                pid,
                None,
                16 * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        let w_first = engine.stats().list_written;
        assert_eq!(w_first, 16);
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        // Second checkpoint targets the other copy: it must write all 16
        // (that copy was never populated).
        assert_eq!(engine.stats().list_written, 32);
        engine.checkpoint(&mut mem, &mut kernel).unwrap();
        // Third checkpoint returns to copy 0 which already matches.
        assert_eq!(engine.stats().list_written, 32, "steady state writes nothing");
        assert_eq!(engine.stats().list_checked, 48);
    }

    #[test]
    fn tick_fires_on_interval() {
        let (mut mem, mut kernel, mut engine, _pid) = setup(CheckpointScheme::Persistent);
        assert!(!engine.tick(&mut mem, &mut kernel).unwrap(), "not due at t=0");
        mem.advance(Cycles::from_millis(10));
        assert!(engine.tick(&mut mem, &mut kernel).unwrap());
        assert!(!engine.tick(&mut mem, &mut kernel).unwrap(), "rescheduled");
        assert_eq!(engine.stats().checkpoints, 1);
    }

    #[test]
    fn log_overflow_forces_checkpoint() {
        let (mut mem, mut kernel, _engine, pid) = setup(CheckpointScheme::Persistent);
        // Tiny log: capacity 2 records.
        let mut layout = layout_of(&kernel);
        layout.meta_log.size = 64 + 2 * MetaRecord::LOG_BYTES;
        let mut engine = CheckpointEngine::new(
            &layout,
            CheckpointScheme::Persistent,
            Cycles::from_millis(10),
            4,
        );
        let recs = vec![
            MetaRecord::RegsUpdated { pid },
            MetaRecord::RegsUpdated { pid },
            MetaRecord::RegsUpdated { pid },
        ];
        engine.on_meta_records(&mut mem, &mut kernel, recs).unwrap();
        assert_eq!(engine.stats().forced_by_overflow, 1);
        assert_eq!(engine.stats().checkpoints, 1);
    }
}
