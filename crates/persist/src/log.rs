//! The NVM redo log of OS metadata modifications.
//!
//! Fixed-size records (tag + pid + 4 payload words + checksum = 56 bytes)
//! appended with `clwb` + fence. The checkpoint engine drains the log into
//! the working context copy and truncates it; the log head lives in the
//! first line of the region so truncation is a single durable store.
//!
//! The trailing checksum word (FNV-1a over the first six words) is how
//! crash recovery detects a *torn* tail record: with 8-byte atomic persist
//! granularity, a power cut mid-append — or a cut that persisted the head
//! bump but lost record words still sitting in the NVM write buffer — can
//! leave a record partially written. Replay stops at the first record whose
//! checksum fails; everything before it is intact by construction.

use kindle_os::MetaRecord;
use kindle_os::Region;
use kindle_types::sanitize::{self, Event};
use kindle_types::{
    checksum64, KindleError, MemKind, Pfn, PhysAddr, PhysMem, Prot, Result, VirtAddr, Vpn,
};

const HEADER_BYTES: u64 = 64;
const RECORD_BYTES: u64 = 56;
/// Payload words per record (excluding the checksum).
const PAYLOAD_WORDS: usize = 6;

const TAG_PROCESS_CREATE: u64 = 1;
const TAG_VMA_ADD: u64 = 2;
const TAG_VMA_REMOVE: u64 = 3;
const TAG_VMA_PROTECT: u64 = 4;
const TAG_PAGE_MAPPED: u64 = 5;
const TAG_PAGE_UNMAPPED: u64 = 6;
const TAG_REGS_UPDATED: u64 = 7;

/// A record as stored in the log (mirror of [`MetaRecord`]).
pub type LogRecord = MetaRecord;

/// The redo log ring (bounded; callers checkpoint-and-truncate on overflow).
#[derive(Clone, Copy, Debug)]
pub struct RedoLog {
    region: Region,
    capacity: u64,
}

impl RedoLog {
    /// Wraps `region` as a log.
    pub fn new(region: Region) -> Self {
        let capacity = (region.size - HEADER_BYTES) / RECORD_BYTES;
        RedoLog { region, capacity }
    }

    /// Maximum records before overflow.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records currently in the log.
    pub fn len(&self, mem: &mut dyn PhysMem) -> u64 {
        mem.read_u64(self.region.base)
    }

    /// True if the log holds no records.
    pub fn is_empty(&self, mem: &mut dyn PhysMem) -> bool {
        self.len(mem) == 0
    }

    fn record_pa(&self, idx: u64) -> PhysAddr {
        self.region.base + HEADER_BYTES + idx * RECORD_BYTES
    }

    /// Durably stores the record-count head word (write + clwb + fence).
    /// This is the designated NVM-mutating primitive for log growth: the
    /// static pass (KD009) requires every call to be covered by a
    /// `LogAppend` sanitize event in the same function.
    fn bump_log_head(&self, mem: &mut dyn PhysMem, head: u64) {
        mem.write_u64(self.region.base, head);
        mem.clwb(self.region.base);
        mem.sfence();
    }

    /// Durably zeroes the head word (truncation). The designated primitive
    /// for log truncation, covered by a `LogTruncate` event (KD009).
    fn reset_log_head(&self, mem: &mut dyn PhysMem) {
        mem.write_u64(self.region.base, 0);
        mem.clwb(self.region.base);
        mem.sfence();
    }

    /// Appends one record durably.
    ///
    /// # Errors
    ///
    /// [`KindleError::RegionFull`] when the log is full — the caller should
    /// checkpoint immediately and retry.
    pub fn append(&self, mem: &mut dyn PhysMem, rec: &MetaRecord) -> Result<()> {
        let head = self.len(mem);
        if head >= self.capacity {
            return Err(KindleError::RegionFull("redo log"));
        }
        sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_REDO_LOG });
        let pa = self.record_pa(head);
        let payload = encode(rec);
        for (i, w) in payload.iter().enumerate() {
            mem.write_u64(pa + i as u64 * 8, *w);
        }
        mem.write_u64(pa + PAYLOAD_WORDS as u64 * 8, checksum64(&payload));
        // 56-byte records can straddle two cache lines.
        mem.clwb(pa);
        if (pa + (RECORD_BYTES - 8)).line_base() != pa.line_base() {
            mem.clwb(pa + (RECORD_BYTES - 8));
        }
        mem.sfence();
        self.bump_log_head(mem, head + 1);
        sanitize::emit(|| Event::LogAppend { seq: head });
        sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_REDO_LOG });
        Ok(())
    }

    /// Reads every record (charged reads), oldest first. Replay stops at
    /// the first checksum-invalid (torn) record — see [`read_valid`].
    ///
    /// [`read_valid`]: Self::read_valid
    pub fn read_all(&self, mem: &mut dyn PhysMem) -> Vec<MetaRecord> {
        self.read_valid(mem).0
    }

    /// Reads the valid prefix of the log, oldest first, returning the
    /// records plus the number of *torn* records dropped: once a record's
    /// checksum fails, it and everything after it (written later, so at
    /// most as durable) are discarded.
    pub fn read_valid(&self, mem: &mut dyn PhysMem) -> (Vec<MetaRecord>, u64) {
        sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_REDO_LOG });
        let n = self.len(mem);
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n {
            let pa = self.record_pa(i);
            let mut words = [0u64; PAYLOAD_WORDS];
            for (k, w) in words.iter_mut().enumerate() {
                *w = mem.read_u64(pa + k as u64 * 8);
            }
            let stored = mem.read_u64(pa + PAYLOAD_WORDS as u64 * 8);
            if stored != checksum64(&words) {
                sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_REDO_LOG });
                return (out, n - i);
            }
            sanitize::emit(|| Event::LogApply { seq: i });
            if let Some(rec) = decode(&words) {
                out.push(rec);
            }
        }
        sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_REDO_LOG });
        (out, 0)
    }

    /// Durably truncates the log (end of a checkpoint).
    pub fn truncate(&self, mem: &mut dyn PhysMem) {
        sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_REDO_LOG });
        self.reset_log_head(mem);
        sanitize::emit(|| Event::LogTruncate);
        sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_REDO_LOG });
    }
}

fn encode(rec: &MetaRecord) -> [u64; 6] {
    match *rec {
        MetaRecord::ProcessCreate { pid } => [TAG_PROCESS_CREATE, pid as u64, 0, 0, 0, 0],
        MetaRecord::VmaAdd { pid, start, end, prot, kind } => [
            TAG_VMA_ADD,
            pid as u64,
            start.as_u64(),
            end.as_u64(),
            prot_bits(prot),
            matches!(kind, MemKind::Nvm) as u64,
        ],
        MetaRecord::VmaRemove { pid, start, end } => {
            [TAG_VMA_REMOVE, pid as u64, start.as_u64(), end.as_u64(), 0, 0]
        }
        MetaRecord::VmaProtect { pid, start, end, prot } => {
            [TAG_VMA_PROTECT, pid as u64, start.as_u64(), end.as_u64(), prot_bits(prot), 0]
        }
        MetaRecord::PageMapped { pid, vpn, pfn, kind } => [
            TAG_PAGE_MAPPED,
            pid as u64,
            vpn.as_u64(),
            pfn.as_u64(),
            matches!(kind, MemKind::Nvm) as u64,
            0,
        ],
        MetaRecord::PageUnmapped { pid, vpn, pfn } => {
            [TAG_PAGE_UNMAPPED, pid as u64, vpn.as_u64(), pfn.as_u64(), 0, 0]
        }
        MetaRecord::RegsUpdated { pid } => [TAG_REGS_UPDATED, pid as u64, 0, 0, 0, 0],
    }
}

fn decode(words: &[u64; 6]) -> Option<MetaRecord> {
    let pid = words[1] as u32;
    Some(match words[0] {
        TAG_PROCESS_CREATE => MetaRecord::ProcessCreate { pid },
        TAG_VMA_ADD => MetaRecord::VmaAdd {
            pid,
            start: VirtAddr::new(words[2]),
            end: VirtAddr::new(words[3]),
            prot: prot_from_bits(words[4]),
            kind: if words[5] == 1 { MemKind::Nvm } else { MemKind::Dram },
        },
        TAG_VMA_REMOVE => MetaRecord::VmaRemove {
            pid,
            start: VirtAddr::new(words[2]),
            end: VirtAddr::new(words[3]),
        },
        TAG_VMA_PROTECT => MetaRecord::VmaProtect {
            pid,
            start: VirtAddr::new(words[2]),
            end: VirtAddr::new(words[3]),
            prot: prot_from_bits(words[4]),
        },
        TAG_PAGE_MAPPED => MetaRecord::PageMapped {
            pid,
            vpn: Vpn::new(words[2]),
            pfn: Pfn::new(words[3]),
            kind: if words[4] == 1 { MemKind::Nvm } else { MemKind::Dram },
        },
        TAG_PAGE_UNMAPPED => {
            MetaRecord::PageUnmapped { pid, vpn: Vpn::new(words[2]), pfn: Pfn::new(words[3]) }
        }
        TAG_REGS_UPDATED => MetaRecord::RegsUpdated { pid },
        _ => return None,
    })
}

fn prot_bits(p: Prot) -> u64 {
    let mut b = 0u64;
    if p.allows(kindle_types::AccessKind::Read) {
        b |= 1;
    }
    if p.allows(kindle_types::AccessKind::Write) {
        b |= 2;
    }
    b
}

fn prot_from_bits(b: u64) -> Prot {
    match b & 3 {
        0 => Prot::NONE,
        1 => Prot::READ,
        _ => Prot::RW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;

    fn log() -> (FlatMem, RedoLog) {
        let mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0x8000), size: 64 * 1024 };
        (mem, RedoLog::new(region))
    }

    fn sample_records() -> Vec<MetaRecord> {
        vec![
            MetaRecord::ProcessCreate { pid: 1 },
            MetaRecord::VmaAdd {
                pid: 1,
                start: VirtAddr::new(0x4000_0000),
                end: VirtAddr::new(0x4001_0000),
                prot: Prot::RW,
                kind: MemKind::Nvm,
            },
            MetaRecord::PageMapped {
                pid: 1,
                vpn: Vpn::new(0x40000),
                pfn: Pfn::new(0xc0001),
                kind: MemKind::Nvm,
            },
            MetaRecord::VmaProtect {
                pid: 1,
                start: VirtAddr::new(0x4000_0000),
                end: VirtAddr::new(0x4000_1000),
                prot: Prot::READ,
            },
            MetaRecord::PageUnmapped { pid: 1, vpn: Vpn::new(0x40001), pfn: Pfn::new(0xc0002) },
            MetaRecord::VmaRemove {
                pid: 1,
                start: VirtAddr::new(0x4000_0000),
                end: VirtAddr::new(0x4001_0000),
            },
            MetaRecord::RegsUpdated { pid: 1 },
        ]
    }

    #[test]
    fn append_read_round_trip() {
        let (mut mem, log) = log();
        let recs = sample_records();
        for r in &recs {
            log.append(&mut mem, r).unwrap();
        }
        assert_eq!(log.len(&mut mem), recs.len() as u64);
        assert_eq!(log.read_all(&mut mem), recs);
    }

    #[test]
    fn truncate_empties() {
        let (mut mem, log) = log();
        log.append(&mut mem, &MetaRecord::ProcessCreate { pid: 2 }).unwrap();
        assert!(!log.is_empty(&mut mem));
        log.truncate(&mut mem);
        assert!(log.is_empty(&mut mem));
        assert!(log.read_all(&mut mem).is_empty());
    }

    #[test]
    fn append_at_exact_capacity_fills_then_rejects() {
        let mut mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0x8000), size: HEADER_BYTES + 3 * RECORD_BYTES };
        let log = RedoLog::new(region);
        assert_eq!(log.capacity(), 3);
        for pid in 0..3 {
            log.append(&mut mem, &MetaRecord::ProcessCreate { pid }).unwrap();
        }
        assert_eq!(log.len(&mut mem), 3, "the last slot is usable");
        assert_eq!(
            log.append(&mut mem, &MetaRecord::RegsUpdated { pid: 9 }).unwrap_err(),
            KindleError::RegionFull("redo log")
        );
        // The failed append must not have clobbered anything.
        let (recs, torn) = log.read_valid(&mut mem);
        assert_eq!(torn, 0);
        assert_eq!(recs, (0..3).map(|pid| MetaRecord::ProcessCreate { pid }).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_record_is_dropped_with_its_successors() {
        let (mut mem, log) = log();
        let recs = sample_records();
        for r in &recs {
            log.append(&mut mem, r).unwrap();
        }
        // Tear one payload word of the third record, as an 8-byte-atomic
        // power cut would: its checksum fails, so it and every later
        // record (at most as durable) must be discarded.
        let torn_idx = 2u64;
        let pa = log.record_pa(torn_idx) + 16;
        let old = mem.read_u64(pa);
        mem.write_u64(pa, old ^ 0xdead);
        let (valid, torn) = log.read_valid(&mut mem);
        assert_eq!(valid, recs[..torn_idx as usize]);
        assert_eq!(torn, recs.len() as u64 - torn_idx);
        assert_eq!(log.read_all(&mut mem), recs[..torn_idx as usize]);
    }

    #[test]
    fn truncate_then_append_reuses_slots() {
        let (mut mem, log) = log();
        for r in &sample_records() {
            log.append(&mut mem, r).unwrap();
        }
        log.truncate(&mut mem);
        // New records overwrite the old slots from index 0; stale bytes
        // beyond the new head must stay invisible.
        let fresh = vec![MetaRecord::ProcessCreate { pid: 7 }, MetaRecord::RegsUpdated { pid: 7 }];
        for r in &fresh {
            log.append(&mut mem, r).unwrap();
        }
        assert_eq!(log.len(&mut mem), 2);
        let (valid, torn) = log.read_valid(&mut mem);
        assert_eq!(valid, fresh);
        assert_eq!(torn, 0);
    }

    #[test]
    fn overflow_reports_region_full() {
        let mem = FlatMem::new(1 << 20);
        let region = Region { base: PhysAddr::new(0), size: HEADER_BYTES + 2 * RECORD_BYTES };
        let log = RedoLog::new(region);
        let mut mem = mem;
        assert_eq!(log.capacity(), 2);
        log.append(&mut mem, &MetaRecord::RegsUpdated { pid: 1 }).unwrap();
        log.append(&mut mem, &MetaRecord::RegsUpdated { pid: 1 }).unwrap();
        assert_eq!(
            log.append(&mut mem, &MetaRecord::RegsUpdated { pid: 1 }).unwrap_err(),
            KindleError::RegionFull("redo log")
        );
    }
}
