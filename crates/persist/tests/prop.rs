//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the persistence structures.

use proptest::prelude::*;

use kindle_cpu::RegisterFile;
use kindle_os::{MetaRecord, Region, Vma};
use kindle_persist::{RedoLog, SavedContext, SavedStateArea};
use kindle_types::physmem::FlatMem;
use kindle_types::{MemKind, Pfn, PhysAddr, Prot, VirtAddr, Vpn};

fn arb_record() -> impl Strategy<Value = MetaRecord> {
    prop_oneof![
        (1u32..100).prop_map(|pid| MetaRecord::ProcessCreate { pid }),
        (1u32..100, 0u64..1000, 1u64..100).prop_map(|(pid, s, l)| MetaRecord::VmaAdd {
            pid,
            start: VirtAddr::new(s * 4096),
            end: VirtAddr::new((s + l) * 4096),
            prot: Prot::RW,
            kind: MemKind::Nvm,
        }),
        (1u32..100, 0u64..1000, 1u64..100).prop_map(|(pid, s, l)| MetaRecord::VmaRemove {
            pid,
            start: VirtAddr::new(s * 4096),
            end: VirtAddr::new((s + l) * 4096),
        }),
        (1u32..100, 0u64..1 << 30, 0u64..1 << 20).prop_map(|(pid, v, f)| {
            MetaRecord::PageMapped { pid, vpn: Vpn::new(v), pfn: Pfn::new(f), kind: MemKind::Dram }
        }),
        (1u32..100, 0u64..1 << 30, 0u64..1 << 20).prop_map(|(pid, v, f)| {
            MetaRecord::PageUnmapped { pid, vpn: Vpn::new(v), pfn: Pfn::new(f) }
        }),
        (1u32..100).prop_map(|pid| MetaRecord::RegsUpdated { pid }),
    ]
}

proptest! {
    /// Any sequence of records reads back exactly, in order.
    #[test]
    fn redo_log_round_trips(records in prop::collection::vec(arb_record(), 0..60)) {
        let mut mem = FlatMem::new(1 << 20);
        let log = RedoLog::new(Region { base: PhysAddr::new(0x8000), size: 64 * 1024 });
        for r in &records {
            log.append(&mut mem, r).unwrap();
        }
        prop_assert_eq!(log.read_all(&mut mem), records);
        log.truncate(&mut mem);
        prop_assert!(log.is_empty(&mut mem));
    }

    /// Diff-updating the mapping list twice with arbitrary lists always
    /// converges to the second list, and unchanged prefixes write nothing.
    #[test]
    fn mapping_list_diff_converges(
        first in prop::collection::vec((0u64..1 << 30, 0u64..1 << 20), 0..80),
        second in prop::collection::vec((0u64..1 << 30, 0u64..1 << 20), 0..80),
    ) {
        let mut mem = FlatMem::new(8 << 20);
        let area = SavedStateArea::new(
            Region { base: PhysAddr::new(0x10000), size: 4 << 20 },
            4,
        );
        let i = area.find_or_alloc(&mut mem, 1).unwrap();
        let slot = area.slot(i);
        let to_pairs = |v: &Vec<(u64, u64)>| -> Vec<(Vpn, Pfn)> {
            v.iter().map(|&(a, b)| (Vpn::new(a), Pfn::new(b))).collect()
        };
        let cap = area.list_capacity();
        let f = to_pairs(&first);
        let s = to_pairs(&second);
        slot.update_mapping_list(&mut mem, 0, &f, 1, cap).unwrap();
        prop_assert_eq!(slot.read_mapping_list(&mut mem, 0), f.clone());
        let written = slot.update_mapping_list(&mut mem, 0, &s, 1, cap).unwrap();
        prop_assert_eq!(slot.read_mapping_list(&mut mem, 0), s.clone());
        // Writes only happen where the lists differ (or beyond f's length).
        let unchanged = f.iter().zip(&s).take_while(|(a, b)| a == b).count() as u64;
        prop_assert!(written <= s.len() as u64 - unchanged.min(s.len() as u64));
        // Idempotence.
        prop_assert_eq!(slot.update_mapping_list(&mut mem, 0, &s, 1, cap).unwrap(), 0);
    }

    /// Contexts with arbitrary registers and VMA tables round-trip through
    /// either copy, independently.
    #[test]
    fn context_round_trips(
        rip in any::<u64>(),
        gpr0 in any::<u64>(),
        root in 0u64..1 << 20,
        vma_pages in prop::collection::vec((0u64..10_000u64, 1u64..32), 0..16),
        copy in 0u64..2,
    ) {
        let mut mem = FlatMem::new(8 << 20);
        let area = SavedStateArea::new(
            Region { base: PhysAddr::new(0x10000), size: 4 << 20 },
            4,
        );
        let i = area.find_or_alloc(&mut mem, 9).unwrap();
        let slot = area.slot(i);
        let mut regs = RegisterFile::new();
        regs.rip = rip;
        regs.gpr[0] = gpr0;
        // Build disjoint VMAs by stacking.
        let mut next = 0x100u64;
        let mut vmas = Vec::new();
        for (gap, len) in vma_pages {
            let start = next + gap % 64;
            vmas.push(Vma {
                start: VirtAddr::new(start * 4096),
                end: VirtAddr::new((start + len) * 4096),
                prot: Prot::RW,
                kind: MemKind::Nvm,
            });
            next = start + len;
        }
        let ctx = SavedContext {
            regs,
            root: Pfn::new(root),
            mapped_pages: vmas.len() as u64,
            vmas,
        };
        slot.write_context(&mut mem, copy, &ctx).unwrap();
        prop_assert_eq!(slot.read_context(&mut mem, copy), ctx);
    }
}
