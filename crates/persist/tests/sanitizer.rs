//! Seeded-bug tests for the cross-layer invariant sanitizer.
//!
//! Each test plants one defect of a class the `InvariantChecker` knows
//! about — through the real OS / persistence components, not by faking
//! checker input — and asserts the checker reports exactly that class.
//! A clean-run companion in each test pins down the false-positive side.

use std::panic::{catch_unwind, AssertUnwindSafe};

use kindle_os::{
    AddressSpace, FrameAllocator, FramePools, KernelCosts, MetaRecord, PersistentFrameAllocator,
    PtMode, Region,
};
use kindle_persist::{RedoLog, SavedStateArea};
use kindle_types::physmem::FlatMem;
use kindle_types::sanitize::{self, InvariantChecker, Violation, ViolationLog};
use kindle_types::{Pfn, PhysAddr, PhysMem, VirtAddr};

/// Installs a fresh checker and returns its log with the uninstall guard.
fn checker() -> (ViolationLog, sanitize::Installed) {
    let c = InvariantChecker::new();
    let log = c.log();
    (log, sanitize::install(Box::new(c)))
}

#[test]
fn undrained_checkpoint_is_reported() {
    let (log, _guard) = checker();
    let mut mem = FlatMem::new(1 << 20);
    let region = Region { base: PhysAddr::new(0x10000), size: 0x8000 };
    let area = SavedStateArea::new(region, 4);
    let slot = area.slot(0);
    slot.init(&mut mem, 7);

    // Buggy checkpoint: dirty a context line inside the slot but publish
    // without ever flushing it.
    let dirty = region.base + 64;
    mem.write_u64(dirty, 0xdead_beef);
    slot.publish(&mut mem, 0);

    assert!(
        log.any(|v| matches!(
            v,
            Violation::UndrainedCheckpoint { line, .. } if *line == dirty.line_base().as_u64()
        )),
        "expected UndrainedCheckpoint, got {:?}",
        log.snapshot()
    );

    // Correct checkpoint: flush the line, then publish — no new report.
    let before = log.snapshot().len();
    mem.clwb(dirty);
    mem.sfence();
    slot.publish(&mut mem, 1);
    assert_eq!(log.snapshot().len(), before, "drained publish must be clean");
}

#[test]
fn double_free_is_reported() {
    let (log, _guard) = checker();
    let mut a = FrameAllocator::new("dram", Pfn::new(0), 8);
    let f = a.alloc().expect("pool has frames");
    a.free(f);
    assert!(log.is_empty(), "alloc/free pair must be clean");

    // The allocator's own assert fires too; the checker must still have
    // recorded the defect by then.
    let panicked = catch_unwind(AssertUnwindSafe(|| a.free(f)));
    assert!(panicked.is_err(), "allocator should also assert");
    assert!(
        log.any(|v| matches!(v, Violation::DoubleFree { pool: "dram", pfn } if *pfn == f.as_u64())),
        "expected DoubleFree, got {:?}",
        log.snapshot()
    );
}

#[test]
fn cross_pool_free_is_reported() {
    let (log, _guard) = checker();
    // Two pools over the same PFN window, as a buggy layout would produce.
    let mut dram = FrameAllocator::new("dram", Pfn::new(0), 8);
    let mut nvm = FrameAllocator::new("nvm", Pfn::new(0), 8);
    let f = dram.alloc().expect("pool has frames");
    let panicked = catch_unwind(AssertUnwindSafe(|| nvm.free(f)));
    assert!(panicked.is_err(), "allocator should also assert");
    assert!(
        log.any(|v| matches!(
            v,
            Violation::CrossPoolFree { alloc_pool: "dram", free_pool: "nvm", pfn }
                if *pfn == f.as_u64()
        )),
        "expected CrossPoolFree, got {:?}",
        log.snapshot()
    );
}

#[test]
fn dangling_pte_is_reported() {
    let (log, _guard) = checker();
    let mut mem = FlatMem::new(1 << 23);
    let mut pools = FramePools {
        dram: FrameAllocator::new("dram", Pfn::new(16), 512),
        nvm: PersistentFrameAllocator::new(
            FrameAllocator::new("nvm", Pfn::new(1024), 512),
            Region { base: PhysAddr::new(0x1000), size: 0x1000 },
        ),
    };
    let costs = KernelCosts::default();
    let pt_log = Region { base: PhysAddr::new(0x2000), size: 0x1000 };
    let mut asid =
        AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, pt_log).expect("root table");

    let va = VirtAddr::new(0x4000_0000);
    let frame = pools.alloc(&mut mem, kindle_types::MemKind::Dram).expect("data frame");
    asid.map(&mut mem, &mut pools, &costs, va, frame, 0).expect("map");

    // Buggy teardown: frame returned to the pool while the PTE still
    // points at it.
    pools.free(&mut mem, frame);
    assert!(
        log.any(|v| matches!(
            v,
            Violation::DanglingPte { pfn, vpn }
                if *pfn == frame.as_u64() && *vpn == va.page_number().as_u64()
        )),
        "expected DanglingPte, got {:?}",
        log.snapshot()
    );
}

#[test]
fn unmap_then_free_is_clean() {
    let (log, _guard) = checker();
    let mut mem = FlatMem::new(1 << 23);
    let mut pools = FramePools {
        dram: FrameAllocator::new("dram", Pfn::new(16), 512),
        nvm: PersistentFrameAllocator::new(
            FrameAllocator::new("nvm", Pfn::new(1024), 512),
            Region { base: PhysAddr::new(0x1000), size: 0x1000 },
        ),
    };
    let costs = KernelCosts::default();
    let pt_log = Region { base: PhysAddr::new(0x2000), size: 0x1000 };
    let mut asid =
        AddressSpace::new(&mut mem, &mut pools, PtMode::Rebuild, pt_log).expect("root table");

    let va = VirtAddr::new(0x4000_0000);
    let frame = pools.alloc(&mut mem, kindle_types::MemKind::Dram).expect("data frame");
    asid.map(&mut mem, &mut pools, &costs, va, frame, 0).expect("map");
    asid.unmap(&mut mem, &mut pools, &costs, va).expect("unmap");
    pools.free(&mut mem, frame);
    assert!(log.is_empty(), "unmap-then-free must be clean, got {:?}", log.snapshot());
}

#[test]
fn log_replay_out_of_order_is_reported() {
    let (log, _guard) = checker();
    let mut mem = FlatMem::new(1 << 20);
    let redo = RedoLog::new(Region { base: PhysAddr::new(0x8000), size: 0x2000 });
    redo.append(&mut mem, &MetaRecord::ProcessCreate { pid: 1 }).expect("append");
    redo.append(&mut mem, &MetaRecord::ProcessCreate { pid: 2 }).expect("append");
    redo.append(&mut mem, &MetaRecord::ProcessCreate { pid: 3 }).expect("append");

    // The real replayer reads oldest-first; two full passes are fine (a
    // seq-0 apply starts a new replay).
    redo.read_all(&mut mem);
    redo.read_all(&mut mem);
    assert!(log.is_empty(), "in-order replay must be clean, got {:?}", log.snapshot());

    // A buggy replayer that re-applies a mid-log record after the pass
    // finished (the previous pass left the next expected index at 3).
    sanitize::emit(|| sanitize::Event::LogApply { seq: 2 });
    assert!(
        log.any(|v| matches!(v, Violation::LogOutOfOrder { expected: 3, got: 2 })),
        "expected LogOutOfOrder, got {:?}",
        log.snapshot()
    );
}
