//@path crates/hscc/src/lock_paths.rs
impl Engine {
    pub fn leaky_try(&mut self, n: u64) -> Result<u64> {
        self.emit(Event::LockAcquire { id: LOCK_MIGRATION });
        let v = self.step(n)?;
        self.emit(Event::LockRelease { id: LOCK_MIGRATION });
        Ok(v)
    }

    pub fn leaky_return(&mut self, hot: bool) -> u64 {
        self.emit(Event::LockAcquire { id: LOCK_MIGRATION });
        if hot {
            return 1;
        }
        self.emit(Event::LockRelease { id: LOCK_MIGRATION });
        0
    }

    pub fn forgets(&mut self) {
        self.emit(Event::LockAcquire { id: LOCK_EPOCH });
        self.bump();
    }

    pub fn one_sided(&mut self, hot: bool) {
        self.emit(Event::LockAcquire { id: LOCK_EPOCH });
        if hot {
            self.emit(Event::LockRelease { id: LOCK_EPOCH });
        }
        self.emit(Event::LockRelease { id: LOCK_EPOCH });
    }

    pub fn stray(&mut self) {
        self.emit(Event::LockRelease { id: LOCK_EPOCH });
    }
}
