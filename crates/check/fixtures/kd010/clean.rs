//@path crates/hscc/src/lock_paths_ok.rs
impl Engine {
    pub fn balanced_try(&mut self, n: u64) -> Result<u64> {
        self.emit(Event::LockAcquire { id: LOCK_MIGRATION });
        let v = self.step(n);
        self.emit(Event::LockRelease { id: LOCK_MIGRATION });
        let v = v?;
        Ok(v)
    }

    pub fn terminal_branch(&mut self, hot: bool) -> u64 {
        self.emit(Event::LockAcquire { id: LOCK_EPOCH });
        if hot {
            self.emit(Event::LockRelease { id: LOCK_EPOCH });
            return 1;
        }
        self.emit(Event::LockRelease { id: LOCK_EPOCH });
        0
    }

    pub fn nested_pairs(&mut self) {
        self.emit(Event::LockAcquire { id: LOCK_MIGRATION });
        self.emit(Event::LockAcquire { id: LOCK_EPOCH });
        self.emit(Event::LockRelease { id: LOCK_EPOCH });
        self.emit(Event::LockRelease { id: LOCK_MIGRATION });
    }

    pub fn observes(&mut self, ev: &Event) -> bool {
        // Match *patterns* are reads, not emissions: never tracked.
        matches!(ev, Event::LockAcquire { .. } | Event::LockRelease { .. })
    }
}
