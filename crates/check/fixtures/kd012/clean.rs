//@path crates/mem/src/legacy.rs
// The allowlisted cold path: the legacy ordered-map stores kept as the
// --legacy-maps equivalence baseline may use BTreeMap/BTreeSet freely.
use std::collections::{BTreeMap, BTreeSet};

pub struct LegacyPages {
    pages: BTreeMap<u64, Box<[u8; 4096]>>,
}

pub fn pending(lines: &BTreeSet<u64>) -> usize {
    lines.len()
}
