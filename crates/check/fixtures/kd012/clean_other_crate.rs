//@path crates/os/src/frames.rs
// Ordered maps outside crates/mem are the *recommended* deterministic
// collection (KD002 pushes HashMap users here); KD012 must stay silent.
use std::collections::BTreeMap;

pub fn count(m: &BTreeMap<u64, u64>) -> usize {
    // Mentions in comments inside mem files are equally invisible:
    // a BTreeSet spelled here proves nothing either way.
    m.len()
}
