//@path crates/mem/src/controller.rs
use std::collections::{BTreeMap, BTreeSet};

pub struct Controller {
    pages: BTreeMap<u64, Box<[u8; 4096]>>,
    failed_set: BTreeSet<u64>,
}

impl Controller {
    pub fn track(&mut self, pfn: u64) {
        let set: BTreeSet<u64> = self.failed_set.iter().copied().collect();
        if !set.contains(&pfn) {
            self.failed_set.insert(pfn);
        }
    }
}
