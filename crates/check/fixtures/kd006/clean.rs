//@path crates/core/src/cost_ok.rs
pub fn penalty(base: u64, extra: u64) -> Cycles {
    Cycles::new(base.saturating_add(extra))
}

pub fn shaped(base: u64) -> Cycles {
    Cycles::new(apply(&|v: u64| -> u64 { v }, base))
}

pub fn outside(base: u64, extra: u64) -> Cycles {
    let sum = base + extra;
    Cycles::new(sum)
}
