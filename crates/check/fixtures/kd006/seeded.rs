//@path crates/core/src/cost.rs
pub fn penalty(base: u64, extra: u64) -> Cycles {
    Cycles::new(base + extra)
}

pub fn discount(base: u64, off: u64) -> Cycles {
    Cycles::new(
        base - off,
    )
}
