//@path crates/types/src/time_repr.rs
// crates/types implements Cycles itself, so raw arithmetic is its job.
pub fn sum(a: u64, b: u64) -> Cycles {
    Cycles::new(a + b)
}
