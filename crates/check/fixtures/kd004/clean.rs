//@path crates/core/src/probe_host.rs
// core is outside the no-panic envelope; unwrap is legal (if ugly) here.
pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
