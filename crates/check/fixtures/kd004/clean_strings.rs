//@path crates/persist/src/probe_doc.rs
/// Never .unwrap() in persistence code — doc mention only.
pub fn note() -> &'static str {
    ".unwrap() and .expect( live only inside this string literal"
}

pub struct Probe {
    /// A field named like the method must not trip the rule.
    pub expect: u64,
}

pub fn read(p: &Probe) -> u64 {
    p.expect
}
