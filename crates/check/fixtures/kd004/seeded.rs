//@path crates/persist/src/probe.rs
pub fn head(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let rest = xs
        .last()
        .expect("nonempty");
    first + rest
}
