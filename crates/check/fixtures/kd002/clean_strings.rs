//@path crates/core/src/index_doc.rs
/// A HashMap here would be nondeterministic — doc mention only.
pub fn note() -> &'static str {
    r#"no HashMap or HashSet in simulation state; use BTreeMap"#
}
