//@path crates/bench/src/host_index.rs
// bench is host-side tooling, not simulation state: hash order is fine.
use std::collections::HashMap;

pub fn tally(keys: &[u64]) -> usize {
    let mut m = HashMap::new();
    for &k in keys {
        m.insert(k, ());
    }
    m.len()
}
