//@path crates/core/src/index.rs
use std::collections::HashMap;

pub fn build(keys: &[u64]) -> usize {
    let mut seen: HashSet<u64> = HashSet::default();
    let mut by_key = HashMap::new();
    for &k in keys {
        seen.insert(k);
        by_key.insert(k, ());
    }
    by_key.len() + seen.len()
}
