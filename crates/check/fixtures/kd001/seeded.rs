//@path crates/core/src/wallclock.rs
use std::time::Instant;

pub struct Stamp {
    started: Instant,
}

pub fn wall_now() -> u64 {
    let t = SystemTime::now();
    t.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}
