//@path crates/core/src/wallclock_ok.rs
//! Talking about std::time::Instant in a doc comment is fine.

pub fn legend() -> &'static str {
    "SystemTime and Instant are banned outside tests; so is std::time"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn host_timing_is_allowed_in_tests() {
        let _ = Instant::now();
    }
}
