//@path crates/bench/src/bin/report.rs
// Timing read through the MemoryBackend trait accessors is the
// sanctioned route, and KD013 must stay silent on it — as it must on
// buffer-geometry fields (write_buffer, read_buffer) and on banned
// names spelled only in strings or comments (read_ns, wear_limit).
use kindle_core::mem::{Backend, MemConfig, MemoryBackend};

pub fn describe(b: Backend) -> String {
    let i = b.instance();
    let cfg = MemConfig::default();
    format!(
        "{}: {} ns rd / {} ns wr, wb {} (write_service_ns is trait-owned)",
        i.label(),
        i.read_latency_ns(),
        i.write_latency_ns(),
        cfg.nvm.write_buffer,
    )
}
