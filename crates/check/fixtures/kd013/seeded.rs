//@path crates/bench/src/bin/tuner.rs
use kindle_core::mem::{MediaFaultConfig, NvmConfig};
pub fn turnaround(cfg: &NvmConfig) -> u64 { cfg.read_ns + cfg.forward_ns }

pub fn tune(cfg: &mut NvmConfig, faults: &mut MediaFaultConfig) {
    cfg.write_service_ns /= 2;
    let slack = cfg.buffer_insert_ns;
    faults.wear_limit = slack as usize;
}
