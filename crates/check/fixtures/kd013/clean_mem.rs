//@path crates/mem/src/backend.rs
// The backend modules are the allowlisted home of the raw timing
// fields; direct access here is the point of the allowlist.
use crate::config::NvmConfig;

pub fn drain_floor(cfg: &NvmConfig) -> u64 {
    cfg.write_service_ns + cfg.buffer_insert_ns + cfg.forward_ns
}
