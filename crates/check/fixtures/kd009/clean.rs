//@path crates/os/src/frame_ops_ok.rs
impl Bitmap {
    pub fn alloc(&mut self, mem: &mut dyn PhysMem, frame: u64) -> u64 {
        self.set_frame_bit(mem, frame, true);
        self.emit(Event::FrameAlloc { frame });
        frame
    }

    pub fn free(&mut self, mem: &mut dyn PhysMem, frame: u64) {
        // Emit-before-write order is equally legal.
        self.emit(Event::FrameFree { frame });
        self.set_frame_bit(mem, frame, false);
    }

    pub fn restore(&mut self, mem: &mut dyn PhysMem, frame: u64) {
        self.checkpoint_start(mem);
        self.set_frame_bit(mem, frame, true);
        self.store_leaf(mem, frame);
        self.checkpoint_end(mem);
    }

    pub fn under_kernel_lock(&mut self, mem: &mut dyn PhysMem, frame: u64) {
        self.emit(Event::LockAcquire { id: LOCK_KERNEL });
        self.set_frame_bit(mem, frame, true);
        self.emit(Event::LockRelease { id: LOCK_KERNEL });
    }
}

impl Patrol {
    pub fn heal_line(&mut self, mem: &mut dyn PhysMem, line: u64) {
        // One PatrolCorrect covers both the image write and the checksum
        // refresh of the healed line.
        self.page_mut(line)[0] = 0;
        self.emit(Event::PatrolCorrect { line });
        self.record_line_checksum(mem, line);
    }

    pub fn store(&mut self, mem: &mut dyn PhysMem, line: u64) {
        self.emit(Event::NvmWrite { line, cycle: 0 });
        self.page_mut(line)[0] = 1;
        self.record_line_checksum(mem, line);
    }
}
