//@path crates/os/src/frame_ops.rs
impl Bitmap {
    pub fn alloc(&mut self, mem: &mut dyn PhysMem, frame: u64) -> Option<u64> {
        self.set_frame_bit(mem, frame, true);
        Some(frame)
    }

    pub fn free(&mut self, mem: &mut dyn PhysMem, frame: u64) -> Result<()> {
        if frame == 0 {
            return Err(KindleError::InvalidArgument("frame"));
        }
        self.set_frame_bit(mem, frame, false);
        if self.poisoned {
            return Err(KindleError::InvalidArgument("poisoned"));
        }
        self.emit(Event::FrameFree { frame });
        Ok(())
    }

    pub fn install(&mut self, mem: &mut dyn PhysMem, pa: PhysAddr, pte: Pte) -> Result<()> {
        self.store_leaf(mem, pa, pte);
        self.probe(mem)?;
        self.emit(Event::PteInstall { pa });
        Ok(())
    }
}

impl Patrol {
    pub fn rehash(&mut self, mem: &mut dyn PhysMem, line: u64) {
        self.record_line_checksum(mem, line);
        self.emit(Event::PatrolDetect { line });
    }

    pub fn stamp(&mut self, mem: &mut dyn PhysMem, line: u64) {
        self.emit(Event::PatrolDetect { line });
        self.page_mut(line)[0] = 0xff;
    }
}
