//@path crates/hscc/src/frame_mirror.rs
// hscc is outside the NVM-discipline envelope (mem/os/persist): the
// migration engine mutates NVM only through kernel entry points.
pub fn mirror(&mut self, mem: &mut dyn PhysMem, frame: u64) {
    self.set_frame_bit(mem, frame, true);
}
