//@path crates/core/src/parallel.rs
// The designated thread home: the deterministic fork-join executor.
use std::thread;

pub fn par_map(jobs: usize) {
    thread::scope(|s| {
        let _ = (s, jobs);
    });
}
