//@path crates/bench/src/host_fanout.rs
use std::thread;

pub fn fan_out(jobs: usize) {
    for _ in 0..jobs {
        thread::spawn(|| {});
    }
    thread::scope(|s| {
        let _ = s;
    });
}
