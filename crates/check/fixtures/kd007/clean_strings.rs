//@path crates/core/src/executor_doc.rs
/// All std::thread use lives in parallel.rs — doc mention only.
pub fn note() -> &'static str {
    "never call thread::spawn or thread::scope outside parallel.rs"
}
