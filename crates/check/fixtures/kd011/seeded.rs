//@path crates/tlb/src/level_names.rs
pub fn name_of(level: u8) -> &'static str {
    match level {
        1 => "pt",
        2 => "pmd",
        _ => unreachable!("level {level}"),
    }
}

pub fn later() {
    todo!()
}

pub fn someday() {
    unimplemented!("replacement policy")
}
