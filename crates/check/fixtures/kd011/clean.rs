//@path crates/tlb/src/level_names_ok.rs
/// todo!() in a doc comment is fine.
pub fn note() -> &'static str {
    "unimplemented!() and unreachable!() only appear in this string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_panic() {
        if false {
            unreachable!("tests are exempt");
        }
    }
}
