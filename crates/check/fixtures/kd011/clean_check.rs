//@path crates/check/src/future.rs
// The lint tool itself is host-side, outside the simulation envelope.
pub fn later() {
    todo!()
}
