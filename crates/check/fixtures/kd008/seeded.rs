//@path crates/mem/src/faults_compat.rs
pub fn reseed(seed: u64) {
    set_thread_media_fault_seed(seed);
}

pub fn peek() -> u64 {
    thread_media_fault_seed()
}
