//@path crates/mem/src/faults_doc.rs
/// The old set_thread_media_fault_seed channel is gone — history only.
pub fn note() -> &'static str {
    "set_thread_media_fault_seed was replaced by set_thread_media_faults"
}
