//@path crates/os/src/flags.rs
pub fn width_of(flags: u64) -> u32 {
    let count = flags.count_ones();
    count as u32
}

pub fn nearby(pa: u64) -> u64 {
    let next = pa + 1;
    let width = 8u64;
    let w = width as u32;
    next + u64::from(w)
}
