//@path crates/os/src/addr_math.rs
pub fn tag_of(pfn: u64) -> u32 {
    (pfn >> 12) as u32
}

pub fn split(addr: u64) -> (u16, u16) {
    let hi = (addr >> 16) as u16;
    let lo = addr as u16;
    (hi, lo)
}

pub fn colour(cycle: u64) -> u8 {
    let c = cycle
        .rotate_left(3) as u8;
    c
}
