//@path crates/types/src/addr_repr.rs
// crates/types owns the width policy, so truncation is legal here.
pub fn low_byte(addr: u64) -> u8 {
    (addr & 0xff) as u8
}

pub fn page_colour(pfn: u64) -> u16 {
    (pfn & 0x3f) as u16
}
