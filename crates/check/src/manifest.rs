//! KD005: dependency hermeticity.
//!
//! The workspace builds fully offline, so every dependency in every
//! `Cargo.toml` must resolve inside the repository: either a `path`
//! dependency or a `workspace = true` reference whose root entry is itself
//! a path. Anything with a bare version requirement, git URL, or registry
//! source would require network access and is rejected.
//!
//! This is a line-oriented scan, not a full TOML parser: dependency tables
//! in this workspace are simple enough that tracking `[section]` headers
//! and checking each `key = value` line for `path =` / `workspace = true`
//! is exact in practice and keeps the checker std-only.

use crate::diag::Diagnostic;

/// True for bracketed section headers whose body lines are dependencies,
/// e.g. `[dependencies]`, `[workspace.dependencies]`,
/// `[target.'cfg(unix)'.dependencies]`.
fn is_dep_table(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || (header.starts_with("target.") && header.ends_with(".dependencies"))
}

/// For dotted single-dependency sections like `[dev-dependencies.foo]`,
/// returns the dependency name.
fn dep_subtable_name(header: &str) -> Option<&str> {
    for prefix in
        ["dependencies.", "dev-dependencies.", "build-dependencies.", "workspace.dependencies."]
    {
        if let Some(name) = header.strip_prefix(prefix) {
            if !name.contains('.') {
                return Some(name);
            }
        }
    }
    None
}

/// True if a dependency spec line pins the source inside the workspace.
fn line_is_hermetic(line: &str) -> bool {
    line.contains("path =")
        || line.contains("path=")
        || line.contains("workspace = true")
        || line.contains("workspace=true")
}

fn violation(rel_path: &str, lineno: usize, name: &str) -> Diagnostic {
    Diagnostic::new(
        rel_path,
        lineno,
        "KD005",
        &format!(
            "external dependency `{name}`; the build is hermetic — only `path` or \
             `workspace = true` dependencies are allowed (vendor the crate and gate \
             it behind a feature instead)"
        ),
    )
}

/// Runs KD005 over one `Cargo.toml`.
pub fn check_manifest(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Current [section] context. For a dotted dependency subtable we defer
    // judgement until the section ends, since `workspace = true` may appear
    // on any body line.
    enum Mode {
        Other,
        DepTable,
        DepSub { header_line: usize, name: String, hermetic: bool },
    }
    let mut mode = Mode::Other;

    let flush = |mode: &mut Mode, out: &mut Vec<Diagnostic>| {
        if let Mode::DepSub { header_line, name, hermetic } = mode {
            if !*hermetic {
                out.push(violation(rel_path, *header_line, name));
            }
        }
    };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            flush(&mut mode, &mut out);
            let header = header.trim();
            mode = if is_dep_table(header) {
                Mode::DepTable
            } else if let Some(name) = dep_subtable_name(header) {
                Mode::DepSub { header_line: lineno, name: name.to_string(), hermetic: false }
            } else {
                Mode::Other
            };
            continue;
        }
        match &mut mode {
            Mode::Other => {}
            Mode::DepTable => {
                if let Some(eq) = line.find('=') {
                    if !line_is_hermetic(line) {
                        out.push(violation(rel_path, lineno, line[..eq].trim()));
                    }
                }
            }
            Mode::DepSub { hermetic, .. } => {
                if line_is_hermetic(line) {
                    *hermetic = true;
                }
            }
        }
    }
    flush(&mut mode, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = "[dependencies]\n\
                    kindle-types = { workspace = true }\n\
                    kindle-mem = { path = \"../mem\" }\n";
        assert!(check_manifest("crates/os/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn version_dep_is_flagged() {
        let toml = "[dependencies]\nserde = \"1.0\"\n";
        let d = check_manifest("crates/os/Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "KD005");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("`serde`"), "{}", d[0].message);
    }

    #[test]
    fn git_dep_in_dev_dependencies_is_flagged() {
        let toml = "[dev-dependencies]\nproptest = { git = \"https://x\" }\n";
        let d = check_manifest("crates/os/Cargo.toml", toml);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dotted_subtable_with_workspace_passes() {
        let toml = "[dev-dependencies.kindle-mem]\nworkspace = true\n";
        assert!(check_manifest("crates/ssp/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn dotted_subtable_with_version_is_flagged() {
        let toml = "[dev-dependencies.criterion]\nversion = \"0.5\"\n";
        let d = check_manifest("crates/bench/Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("`criterion`"));
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\
                    [features]\nserde = []\nproptest = []\n\
                    [[bench]]\nname = \"b\"\nharness = false\n";
        assert!(check_manifest("crates/types/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn workspace_dependencies_must_be_paths() {
        let toml = "[workspace.dependencies]\n\
                    kindle-types = { path = \"crates/types\" }\n\
                    rand = \"0.8\"\n";
        let d = check_manifest("Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }
}
