//! The domain lint rules, applied to the token stream and block tree of
//! each Rust source file (see [`crate::lexer`] and [`crate::syntax`]).
//!
//! | Rule  | What it enforces                                                 |
//! |-------|------------------------------------------------------------------|
//! | KD001 | no `std::time` / `SystemTime` / `Instant` in simulation crates   |
//! | KD002 | no `HashMap`/`HashSet` in simulation crates (use `BTreeMap`/`BTreeSet`) |
//! | KD003 | no truncating `as u8/u16/u32` casts in statements handling address/cycle values outside `crates/types` |
//! | KD004 | no `.unwrap()`/`.expect(` in non-test `crates/os` / `crates/persist` code |
//! | KD006 | no raw `+`/`-` arithmetic inside `Cycles::new(..)` outside `crates/types` |
//! | KD007 | no host threads (`std::thread`, `thread::spawn/scope`) outside `kindle_core::parallel` |
//! | KD008 | the removed seed-only fault channel (`set_thread_media_fault_seed`) stays removed |
//! | KD009 | NVM-mutating primitives in `mem`/`os`/`persist` emit their sanitize event on every path, or sit inside a checkpoint bracket |
//! | KD010 | `LockAcquire`/`LockRelease` emissions balance per `LOCK_*` id on all paths, early exits included |
//! | KD011 | no `todo!`/`unimplemented!`/`unreachable!` in non-test simulation code |
//! | KD012 | no `BTreeMap`/`BTreeSet` in `crates/mem` hot-path modules (flat tables only; `legacy.rs` is the allowlisted cold path) |
//! | KD013 | no direct `NvmConfig` latency/endurance field access outside the `crates/mem` backend modules (go through `MemoryBackend`) |
//!
//! (KD005, the external-dependency rule, lives in [`crate::manifest`].)
//!
//! Because the rules see tokens, string literals and comments can never
//! produce a finding, and multi-line expressions are analyzed natively.
//! Everything from the first `#[cfg(test)]` attribute to end of file is
//! test code and exempt, as are files under a `tests/` directory. See
//! [`crate::allow`] for the two suppression mechanisms.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::syntax::{self, Block, Function, Node};

/// Crates whose state must be deterministic and free of wall-clock time.
/// `check` (this tool) and `bench` (host-side measurement harnesses) are
/// deliberately outside the simulation.
pub fn is_sim_crate(krate: &str) -> bool {
    !matches!(krate, "check" | "bench")
}

/// Crates held to the no-panic discipline (KD004).
pub fn is_no_panic_crate(krate: &str) -> bool {
    matches!(krate, "os" | "persist")
}

/// Crates whose NVM-mutating primitives are under KD009's event-coverage
/// discipline: the memory controller, the kernel, and the persistence
/// layer — exactly the layers whose writes the sanitizer replays.
pub fn is_nvm_discipline_crate(krate: &str) -> bool {
    matches!(krate, "mem" | "os" | "persist")
}

/// The one file allowed to touch host threads (KD007): the deterministic
/// fork-join executor. Everything else — bench binaries included — must
/// go through its `par_map`, so worker scheduling can never reach
/// simulation state or reorder results.
const THREAD_HOME: &str = "crates/core/src/parallel.rs";

/// The `crates/mem` files allowed to keep ordered maps (KD012): the
/// legacy store implementations preserved as the `--legacy-maps`
/// equivalence baseline. Everything else in the memory controller is
/// hot-path and must use the direct-indexed flat tables — a `BTreeMap`
/// reintroduced there is a performance regression the type system cannot
/// catch.
const MEM_MAP_ALLOW: &[&str] = &["crates/mem/src/legacy.rs"];

/// `NvmConfig` latency/endurance fields whose direct access is banned
/// outside the backend modules (KD013). Every other layer reads timing
/// through the `MemoryBackend` trait accessors, so a far-tier swap can
/// never be bypassed by a caller assuming PCM's raw numbers.
const NVM_FIELD_BAN: &[&str] =
    &["read_ns", "write_service_ns", "buffer_insert_ns", "forward_ns", "wear_limit"];

/// The modules allowed to touch those fields directly (KD013): the
/// backend definitions, the config type they hand out, and the two
/// consumers that turn timings into device behavior.
const NVM_FIELD_ALLOW: &[&str] = &[
    "crates/mem/src/backend.rs",
    "crates/mem/src/config.rs",
    "crates/mem/src/controller.rs",
    "crates/mem/src/nvm.rs",
];

/// Identifiers that mark a statement as handling addresses or simulated
/// time (KD003). Compared case-insensitively against identifier tokens.
const ADDR_CYCLE_WORDS: &[&str] =
    &["addr", "pa", "pfn", "vpn", "va", "cycle", "cycles", "line", "offset", "as_u64"];

/// Target widths of the truncating casts KD003 looks for.
const TRUNCATING_WIDTHS: &[&str] = &["u8", "u16", "u32"];

/// KD009's primitive table: a call to `name(..)` mutates NVM-visible
/// state and must be covered by one of the listed sanitize events in the
/// same function (or by a checkpoint bracket / the kernel lock). The
/// names are the *designated* mutation points — KD009 is what keeps
/// refactors from quietly adding an uncovered one.
const NVM_PRIMITIVES: &[(&str, &[&str])] = &[
    ("store_leaf", &["PteInstall", "PteClear"]),
    ("set_frame_bit", &["FrameAlloc", "FrameFree", "FrameRetired"]),
    ("bump_log_head", &["LogAppend"]),
    ("reset_log_head", &["LogTruncate"]),
    ("flip_valid_copy", &["CheckpointPublish"]),
    ("page_mut", &["NvmWrite", "ScrubCorrect", "ScrubDetect", "PatrolCorrect"]),
    ("record_line_checksum", &["NvmWrite", "PatrolCorrect"]),
];

/// Checkpoint-bracket markers recognized by KD009: primitives between a
/// `*_start`/`*_begin` and its matching end are covered by the bracket's
/// own publish/rollback protocol rather than per-call events.
const BRACKET_OPEN: &[&str] = &["checkpoint_start", "fase_begin"];
const BRACKET_CLOSE: &[&str] = &["checkpoint_end", "fase_end"];

/// True when `t` matches `pat`: an identifier spelled `pat`, or the
/// single punctuation character `pat`.
fn tok_is(t: &Token<'_>, pat: &str) -> bool {
    match t.kind {
        TokenKind::Ident => t.text == pat,
        TokenKind::Punct => t.text == pat,
        _ => false,
    }
}

/// True when `tokens[i..]` starts with the given ident/punct sequence.
fn seq_at(tokens: &[Token<'_>], i: usize, pat: &[&str]) -> bool {
    pat.len() <= tokens.len().saturating_sub(i)
        && pat.iter().enumerate().all(|(k, p)| tok_is(&tokens[i + k], p))
}

/// True when the `?` at `i` is the try operator, not a `?Sized` bound.
fn is_try_operator(tokens: &[Token<'_>], i: usize) -> bool {
    tokens[i].is_punct('?') && !tokens.get(i + 1).is_some_and(|t| t.is_ident("Sized"))
}

/// Runs all source rules over one Rust file.
///
/// `rel_path` is the workspace-relative path (used for scoping and in
/// diagnostics); `krate` is the crate directory name under `crates/`, or
/// `None` for workspace-root sources (examples, integration tests).
pub fn check_source(rel_path: &str, krate: Option<&str>, source: &str) -> Vec<Diagnostic> {
    if rel_path.split('/').any(|c| c == "tests") {
        return Vec::new();
    }
    let mut tokens = lex(source);
    tokens.truncate(syntax::test_cut(&tokens));

    let sim = krate.map(is_sim_crate).unwrap_or(false);
    let no_panic = krate.map(is_no_panic_crate).unwrap_or(false);
    let types_crate = krate == Some("types");
    let nvm_discipline = krate.map(is_nvm_discipline_crate).unwrap_or(false);
    let mem_hot = rel_path.starts_with("crates/mem/") && !MEM_MAP_ALLOW.contains(&rel_path);
    let nvm_fields_banned = !NVM_FIELD_ALLOW.contains(&rel_path);

    let mut out = Vec::new();
    flat_rules(rel_path, sim, no_panic, types_crate, mem_hot, nvm_fields_banned, &tokens, &mut out);

    if sim || nvm_discipline {
        let root = syntax::parse(&tokens);
        for f in syntax::functions(&root) {
            if sim {
                kd010_function(rel_path, &f, &mut out);
            }
            if nvm_discipline {
                kd009_function(rel_path, &f, &mut out);
            }
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// The token-window rules: everything that needs no per-function
/// control-flow, just the (test-truncated) stream.
#[allow(clippy::too_many_arguments)]
fn flat_rules(
    rel_path: &str,
    sim: bool,
    no_panic: bool,
    types_crate: bool,
    mem_hot: bool,
    nvm_fields_banned: bool,
    tokens: &[Token<'_>],
    out: &mut Vec<Diagnostic>,
) {
    // One diagnostic per (rule, line), however many tokens hit on it.
    let mut lines: BTreeMap<&'static str, BTreeSet<usize>> = BTreeMap::new();
    let mut hit = |rule: &'static str, line: usize| {
        lines.entry(rule).or_default().insert(line);
    };

    for (i, t) in tokens.iter().enumerate() {
        if sim
            && (t.is_ident("SystemTime")
                || t.is_ident("Instant")
                || seq_at(tokens, i, &["std", ":", ":", "time"]))
        {
            hit("KD001", t.line);
        }
        if sim && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            hit("KD002", t.line);
        }
        if no_panic
            && t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            hit("KD004", tokens[i + 1].line);
        }
        if !types_crate && seq_at(tokens, i, &["Cycles", ":", ":", "new", "("]) {
            if let Some(line) = cycles_new_arithmetic(tokens, i + 5) {
                hit("KD006", line);
            }
        }
        if rel_path != THREAD_HOME
            && (seq_at(tokens, i, &["std", ":", ":", "thread"])
                || seq_at(tokens, i, &["thread", ":", ":", "spawn"])
                || seq_at(tokens, i, &["thread", ":", ":", "scope"]))
        {
            hit("KD007", t.line);
        }
        if t.is_ident("set_thread_media_fault_seed") || t.is_ident("thread_media_fault_seed") {
            hit("KD008", t.line);
        }
        if sim
            && (t.is_ident("todo") || t.is_ident("unimplemented") || t.is_ident("unreachable"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            hit("KD011", t.line);
        }
        if mem_hot && (t.is_ident("BTreeMap") || t.is_ident("BTreeSet")) {
            hit("KD012", t.line);
        }
        if nvm_fields_banned
            && t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| NVM_FIELD_BAN.iter().any(|w| n.is_ident(w)))
        {
            hit("KD013", tokens[i + 1].line);
        }
    }

    if !types_crate {
        kd003_statements(tokens, &mut |line| {
            lines.entry("KD003").or_default().insert(line);
        });
    }

    for (rule, rule_lines) in lines {
        for line in rule_lines {
            out.push(Diagnostic::new(rel_path, line, rule, message_of(rule)));
        }
    }
}

/// Scans a `Cycles::new(` argument list (starting just past the open
/// paren) for raw `+`/`-`; returns the line of the first one. `->` in a
/// closure annotation is not arithmetic.
fn cycles_new_arithmetic(tokens: &[Token<'_>], mut i: usize) -> Option<usize> {
    let mut depth = 1usize;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_punct('+') {
            return Some(t.line);
        } else if t.is_punct('-') && !tokens.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            return Some(t.line);
        }
        i += 1;
    }
    None
}

/// KD003, statement-scoped: splits the stream into runs at `;`/`{`/`}`
/// and flags a truncating `as u8/u16/u32` cast whose statement also
/// names an address/cycle identifier. Statement scoping is what lets a
/// cast see its operand across line breaks while an unrelated
/// neighboring statement's `pfn` cannot contaminate it.
fn kd003_statements(tokens: &[Token<'_>], hit: &mut impl FnMut(usize)) {
    let mut start = 0usize;
    for i in 0..=tokens.len() {
        let boundary = i == tokens.len()
            || tokens[i].is_punct(';')
            || tokens[i].is_punct('{')
            || tokens[i].is_punct('}');
        if !boundary {
            continue;
        }
        let run = &tokens[start..i];
        start = i + 1;
        let mentions = run.iter().any(|t| {
            t.kind == TokenKind::Ident
                && ADDR_CYCLE_WORDS.iter().any(|w| t.text.eq_ignore_ascii_case(w))
        });
        if !mentions {
            continue;
        }
        for (k, t) in run.iter().enumerate() {
            if t.is_ident("as")
                && run.get(k + 1).is_some_and(|n| TRUNCATING_WIDTHS.iter().any(|w| n.is_ident(w)))
            {
                hit(t.line);
            }
        }
    }
}

/// Canonical message per rule id.
fn message_of(rule: &str) -> &'static str {
    match rule {
        "KD001" => {
            "wall-clock time in a simulation crate; all time must come from the \
             simulated clock (kindle_types::Cycles)"
        }
        "KD002" => {
            "hash-ordered collection in a simulation crate; iteration order is \
             nondeterministic — use BTreeMap/BTreeSet"
        }
        "KD003" => {
            "truncating cast on an address/cycle value outside crates/types; \
             widths are owned by the newtypes"
        }
        "KD004" => {
            "unwrap/expect in kernel or persistence code; return a KindleError \
             so simulated faults stay recoverable"
        }
        "KD006" => {
            "raw +/- inside Cycles::new(..); build each term as Cycles and \
             combine the newtypes so the saturation policy applies"
        }
        "KD007" => {
            "host threads outside kindle_core::parallel; route fork-join work \
             through par_map so results stay independent of worker count"
        }
        "KD008" => {
            "seed-only ambient fault channel; use \
             set_thread_media_faults(MediaFaultConfig) — the one entry point — \
             so every caller states the full fault model"
        }
        "KD011" => {
            "todo!/unimplemented!/unreachable! in simulation code; model the \
             case explicitly or return a KindleError so fault injection cannot \
             reach a panic"
        }
        "KD012" => {
            "ordered map in a memory-controller hot-path module; use the \
             direct-indexed flat tables (crates/mem/src/store.rs) — only the \
             legacy equivalence baseline (legacy.rs) may keep BTreeMap/BTreeSet"
        }
        "KD013" => {
            "direct NvmConfig latency/endurance field access outside the \
             crates/mem backend modules; read timing through the \
             MemoryBackend trait (read_latency_ns, write_latency_ns, \
             fault_model) so every far tier keeps its own semantics"
        }
        _ => "violation",
    }
}

// ---------------------------------------------------------------------------
// KD010 — lock-event balance on all paths.
// ---------------------------------------------------------------------------

/// Extracts the lock id named by an `Event::LockAcquire { id: ... }`
/// struct literal. Returns the last identifier/number of the `id:` field
/// value (`sanitize::LOCK_KERNEL` -> `LOCK_KERNEL`). Returns `None` for
/// match *patterns* (`{ .. }`, `{ id }`), which are reads, not emissions.
fn lock_id_of<'a>(lit: &Block<'a>) -> Option<&'a str> {
    let toks: Vec<&Token<'a>> = lit
        .nodes
        .iter()
        .filter_map(|n| match n {
            Node::Tok(t) => Some(t),
            Node::Block(_) => None,
        })
        .collect();
    let at = toks.iter().position(|t| t.is_ident("id"))?;
    if !toks.get(at + 1).is_some_and(|t| t.is_punct(':')) {
        return None;
    }
    let mut last = None;
    for t in &toks[at + 2..] {
        if t.is_punct(',') {
            break;
        }
        if matches!(t.kind, TokenKind::Ident | TokenKind::Num) {
            last = Some(t.text);
        }
    }
    last
}

/// True when every path through `b` leaves the enclosing flow (a
/// top-level `return`/`break`/`continue`), so code after the block only
/// runs when the block was *not* entered.
fn block_is_terminal(b: &Block<'_>) -> bool {
    b.nodes.iter().any(|n| match n {
        Node::Tok(t) => t.is_ident("return") || t.is_ident("break") || t.is_ident("continue"),
        Node::Block(_) => false,
    })
}

/// KD010 for one function: walk the block tree keeping the multiset of
/// held lock ids; flag early exits with locks held, releases without
/// acquires, blocks whose two sides disagree, and fall-through with
/// locks still held.
fn kd010_function(rel_path: &str, f: &Function<'_>, out: &mut Vec<Diagnostic>) {
    let mut held: Vec<&str> = Vec::new();
    kd010_block(rel_path, f.body, &mut held, out);
    for id in &held {
        out.push(Diagnostic::new(
            rel_path,
            f.body.close_line,
            "KD010",
            &format!(
                "LockAcquire({id}) in `{}` has no LockRelease on the fall-through path; \
                 an unbalanced lock event corrupts the race detector's epoch ordering",
                f.name
            ),
        ));
    }
}

fn kd010_block<'a>(
    rel_path: &str,
    block: &'a Block<'a>,
    held: &mut Vec<&'a str>,
    out: &mut Vec<Diagnostic>,
) {
    let nested: BTreeSet<usize> =
        syntax::fn_body_indices(&block.nodes).into_iter().map(|(i, _, _)| i).collect();
    let mut i = 0usize;
    while i < block.nodes.len() {
        match &block.nodes[i] {
            Node::Tok(t) => {
                // An emission: Event::Lock{Acquire,Release} followed by a
                // struct literal naming the id.
                if t.is_ident("Event") && node_seq(block, i + 1, &[":", ":"]) {
                    if let Some(Node::Tok(name)) = block.nodes.get(i + 3) {
                        let acquire = name.is_ident("LockAcquire");
                        let release = name.is_ident("LockRelease");
                        if acquire || release {
                            if let Some(Node::Block(lit)) = block.nodes.get(i + 4) {
                                if let Some(id) = lock_id_of(lit) {
                                    if acquire {
                                        held.push(id);
                                    } else if let Some(pos) = held.iter().rposition(|h| *h == id) {
                                        held.remove(pos);
                                    } else {
                                        out.push(Diagnostic::new(
                                            rel_path,
                                            name.line,
                                            "KD010",
                                            &format!(
                                                "LockRelease({id}) without a LockAcquire on \
                                                 this path"
                                            ),
                                        ));
                                    }
                                }
                                i += 5;
                                continue;
                            }
                        }
                    }
                }
                // Early exits must not hold any lock.
                let exits = (t.is_punct('?') && is_try_node(&block.nodes, i))
                    || t.is_ident("return")
                    || t.is_ident("break");
                if exits && !held.is_empty() {
                    out.push(Diagnostic::new(
                        rel_path,
                        t.line,
                        "KD010",
                        &format!(
                            "early exit with lock(s) [{}] still held; release before the \
                             `{}` or hoist the exit out of the locked region",
                            held.join(", "),
                            t.text
                        ),
                    ));
                }
            }
            Node::Block(b) => {
                if !nested.contains(&i) {
                    let before = held.clone();
                    kd010_block(rel_path, b, held, out);
                    if block_is_terminal(b) {
                        // The fall-through path did not run this block.
                        *held = before;
                    } else if *held != before {
                        out.push(Diagnostic::new(
                            rel_path,
                            b.close_line,
                            "KD010",
                            "lock events unbalanced across a conditional block: the \
                             acquire/release happens on only one side",
                        ));
                        *held = before;
                    }
                }
            }
        }
        i += 1;
    }
}

/// True when the `?` token at node `i` is the try operator (not `?Sized`).
fn is_try_node(nodes: &[Node<'_>], i: usize) -> bool {
    !matches!(nodes.get(i + 1), Some(Node::Tok(t)) if t.is_ident("Sized"))
}

/// True when the token nodes at `block.nodes[i..]` match the sequence.
fn node_seq(block: &Block<'_>, i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| matches!(block.nodes.get(i + k), Some(Node::Tok(t)) if tok_is(t, p)))
}

// ---------------------------------------------------------------------------
// KD009 — sanitize-event coverage for NVM-mutating primitives.
// ---------------------------------------------------------------------------

/// Flattens a function body to a linear token list, keeping `{`/`}` as
/// punctuation and skipping nested fn bodies (they are analyzed as their
/// own functions).
fn flatten<'a>(block: &'a Block<'a>, out: &mut Vec<Token<'a>>) {
    let nested: BTreeSet<usize> =
        syntax::fn_body_indices(&block.nodes).into_iter().map(|(i, _, _)| i).collect();
    for (i, node) in block.nodes.iter().enumerate() {
        match node {
            Node::Tok(t) => out.push(*t),
            Node::Block(b) => {
                if nested.contains(&i) {
                    continue;
                }
                out.push(Token { kind: TokenKind::Punct, text: "{", line: b.open_line });
                flatten(b, out);
                out.push(Token { kind: TokenKind::Punct, text: "}", line: b.close_line });
            }
        }
    }
}

/// KD009 for one function: a linear walk tracking, per primitive, how
/// many covering events have been emitted (credits) and which primitive
/// calls are still uncovered (pending). An emission covers pending calls
/// of its class or banks a credit for a later call — so `emit-then-write`
/// and `write-then-emit` orderings both pass, while a path that exits
/// with an uncovered write is flagged. Calls under a checkpoint bracket
/// or with the kernel lock held are covered by those protocols instead.
fn kd009_function(rel_path: &str, f: &Function<'_>, out: &mut Vec<Diagnostic>) {
    let mut toks = Vec::new();
    flatten(f.body, &mut toks);

    let mut pending: Vec<(usize, &'static str)> = Vec::new();
    let mut credit: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut bracket_depth = 0usize;
    let mut kernel_locked = false;

    let events_of = |prim: &str| -> String {
        NVM_PRIMITIVES
            .iter()
            .find(|(p, _)| *p == prim)
            .map(|(_, evs)| evs.join("/"))
            .unwrap_or_default()
    };
    let flag = |line: usize, prim: &str, out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic::new(
            rel_path,
            line,
            "KD009",
            &format!(
                "`{prim}(..)` mutates NVM-visible state but no {} event covers it on this \
                 path; emit the sanitize event or bracket the call in \
                 checkpoint_start/checkpoint_end",
                events_of(prim)
            ),
        ));
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            if BRACKET_OPEN.contains(&t.text) {
                bracket_depth += 1;
            } else if BRACKET_CLOSE.contains(&t.text) {
                bracket_depth = bracket_depth.saturating_sub(1);
            } else if t.text == "Event" && seq_at(&toks, i + 1, &[":", ":"]) {
                if let Some(name) = toks.get(i + 3).filter(|n| n.kind == TokenKind::Ident) {
                    match name.text {
                        "LockAcquire" | "LockRelease" => {
                            if literal_names_kernel_lock(&toks, i + 4) {
                                kernel_locked = name.text == "LockAcquire";
                            }
                        }
                        ev => {
                            for &(prim, events) in NVM_PRIMITIVES {
                                if events.contains(&ev) {
                                    let before = pending.len();
                                    pending.retain(|&(_, p)| p != prim);
                                    if pending.len() == before {
                                        *credit.entry(prim).or_insert(0) += 1;
                                    }
                                }
                            }
                        }
                    }
                    i += 4;
                    continue;
                }
            } else if let Some(&(prim, _)) = NVM_PRIMITIVES.iter().find(|(p, _)| t.text == *p) {
                let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !(i > 0 && toks[i - 1].is_ident("fn"));
                if is_call && bracket_depth == 0 && !kernel_locked {
                    let c = credit.entry(prim).or_insert(0);
                    if *c > 0 {
                        *c -= 1;
                    } else {
                        pending.push((t.line, prim));
                    }
                }
            } else if (t.text == "return" || t.text == "break") && !pending.is_empty() {
                for (_, prim) in pending.drain(..) {
                    flag(t.line, prim, out);
                }
            }
        } else if t.is_punct('?') && is_try_operator(&toks, i) && !pending.is_empty() {
            for (_, prim) in pending.drain(..) {
                flag(t.line, prim, out);
            }
        }
        i += 1;
    }
    for (line, prim) in pending {
        flag(line, prim, out);
    }
}

/// True when the struct literal starting at `toks[i]` (a `{`) names
/// `LOCK_KERNEL` before its matching `}`.
fn literal_names_kernel_lock(toks: &[Token<'_>], mut i: usize) -> bool {
    if !toks.get(i).is_some_and(|t| t.is_punct('{')) {
        return false;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident("LOCK_KERNEL") {
            return true;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn kd001_flags_wall_clock() {
        let d = check_source("crates/sim/src/x.rs", Some("sim"), "let t = Instant::now();\n");
        assert_eq!(rules_of(&d), ["KD001"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "use std::time::SystemTime;\n");
        assert_eq!(rules_of(&d), ["KD001"]);
    }

    #[test]
    fn kd001_skips_non_sim_crates_and_strings() {
        let d = check_source("crates/bench/src/x.rs", Some("bench"), "let t = Instant::now();\n");
        assert!(d.is_empty());
        let d = check_source("crates/os/src/x.rs", Some("os"), "let s = \"Instant\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd002_flags_hash_collections_once_per_line() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u64>;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD002", "KD002"]);
        // In a comment or string: invisible.
        let src = "// a HashMap would be wrong\nlet s = \"HashSet\";\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd012_flags_ordered_maps_in_mem_hot_path_only() {
        let src = "use std::collections::BTreeMap;\nlet s: BTreeSet<u64>;\n";
        let d = check_source("crates/mem/src/controller.rs", Some("mem"), src);
        assert_eq!(rules_of(&d), ["KD012", "KD012"]);
        // The legacy equivalence baseline is the allowlisted cold path.
        let d = check_source("crates/mem/src/legacy.rs", Some("mem"), src);
        assert!(d.is_empty(), "{d:?}");
        // Other crates are KD002 territory, not KD012's.
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
        // Comments and strings are invisible as always.
        let src = "// a BTreeMap here would regress the hot path\n";
        let d = check_source("crates/mem/src/nvm.rs", Some("mem"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd003_needs_cast_and_identifier_in_one_statement() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "let x = pfn as u32;\n");
        assert_eq!(rules_of(&d), ["KD003"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "let pid = words[1] as u32;\n");
        assert!(d.is_empty());
        let d = check_source("crates/types/src/x.rs", Some("types"), "let x = pfn as u32;\n");
        assert!(d.is_empty());
    }

    #[test]
    fn kd003_sees_through_multi_line_expressions() {
        // The operand (`cycles`) sits on the line before the cast.
        let src = "let short = some.cycles()\n    .min(other) as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD003"]);
        assert_eq!(d[0].line, 2);
        // A comment between operand and cast does not break the statement.
        let src = "let short = pa.as_u64()\n    // narrowed for the header\n    as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD003"]);
        // A `;` ends the statement: the next one is judged alone.
        let src = "let c = pa.as_u64();\nlet pid = words[1] as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd004_scoped_to_os_and_persist() {
        let d = check_source("crates/persist/src/x.rs", Some("persist"), "x.unwrap();\n");
        assert_eq!(rules_of(&d), ["KD004"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "y.expect(\"m\");\n");
        assert_eq!(rules_of(&d), ["KD004"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "x.unwrap();\n");
        assert!(d.is_empty());
        // Multi-line method chains are seen natively.
        let src = "let v = map.get(&k)\n    .unwrap();\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD004"]);
        assert_eq!(d[0].line, 2);
        // Inside a raw string: invisible.
        let src = "let s = r#\"x.unwrap()\"#;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd006_flags_arithmetic_inside_cycles_new() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(base + 4);\n");
        assert_eq!(rules_of(&d), ["KD006"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "Cycles::new(limit - used);\n");
        assert_eq!(rules_of(&d), ["KD006"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(f(a + b));\n");
        assert_eq!(rules_of(&d), ["KD006"]);
        // Multi-line argument expressions are still one call.
        let src = "Cycles::new(\n    base\n        + extra,\n);\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD006"]);
    }

    #[test]
    fn kd006_allows_plain_terms_and_types_crate() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(self.costs.op);\n");
        assert!(d.is_empty(), "{d:?}");
        let d =
            check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(a) + Cycles::new(b);\n");
        assert!(d.is_empty(), "{d:?}");
        let d = check_source("crates/types/src/x.rs", Some("types"), "Cycles::new(a + b);\n");
        assert!(d.is_empty(), "{d:?}");
        // Closure return annotations are not subtraction.
        let d = check_source(
            "crates/os/src/x.rs",
            Some("os"),
            "Cycles::new(apply(|| -> u64 { 4 }));\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd007_flags_host_threads_everywhere_but_the_executor() {
        let d = check_source("crates/sim/src/x.rs", Some("sim"), "std::thread::spawn(f);\n");
        assert_eq!(rules_of(&d), ["KD007"]);
        // bench is NOT exempt: its binaries must parallelize via par_map.
        let d = check_source("crates/bench/src/x.rs", Some("bench"), "thread::scope(|s| {});\n");
        assert_eq!(rules_of(&d), ["KD007"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "use std::thread;\n");
        assert_eq!(rules_of(&d), ["KD007"]);
    }

    #[test]
    fn kd007_exempts_parallel_and_ignores_strings() {
        let d = check_source(
            "crates/core/src/parallel.rs",
            Some("core"),
            "std::thread::scope(|scope| {});\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // The linter's own sources name the patterns as string literals —
        // which the lexer never surfaces, in any crate.
        let d = check_source("crates/check/src/x.rs", Some("check"), "\"std::thread\";\n");
        assert!(d.is_empty(), "{d:?}");
        let d = check_source("crates/os/src/x.rs", Some("os"), "let p = \"thread::spawn\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd008_flags_the_removed_seed_channel() {
        let d = check_source(
            "crates/bench/src/x.rs",
            Some("bench"),
            "kindle_core::sim::set_thread_media_fault_seed(Some(7));\n",
        );
        assert_eq!(rules_of(&d), ["KD008"]);
        let d = check_source(
            "crates/sim/src/x.rs",
            Some("sim"),
            "let s = thread_media_fault_seed();\n",
        );
        assert_eq!(rules_of(&d), ["KD008"]);
        // The replacement API is fine; string mentions are invisible.
        let d = check_source(
            "crates/bench/src/x.rs",
            Some("bench"),
            "kindle_core::sim::set_thread_media_faults(None);\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = check_source(
            "crates/check/src/x.rs",
            Some("check"),
            "\"set_thread_media_fault_seed\";\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd011_bans_stub_macros_in_sim_code() {
        let d = check_source(
            "crates/tlb/src/x.rs",
            Some("tlb"),
            "fn f() { unreachable!(\"loop covers\") }\n",
        );
        assert_eq!(rules_of(&d), ["KD011"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "fn f() { todo!() }\n");
        assert_eq!(rules_of(&d), ["KD011"]);
        let d = check_source("crates/sim/src/x.rs", Some("sim"), "fn f() { unimplemented!() }\n");
        assert_eq!(rules_of(&d), ["KD011"]);
        // bench may stub; test code may stub.
        let d = check_source("crates/bench/src/x.rs", Some("bench"), "fn f() { todo!() }\n");
        assert!(d.is_empty());
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn t() { unreachable!() } }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
        // The bare identifier without `!` is not the macro.
        let d = check_source("crates/os/src/x.rs", Some("os"), "let todo = 4;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd010_balanced_functions_pass() {
        let src = "fn f() -> Result<()> {\n\
                   \x20   sanitize::emit(|| Event::LockAcquire { id: LOCK_KERNEL });\n\
                   \x20   let r = self.locked();\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: LOCK_KERNEL });\n\
                   \x20   r\n\
                   }\n";
        let d = check_source("crates/persist/src/x.rs", Some("persist"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd010_flags_early_exit_with_lock_held() {
        let src = "fn f() -> Result<()> {\n\
                   \x20   sanitize::emit(|| Event::LockAcquire { id: LOCK_REDO_LOG });\n\
                   \x20   let x = fallible()?;\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: LOCK_REDO_LOG });\n\
                   \x20   Ok(x)\n\
                   }\n";
        let d = check_source("crates/persist/src/x.rs", Some("persist"), src);
        assert_eq!(rules_of(&d), ["KD010"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn kd010_flags_fall_through_and_bare_release() {
        let src = "fn f() {\n\
                   \x20   sanitize::emit(|| Event::LockAcquire { id: LOCK_KERNEL });\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD010"]);
        let src = "fn g() {\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: LOCK_KERNEL });\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD010"]);
    }

    #[test]
    fn kd010_release_then_return_inside_branch_is_balanced() {
        let src = "fn f() -> Option<u64> {\n\
                   \x20   sanitize::emit(|| Event::LockAcquire { id: LOCK_REDO_LOG });\n\
                   \x20   if bad {\n\
                   \x20       sanitize::emit(|| Event::LockRelease { id: LOCK_REDO_LOG });\n\
                   \x20       return None;\n\
                   \x20   }\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: LOCK_REDO_LOG });\n\
                   \x20   Some(1)\n\
                   }\n";
        let d = check_source("crates/persist/src/x.rs", Some("persist"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd010_flags_one_sided_conditional_acquire() {
        let src = "fn f() {\n\
                   \x20   if fancy {\n\
                   \x20       sanitize::emit(|| Event::LockAcquire { id: LOCK_KERNEL });\n\
                   \x20   }\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: LOCK_KERNEL });\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(rules_of(&d).contains(&"KD010"), "{d:?}");
    }

    #[test]
    fn kd010_ignores_match_patterns() {
        // Reading lock events (sanitizer-style) is not emitting them.
        let src = "fn f(e: &Event) {\n\
                   \x20   match e {\n\
                   \x20       Event::LockAcquire { .. } | Event::LockRelease { .. } => {}\n\
                   \x20       Event::LockAcquire { id } => use_id(id),\n\
                   \x20       _ => {}\n\
                   \x20   }\n\
                   }\n";
        let d = check_source("crates/types/src/x.rs", Some("types"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd009_covered_writes_pass_in_both_orders() {
        // emit-then-write.
        let src = "fn f(&mut self) {\n\
                   \x20   sanitize::emit(|| Event::NvmWrite { line: l, cycle: c });\n\
                   \x20   self.page_mut(pfn);\n\
                   }\n";
        let d = check_source("crates/mem/src/x.rs", Some("mem"), src);
        assert!(d.is_empty(), "{d:?}");
        // write-then-emit.
        let src = "fn f(&mut self) {\n\
                   \x20   self.set_frame_bit(idx, true);\n\
                   \x20   sanitize::emit(|| Event::FrameAlloc { pool, pfn });\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd009_flags_uncovered_write_at_exit_and_fall_through() {
        let src = "fn f(&mut self) -> Result<()> {\n\
                   \x20   self.store_leaf(pa, pte);\n\
                   \x20   other()?;\n\
                   \x20   sanitize::emit(|| Event::PteInstall { pfn, vpn });\n\
                   \x20   Ok(())\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD009"]);
        assert_eq!(d[0].line, 3);
        let src = "fn g(&mut self) {\n\
                   \x20   self.bump_log_head(mem, head);\n\
                   }\n";
        let d = check_source("crates/persist/src/x.rs", Some("persist"), src);
        assert_eq!(rules_of(&d), ["KD009"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn kd009_checkpoint_bracket_and_kernel_lock_cover() {
        let src = "fn f(&mut self) {\n\
                   \x20   self.checkpoint_start();\n\
                   \x20   self.page_mut(pfn);\n\
                   \x20   self.checkpoint_end();\n\
                   }\n";
        let d = check_source("crates/mem/src/x.rs", Some("mem"), src);
        assert!(d.is_empty(), "{d:?}");
        let src = "fn f(&mut self) {\n\
                   \x20   sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_KERNEL });\n\
                   \x20   self.store_leaf(pa, pte);\n\
                   \x20   sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_KERNEL });\n\
                   }\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd009_scoped_to_nvm_discipline_crates() {
        let src = "fn f(&mut self) { self.page_mut(pfn); }\n";
        let d = check_source("crates/hscc/src/x.rs", Some("hscc"), src);
        assert!(d.is_empty(), "{d:?}");
        let d = check_source("crates/mem/src/x.rs", Some("mem"), src);
        assert_eq!(rules_of(&d), ["KD009"]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty());
        let d = check_source("crates/os/tests/it.rs", Some("os"), "x.unwrap();\n");
        assert!(d.is_empty());
    }

    #[test]
    fn diagnostics_carry_position_and_sort() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "fn f() {}\nx.unwrap();\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].path, "crates/os/src/x.rs");
    }
}
