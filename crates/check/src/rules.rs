//! The domain lint rules, applied line by line to Rust sources.
//!
//! | Rule  | What it bans                                                     |
//! |-------|------------------------------------------------------------------|
//! | KD001 | `std::time::{SystemTime, Instant}` in simulation crates          |
//! | KD002 | `HashMap`/`HashSet` in simulation crates (use `BTreeMap`/`BTreeSet`) |
//! | KD003 | truncating `as u8/u16/u32` casts on address/cycle values outside `crates/types` |
//! | KD004 | `unwrap()`/`expect()` in non-test `crates/os` / `crates/persist` code |
//! | KD006 | raw `+`/`-` arithmetic inside `Cycles::new(..)` outside `crates/types` |
//! | KD007 | `std::thread` spawning/scoping outside `kindle_core::parallel` |
//! | KD008 | the removed seed-only fault channel (`set_thread_media_fault_seed`) |
//!
//! (KD005, the external-dependency rule, lives in [`crate::manifest`].)
//!
//! Everything from the first `#[cfg(test)]` to end of file is treated as
//! test code, as are files under a `tests/` directory; comment lines are
//! always skipped. See [`crate::allow`] for the two suppression mechanisms.

use crate::diag::Diagnostic;

/// Crates whose state must be deterministic and free of wall-clock time.
/// `check` (this tool) and `bench` (host-side measurement harnesses) are
/// deliberately outside the simulation.
pub fn is_sim_crate(krate: &str) -> bool {
    !matches!(krate, "check" | "bench")
}

/// Crates held to the no-panic discipline (KD004).
pub fn is_no_panic_crate(krate: &str) -> bool {
    matches!(krate, "os" | "persist")
}

/// The one file allowed to touch host threads (KD007): the deterministic
/// fork-join executor. Everything else — bench binaries included — must
/// go through its `par_map`, so worker scheduling can never reach
/// simulation state or reorder results.
const THREAD_HOME: &str = "crates/core/src/parallel.rs";

/// Host-thread primitives KD007 bans outside [`THREAD_HOME`].
const THREAD_PATTERNS: &[&str] = &["std::thread", "thread::spawn", "thread::scope"];

/// The seed-only ambient fault channel removed in favor of the single
/// `set_thread_media_faults(MediaFaultConfig)` entry point (KD008). Both
/// the setter and its getter are banned so the old shape cannot creep
/// back under either name.
const FAULT_SEED_PATTERNS: &[&str] = &["set_thread_media_fault_seed", "thread_media_fault_seed"];

/// True if `word` occurs in `line` delimited by non-identifier characters.
pub fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + word.len();
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Identifiers that mark a line as handling addresses or simulated time.
const ADDR_CYCLE_WORDS: &[&str] =
    &["addr", "pa", "pfn", "vpn", "va", "cycle", "cycles", "line", "offset", "as_u64"];

/// Truncating integer casts KD003 looks for.
const TRUNCATING_CASTS: &[&str] = &["as u8", "as u16", "as u32"];

fn line_mentions_addr_or_cycle(line: &str) -> bool {
    let lower = line.to_ascii_lowercase();
    ADDR_CYCLE_WORDS.iter().any(|w| contains_word(&lower, w))
}

fn line_has_truncating_cast(line: &str) -> bool {
    TRUNCATING_CASTS.iter().any(|c| contains_word(line, c))
}

/// True if `line` ends a statement or item, so the next line starts a
/// fresh expression and must not inherit this line's identifiers.
fn line_terminates_expression(line: &str) -> bool {
    let t = line.trim_end();
    t.is_empty() || t.ends_with(';') || t.ends_with('{') || t.ends_with('}')
}

/// True if some `Cycles::new(..)` call on `line` computes its argument
/// with raw `+`/`-` (KD006): the arithmetic then happens on bare integers,
/// bypassing the saturation policy the `Cycles` newtype centralizes.
fn line_wraps_arithmetic_in_cycles_new(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("Cycles::new(") {
        let args = &rest[pos + "Cycles::new(".len()..];
        let mut depth = 1usize;
        for ch in args.chars() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                '+' | '-' => return true,
                _ => {}
            }
        }
        rest = args;
    }
    false
}

/// Byte offset at which test code starts (first `#[cfg(test)]`), if any.
fn test_cut(source: &str) -> Option<usize> {
    source.find("#[cfg(test)]")
}

/// Runs KD001–KD004 over one Rust source file.
///
/// `rel_path` is the workspace-relative path (used for scoping and in
/// diagnostics); `krate` is the crate directory name under `crates/`, or
/// `None` for workspace-root sources (examples, integration tests).
pub fn check_source(rel_path: &str, krate: Option<&str>, source: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let in_tests_dir = rel_path.split('/').any(|c| c == "tests");
    let cut_line = test_cut(source).map(|off| source[..off].lines().count());

    let sim = krate.map(is_sim_crate).unwrap_or(false);
    let no_panic = krate.map(is_no_panic_crate).unwrap_or(false);
    let types_crate = krate == Some("types");

    // The last code line seen, when it left an expression open: a
    // truncating cast on a continuation line belongs to that expression.
    let mut open_prev: Option<&str> = None;

    for (idx, line) in source.lines().enumerate() {
        let lineno = idx + 1;
        if in_tests_dir || cut_line.is_some_and(|c| idx >= c) {
            break;
        }
        let code = line.trim_start();
        if code.starts_with("//") {
            continue;
        }
        let carried = open_prev.take();
        if !line_terminates_expression(line) {
            open_prev = Some(line);
        }

        if sim
            && (line.contains("std::time::")
                || contains_word(line, "SystemTime")
                || contains_word(line, "Instant"))
        {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD001",
                "wall-clock time in a simulation crate; all time must come from the \
                 simulated clock (kindle_types::Cycles)",
            ));
        }

        if sim && (contains_word(line, "HashMap") || contains_word(line, "HashSet")) {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD002",
                "hash-ordered collection in a simulation crate; iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet",
            ));
        }

        if !types_crate
            && line_has_truncating_cast(line)
            && (line_mentions_addr_or_cycle(line)
                || carried.is_some_and(line_mentions_addr_or_cycle))
        {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD003",
                "truncating cast on an address/cycle value outside crates/types; \
                 widths are owned by the newtypes",
            ));
        }

        if no_panic && (line.contains(".unwrap()") || line.contains(".expect(")) {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD004",
                "unwrap/expect in kernel or persistence code; return a KindleError \
                 so simulated faults stay recoverable",
            ));
        }

        if !types_crate && line_wraps_arithmetic_in_cycles_new(line) {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD006",
                "raw +/- inside Cycles::new(..); build each term as Cycles and \
                 combine the newtypes so the saturation policy applies",
            ));
        }

        if krate != Some("check")
            && rel_path != THREAD_HOME
            && THREAD_PATTERNS.iter().any(|p| line.contains(p))
        {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD007",
                "host threads outside kindle_core::parallel; route fork-join work \
                 through par_map so results stay independent of worker count",
            ));
        }

        if krate != Some("check") && FAULT_SEED_PATTERNS.iter().any(|p| contains_word(line, p)) {
            out.push(Diagnostic::new(
                rel_path,
                lineno,
                "KD008",
                "seed-only ambient fault channel; use \
                 set_thread_media_faults(MediaFaultConfig) — the one entry point — \
                 so every caller states the full fault model",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let m: HashMap<u64, u32>;", "HashMap"));
        assert!(!contains_word("let m = MyHashMapLike::new();", "HashMap"));
        assert!(!contains_word("pfn_base", "pfn"));
        assert!(contains_word("pa.as_u64()", "pa"));
        assert!(contains_word("x as u32;", "as u32"));
        assert!(!contains_word("x as u327", "as u32"));
    }

    #[test]
    fn kd001_flags_wall_clock() {
        let d = check_source("crates/sim/src/x.rs", Some("sim"), "let t = Instant::now();\n");
        assert_eq!(rules_of(&d), ["KD001"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "use std::time::SystemTime;\n");
        assert_eq!(rules_of(&d), ["KD001"]);
    }

    #[test]
    fn kd001_skips_non_sim_crates() {
        let d = check_source("crates/bench/src/x.rs", Some("bench"), "let t = Instant::now();\n");
        assert!(d.is_empty());
        let d = check_source("crates/check/src/x.rs", Some("check"), "Instant::now();\n");
        assert!(d.is_empty());
    }

    #[test]
    fn kd002_flags_hash_collections() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u64>;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD002", "KD002"]);
    }

    #[test]
    fn kd003_needs_both_cast_and_identifier() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "let x = pfn as u32;\n");
        assert_eq!(rules_of(&d), ["KD003"]);
        // A cast with no address/cycle identifier nearby is fine.
        let d = check_source("crates/os/src/x.rs", Some("os"), "let pid = words[1] as u32;\n");
        assert!(d.is_empty());
        // crates/types owns the widths.
        let d = check_source("crates/types/src/x.rs", Some("types"), "let x = pfn as u32;\n");
        assert!(d.is_empty());
    }

    #[test]
    fn kd003_sees_through_multi_line_expressions() {
        // The operand (`cycles`) sits on the line before the cast.
        let src = "let short = some.cycles()\n    .min(other) as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD003"]);
        // A comment between operand and cast does not break the carry.
        let src = "let short = pa.as_u64()\n    // narrowed for the header\n    as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert_eq!(rules_of(&d), ["KD003"]);
        // A `;` on the previous line ends the expression: no carry.
        let src = "let c = pa.as_u64();\nlet pid = words[1] as u32;\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd006_flags_arithmetic_inside_cycles_new() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(base + 4);\n");
        assert_eq!(rules_of(&d), ["KD006"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "Cycles::new(limit - used);\n");
        assert_eq!(rules_of(&d), ["KD006"]);
        // Arithmetic in nested argument expressions is still inside the call.
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(f(a + b));\n");
        assert_eq!(rules_of(&d), ["KD006"]);
    }

    #[test]
    fn kd006_allows_plain_terms_and_types_crate() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(self.costs.op);\n");
        assert!(d.is_empty(), "{d:?}");
        // Arithmetic *outside* the call composes Cycles values: fine.
        let d =
            check_source("crates/os/src/x.rs", Some("os"), "Cycles::new(a) + Cycles::new(b);\n");
        assert!(d.is_empty(), "{d:?}");
        // The newtype itself owns its arithmetic.
        let d = check_source("crates/types/src/x.rs", Some("types"), "Cycles::new(a + b);\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd004_scoped_to_os_and_persist() {
        let d = check_source("crates/persist/src/x.rs", Some("persist"), "x.unwrap();\n");
        assert_eq!(rules_of(&d), ["KD004"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "y.expect(\"m\");\n");
        assert_eq!(rules_of(&d), ["KD004"]);
        let d = check_source("crates/mem/src/x.rs", Some("mem"), "x.unwrap();\n");
        assert!(d.is_empty());
    }

    #[test]
    fn kd007_flags_host_threads_everywhere_but_the_executor() {
        let d = check_source("crates/sim/src/x.rs", Some("sim"), "std::thread::spawn(f);\n");
        assert_eq!(rules_of(&d), ["KD007"]);
        // bench is NOT exempt: its binaries must parallelize via par_map.
        let d = check_source("crates/bench/src/x.rs", Some("bench"), "thread::scope(|s| {});\n");
        assert_eq!(rules_of(&d), ["KD007"]);
        let d = check_source("crates/os/src/x.rs", Some("os"), "use std::thread;\n");
        assert_eq!(rules_of(&d), ["KD007"]);
    }

    #[test]
    fn kd007_allowlists_parallel_and_check() {
        let d = check_source(
            "crates/core/src/parallel.rs",
            Some("core"),
            "std::thread::scope(|scope| {});\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // The linter's own sources name the patterns as string literals.
        let d = check_source("crates/check/src/x.rs", Some("check"), "\"std::thread\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kd008_flags_the_removed_seed_channel() {
        let d = check_source(
            "crates/bench/src/x.rs",
            Some("bench"),
            "kindle_core::sim::set_thread_media_fault_seed(Some(7));\n",
        );
        assert_eq!(rules_of(&d), ["KD008"]);
        let d = check_source(
            "crates/sim/src/x.rs",
            Some("sim"),
            "let s = thread_media_fault_seed();\n",
        );
        assert_eq!(rules_of(&d), ["KD008"]);
        // The replacement API is fine, and the linter may name the pattern.
        let d = check_source(
            "crates/bench/src/x.rs",
            Some("bench"),
            "kindle_core::sim::set_thread_media_faults(None);\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = check_source(
            "crates/check/src/x.rs",
            Some("check"),
            "\"set_thread_media_fault_seed\";\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty());
        let d = check_source("crates/os/tests/it.rs", Some("os"), "x.unwrap();\n");
        assert!(d.is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        let src = "// a HashMap would be wrong here\n//! call .unwrap() freely in docs\n";
        let d = check_source("crates/os/src/x.rs", Some("os"), src);
        assert!(d.is_empty());
    }

    #[test]
    fn diagnostics_carry_position() {
        let d = check_source("crates/os/src/x.rs", Some("os"), "fn f() {}\nx.unwrap();\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].path, "crates/os/src/x.rs");
    }
}
