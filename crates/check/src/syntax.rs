//! Brace-matched structure on top of the token stream.
//!
//! Three layers, each deliberately smaller than a parser:
//!
//! 1. [`test_cut`] — finds the first `#[cfg(test)]` *token sequence*, so
//!    test code can be truncated away without string-match false hits.
//! 2. [`parse`] — folds the flat stream into a [`Block`] tree by matching
//!    `{`/`}`. Struct literals, match bodies, and closures all become
//!    blocks too; the rules don't mind, because every brace pair really is
//!    a lexical scope boundary for the control-flow questions they ask.
//! 3. [`functions`] — extracts every `fn name ... { body }` (free
//!    functions, methods, nested fns alike) as a [`Function`] with its own
//!    body block, giving the rules a per-function unit of analysis.
//!
//! The per-function "CFG-lite" the KD009/KD010 walks use is exactly this
//! block tree plus the early-exit tokens (`return` / `?` / `break`) seen
//! while walking it — no basic blocks, no graph, just enough structure to
//! reason about "on every path out of this function".

use crate::lexer::{Token, TokenKind};

/// A node in a block tree: either a leaf token or a nested brace block.
#[derive(Clone, Debug)]
pub enum Node<'a> {
    /// A non-brace token.
    Tok(Token<'a>),
    /// A `{ ... }` region.
    Block(Block<'a>),
}

/// One brace-matched `{ ... }` region (or the whole file, for the root).
#[derive(Clone, Debug, Default)]
pub struct Block<'a> {
    /// Line of the opening brace (line 1 for the file root).
    pub open_line: usize,
    /// Line of the closing brace (last line seen, for unterminated input).
    pub close_line: usize,
    /// Children in source order.
    pub nodes: Vec<Node<'a>>,
}

/// One extracted function: its name, declaration line, and body. Borrows
/// the block tree — extraction allocates nothing per token.
#[derive(Clone, Copy, Debug)]
pub struct Function<'a> {
    /// The identifier after `fn`.
    pub name: &'a str,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// The `{ ... }` body.
    pub body: &'a Block<'a>,
}

/// Index of the first token of a literal `#[cfg(test)]` attribute, or
/// `tokens.len()` when none exists. Everything from that token on is test
/// code (mirroring the old whole-suffix cut, now immune to the pattern
/// appearing inside strings or comments).
pub fn test_cut(tokens: &[Token<'_>]) -> usize {
    const SEQ: &[&str] = &["#", "[", "cfg", "(", "test", ")", "]"];
    'outer: for start in 0..tokens.len().saturating_sub(SEQ.len() - 1) {
        for (k, want) in SEQ.iter().enumerate() {
            let t = &tokens[start + k];
            let hit = match t.kind {
                TokenKind::Ident => t.text == *want,
                TokenKind::Punct => t.text == *want,
                _ => false,
            };
            if !hit {
                continue 'outer;
            }
        }
        return start;
    }
    tokens.len()
}

/// Builds the block tree. Tolerates unbalanced braces (truncated input,
/// stray `}` ) by closing/ignoring gracefully — the linter must never
/// panic on code the compiler will reject anyway.
pub fn parse<'a>(tokens: &[Token<'a>]) -> Block<'a> {
    let mut pos = 0usize;
    parse_block(tokens, &mut pos, 1)
}

fn parse_block<'a>(tokens: &[Token<'a>], pos: &mut usize, open_line: usize) -> Block<'a> {
    let mut block = Block { open_line, close_line: open_line, nodes: Vec::new() };
    while *pos < tokens.len() {
        let t = &tokens[*pos];
        block.close_line = t.line;
        if t.is_punct('{') {
            let line = t.line;
            *pos += 1;
            block.nodes.push(Node::Block(parse_block(tokens, pos, line)));
        } else if t.is_punct('}') {
            *pos += 1;
            return block;
        } else {
            block.nodes.push(Node::Tok(*t));
            *pos += 1;
        }
    }
    block
}

/// Positions of function bodies among `nodes`: `(body index, name, line)`.
///
/// A function is the sequence `fn <Ident> ... <Block>` at one nesting
/// level, stopped by a `;` (trait method declarations have no body). The
/// name must be an identifier, which excludes `fn(...)` pointer types.
pub fn fn_body_indices<'a>(nodes: &'a [Node<'a>]) -> Vec<(usize, &'a str, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < nodes.len() {
        if let Node::Tok(t) = &nodes[i] {
            if t.is_ident("fn") {
                if let Some(Node::Tok(name)) = nodes.get(i + 1) {
                    if name.kind == TokenKind::Ident {
                        let mut j = i + 2;
                        while j < nodes.len() {
                            match &nodes[j] {
                                Node::Tok(t) if t.is_punct(';') => break,
                                Node::Block(_) => {
                                    out.push((j, name.text, t.line));
                                    break;
                                }
                                _ => j += 1,
                            }
                        }
                        i = j;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Extracts every function in the tree, including methods inside `impl`
/// blocks and fns nested inside other fn bodies (each becomes its own
/// [`Function`]; analysis walks skip nested bodies via
/// [`fn_body_indices`] so no code is attributed to two functions).
pub fn functions<'a>(root: &'a Block<'a>) -> Vec<Function<'a>> {
    let mut out = Vec::new();
    collect(root, &mut out);
    out
}

fn collect<'a>(block: &'a Block<'a>, out: &mut Vec<Function<'a>>) {
    for (idx, name, line) in fn_body_indices(&block.nodes) {
        if let Node::Block(body) = &block.nodes[idx] {
            out.push(Function { name, line, body });
        }
    }
    for node in &block.nodes {
        if let Node::Block(b) = node {
            collect(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<(String, usize)> {
        let toks = lex(src);
        let root = parse(&toks);
        functions(&root).into_iter().map(|f| (f.name.to_string(), f.line)).collect()
    }

    fn names(src: &str) -> Vec<String> {
        fns(src).into_iter().map(|(n, _)| n).collect()
    }

    #[test]
    fn finds_free_functions_and_methods() {
        let src = "fn a() { 1; }\nimpl X { fn b(&self) -> u8 { 2 } }\n";
        let got = fns(src);
        assert_eq!(got, [("a".to_string(), 1), ("b".to_string(), 2)]);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u8; fn given(&self) { 1; } }\n";
        assert_eq!(names(src), ["given"]);
    }

    #[test]
    fn fn_pointer_types_are_not_functions() {
        let src = "fn real(cb: fn(u64) -> u64) { cb(1); }\n";
        assert_eq!(names(src), ["real"]);
    }

    #[test]
    fn nested_fns_are_separate_units() {
        let src = "fn outer() { fn inner() { 1; } inner(); }\n";
        assert_eq!(names(src), ["outer", "inner"]);
    }

    #[test]
    fn where_clause_between_signature_and_body() {
        let src = "fn g<T>(x: T) -> T where T: Clone { x }\n";
        assert_eq!(names(src), ["g"]);
    }

    #[test]
    fn test_cut_is_token_exact() {
        let toks = lex("fn f() {}\n#[cfg(test)]\nmod tests {}\n");
        let cut = test_cut(&toks);
        assert!(toks[cut].is_punct('#'));
        assert_eq!(toks[cut].line, 2);
        // Inside a string it is invisible.
        let toks = lex("let s = \"#[cfg(test)]\";\n");
        assert_eq!(test_cut(&toks), toks.len());
        // cfg(not(test)) does not cut.
        let toks = lex("#[cfg(not(test))]\nfn f() {}\n");
        assert_eq!(test_cut(&toks), toks.len());
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let _ = fns("fn f() { if x { }\n");
        let _ = fns("} } fn g() { }\n");
    }
}
