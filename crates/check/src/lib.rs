//! Library surface of `kindle-check`, the workspace's domain lint.
//!
//! The pipeline is `lexer` (token stream) → `syntax` (brace-matched
//! block tree, function extraction, test cut) → `rules` (KD001–KD004,
//! KD006–KD012 on tokens and per-function walks) plus `manifest` (KD005
//! on `Cargo.toml`s) and `allow` (inline / allowlist suppression). The
//! `kindle-check` binary drives it over the workspace; the fixture
//! golden test (`tests/golden.rs`) drives it over seeded corpora.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod syntax;
