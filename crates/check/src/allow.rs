//! Violation suppression: inline allow comments and the allowlist file.
//!
//! Two mechanisms, both requiring an explicit rule id:
//!
//! 1. **Inline comment** — append `// check:allow KDnnn: reason` to the
//!    offending line (or put it on the line directly above). The reason is
//!    mandatory prose; a bare `check:allow KDnnn` is ignored.
//! 2. **Allowlist file** — `check-allowlist.txt` at the workspace root,
//!    one entry per line:
//!
//!    ```text
//!    # comment
//!    KD004 crates/os/src/vma.rs expect("re-inserting
//!    ```
//!
//!    Fields are rule id, workspace-relative path, and a substring that
//!    must occur in the flagged line (so entries survive line-number
//!    drift). Unused entries are reported as stale. `scripts/check.sh`
//!    additionally requires a `#` justification comment on the line
//!    directly above each entry — the policy is fix, don't allowlist.

use crate::diag::Diagnostic;

/// A parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Substring that must appear in the flagged source line.
    pub pattern: String,
}

/// Parses the allowlist file body. Returns entries and per-line syntax
/// errors (reported but not fatal).
pub fn parse_allowlist(body: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(pattern))
                if rule.starts_with("KD") && !pattern.trim().is_empty() =>
            {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    pattern: pattern.trim().to_string(),
                });
            }
            _ => errors.push(format!(
                "check-allowlist.txt:{}: malformed entry (want: KDnnn <path> <substring>)",
                idx + 1
            )),
        }
    }
    (entries, errors)
}

/// True if the diagnostic's source line (or the one above it) carries an
/// inline `check:allow <rule>:` comment with a reason.
pub fn inline_allowed(diag: &Diagnostic, source: &str) -> bool {
    let lines: Vec<&str> = source.lines().collect();
    let here = diag.line.checked_sub(1).and_then(|i| lines.get(i).copied());
    let above = diag.line.checked_sub(2).and_then(|i| lines.get(i).copied());
    let hit = [here, above].into_iter().flatten().any(|l| has_allow_comment(l, diag.rule));
    hit
}

fn has_allow_comment(line: &str, rule: &str) -> bool {
    let Some(pos) = line.find("check:allow ") else {
        return false;
    };
    let rest = &line[pos + "check:allow ".len()..];
    let Some(rest) = rest.strip_prefix(rule) else {
        return false;
    };
    // Require a reason after the rule id (": why" or "- why" or "— why").
    rest.trim_start_matches([':', '-', ' ', '—']).chars().any(|c| c.is_alphanumeric())
}

/// Splits diagnostics into (kept, suppressed) plus descriptions of stale
/// allowlist entries that matched nothing. `line_of` resolves a diagnostic
/// to its source line text.
pub fn apply_allowlist(
    diags: Vec<Diagnostic>,
    entries: &[AllowEntry],
    mut line_of: impl FnMut(&Diagnostic) -> Option<String>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<String>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for d in diags {
        let line = line_of(&d).unwrap_or_default();
        let hit = entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.rule == d.rule && e.path == d.path && line.contains(&e.pattern));
        if let Some((i, _)) = hit {
            used[i] = true;
            suppressed.push(d);
        } else {
            kept.push(d);
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| format!("{} {} {}", e.rule, e.path, e.pattern))
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_rejects() {
        let body = "# header\nKD004 crates/os/src/vma.rs expect(\"re-inserting\n\nbadline\n";
        let (entries, errors) = parse_allowlist(body);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "KD004");
        assert_eq!(entries[0].path, "crates/os/src/vma.rs");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains(":4:"), "{}", errors[0]);
    }

    #[test]
    fn inline_allow_requires_rule_and_reason() {
        let src = "x.unwrap(); // check:allow KD004: init-only path\n";
        let d = Diagnostic::new("f.rs", 1, "KD004", "m");
        assert!(inline_allowed(&d, src));
        // Wrong rule id does not suppress.
        let d2 = Diagnostic::new("f.rs", 1, "KD002", "m");
        assert!(!inline_allowed(&d2, src));
        // Bare allow without a reason does not suppress.
        let bare = "x.unwrap(); // check:allow KD004\n";
        assert!(!inline_allowed(&d, bare));
    }

    #[test]
    fn inline_allow_on_preceding_line() {
        let src = "// check:allow KD004: provably disjoint\nx.unwrap();\n";
        let d = Diagnostic::new("f.rs", 2, "KD004", "m");
        assert!(inline_allowed(&d, src));
    }

    #[test]
    fn allowlist_suppresses_matching_line() {
        let entries = vec![AllowEntry {
            rule: "KD004".into(),
            path: "crates/os/src/vma.rs".into(),
            pattern: "expect(\"re-inserting".into(),
        }];
        let diags = vec![
            Diagnostic::new("crates/os/src/vma.rs", 9, "KD004", "m"),
            Diagnostic::new("crates/os/src/vma.rs", 12, "KD004", "m"),
        ];
        let (kept, suppressed, _) = apply_allowlist(diags, &entries, |d| {
            if d.line == 9 {
                Some("self.insert(v).expect(\"re-inserting carved\");".to_string())
            } else {
                Some("other.unwrap();".to_string())
            }
        });
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 12);
    }
}
