//! Diagnostic records produced by the lint rules.

use std::fmt;

/// One finding: a rule violated at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule id, e.g. `KD002`.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(path: &str, line: usize, rule: &'static str, message: &str) -> Self {
        Diagnostic { path: path.to_string(), line, rule, message: message.to_string() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diagnostic::new("crates/os/src/x.rs", 7, "KD004", "no unwrap");
        assert_eq!(d.to_string(), "crates/os/src/x.rs:7: KD004 no unwrap");
    }
}
