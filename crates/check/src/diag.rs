//! Diagnostic records produced by the lint rules.

use std::fmt;

/// One finding: a rule violated at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule id, e.g. `KD002`.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(path: &str, line: usize, rule: &'static str, message: &str) -> Self {
        Diagnostic { path: path.to_string(), line, rule, message: message.to_string() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// Renders diagnostics as a JSON array of `{rule, path, line, message}`
/// objects, for the `--json` lint artifact.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message)
        ));
    }
    out.push_str("\n]");
    out
}

fn escape(s: &str) -> String {
    let mut e = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => e.push_str("\\\""),
            '\\' => e.push_str("\\\\"),
            '\n' => e.push_str("\\n"),
            '\t' => e.push_str("\\t"),
            c if (c as u32) < 0x20 => e.push_str(&format!("\\u{:04x}", c as u32)),
            c => e.push(c),
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diagnostic::new("crates/os/src/x.rs", 7, "KD004", "no unwrap");
        assert_eq!(d.to_string(), "crates/os/src/x.rs:7: KD004 no unwrap");
    }

    #[test]
    fn json_rows_escape_and_order() {
        let diags = vec![
            Diagnostic::new("a.rs", 1, "KD002", "no \"hash\" maps"),
            Diagnostic::new("b.rs", 2, "KD004", "plain"),
        ];
        let json = to_json(&diags);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\\\"hash\\\""), "{json}");
        assert!(json.contains("\"line\": 2"), "{json}");
        assert_eq!(to_json(&[]), "[\n]");
    }
}
