//! A minimal hand-rolled Rust lexer.
//!
//! Produces a flat token stream with 1-based line numbers, skipping the
//! three things that made the old line-regex rules lie: comments (line,
//! nested block, and doc), string literals (normal, byte, raw with any
//! `#` count), and char literals. What remains — identifiers, numbers,
//! lifetimes, and single-character punctuation — is exactly the surface
//! the KD rules reason about, so a `HashMap` in a comment or an
//! `unwrap()` inside `r#"..."#` can never produce a diagnostic again.
//!
//! Tokens borrow their text straight from the source (`&str` slices, no
//! per-token allocation), which keeps the full pipeline — lex, block
//! tree, per-function walks — within the same order of wall-time as the
//! regex pass it replaced.
//!
//! This is deliberately not a full Rust lexer: multi-character operators
//! come out as adjacent single-char [`TokenKind::Punct`] tokens (`::` is
//! `:`,`:`), which keeps the lexer tiny and lets rules match sequences
//! with simple sliding windows. Shebang lines and `#!`/`#` attributes
//! lex as ordinary punctuation + identifiers.

/// What a token is; rules mostly switch on this plus [`Token::text`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`, stored unprefixed).
    Ident,
    /// Integer or float literal, suffix included (`0xffu64`, `1.5e3`).
    Num,
    /// String literal of any flavor; [`Token::text`] holds the raw
    /// contents between the quotes (escape sequences left as written).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`); text is empty.
    Char,
    /// Lifetime (`'a`, `'static`); text holds the name without the quote.
    Lifetime,
    /// One punctuation character (`?`, `;`, `{`, `.` ...).
    Punct,
}

/// One lexed token, borrowing its text from the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// Identifier/number/lifetime text, string contents, or the single
    /// punctuation character.
    pub text: &'a str,
    /// 1-based source line the token *starts* on.
    pub line: usize,
}

impl Token<'_> {
    /// True for an identifier token spelled exactly `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True for a punctuation token of character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == ch as u8
    }
}

/// Byte-level identifier classes. Any non-ASCII byte is treated as part
/// of an identifier: real Rust allows XID idents, and sweeping a whole
/// multi-byte character into an ident keeps every slice boundary on a
/// UTF-8 boundary (the catch-all punct arm therefore only ever sees
/// ASCII).
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.as_bytes().get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0);
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn push(&mut self, kind: TokenKind, text: &'a str, line: usize) {
        self.out.push(Token { kind, text, line });
    }

    /// Consumes `//...` to end of line (the newline itself is left for the
    /// whitespace loop so line accounting stays in one place).
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a (nested) `/* ... */` block comment.
    fn block_comment(&mut self) {
        let mut depth = 1usize;
        self.bump();
        self.bump();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a normal (escaped) string body after the opening quote;
    /// returns the contents slice, escapes left as written.
    fn string_body(&mut self) -> &'a str {
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.bump() {
            match b {
                b'"' => break,
                b'\\' => {
                    self.bump();
                    end = self.pos;
                }
                _ => end = self.pos,
            }
        }
        &self.src[start..end]
    }

    /// Consumes a raw string after `r`/`br`: `#`*n `"` ... `"` `#`*n.
    fn raw_string_body(&mut self) -> &'a str {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.pos;
        'outer: while let Some(b) = self.bump() {
            if b == b'"' {
                // A close candidate: need `hashes` consecutive `#`s.
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        end = self.pos;
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                return &self.src[start..self.pos - 1 - hashes];
            }
            end = self.pos;
        }
        &self.src[start..end]
    }

    /// Consumes a char/byte literal after the opening `'`.
    fn char_body(&mut self) {
        match self.bump() {
            Some(b'\\') => {
                self.bump();
                // Escapes like \u{1F600} contain braces; eat to the quote.
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                self.bump(); // closing quote
            }
            None => {}
        }
    }

    /// Consumes an identifier starting at the current position.
    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        loop {
            let Some(b) = self.peek(0) else { break };
            if is_ident_continue(b) {
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Float like 1.5 — but not the range `1..4`.
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        self.push(TokenKind::Num, text, line);
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b if b.is_ascii_whitespace() => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    let s = self.string_body();
                    self.push(TokenKind::Str, s, line);
                }
                b'\'' => {
                    self.bump();
                    let one = self.peek(0);
                    let two = self.peek(1);
                    let is_lifetime =
                        one.is_some_and(is_ident_start) && two != Some(b'\'') && one != Some(b'\\');
                    if is_lifetime {
                        self.ident(line);
                        if let Some(t) = self.out.last_mut() {
                            t.kind = TokenKind::Lifetime;
                        }
                    } else {
                        self.char_body();
                        self.push(TokenKind::Char, "", line);
                    }
                }
                b'r' if self.peek(1) == Some(b'"')
                    || (self.peek(1) == Some(b'#') && self.raw_prefix_is_string(2)) =>
                {
                    self.bump();
                    let s = self.raw_string_body();
                    self.push(TokenKind::Str, s, line);
                }
                b'r' if self.peek(1) == Some(b'#') => {
                    // Raw identifier r#ident.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.bump();
                    let s = self.string_body();
                    self.push(TokenKind::Str, s, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump();
                    self.bump();
                    self.char_body();
                    self.push(TokenKind::Char, "", line);
                }
                b'b' if self.peek(1) == Some(b'r')
                    && (self.peek(2) == Some(b'"')
                        || (self.peek(2) == Some(b'#') && self.raw_prefix_is_string(3))) =>
                {
                    self.bump();
                    self.bump();
                    let s = self.raw_string_body();
                    self.push(TokenKind::Str, s, line);
                }
                b if is_ident_start(b) => self.ident(line),
                b if b.is_ascii_digit() => self.number(line),
                _ => {
                    let start = self.pos;
                    self.bump();
                    let text = &self.src[start..self.pos];
                    self.push(TokenKind::Punct, text, line);
                }
            }
        }
        self.out
    }

    /// After an `r#`/`br#` prefix, distinguishes `r#"raw"#` (string) from
    /// `r#ident` (raw identifier): skip the `#` run starting at `from` and
    /// look for the quote.
    fn raw_prefix_is_string(&self, from: usize) -> bool {
        let mut k = from;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        self.peek(k) == Some(b'"')
    }
}

/// Lexes `source` into tokens. Never fails: unterminated literals simply
/// consume to end of input (the compiler rejects such files anyway; the
/// linter just needs to not misattribute what follows).
pub fn lex(source: &str) -> Vec<Token<'_>> {
    // ~6 bytes per token is a good fit for this workspace's density.
    let cap = source.len() / 6 + 16;
    Lexer { src: source, pos: 0, line: 1, out: Vec::with_capacity(cap) }.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text.to_string())).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn comments_are_invisible() {
        assert!(idents("// HashMap here\n/* and HashMap there */").is_empty());
        assert_eq!(idents("let x; // HashMap"), ["let", "x"]);
        // Nested block comments.
        assert!(idents("/* a /* HashMap */ b */").is_empty());
        // Doc comments are line comments.
        assert!(idents("/// call .unwrap() freely\n//! or here").is_empty());
    }

    #[test]
    fn strings_are_single_tokens() {
        let t = kinds("\"std::thread\"");
        assert_eq!(t, [(TokenKind::Str, "std::thread".to_string())]);
        // Escaped quotes stay inside.
        let t = kinds(r#""a\"b""#);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].1, "a\\\"b");
        // Byte strings.
        let t = kinds("b\"unwrap()\"");
        assert_eq!(t, [(TokenKind::Str, "unwrap()".to_string())]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r###"r#"contains "quotes" and unwrap()"#"###);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, TokenKind::Str);
        assert!(t[0].1.contains("unwrap()"));
        // Two-hash raw string containing a one-hash close candidate.
        let t = kinds("r##\"inner \"# still inside\"##");
        assert_eq!(t.len(), 1);
        assert!(t[0].1.contains("still inside"));
        // Raw byte string.
        let t = kinds("br#\"HashMap\"#");
        assert_eq!(t, [(TokenKind::Str, "HashMap".to_string())]);
    }

    #[test]
    fn raw_ident_is_ident() {
        assert_eq!(idents("r#fn"), ["fn"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let t = kinds("'a'");
        assert_eq!(t[0].0, TokenKind::Char);
        let t = kinds("&'a str");
        assert_eq!(t[0], (TokenKind::Punct, "&".to_string()));
        assert_eq!(t[1], (TokenKind::Lifetime, "a".to_string()));
        let t = kinds("'static");
        assert_eq!(t[0], (TokenKind::Lifetime, "static".to_string()));
        // Escaped char literal containing a quote.
        let t = kinds(r"'\''");
        assert_eq!(t[0].0, TokenKind::Char);
        // A char literal must not swallow following code.
        assert_eq!(idents("let c = 'x'; let y = 1;"), ["let", "c", "let", "y"]);
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        let t = kinds("0xff_u64 1.5e3 7u32");
        assert_eq!(t[0], (TokenKind::Num, "0xff_u64".to_string()));
        assert_eq!(t[1], (TokenKind::Num, "1.5e3".to_string()));
        assert_eq!(t[2], (TokenKind::Num, "7u32".to_string()));
        // Ranges do not glue into floats.
        let t = kinds("1..4");
        assert_eq!(t[0], (TokenKind::Num, "1".to_string()));
        assert_eq!(t[1], (TokenKind::Punct, ".".to_string()));
        assert_eq!(t[2], (TokenKind::Punct, ".".to_string()));
        assert_eq!(t[3], (TokenKind::Num, "4".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\nr#\"raw\nstring\"#\nc";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
        assert_eq!(c.line, 7);
    }

    #[test]
    fn multichar_operators_come_out_as_singles() {
        let t = kinds("a::b");
        assert_eq!(
            t,
            [
                (TokenKind::Ident, "a".to_string()),
                (TokenKind::Punct, ":".to_string()),
                (TokenKind::Punct, ":".to_string()),
                (TokenKind::Ident, "b".to_string()),
            ]
        );
    }

    #[test]
    fn non_ascii_text_stays_on_utf8_boundaries() {
        // Em-dashes and accents outside comments lex as ident bytes and
        // must never split a multi-byte character (which would panic on
        // slicing).
        let toks = lex("let género = 1; — \"δ\" 'é'");
        assert!(toks.iter().any(|t| t.is_ident("género")));
        let _ = lex("→→→");
    }
}
