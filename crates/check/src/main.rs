//! `kindle-check` — the workspace's domain lint.
//!
//! Walks every Rust source file and `Cargo.toml` in the workspace and
//! enforces the determinism / persistence rules described in `rules` and
//! `manifest` (KD001–KD012). Violations print as `path:line: KDnnn message`
//! and make the process exit non-zero; suppressions go through the two
//! mechanisms in `allow` (inline `// check:allow KDnnn: reason` comments
//! and the root `check-allowlist.txt`).
//!
//! Usage: `cargo run -p kindle-check [-- [root] [--json <path>]]`
//!
//! * `root` — explicit workspace root (default: inferred from the crate's
//!   own location).
//! * `--json <path>` — also write the diagnostics as a JSON artifact in
//!   the bench envelope convention (`elapsed_ms` + `rows`), uploaded by
//!   the CI lint job so rule trends are diffable across runs.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use kindle_check::diag::{self, Diagnostic};
use kindle_check::{allow, manifest, rules};

const USAGE: &str = "usage: kindle-check [root] [--json <path>]";

/// Directories never descended into. `fixtures` holds the check crate's
/// seeded-violation corpus — real rule hits by design, exercised by the
/// golden test, never lint findings against the tree.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args { root: None, json: None };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(path));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            root if args.root.is_none() => args.root = Some(PathBuf::from(root)),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    Ok(args)
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests, sorted so
/// output order is stable across filesystems.
fn walk(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, rs, manifests);
            }
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
}

/// Workspace-relative path with `/` separators.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Crate directory name for files under `crates/<name>/...`.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn default_root() -> PathBuf {
    // crates/check/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let started = Instant::now();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kindle-check: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = args.root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!("kindle-check: {} does not look like a workspace root", root.display());
        return ExitCode::FAILURE;
    }

    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(&root, &mut rs_files, &mut manifests);

    // Raw findings, already filtered by inline allow comments; remember the
    // flagged line text so allowlist entries can match on substrings.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut line_text: BTreeMap<(String, usize), String> = BTreeMap::new();
    let mut record = |found: Vec<Diagnostic>, source: &str| {
        for d in found {
            if allow::inline_allowed(&d, source) {
                continue;
            }
            let text = source.lines().nth(d.line.saturating_sub(1)).unwrap_or("");
            line_text.insert((d.path.clone(), d.line), text.to_string());
            diags.push(d);
        }
    };

    for path in &rs_files {
        let rel = rel_of(&root, path);
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("kindle-check: unreadable file {rel}");
            return ExitCode::FAILURE;
        };
        record(rules::check_source(&rel, crate_of(&rel), &source), &source);
    }
    for path in &manifests {
        let rel = rel_of(&root, path);
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("kindle-check: unreadable file {rel}");
            return ExitCode::FAILURE;
        };
        record(manifest::check_manifest(&rel, &source), &source);
    }

    // Allowlist file is optional; malformed entries are hard errors so the
    // list can't silently rot.
    let allowlist_path = root.join("check-allowlist.txt");
    let (entries, parse_errors) = match fs::read_to_string(&allowlist_path) {
        Ok(body) => allow::parse_allowlist(&body),
        Err(_) => (Vec::new(), Vec::new()),
    };
    for err in &parse_errors {
        eprintln!("kindle-check: {err}");
    }

    let (kept, suppressed, stale) = allow::apply_allowlist(diags, &entries, |d| {
        line_text.get(&(d.path.clone(), d.line)).cloned()
    });
    for entry in &stale {
        eprintln!("kindle-check: warning: stale allowlist entry: {entry}");
    }

    for d in &kept {
        println!("{d}");
    }
    eprintln!(
        "kindle-check: scanned {} source files, {} manifests; {} violation(s), {} suppressed",
        rs_files.len(),
        manifests.len(),
        kept.len(),
        suppressed.len()
    );

    if let Some(path) = &args.json {
        // Same envelope shape the bench binaries write (elapsed_ms + rows),
        // so CI artifact tooling can treat lint and bench outputs alike.
        // Wall-clock time is confined to this host-side field (the check
        // crate sits outside the simulation, like bench).
        let data = format!(
            "{{\n\"elapsed_ms\": {},\n\"files\": {},\n\"manifests\": {},\n\
             \"violations\": {},\n\"suppressed\": {},\n\"rows\": {}\n}}\n",
            started.elapsed().as_millis(),
            rs_files.len(),
            manifests.len(),
            kept.len(),
            suppressed.len(),
            diag::to_json(&kept)
        );
        match fs::write(path, data) {
            Ok(()) => eprintln!("kindle-check: wrote {}", path.display()),
            Err(e) => {
                eprintln!("kindle-check: json write failed for {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if kept.is_empty() && parse_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
