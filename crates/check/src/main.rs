//! `kindle-check` — the workspace's domain lint.
//!
//! Walks every Rust source file and `Cargo.toml` in the workspace and
//! enforces the determinism / persistence rules described in `rules` and
//! `manifest` (KD001–KD005). Violations print as `path:line: KDnnn message`
//! and make the process exit non-zero; suppressions go through the two
//! mechanisms in `allow` (inline `// check:allow KDnnn: reason` comments
//! and the root `check-allowlist.txt`).
//!
//! Usage: `cargo run -p kindle-check` (optionally pass an explicit
//! workspace root as the first argument).

mod allow;
mod diag;
mod manifest;
mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use diag::Diagnostic;

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Recursively collects `.rs` files and `Cargo.toml` manifests, sorted so
/// output order is stable across filesystems.
fn walk(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, rs, manifests);
            }
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
}

/// Workspace-relative path with `/` separators.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Crate directory name for files under `crates/<name>/...`.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    // crates/check/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let root = workspace_root();
    if !root.join("Cargo.toml").is_file() {
        eprintln!("kindle-check: {} does not look like a workspace root", root.display());
        return ExitCode::FAILURE;
    }

    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(&root, &mut rs_files, &mut manifests);

    // Raw findings, already filtered by inline allow comments; remember the
    // flagged line text so allowlist entries can match on substrings.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut line_text: BTreeMap<(String, usize), String> = BTreeMap::new();
    let mut record = |found: Vec<Diagnostic>, source: &str| {
        for d in found {
            if allow::inline_allowed(&d, source) {
                continue;
            }
            let text = source.lines().nth(d.line.saturating_sub(1)).unwrap_or("");
            line_text.insert((d.path.clone(), d.line), text.to_string());
            diags.push(d);
        }
    };

    for path in &rs_files {
        let rel = rel_of(&root, path);
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("kindle-check: unreadable file {rel}");
            return ExitCode::FAILURE;
        };
        record(rules::check_source(&rel, crate_of(&rel), &source), &source);
    }
    for path in &manifests {
        let rel = rel_of(&root, path);
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("kindle-check: unreadable file {rel}");
            return ExitCode::FAILURE;
        };
        record(manifest::check_manifest(&rel, &source), &source);
    }

    // Allowlist file is optional; malformed entries are hard errors so the
    // list can't silently rot.
    let allowlist_path = root.join("check-allowlist.txt");
    let (entries, parse_errors) = match fs::read_to_string(&allowlist_path) {
        Ok(body) => allow::parse_allowlist(&body),
        Err(_) => (Vec::new(), Vec::new()),
    };
    for err in &parse_errors {
        eprintln!("kindle-check: {err}");
    }

    let (kept, suppressed, stale) = allow::apply_allowlist(diags, &entries, |d| {
        line_text.get(&(d.path.clone(), d.line)).cloned()
    });
    for entry in &stale {
        eprintln!("kindle-check: warning: stale allowlist entry: {entry}");
    }

    for d in &kept {
        println!("{d}");
    }
    eprintln!(
        "kindle-check: scanned {} source files, {} manifests; {} violation(s), {} suppressed",
        rs_files.len(),
        manifests.len(),
        kept.len(),
        suppressed.len()
    );
    if kept.is_empty() && parse_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
