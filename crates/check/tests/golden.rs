//! Golden-diff self-test for the fixture corpus.
//!
//! Every file under `fixtures/kd*/` is run through the real rule
//! pipeline — [`kindle_check::rules::check_source`] for Rust,
//! [`kindle_check::manifest::check_manifest`] for TOML — using the
//! workspace path named by the fixture's first-line `@path` directive,
//! so crate scoping behaves exactly as on the real tree. The resulting
//! `(file, line, rule)` hits must match `fixtures/golden.txt`.

use std::fs;
use std::path::Path;

use kindle_check::{manifest, rules};

/// Reads the `//@path ` / `#@path ` directive off a fixture's first line.
fn directive_path(fixture: &Path, source: &str, marker: &str) -> String {
    let first = source.lines().next().unwrap_or_default();
    first
        .strip_prefix(marker)
        .unwrap_or_else(|| {
            panic!("{}: fixture must start with `{marker}<workspace path>`", fixture.display())
        })
        .trim()
        .to_string()
}

/// The crate directory name for a `crates/<name>/...` path.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

#[test]
fn fixtures_match_golden() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut dirs: Vec<_> = fs::read_dir(&root)
        .expect("fixtures/ directory")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty(), "fixture corpus is empty");

    let mut actual = Vec::new();
    for dir in &dirs {
        let dirname = dir.file_name().unwrap().to_string_lossy().into_owned();
        let mut files: Vec<_> = fs::read_dir(dir).unwrap().map(|e| e.unwrap().path()).collect();
        files.sort();
        for file in files {
            let name = file.file_name().unwrap().to_string_lossy().into_owned();
            let source = fs::read_to_string(&file).unwrap();
            let diags = match file.extension().and_then(|e| e.to_str()) {
                Some("rs") => {
                    let rel = directive_path(&file, &source, "//@path ");
                    rules::check_source(&rel, crate_of(&rel), &source)
                }
                Some("toml") => {
                    let rel = directive_path(&file, &source, "#@path ");
                    manifest::check_manifest(&rel, &source)
                }
                _ => continue,
            };
            for d in diags {
                actual.push(format!("{dirname}/{name}:{} {}", d.line, d.rule));
            }
        }
    }
    actual.sort();

    let golden = fs::read_to_string(root.join("golden.txt")).expect("fixtures/golden.txt");
    let mut expected: Vec<String> = golden
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    expected.sort();

    assert_eq!(
        actual.join("\n"),
        expected.join("\n"),
        "fixture hits diverge from fixtures/golden.txt (left = actual, right = golden)"
    );
}

/// Every rule the engine implements has a seeded fixture that actually
/// fires — so a rule can never be silently disabled.
#[test]
fn every_rule_has_a_firing_fixture() {
    let golden = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join("golden.txt"),
    )
    .unwrap();
    for rule in [
        "KD001", "KD002", "KD003", "KD004", "KD005", "KD006", "KD007", "KD008", "KD009", "KD010",
        "KD011", "KD012", "KD013",
    ] {
        assert!(
            golden.lines().any(|l| l.ends_with(rule)),
            "no seeded fixture hit recorded for {rule}"
        );
    }
}
