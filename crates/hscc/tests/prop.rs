//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for HSCC's pool and mapping table.

use std::collections::HashMap;

use proptest::prelude::*;

use kindle_hscc::{DramPool, ListKind, MappingTable};
use kindle_os::{FrameAllocator, FramePools, PersistentFrameAllocator, Region};
use kindle_types::physmem::FlatMem;
use kindle_types::{Pfn, PhysAddr, Vpn};

fn occ(n: u64) -> kindle_hscc::pool::Occupant {
    kindle_hscc::pool::Occupant { nvm: Pfn::new(5000 + n), vpn: Vpn::new(0x40000 + n), pid: 1 }
}

proptest! {
    /// Pool conservation: every take() hands out a slot at most once per
    /// refresh cycle; occupancy and list sizes always balance.
    #[test]
    fn pool_take_never_duplicates(
        rounds in prop::collection::vec(
            (0usize..20, prop::collection::vec(any::<bool>(), 0..16)),
            1..10
        )
    ) {
        let mut pool = DramPool::new((0..16u64).map(|i| Pfn::new(100 + i)).collect());
        let mut tag = 0u64;
        for (takes, dirtiness) in rounds {
            // Interval start: classify occupied slots pseudo-randomly.
            pool.refresh(|slot, _| dirtiness.get(slot).copied().unwrap_or(false));
            let snap = pool.snapshot();
            prop_assert_eq!(snap.free + snap.clean + snap.dirty, 16);
            let mut taken = std::collections::HashSet::new();
            for _ in 0..takes {
                match pool.take() {
                    Some((slot, prev, kind)) => {
                        prop_assert!(taken.insert(slot), "slot {slot} taken twice in one interval");
                        match kind {
                            ListKind::Free => prop_assert!(prev.is_none()),
                            _ => prop_assert!(prev.is_some()),
                        }
                        tag += 1;
                        pool.occupy(slot, occ(tag));
                    }
                    None => {
                        prop_assert!(taken.len() >= 16, "take failed with slots remaining");
                        break;
                    }
                }
            }
        }
    }

    /// The mapping table is a partial bijection: forward and reverse stay
    /// consistent under arbitrary set/clear sequences.
    #[test]
    fn mapping_table_bijective(ops in prop::collection::vec((0u64..128, 0u64..16, any::<bool>()), 1..100)) {
        let mut mem = FlatMem::new(16 << 20);
        let mut pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(16), 512),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(2048), 512),
                Region { base: PhysAddr::new(0x1000), size: 0x1000 },
            ),
        };
        let table = MappingTable::new(&mut mem, &mut pools, Pfn::new(2048), 128, 16).unwrap();
        let mut fwd_model: HashMap<u64, u64> = HashMap::new();
        for (nvm_off, slot, set) in ops {
            let nvm = Pfn::new(2048 + nvm_off);
            if set {
                let dram = Pfn::new(900 + slot);
                table.set(&mut mem, nvm, Some(dram));
                table.set_reverse(&mut mem, slot, nvm, Vpn::new(0x999));
                fwd_model.insert(nvm_off, 900 + slot);
            } else {
                table.set(&mut mem, nvm, None);
                fwd_model.remove(&nvm_off);
            }
            // Forward lookups match the model for all touched entries.
            for (&off, &dram) in &fwd_model {
                prop_assert_eq!(
                    table.lookup(&mut mem, Pfn::new(2048 + off)),
                    Some(Pfn::new(dram))
                );
            }
            prop_assert_eq!(table.lookup(&mut mem, nvm).is_some(), fwd_model.contains_key(&nvm_off));
        }
    }
}
