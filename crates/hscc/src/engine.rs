//! The HSCC migration engine.

use kindle_os::Kernel;
use kindle_tlb::{TlbEntry, TwoLevelTlb};
use kindle_types::sanitize::{self, Event};
use kindle_types::{Cycles, MemKind, Pfn, PhysMem, Pte, Result, Vpn, CACHE_LINE, LINES_PER_PAGE};

use crate::pool::{DramPool, ListKind, Occupant};
use crate::table::MappingTable;

/// HSCC parameters (paper §III-C).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HsccConfig {
    /// DRAM fetch threshold: NVM pages whose per-interval access count
    /// reaches this value migrate to DRAM (paper sweeps 5, 25, 50).
    pub fetch_threshold: u64,
    /// Migration interval; the paper's 10⁸ cycles ≙ 31.25 ms at 3.2 GHz,
    /// quoted as 31.25 ms in the Kindle prototype.
    pub migration_interval: Cycles,
    /// DRAM pool size in pages (paper: 512).
    pub pool_pages: usize,
}

impl Default for HsccConfig {
    fn default() -> Self {
        HsccConfig {
            fetch_threshold: 25,
            migration_interval: Cycles::from_nanos(31_250_000),
            pool_pages: 512,
        }
    }
}

/// Counters of migration activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HsccStats {
    /// Migration intervals executed.
    pub intervals: u64,
    /// Pages migrated NVM → DRAM.
    pub pages_migrated: u64,
    /// Destination pages taken from the free list.
    pub free_uses: u64,
    /// Destination pages recycled from the clean list (no copy-back).
    pub clean_reuses: u64,
    /// Destination pages recycled from the dirty list (DRAM→NVM copy-back).
    pub copybacks: u64,
    /// Slots recycled mid-interval after all lists drained (treated dirty).
    pub recycled: u64,
    /// Simulated time in destination-page selection.
    pub selection_cycles: Cycles,
    /// Simulated time in page copies (flush + 4 KiB copy + remap).
    pub copy_cycles: Cycles,
    /// Simulated time in the candidate page-table scan and count resets.
    pub scan_cycles: Cycles,
    /// TLB access counters written back to PTEs.
    pub count_writebacks: u64,
}

impl HsccStats {
    /// Total OS migration time.
    pub fn os_cycles(&self) -> Cycles {
        self.selection_cycles + self.copy_cycles + self.scan_cycles
    }

    /// Fraction of OS migration time spent in page selection (Table VI,
    /// computed over selection + copy as in the paper).
    pub fn selection_share(&self) -> f64 {
        let sel = self.selection_cycles.as_u64() as f64;
        let copy = self.copy_cycles.as_u64() as f64;
        if sel + copy == 0.0 {
            0.0
        } else {
            sel / (sel + copy)
        }
    }
}

/// Result of one migration interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MigrationOutcome {
    /// Candidate pages over the threshold.
    pub candidates: u64,
    /// Pages actually migrated.
    pub migrated: u64,
    /// Dirty copy-backs performed to make room.
    pub copybacks: u64,
}

/// The HSCC engine. The simulator calls [`HsccEngine::migrate`] from its
/// timer loop and [`HsccEngine::on_tlb_evict`] from the translation path.
#[derive(Clone, Debug)]
pub struct HsccEngine {
    cfg: HsccConfig,
    table: MappingTable,
    pool: DramPool,
    next_migration: Cycles,
    recycle_cursor: usize,
    stats: HsccStats,
}

impl HsccEngine {
    /// Builds the engine: allocates the DRAM pool pages and the lookup
    /// table from the kernel's DRAM frame pool.
    ///
    /// # Errors
    ///
    /// Propagates DRAM exhaustion.
    pub fn new(mem: &mut dyn PhysMem, kernel: &mut Kernel, cfg: HsccConfig) -> Result<Self> {
        let nvm_start = kernel.pools.nvm.inner().start();
        let nvm_frames = kernel.pools.nvm.inner().capacity();
        let table = MappingTable::new(
            mem,
            &mut kernel.pools,
            nvm_start,
            nvm_frames,
            cfg.pool_pages as u64,
        )?;
        let mut pages = Vec::with_capacity(cfg.pool_pages);
        for _ in 0..cfg.pool_pages {
            pages.push(kernel.pools.alloc(mem, MemKind::Dram)?);
        }
        Ok(HsccEngine {
            next_migration: cfg.migration_interval,
            cfg,
            table,
            pool: DramPool::new(pages),
            recycle_cursor: 0,
            stats: HsccStats::default(),
        })
    }

    /// Engine configuration.
    pub fn config(&self) -> &HsccConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &HsccStats {
        &self.stats
    }

    /// The DRAM pool (inspection).
    pub fn pool(&self) -> &DramPool {
        &self.pool
    }

    /// The lookup table (inspection).
    pub fn table(&self) -> &MappingTable {
        &self.table
    }

    /// Is a migration interval due?
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_migration
    }

    /// Hardware spills a TLB entry's access count into its PTE on eviction.
    pub fn on_tlb_evict(
        &mut self,
        mem: &mut dyn PhysMem,
        kernel: &mut Kernel,
        pid: u32,
        entry: &TlbEntry,
    ) {
        if entry.access_count == 0 {
            return;
        }
        let costs = kernel.costs.clone();
        let count = entry.access_count as u64;
        let va = entry.vpn.base();
        if let Ok(proc) = kernel.process_mut(pid) {
            let _ = proc
                .aspace
                .update_leaf(mem, &costs, va, |p| p.with_access_count(p.access_count() + count));
            self.stats.count_writebacks += 1;
        }
    }

    /// Runs one migration interval for `pid`.
    ///
    /// # Errors
    ///
    /// Propagates page-table errors (which indicate simulation bugs).
    pub fn migrate(
        &mut self,
        mem: &mut dyn PhysMem,
        kernel: &mut Kernel,
        tlb: &mut TwoLevelTlb,
        pid: u32,
    ) -> Result<MigrationOutcome> {
        // Migration page copies are ordered against foreground NVM writes
        // by the (simulated) migration lock. The lock events bracket the
        // call so the release is reached even when the body propagates a
        // page-table error (KD010).
        sanitize::emit(|| Event::LockAcquire { id: sanitize::LOCK_MIGRATION });
        let result = self.migrate_locked(mem, kernel, tlb, pid);
        sanitize::emit(|| Event::LockRelease { id: sanitize::LOCK_MIGRATION });
        result
    }

    /// The migration interval body; runs with `LOCK_MIGRATION` held by the
    /// caller.
    fn migrate_locked(
        &mut self,
        mem: &mut dyn PhysMem,
        kernel: &mut Kernel,
        tlb: &mut TwoLevelTlb,
        pid: u32,
    ) -> Result<MigrationOutcome> {
        let costs = kernel.costs.clone();
        let mut outcome = MigrationOutcome::default();

        // --- scan phase -------------------------------------------------
        let scan_start = mem.now();
        // 1. Spill TLB access counts to PTEs (one PTE store each).
        let counted: Vec<(Vpn, u64)> = tlb
            .iter_mut()
            .filter(|e| e.access_count > 0)
            .map(|e| {
                let c = (e.vpn, e.access_count as u64);
                e.access_count = 0;
                c
            })
            .collect();
        {
            let proc = kernel.process_mut(pid)?;
            for (vpn, count) in counted {
                let _ = proc.aspace.update_leaf(mem, &costs, vpn.base(), |p| {
                    p.with_access_count(p.access_count() + count)
                });
                self.stats.count_writebacks += 1;
            }
        }

        // 2. Refresh the pool lists (classify occupied slots by PTE dirty
        //    bit — a software walk per slot).
        let occupied: Vec<(usize, Occupant)> = self.pool.occupied().map(|(i, o)| (i, *o)).collect();
        let mut dirtiness = vec![false; self.pool.capacity()];
        {
            let proc = kernel.process(pid)?;
            for (slot, occ) in &occupied {
                let dirty = proc
                    .aspace
                    .translate(mem, occ.vpn.base())
                    .map(|p| p.is_dirty())
                    .unwrap_or(false);
                dirtiness[*slot] = dirty;
            }
        }
        self.pool.refresh(|slot, _| dirtiness[slot]);

        // 3. Software page-table walk collecting candidates.
        let mut candidates: Vec<(Vpn, Pfn, u64)> = Vec::new();
        let threshold = self.cfg.fetch_threshold;
        let nvm_alloc = &kernel.pools.nvm;
        {
            let proc = kernel.process(pid)?;
            proc.aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                if pte.mem_kind() == MemKind::Nvm
                    && nvm_alloc.inner().contains(pte.pfn())
                    && pte.access_count() >= threshold
                {
                    candidates.push((vpn, pte.pfn(), pte.access_count()));
                }
            });
        }
        outcome.candidates = candidates.len() as u64;
        // Hottest first, so pool pressure drops the coolest candidates.
        candidates.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
        self.stats.scan_cycles += mem.now() - scan_start;

        // --- migration phase ---------------------------------------------
        for (vpn, nvm_pfn, _count) in candidates {
            // Page selection.
            let sel_start = mem.now();
            mem.advance(Cycles::new(costs.migration_page_op));
            let (slot, prev, from) = match self.pool.take() {
                Some(t) => t,
                None => {
                    // All lists consumed this interval: recycle round-robin,
                    // treating the victim as dirty.
                    let slot = self.recycle_cursor % self.pool.capacity();
                    self.recycle_cursor += 1;
                    let prev = self.pool.occupant(slot);
                    self.stats.recycled += 1;
                    (slot, prev, ListKind::Dirty)
                }
            };
            let dram_pfn = self.pool.frame(slot);
            if let Some(old) = prev {
                // Evict the previous occupant: restore its PTE to NVM...
                if from == ListKind::Dirty {
                    // ...after copying the modified contents back.
                    for line in 0..LINES_PER_PAGE {
                        mem.clwb(dram_pfn.base() + (line * CACHE_LINE) as u64);
                    }
                    mem.copy_page(dram_pfn.base(), old.nvm.base());
                    self.stats.copybacks += 1;
                    outcome.copybacks += 1;
                } else {
                    self.stats.clean_reuses += 1;
                }
                let proc = kernel.process_mut(old.pid)?;
                let _ = proc.aspace.update_leaf(mem, &costs, old.vpn.base(), |p| {
                    p.with_pfn(old.nvm).without_flags(Pte::DIRTY).with_access_count(0)
                });
                self.table.set(mem, old.nvm, None);
                self.table.clear_reverse(mem, slot as u64);
                tlb.invalidate(old.vpn);
            } else {
                self.stats.free_uses += 1;
            }
            self.stats.selection_cycles += mem.now() - sel_start;

            // Page copy.
            let copy_start = mem.now();
            // Flush cache lines of the NVM page under migration.
            for line in 0..LINES_PER_PAGE {
                mem.clwb(nvm_pfn.base() + (line * CACHE_LINE) as u64);
            }
            mem.copy_page(nvm_pfn.base(), dram_pfn.base());
            {
                let proc = kernel.process_mut(pid)?;
                proc.aspace.update_leaf(mem, &costs, vpn.base(), |p| {
                    p.with_pfn(dram_pfn).without_flags(Pte::DIRTY).with_access_count(0)
                })?;
            }
            self.table.set(mem, nvm_pfn, Some(dram_pfn));
            self.table.set_reverse(mem, slot as u64, nvm_pfn, vpn);
            self.pool.occupy(slot, Occupant { nvm: nvm_pfn, vpn, pid });
            tlb.invalidate(vpn);
            self.stats.pages_migrated += 1;
            outcome.migrated += 1;
            self.stats.copy_cycles += mem.now() - copy_start;
        }

        // --- reset phase ---------------------------------------------------
        let reset_start = mem.now();
        let mut to_reset: Vec<Vpn> = Vec::new();
        {
            let proc = kernel.process(pid)?;
            proc.aspace.for_each_leaf(mem, |_, vpn, pte: Pte, _| {
                if pte.access_count() != 0 {
                    to_reset.push(vpn);
                }
            });
        }
        {
            let proc = kernel.process_mut(pid)?;
            for vpn in to_reset {
                proc.aspace.update_leaf(mem, &costs, vpn.base(), |p| p.with_access_count(0))?;
            }
        }
        tlb.flush_all();
        self.stats.scan_cycles += mem.now() - reset_start;

        self.stats.intervals += 1;
        self.next_migration = mem.now() + self.cfg.migration_interval;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_os::KernelConfig;
    use kindle_tlb::TwoLevelTlbConfig;
    use kindle_types::physmem::FlatMem;
    use kindle_types::{MapFlags, Prot, VirtAddr, PAGE_SIZE};

    fn setup(pool_pages: usize, threshold: u64) -> (FlatMem, Kernel, HsccEngine, TwoLevelTlb, u32) {
        let mut mem = FlatMem::new(160 << 20);
        let mut kernel = Kernel::new(KernelConfig::for_test(160 << 20), &mut mem).unwrap();
        let pid = kernel.create_process(&mut mem).unwrap();
        let cfg = HsccConfig { fetch_threshold: threshold, pool_pages, ..Default::default() };
        let engine = HsccEngine::new(&mut mem, &mut kernel, cfg).unwrap();
        let tlb = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        (mem, kernel, engine, tlb, pid)
    }

    /// Maps `n` NVM pages and sets each PTE's access count.
    fn hot_pages(mem: &mut FlatMem, kernel: &mut Kernel, pid: u32, n: u64, count: u64) -> VirtAddr {
        let va = kernel
            .sys_mmap(
                mem,
                pid,
                None,
                n * PAGE_SIZE as u64,
                Prot::RW,
                MapFlags::NVM | MapFlags::POPULATE,
            )
            .unwrap();
        let costs = kernel.costs.clone();
        let proc = kernel.process_mut(pid).unwrap();
        for i in 0..n {
            proc.aspace
                .update_leaf(mem, &costs, va + i * PAGE_SIZE as u64, |p| p.with_access_count(count))
                .unwrap();
        }
        va
    }

    #[test]
    fn hot_pages_migrate_to_dram() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(8, 5);
        let va = hot_pages(&mut mem, &mut kernel, pid, 4, 10);
        let before = kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        assert!(kernel.pools.nvm.inner().contains(before));

        let out = engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(out.candidates, 4);
        assert_eq!(out.migrated, 4);
        assert_eq!(engine.stats().free_uses, 4);

        let after = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert!(kernel.pools.dram.contains(after.pfn()), "PTE now points to DRAM");
        assert_eq!(after.access_count(), 0, "count reset after migration");
        assert_eq!(engine.table().lookup(&mut mem, before), Some(after.pfn()));
        // Data travelled with the page.
        assert_eq!(engine.stats().pages_migrated, 4);
    }

    #[test]
    fn cold_pages_stay_in_nvm() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(8, 25);
        let va = hot_pages(&mut mem, &mut kernel, pid, 4, 10); // below threshold
        let out = engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(out.candidates, 0);
        assert_eq!(out.migrated, 0);
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert!(kernel.pools.nvm.inner().contains(pte.pfn()));
        assert_eq!(pte.access_count(), 0, "counts reset even without migration");
    }

    #[test]
    fn pool_pressure_forces_copybacks() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(2, 5);
        let va = hot_pages(&mut mem, &mut kernel, pid, 2, 10);
        engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(engine.stats().pages_migrated, 2);

        // Dirty the two cached pages (set PTE dirty bits as the walker
        // would on write), then make two new pages hot.
        let costs = kernel.costs.clone();
        {
            let proc = kernel.process_mut(pid).unwrap();
            for i in 0..2u64 {
                proc.aspace
                    .update_leaf(&mut mem, &costs, va + i * PAGE_SIZE as u64, |p| {
                        p.with_flags(Pte::DIRTY)
                    })
                    .unwrap();
            }
        }
        hot_pages(&mut mem, &mut kernel, pid, 2, 10);
        let out = engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(out.migrated, 2);
        assert_eq!(out.copybacks, 2, "dirty occupants must be copied back");
        // The evicted pages' PTEs point at NVM again.
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert!(kernel.pools.nvm.inner().contains(pte.pfn()));
        assert!(engine.stats().selection_cycles > Cycles::ZERO);
        assert!(engine.stats().copy_cycles > engine.stats().selection_cycles);
    }

    #[test]
    fn clean_occupants_reused_without_copyback() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(2, 5);
        hot_pages(&mut mem, &mut kernel, pid, 2, 10);
        engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        // Do not dirty the cached pages; hot two more.
        hot_pages(&mut mem, &mut kernel, pid, 2, 10);
        let out = engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(out.migrated, 2);
        assert_eq!(out.copybacks, 0);
        assert_eq!(engine.stats().clean_reuses, 2);
    }

    #[test]
    fn tlb_counts_spill_to_ptes() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(4, 100);
        let va = hot_pages(&mut mem, &mut kernel, pid, 1, 0);
        let pfn = kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        let mut entry = TlbEntry::new(va.page_number(), pfn, true, MemKind::Nvm);
        entry.access_count = 7;
        tlb.install(entry);
        engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        assert_eq!(engine.stats().count_writebacks, 1);
        // Count was spilled then reset by the interval end; the TLB flushed.
        assert_eq!(tlb.occupancy(), 0);
        let pte = kernel.translate(&mut mem, pid, va).unwrap().unwrap();
        assert_eq!(pte.access_count(), 0);
    }

    #[test]
    fn migration_moves_page_contents() {
        let (mut mem, mut kernel, mut engine, mut tlb, pid) = setup(4, 5);
        let va = hot_pages(&mut mem, &mut kernel, pid, 1, 10);
        let nvm_pfn = kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        mem.write_bytes(nvm_pfn.base() + 100, b"hot data!");
        engine.migrate(&mut mem, &mut kernel, &mut tlb, pid).unwrap();
        let dram_pfn = kernel.translate(&mut mem, pid, va).unwrap().unwrap().pfn();
        let mut buf = [0u8; 9];
        mem.read_bytes(dram_pfn.base() + 100, &mut buf);
        assert_eq!(&buf, b"hot data!");
    }
}
