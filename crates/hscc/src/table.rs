//! The NVM↔DRAM lookup table (the paper's alternative to 96-bit PTEs).
//!
//! The forward table is indexed by NVM frame offset and holds the DRAM
//! frame caching that page (or 0); the reverse table is indexed by DRAM
//! pool slot and holds `(nvm_pfn, vpn)` so recycling a slot can restore the
//! original mapping. Both live in DRAM frames allocated at initialisation,
//! and every lookup touches the backing line, so table traffic is charged
//! like any other memory traffic.

use kindle_os::FramePools;
use kindle_types::{MemKind, Pfn, PhysAddr, PhysMem, Result, Vpn, PAGE_SIZE};

/// The lookup table pair. See the module docs.
#[derive(Clone, Debug)]
pub struct MappingTable {
    fwd_base: PhysAddr,
    nvm_start: Pfn,
    nvm_frames: u64,
    rev_base: PhysAddr,
    pool_slots: u64,
    /// Frames backing the tables (owned; freed on drop by the kernel's
    /// teardown path, not tracked further here).
    frames: Vec<Pfn>,
}

impl MappingTable {
    /// Allocates backing DRAM frames for a table covering `nvm_frames`
    /// frames starting at `nvm_start`, plus `pool_slots` reverse entries.
    ///
    /// # Errors
    ///
    /// Propagates DRAM pool exhaustion.
    pub fn new(
        mem: &mut dyn PhysMem,
        pools: &mut FramePools,
        nvm_start: Pfn,
        nvm_frames: u64,
        pool_slots: u64,
    ) -> Result<Self> {
        let fwd_bytes = nvm_frames * 8;
        let rev_bytes = pool_slots * 16;
        let total_frames = (fwd_bytes + rev_bytes).div_ceil(PAGE_SIZE as u64);
        let mut frames = Vec::with_capacity(total_frames as usize);
        for _ in 0..total_frames {
            frames.push(pools.alloc(mem, MemKind::Dram)?);
        }
        // The allocator hands out contiguous frames on a fresh pool; assert
        // contiguity so flat indexing is valid.
        for w in frames.windows(2) {
            assert_eq!(w[1], w[0] + 1, "mapping table frames must be contiguous");
        }
        let fwd_base = frames[0].base();
        let rev_base = fwd_base + fwd_bytes;
        Ok(MappingTable { fwd_base, nvm_start, nvm_frames, rev_base, pool_slots, frames })
    }

    /// Frames backing the table.
    pub fn backing_frames(&self) -> &[Pfn] {
        &self.frames
    }

    fn fwd_pa(&self, nvm: Pfn) -> PhysAddr {
        let off = nvm - self.nvm_start;
        assert!(off < self.nvm_frames, "nvm pfn outside table coverage");
        self.fwd_base + off * 8
    }

    /// DRAM frame caching `nvm`, if any (one charged read).
    pub fn lookup(&self, mem: &mut dyn PhysMem, nvm: Pfn) -> Option<Pfn> {
        match mem.read_u64(self.fwd_pa(nvm)) {
            0 => None,
            v => Some(Pfn::new(v)),
        }
    }

    /// Sets or clears the forward mapping (one charged write).
    pub fn set(&self, mem: &mut dyn PhysMem, nvm: Pfn, dram: Option<Pfn>) {
        mem.write_u64(self.fwd_pa(nvm), dram.map_or(0, Pfn::as_u64));
    }

    fn rev_pa(&self, slot: u64) -> PhysAddr {
        assert!(slot < self.pool_slots, "pool slot outside reverse table");
        self.rev_base + slot * 16
    }

    /// Records which NVM page and virtual page occupy pool `slot`.
    pub fn set_reverse(&self, mem: &mut dyn PhysMem, slot: u64, nvm: Pfn, vpn: Vpn) {
        let pa = self.rev_pa(slot);
        mem.write_u64(pa, nvm.as_u64());
        mem.write_u64(pa + 8, vpn.as_u64());
    }

    /// Reads the reverse entry for pool `slot`.
    pub fn reverse(&self, mem: &mut dyn PhysMem, slot: u64) -> (Pfn, Vpn) {
        let pa = self.rev_pa(slot);
        (Pfn::new(mem.read_u64(pa)), Vpn::new(mem.read_u64(pa + 8)))
    }

    /// Clears the reverse entry.
    pub fn clear_reverse(&self, mem: &mut dyn PhysMem, slot: u64) {
        let pa = self.rev_pa(slot);
        mem.write_u64(pa, 0);
        mem.write_u64(pa + 8, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_os::{FrameAllocator, PersistentFrameAllocator, Region};
    use kindle_types::physmem::FlatMem;

    fn setup() -> (FlatMem, FramePools, MappingTable) {
        let mut mem = FlatMem::new(32 << 20);
        let mut pools = FramePools {
            dram: FrameAllocator::new("dram", Pfn::new(16), 2048),
            nvm: PersistentFrameAllocator::new(
                FrameAllocator::new("nvm", Pfn::new(4096), 1024),
                Region { base: PhysAddr::new(0x1000), size: 0x1000 },
            ),
        };
        let table = MappingTable::new(&mut mem, &mut pools, Pfn::new(4096), 1024, 16).unwrap();
        (mem, pools, table)
    }

    #[test]
    fn forward_round_trip() {
        let (mut mem, _pools, table) = setup();
        let nvm = Pfn::new(4100);
        assert_eq!(table.lookup(&mut mem, nvm), None);
        table.set(&mut mem, nvm, Some(Pfn::new(33)));
        assert_eq!(table.lookup(&mut mem, nvm), Some(Pfn::new(33)));
        table.set(&mut mem, nvm, None);
        assert_eq!(table.lookup(&mut mem, nvm), None);
    }

    #[test]
    fn reverse_round_trip() {
        let (mut mem, _pools, table) = setup();
        table.set_reverse(&mut mem, 3, Pfn::new(5000), Vpn::new(0x40aaa));
        assert_eq!(table.reverse(&mut mem, 3), (Pfn::new(5000), Vpn::new(0x40aaa)));
        table.clear_reverse(&mut mem, 3);
        assert_eq!(table.reverse(&mut mem, 3), (Pfn::new(0), Vpn::new(0)));
    }

    #[test]
    fn distinct_entries_do_not_alias() {
        let (mut mem, _pools, table) = setup();
        table.set(&mut mem, Pfn::new(4096), Some(Pfn::new(1)));
        table.set(&mut mem, Pfn::new(4097), Some(Pfn::new(2)));
        assert_eq!(table.lookup(&mut mem, Pfn::new(4096)), Some(Pfn::new(1)));
        assert_eq!(table.lookup(&mut mem, Pfn::new(4097)), Some(Pfn::new(2)));
    }

    #[test]
    #[should_panic(expected = "outside table coverage")]
    fn out_of_range_nvm_rejected() {
        let (mut mem, _pools, table) = setup();
        table.lookup(&mut mem, Pfn::new(99999));
    }
}
