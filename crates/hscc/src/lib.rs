//! Hardware/Software Cooperative Caching (HSCC) prototype — paper §III-C,
//! after Liu et al.
//!
//! HSCC arranges DRAM and NVM in a flat address space and manages a pool of
//! DRAM pages as an OS-controlled cache of hot NVM pages:
//!
//! * the hardware counts per-page accesses that miss in the LLC (counter in
//!   the TLB entry, spilled to the PTE on eviction or once per interval);
//! * every migration interval (31.25 ms ≙ the original paper's 10⁸ cycles)
//!   the OS walks the page table, selects NVM pages whose count exceeds the
//!   *fetch threshold*, and migrates them into the DRAM pool;
//! * migration = **page selection** (grab a free page, else recycle a clean
//!   page, else write back a dirty page first) + **page copy** (flush the
//!   NVM page's cache lines, copy 4 KiB, remap the PTE, shoot down the TLB);
//! * all counts are reset and TLB entries invalidated at the end of the
//!   interval so the next interval sees fresh counts.
//!
//! The original HSCC extended PTEs to 96 bits; like the paper's Kindle
//! prototype we keep 64-bit PTEs and maintain a separate NVM↔DRAM lookup
//! table ([`MappingTable`]) in DRAM instead.

pub mod engine;
pub mod pool;
pub mod table;

pub use engine::{HsccConfig, HsccEngine, HsccStats, MigrationOutcome};
pub use pool::{DramPool, ListKind, PoolSnapshot};
pub use table::MappingTable;
