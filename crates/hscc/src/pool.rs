//! The DRAM page pool: free / clean / dirty lists.

use kindle_types::Pfn;

/// What occupies one pool slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupant {
    /// NVM page whose contents are cached here.
    pub nvm: Pfn,
    /// Virtual page mapped to this slot.
    pub vpn: kindle_types::Vpn,
    /// Owning process.
    pub pid: u32,
}

#[derive(Clone, Debug)]
struct Slot {
    pfn: Pfn,
    occupant: Option<Occupant>,
}

/// Which list a slot was taken from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ListKind {
    /// Never used or released.
    Free,
    /// Occupied, unmodified since copy (reusable without copy-back).
    Clean,
    /// Occupied and modified (requires copy-back to NVM).
    Dirty,
}

/// Counts of the three lists at a point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoolSnapshot {
    /// Slots never used or explicitly released.
    pub free: usize,
    /// Occupied slots whose page was not modified since the copy.
    pub clean: usize,
    /// Occupied slots with modified contents (need copy-back before reuse).
    pub dirty: usize,
}

/// The fixed pool of DRAM cache pages (paper: 512).
///
/// Lists are (re)built once per migration interval by
/// [`DramPool::refresh`], as in the paper; during the interval, selection
/// consumes free pages first, then clean, then dirty.
#[derive(Clone, Debug)]
pub struct DramPool {
    slots: Vec<Slot>,
    free: Vec<usize>,
    clean: Vec<usize>,
    dirty: Vec<usize>,
}

impl DramPool {
    /// Builds the pool over pre-allocated DRAM frames.
    pub fn new(pages: Vec<Pfn>) -> Self {
        let n = pages.len();
        DramPool {
            slots: pages.into_iter().map(|pfn| Slot { pfn, occupant: None }).collect(),
            free: (0..n).rev().collect(),
            clean: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// DRAM frame of `slot`.
    pub fn frame(&self, slot: usize) -> Pfn {
        self.slots[slot].pfn
    }

    /// Occupant of `slot`, if any.
    pub fn occupant(&self, slot: usize) -> Option<Occupant> {
        self.slots[slot].occupant
    }

    /// Slot caching the DRAM frame `pfn`, if it belongs to the pool.
    pub fn slot_of_frame(&self, pfn: Pfn) -> Option<usize> {
        self.slots.iter().position(|s| s.pfn == pfn)
    }

    /// Current list sizes.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot { free: self.free.len(), clean: self.clean.len(), dirty: self.dirty.len() }
    }

    /// Rebuilds the lists at the start of a migration interval.
    /// `is_dirty(slot, occupant)` classifies each occupied slot.
    pub fn refresh(&mut self, mut is_dirty: impl FnMut(usize, &Occupant) -> bool) {
        self.free.clear();
        self.clean.clear();
        self.dirty.clear();
        for i in (0..self.slots.len()).rev() {
            match &self.slots[i].occupant {
                None => self.free.push(i),
                Some(occ) => {
                    if is_dirty(i, occ) {
                        self.dirty.push(i);
                    } else {
                        self.clean.push(i);
                    }
                }
            }
        }
    }

    /// Takes the next slot for a migration, in free → clean → dirty order.
    /// Returns the slot index, its previous occupant (which the caller must
    /// unmap, and copy back if dirty) and which list it came from.
    pub fn take(&mut self) -> Option<(usize, Option<Occupant>, ListKind)> {
        if let Some(i) = self.free.pop() {
            return Some((i, self.slots[i].occupant.take(), ListKind::Free));
        }
        if let Some(i) = self.clean.pop() {
            return Some((i, self.slots[i].occupant.take(), ListKind::Clean));
        }
        if let Some(i) = self.dirty.pop() {
            return Some((i, self.slots[i].occupant.take(), ListKind::Dirty));
        }
        None
    }

    /// True if only dirty slots remain for [`DramPool::take`].
    pub fn only_dirty_left(&self) -> bool {
        self.free.is_empty() && self.clean.is_empty() && !self.dirty.is_empty()
    }

    /// Installs a new occupant into `slot`.
    pub fn occupy(&mut self, slot: usize, occ: Occupant) {
        self.slots[slot].occupant = Some(occ);
    }

    /// Releases `slot` (e.g. after its page was unmapped by the
    /// application). The slot joins the free list at the next
    /// [`DramPool::refresh`], avoiding duplicate entries mid-interval.
    pub fn release(&mut self, slot: usize) {
        self.slots[slot].occupant = None;
    }

    /// Iterates `(slot, occupant)` for occupied slots.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, &Occupant)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.occupant.as_ref().map(|o| (i, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::Vpn;

    fn occ(n: u64) -> Occupant {
        Occupant { nvm: Pfn::new(1000 + n), vpn: Vpn::new(0x40000 + n), pid: 1 }
    }

    fn pool(n: usize) -> DramPool {
        DramPool::new((0..n as u64).map(|i| Pfn::new(100 + i)).collect())
    }

    #[test]
    fn take_order_free_clean_dirty() {
        let mut p = pool(3);
        // Occupy slots 0 (clean) and 1 (dirty); slot 2 stays free.
        let (s0, _, _) = p.take().unwrap();
        p.occupy(s0, occ(0));
        let (s1, _, _) = p.take().unwrap();
        p.occupy(s1, occ(1));
        p.refresh(|i, _| i == s1);
        assert_eq!(p.snapshot(), PoolSnapshot { free: 1, clean: 1, dirty: 1 });

        let (a, prev_a, from_a) = p.take().unwrap();
        assert!(prev_a.is_none(), "free slot first");
        assert_eq!(from_a, ListKind::Free);
        let (b, prev_b, from_b) = p.take().unwrap();
        assert_eq!(b, s0, "clean before dirty");
        assert_eq!(from_b, ListKind::Clean);
        assert_eq!(prev_b.unwrap().nvm, Pfn::new(1000));
        assert!(p.only_dirty_left());
        let (c, prev_c, from_c) = p.take().unwrap();
        assert_eq!(c, s1);
        assert_eq!(from_c, ListKind::Dirty);
        assert!(prev_c.is_some());
        assert!(p.take().is_none(), "exhausted within the interval");
        let _ = a;
    }

    #[test]
    fn release_returns_to_free() {
        let mut p = pool(1);
        let (s, _, _) = p.take().unwrap();
        p.occupy(s, occ(9));
        p.refresh(|_, _| false);
        assert_eq!(p.snapshot().clean, 1);
        p.release(s);
        assert_eq!(p.snapshot().free, 0, "snapshot lists rebuilt on refresh only");
        p.refresh(|_, _| false);
        assert_eq!(p.snapshot().free, 1);
        assert!(p.occupant(s).is_none());
    }

    #[test]
    fn slot_of_frame_finds_pool_members() {
        let p = pool(4);
        assert_eq!(p.slot_of_frame(Pfn::new(102)), Some(2));
        assert_eq!(p.slot_of_frame(Pfn::new(999)), None);
    }

    #[test]
    fn occupied_iterates_in_use_slots() {
        let mut p = pool(3);
        let (s, _, _) = p.take().unwrap();
        p.occupy(s, occ(5));
        let v: Vec<_> = p.occupied().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.nvm, Pfn::new(1005));
    }
}
