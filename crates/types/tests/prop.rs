//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the shared vocabulary types.

use proptest::prelude::*;

use kindle_types::pte::pte_addr;
use kindle_types::{physmem::touched_lines, Cycles, Pfn, PhysAddr, Pte, VirtAddr};

proptest! {
    #[test]
    fn page_decomposition_reconstructs(addr in 0u64..(1 << 48)) {
        let va = VirtAddr::new(addr);
        prop_assert_eq!(
            va.page_base().as_u64() + va.page_offset(),
            addr,
            "base + offset must equal the address"
        );
        prop_assert_eq!(va.page_number().base(), va.page_base());
    }

    #[test]
    fn line_decomposition_reconstructs(addr in 0u64..(1 << 48)) {
        let pa = PhysAddr::new(addr);
        prop_assert!(pa.line_base() <= pa);
        prop_assert!(pa - pa.line_base() < 64);
        prop_assert_eq!(pa.line_in_page(), ((addr % 4096) / 64) as usize);
    }

    #[test]
    fn pt_indices_reconstruct_vpn(addr in 0u64..(1 << 48)) {
        let va = VirtAddr::new(addr);
        let rebuilt = (((((va.pt_index(4) as u64) << 9 | va.pt_index(3) as u64) << 9)
            | va.pt_index(2) as u64) << 9)
            | va.pt_index(1) as u64;
        prop_assert_eq!(rebuilt, va.page_number().as_u64());
    }

    #[test]
    fn cycles_nanos_round_trip(ns in 0u64..(1 << 40)) {
        prop_assert_eq!(Cycles::from_nanos(ns).as_nanos(), ns);
    }

    #[test]
    fn pte_fields_are_independent(
        pfn in 0u64..(1 << 40),
        count in 0u64..1024,
        flags in 0u64..4,
    ) {
        let flag_bits = (flags & 1) * Pte::WRITABLE | ((flags >> 1) & 1) * Pte::NVM;
        let pte = Pte::new(Pfn::new(pfn), flag_bits).with_access_count(count);
        prop_assert_eq!(pte.pfn(), Pfn::new(pfn));
        prop_assert_eq!(pte.access_count(), count);
        prop_assert_eq!(pte.is_writable(), flags & 1 == 1);
        prop_assert!(pte.is_present());
        // Changing the count never disturbs the pfn and vice versa.
        let pte2 = pte.with_access_count(1023 - count).with_pfn(Pfn::new(pfn ^ 1));
        prop_assert_eq!(pte2.access_count(), 1023 - count);
        prop_assert_eq!(pte2.pfn(), Pfn::new(pfn ^ 1));
        prop_assert_eq!(pte2.is_writable(), flags & 1 == 1);
    }

    #[test]
    fn touched_lines_matches_naive(start in 0u64..100_000, len in 0usize..4096) {
        let pa = PhysAddr::new(start);
        let naive: std::collections::HashSet<u64> =
            (start..start + len as u64).map(|a| a / 64).collect();
        prop_assert_eq!(touched_lines(pa, len), naive.len());
    }

    #[test]
    fn pte_addr_stays_inside_table(table in 0u64..(1 << 30), addr in 0u64..(1 << 48), level in 1u8..=4) {
        let pa = pte_addr(Pfn::new(table), VirtAddr::new(addr), level);
        let base = Pfn::new(table).base();
        prop_assert!(pa >= base);
        prop_assert!(pa - base < 4096);
        prop_assert_eq!((pa - base) % 8, 0, "entries are 8-byte aligned");
    }
}
