//! Error types shared across the Kindle crates.

use core::fmt;

use crate::{PhysAddr, VirtAddr};

/// Result alias using [`KindleError`].
pub type Result<T> = core::result::Result<T, KindleError>;

/// Errors produced by the Kindle simulation stack.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum KindleError {
    /// A physical pool (DRAM or NVM) has no free frames left.
    OutOfMemory {
        /// Pool that was exhausted.
        pool: &'static str,
    },
    /// A virtual address is not covered by any VMA.
    Unmapped(VirtAddr),
    /// The access violated the VMA protection.
    ProtectionFault(VirtAddr),
    /// A physical address fell outside every configured memory range.
    BadPhysAddr(PhysAddr),
    /// Address-space layout request could not be satisfied.
    NoVirtualSpace {
        /// Requested length in bytes.
        len: u64,
    },
    /// The requested region overlaps an existing VMA and `FIXED` was not set.
    Overlap(VirtAddr),
    /// Invalid argument to a system call or component API.
    InvalidArgument(&'static str),
    /// Referenced process does not exist.
    NoSuchProcess(u32),
    /// A persistent structure failed its integrity check during recovery.
    Corrupted(&'static str),
    /// A reserved persistent region is too small for the requested use.
    RegionFull(&'static str),
    /// The access hit a page whose PTE carries [`crate::Pte::POISONED`]
    /// (uncorrectable media fault under the frame); the machine refuses to
    /// return bytes from it.
    PagePoisoned(VirtAddr),
}

impl fmt::Display for KindleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KindleError::OutOfMemory { pool } => write!(f, "out of {pool} frames"),
            KindleError::Unmapped(va) => write!(f, "virtual address {va} is not mapped"),
            KindleError::ProtectionFault(va) => {
                write!(f, "access to {va} violates page protection")
            }
            KindleError::BadPhysAddr(pa) => {
                write!(f, "physical address {pa} is outside all memory ranges")
            }
            KindleError::NoVirtualSpace { len } => {
                write!(f, "no free virtual region of {len} bytes")
            }
            KindleError::Overlap(va) => {
                write!(f, "mapping at {va} overlaps an existing region")
            }
            KindleError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            KindleError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            KindleError::Corrupted(what) => {
                write!(f, "persistent structure corrupted: {what}")
            }
            KindleError::RegionFull(what) => write!(f, "persistent region full: {what}"),
            KindleError::PagePoisoned(va) => {
                write!(f, "access to {va} hit a poisoned page")
            }
        }
    }
}

impl std::error::Error for KindleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_prose() {
        let e = KindleError::OutOfMemory { pool: "nvm" };
        assert_eq!(e.to_string(), "out of nvm frames");
        let e = KindleError::Unmapped(VirtAddr::new(0x1000));
        assert_eq!(e.to_string(), "virtual address 0x1000 is not mapped");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<KindleError>();
    }
}
