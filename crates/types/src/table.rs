//! Direct-indexed per-line tables for hot-path bookkeeping.
//!
//! Simulated memory state that is logically a map keyed by cache-line
//! index is stored flat here: a lookup is two array indexings instead of
//! an O(log n) pointer-chase, and storage is chunked so a sparse table
//! only allocates near lines actually touched. [`LineTable`] holds one
//! `u64` per line with 0 meaning "never set" (wear counters, packed
//! stuck-cell slots, correction budgets); [`SumTable`] adds an explicit
//! validity bit per entry for values — like FNV checksums — where 0 is a
//! perfectly legal stored value.

/// Cache lines per lazily allocated chunk of a [`LineTable`].
const LINES_PER_CHUNK: usize = 64;

/// A direct-indexed per-line `u64` table, chunked so storage is only
/// allocated near lines actually touched. This replaces per-access
/// `BTreeMap` walks on the media and controller hot paths (every NVM
/// cell write consults wear *and* stuck state) with two array indexings.
#[derive(Clone, Debug, Default)]
pub struct LineTable {
    chunks: Vec<Option<Box<[u64; LINES_PER_CHUNK]>>>,
}

impl LineTable {
    /// The value at line index `idx` (0 where never set).
    pub fn get(&self, idx: usize) -> u64 {
        match self.chunks.get(idx / LINES_PER_CHUNK) {
            Some(Some(chunk)) => chunk[idx % LINES_PER_CHUNK],
            _ => 0,
        }
    }

    /// Sets the value at line index `idx`, allocating its chunk if needed.
    pub fn set(&mut self, idx: usize, v: u64) {
        let c = idx / LINES_PER_CHUNK;
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        let chunk = self.chunks[c].get_or_insert_with(|| Box::new([0; LINES_PER_CHUNK]));
        chunk[idx % LINES_PER_CHUNK] = v;
    }

    /// All `(index, value)` pairs with a non-zero value, in index order.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.chunks.iter().enumerate().flat_map(|(c, chunk)| {
            chunk.iter().flat_map(move |chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &e)| e != 0)
                    .map(move |(i, &e)| (c * LINES_PER_CHUNK + i, e))
            })
        })
    }

    /// Drops every entry, releasing all chunk storage.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

/// One chunk of a [`SumTable`]: 64 values plus a validity bitmask, so
/// presence is tracked separately from the stored value.
#[derive(Clone, Debug)]
struct SumChunk {
    valid: u64,
    vals: [u64; LINES_PER_CHUNK],
}

/// A direct-indexed per-line `u64` table with an explicit validity bit
/// per entry. Unlike [`LineTable`], a stored value of 0 is
/// distinguishable from "never set" — required for checksum storage,
/// where 0 is a legal digest.
#[derive(Clone, Debug, Default)]
pub struct SumTable {
    chunks: Vec<Option<Box<SumChunk>>>,
}

impl SumTable {
    /// The value at index `idx`, or `None` where never set.
    pub fn get(&self, idx: usize) -> Option<u64> {
        match self.chunks.get(idx / LINES_PER_CHUNK) {
            Some(Some(chunk)) if chunk.valid >> (idx % LINES_PER_CHUNK) & 1 == 1 => {
                Some(chunk.vals[idx % LINES_PER_CHUNK])
            }
            _ => None,
        }
    }

    /// Whether index `idx` holds a value.
    pub fn contains(&self, idx: usize) -> bool {
        self.get(idx).is_some()
    }

    /// Sets the value at index `idx`, allocating its chunk if needed.
    pub fn set(&mut self, idx: usize, v: u64) {
        let c = idx / LINES_PER_CHUNK;
        if c >= self.chunks.len() {
            self.chunks.resize_with(c + 1, || None);
        }
        let chunk = self.chunks[c]
            .get_or_insert_with(|| Box::new(SumChunk { valid: 0, vals: [0; LINES_PER_CHUNK] }));
        chunk.valid |= 1 << (idx % LINES_PER_CHUNK);
        chunk.vals[idx % LINES_PER_CHUNK] = v;
    }

    /// Drops every entry, releasing all chunk storage.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_tables_match_map_semantics() {
        let mut t = LineTable::default();
        assert_eq!(t.get(0), 0);
        assert_eq!(t.get(1_000_000), 0, "reads never allocate");
        t.set(5, 7);
        t.set(200, 9);
        t.set(5, 8); // overwrite
        assert_eq!(t.get(5), 8);
        assert_eq!(t.get(200), 9);
        assert_eq!(t.get(6), 0);
        assert_eq!(t.iter_set().collect::<Vec<_>>(), vec![(5, 8), (200, 9)]);
        t.clear();
        assert_eq!(t.get(5), 0);
    }

    #[test]
    fn sum_tables_distinguish_zero_from_absent() {
        let mut t = SumTable::default();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(1_000_000), None, "reads never allocate");
        assert!(!t.contains(7));
        t.set(7, 0); // zero is a legal stored value
        assert!(t.contains(7));
        assert_eq!(t.get(7), Some(0));
        t.set(7, 42); // overwrite
        assert_eq!(t.get(7), Some(42));
        t.set(200, u64::MAX);
        assert_eq!(t.get(200), Some(u64::MAX));
        assert_eq!(t.get(201), None, "neighbours in the same chunk stay absent");
        t.clear();
        assert_eq!(t.get(7), None);
    }
}
