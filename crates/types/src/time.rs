//! Simulated time.
//!
//! The whole machine runs off one monotonically increasing cycle counter.
//! The simulated core is clocked at [`CPU_FREQ_GHZ`] (3 GHz, matching the
//! paper's gem5 configuration), so conversions between wall-clock units and
//! cycles are exact integer multiplications.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Simulated core frequency in GHz (cycles per nanosecond).
pub const CPU_FREQ_GHZ: u64 = 3;

/// A duration or instant measured in CPU cycles at [`CPU_FREQ_GHZ`].
///
/// # Examples
///
/// ```
/// use kindle_types::Cycles;
///
/// let lat = Cycles::from_nanos(150);
/// assert_eq!(lat.as_u64(), 450);
/// assert_eq!(lat.as_nanos(), 150);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Converts nanoseconds to cycles.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Cycles(ns * CPU_FREQ_GHZ)
    }

    /// Converts microseconds to cycles.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self::from_nanos(us * 1_000)
    }

    /// Converts milliseconds to cycles.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self::from_nanos(ms * 1_000_000)
    }

    /// Converts seconds to cycles.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self::from_nanos(s * 1_000_000_000)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Cycle count rounded down to whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 / CPU_FREQ_GHZ
    }

    /// Cycle count as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / (CPU_FREQ_GHZ as f64 * 1_000.0)
    }

    /// Cycle count as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / (CPU_FREQ_GHZ as f64 * 1_000_000.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycles({})", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= CPU_FREQ_GHZ * 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}cy", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Cycles::from_millis(10).as_nanos(), 10_000_000);
        assert_eq!(Cycles::from_secs(1), Cycles::from_millis(1000));
        assert_eq!(Cycles::from_micros(5), Cycles::from_nanos(5000));
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(4);
        assert_eq!((a + b).as_u64(), 14);
        assert_eq!((a - b).as_u64(), 6);
        assert_eq!((a * 3).as_u64(), 30);
        assert_eq!((a / 2).as_u64(), 5);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(vec![a, b].into_iter().sum::<Cycles>().as_u64(), 14);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Cycles::new(7)), "7cy");
        assert_eq!(format!("{}", Cycles::from_millis(2)), "2.000ms");
    }
}
