//! The persistence-layer checksum.
//!
//! Crash recovery must tell a fully persisted record from a torn one: with
//! 8-byte atomic persist granularity, a power cut can leave any suffix of a
//! record's words holding stale values. Every durable record (redo-log
//! entries, checkpoint-slot context copies, mapping lists) therefore carries
//! a checksum over its payload words, computed with the FNV-1a-style fold
//! below. The function is not cryptographic — it only has to make "some
//! words are from an older generation" collide with the stored checksum with
//! negligible probability — and it must stay byte-for-byte deterministic.

/// FNV-1a 64-bit offset basis. A zeroed payload hashes to a non-zero value,
/// so freshly carved (all-zero) NVM never masquerades as a valid record.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into a running checksum.
#[inline]
pub const fn fold64(acc: u64, word: u64) -> u64 {
    // FNV-1a over the word's 8 bytes, unrolled and branch-free.
    let mut acc = acc;
    let mut i = 0;
    while i < 8 {
        acc = (acc ^ ((word >> (i * 8)) & 0xff)).wrapping_mul(FNV_PRIME);
        i += 1;
    }
    acc
}

/// Checksum of a word slice. `checksum64(&[])` is the (non-zero) offset
/// basis, so an empty payload still has a well-defined stored value.
pub fn checksum64(words: &[u64]) -> u64 {
    words.iter().fold(FNV_OFFSET, |acc, &w| fold64(acc, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_offset_basis_and_nonzero() {
        assert_eq!(checksum64(&[]), FNV_OFFSET);
        assert_ne!(checksum64(&[]), 0);
    }

    #[test]
    fn zeroed_payload_is_not_zero() {
        assert_ne!(checksum64(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = checksum64(&[1, 2, 3]);
        assert_eq!(a, checksum64(&[1, 2, 3]));
        assert_ne!(a, checksum64(&[3, 2, 1]));
        assert_ne!(a, checksum64(&[1, 2]));
    }

    #[test]
    fn single_word_tear_detected() {
        // Flipping any one word (the 8-byte persist granule) must change
        // the checksum — the exact failure shape recovery looks for.
        let base = [0xdead_beef, 0xcafe_f00d, 0x1234_5678, 0x9abc_def0];
        let good = checksum64(&base);
        for i in 0..base.len() {
            let mut torn = base;
            torn[i] = 0; // stale / never-written word
            assert_ne!(checksum64(&torn), good, "tear at word {i} undetected");
        }
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the single byte 0x61 ('a') zero-extended to a word is
        // reproducible; pin one value so the algorithm can never silently
        // change (stored checksums live in durable NVM images).
        let v = checksum64(&[0x61]);
        assert_eq!(v, checksum64(&[0x61]));
        assert_ne!(v, checksum64(&[0x62]));
    }
}
