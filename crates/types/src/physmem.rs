//! The [`PhysMem`] interface between OS-level code and the simulated machine.
//!
//! Kernel code (frame allocators, page tables, checkpoint engines, migration
//! engines) never touches host memory directly. It reads and writes simulated
//! physical memory through this trait, and every call *charges simulated
//! time*: the implementation routes the access through the simulated cache
//! hierarchy and memory controllers, so a page table hosted in NVM really
//! pays NVM latency — exactly the effect the paper measures.

use crate::sanitize::{self, Event};
use crate::{AccessKind, Cycles, PhysAddr, CACHE_LINE, LINES_PER_PAGE, PAGE_SIZE};

/// Access to simulated physical memory with time accounting.
///
/// Implementations must guarantee:
///
/// * data written with [`write_u64`](PhysMem::write_u64)/[`write_bytes`](PhysMem::write_bytes)
///   is readable back until overwritten;
/// * NVM contents become durable (survive [`crash`](PhysMem::crash)-like
///   events) only once the containing cache line has been written back, either
///   by eviction or an explicit [`clwb`](PhysMem::clwb);
/// * every method advances the simulated clock by the modelled latency.
pub trait PhysMem {
    /// Charges the timing of one cache-line access at `pa` without moving
    /// data, returning the latency paid. Used for bulk trace replay where
    /// only timing matters.
    fn touch(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles;

    /// Reads a little-endian `u64`, charging one read access.
    fn read_u64(&mut self, pa: PhysAddr) -> u64;

    /// Writes a little-endian `u64`, charging one write access.
    fn write_u64(&mut self, pa: PhysAddr, value: u64);

    /// Reads `buf.len()` bytes starting at `pa`, charging one read access per
    /// touched cache line.
    fn read_bytes(&mut self, pa: PhysAddr, buf: &mut [u8]);

    /// Writes `data` starting at `pa`, charging one write access per touched
    /// cache line.
    fn write_bytes(&mut self, pa: PhysAddr, data: &[u8]);

    /// Writes back (without invalidating) the cache line containing `pa`,
    /// making its contents durable if the line lives in NVM. Models `clwb`.
    fn clwb(&mut self, pa: PhysAddr);

    /// Store fence: orders preceding write-backs. Charges a small fixed cost.
    fn sfence(&mut self);

    /// Durability barrier: when this returns, every previously accepted NVM
    /// write-back is on media — the device write buffer has fully drained.
    /// A plain `sfence` only orders write-backs into the buffer; on a
    /// non-ADR platform the buffer contents are still lost on power cut.
    /// The default implementation is `sfence` (suits memories with no
    /// buffer, like [`FlatMem`]); buffered implementations must override it
    /// and charge the drain latency.
    fn persist_barrier(&mut self) {
        self.sfence();
    }

    /// Charges `cost` of pure compute time (instructions that perform no
    /// memory traffic).
    fn advance(&mut self, cost: Cycles);

    /// Current simulated time.
    fn now(&self) -> Cycles;

    /// Copies one 4 KiB page from `src` to `dst` line by line, charging a
    /// read and a write per line. Both addresses must be page-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not page aligned.
    fn copy_page(&mut self, src: PhysAddr, dst: PhysAddr) {
        assert!(src.is_page_aligned(), "copy_page src must be page aligned");
        assert!(dst.is_page_aligned(), "copy_page dst must be page aligned");
        let mut buf = [0u8; CACHE_LINE];
        for line in 0..LINES_PER_PAGE {
            let off = (line * CACHE_LINE) as u64;
            self.read_bytes(src + off, &mut buf);
            self.write_bytes(dst + off, &buf);
        }
    }

    /// Zeroes one 4 KiB page, charging a write per line.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not page aligned.
    fn zero_page(&mut self, pa: PhysAddr) {
        assert!(pa.is_page_aligned(), "zero_page target must be page aligned");
        let zeros = [0u8; CACHE_LINE];
        for line in 0..LINES_PER_PAGE {
            self.write_bytes(pa + (line * CACHE_LINE) as u64, &zeros);
        }
    }

    /// Flushes every line of a page with `clwb`. Used by persistence code to
    /// make a whole page durable.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not page aligned.
    fn clwb_page(&mut self, pa: PhysAddr) {
        assert!(pa.is_page_aligned(), "clwb_page target must be page aligned");
        for line in 0..LINES_PER_PAGE {
            self.clwb(pa + (line * CACHE_LINE) as u64);
        }
        debug_assert_eq!(PAGE_SIZE, LINES_PER_PAGE * CACHE_LINE);
    }
}

/// A trivial [`PhysMem`] backed by a host `Vec<u8>` with flat fixed latencies.
///
/// Useful for unit-testing OS-level code without the full machine; it is also
/// the reference implementation for the trait's data semantics (everything is
/// instantly durable, so crash semantics cannot be tested against it).
#[derive(Debug)]
pub struct FlatMem {
    data: Vec<u8>,
    now: Cycles,
    read_latency: Cycles,
    write_latency: Cycles,
}

impl FlatMem {
    /// Creates a flat memory of `size` bytes with 1-cycle accesses.
    pub fn new(size: usize) -> Self {
        FlatMem {
            data: vec![0; size],
            now: Cycles::ZERO,
            read_latency: Cycles::new(1),
            write_latency: Cycles::new(1),
        }
    }

    /// Sets distinct read/write latencies (in cycles).
    pub fn with_latencies(mut self, read: u64, write: u64) -> Self {
        self.read_latency = Cycles::new(read);
        self.write_latency = Cycles::new(write);
        self
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn lat(&self, kind: AccessKind) -> Cycles {
        match kind {
            AccessKind::Read => self.read_latency,
            AccessKind::Write => self.write_latency,
        }
    }
}

impl PhysMem for FlatMem {
    fn touch(&mut self, _pa: PhysAddr, kind: AccessKind) -> Cycles {
        let lat = self.lat(kind);
        self.now += lat;
        lat
    }

    fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        self.touch(pa, AccessKind::Read);
        let i = pa.as_usize();
        u64::from_le_bytes(self.data[i..i + 8].try_into().expect("8-byte slice"))
    }

    fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        self.touch(pa, AccessKind::Write);
        sanitize::emit(|| Event::NvmWrite {
            line: pa.line_base().as_u64(),
            cycle: self.now.as_u64(),
        });
        let i = pa.as_usize();
        self.data[i..i + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn read_bytes(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        let lines = touched_lines(pa, buf.len());
        for _ in 0..lines {
            self.touch(pa, AccessKind::Read);
        }
        let i = pa.as_usize();
        buf.copy_from_slice(&self.data[i..i + buf.len()]);
    }

    fn write_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        let lines = touched_lines(pa, data.len());
        for _ in 0..lines {
            self.touch(pa, AccessKind::Write);
        }
        if sanitize::installed() {
            let first = pa.line_base().as_u64();
            for n in 0..lines as u64 {
                sanitize::emit(|| Event::NvmWrite {
                    line: first + n * CACHE_LINE as u64,
                    cycle: self.now.as_u64(),
                });
            }
        }
        let i = pa.as_usize();
        self.data[i..i + data.len()].copy_from_slice(data);
    }

    fn clwb(&mut self, pa: PhysAddr) {
        self.now += Cycles::new(1);
        sanitize::emit(|| Event::NvmCommit { line: pa.line_base().as_u64() });
    }

    fn sfence(&mut self) {
        self.now += Cycles::new(1);
    }

    fn advance(&mut self, cost: Cycles) {
        self.now += cost;
    }

    fn now(&self) -> Cycles {
        self.now
    }
}

/// Number of distinct cache lines covered by `[pa, pa + len)`.
pub fn touched_lines(pa: PhysAddr, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = pa.as_u64() / CACHE_LINE as u64;
    let last = (pa.as_u64() + len as u64 - 1) / CACHE_LINE as u64;
    (last - first + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_mem_round_trips_u64() {
        let mut m = FlatMem::new(4096);
        m.write_u64(PhysAddr::new(16), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr::new(16)), 0xdead_beef_cafe_f00d);
        assert!(m.now() > Cycles::ZERO);
    }

    #[test]
    fn flat_mem_round_trips_bytes() {
        let mut m = FlatMem::new(4096);
        m.write_bytes(PhysAddr::new(100), b"hello kindle");
        let mut buf = [0u8; 12];
        m.read_bytes(PhysAddr::new(100), &mut buf);
        assert_eq!(&buf, b"hello kindle");
    }

    #[test]
    fn touched_lines_counts_straddles() {
        assert_eq!(touched_lines(PhysAddr::new(0), 0), 0);
        assert_eq!(touched_lines(PhysAddr::new(0), 1), 1);
        assert_eq!(touched_lines(PhysAddr::new(0), 64), 1);
        assert_eq!(touched_lines(PhysAddr::new(0), 65), 2);
        assert_eq!(touched_lines(PhysAddr::new(60), 8), 2);
        assert_eq!(touched_lines(PhysAddr::new(64), 64), 1);
    }

    #[test]
    fn copy_page_moves_data_and_charges_time() {
        let mut m = FlatMem::new(3 * PAGE_SIZE).with_latencies(2, 3);
        m.write_bytes(PhysAddr::new(0), &[0xab; 64]);
        let before = m.now();
        m.copy_page(PhysAddr::new(0), PhysAddr::new(PAGE_SIZE as u64));
        let elapsed = m.now() - before;
        // 64 reads * 2cy + 64 writes * 3cy.
        assert_eq!(elapsed.as_u64(), 64 * 2 + 64 * 3);
        let mut buf = [0u8; 64];
        m.read_bytes(PhysAddr::new(PAGE_SIZE as u64), &mut buf);
        assert_eq!(buf, [0xab; 64]);
    }

    #[test]
    fn zero_page_clears() {
        let mut m = FlatMem::new(2 * PAGE_SIZE);
        m.write_bytes(PhysAddr::new(128), &[0xff; 64]);
        m.zero_page(PhysAddr::new(0));
        let mut buf = [0u8; 64];
        m.read_bytes(PhysAddr::new(128), &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn copy_page_rejects_misaligned() {
        let mut m = FlatMem::new(2 * PAGE_SIZE);
        m.copy_page(PhysAddr::new(1), PhysAddr::new(PAGE_SIZE as u64));
    }
}
