//! Shared vocabulary types for the Kindle hybrid-memory framework.
//!
//! Every other Kindle crate builds on the newtypes defined here: virtual and
//! physical addresses, page-frame numbers, simulated time, memory kinds
//! (DRAM vs. NVM), access kinds, mapping flags, and the [`PhysMem`] trait
//! through which OS-level code reads and writes simulated physical memory
//! while being charged simulated time.
//!
//! # Examples
//!
//! ```
//! use kindle_types::{VirtAddr, PAGE_SIZE};
//!
//! let va = VirtAddr::new(0x4000_1234);
//! assert_eq!(va.page_offset(), 0x234);
//! assert_eq!(va.page_base().as_u64() % PAGE_SIZE as u64, 0);
//! ```

pub mod addr;
pub mod checksum;
pub mod error;
pub mod flags;
pub mod physmem;
pub mod pte;
pub mod rng;
pub mod sanitize;
pub mod table;
pub mod time;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn};
pub use checksum::checksum64;
pub use error::{KindleError, Result};
pub use flags::{AccessKind, MapFlags, MemKind, Prot};
pub use physmem::PhysMem;
pub use pte::Pte;
pub use rng::Rng64;
pub use table::{LineTable, SumTable};
pub use time::{Cycles, CPU_FREQ_GHZ};

/// Size of one page in bytes (4 KiB, matching x86-64 base pages).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of one cache line in bytes.
pub const CACHE_LINE: usize = 64;
/// log2 of [`CACHE_LINE`].
pub const CACHE_LINE_SHIFT: u32 = 6;
/// Cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / CACHE_LINE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(1usize << PAGE_SHIFT, PAGE_SIZE);
        assert_eq!(1usize << CACHE_LINE_SHIFT, CACHE_LINE);
        assert_eq!(LINES_PER_PAGE, 64);
    }
}
