//! x86-64-style page-table entry format, extended for Kindle.
//!
//! The PTE layout is the contract between the simulated hardware (TLB and
//! page-table walker in `kindle-tlb`) and the OS (`kindle-os`):
//!
//! ```text
//! bit  0      present
//! bit  1      writable
//! bit  2      user
//! bit  5      accessed
//! bit  6      dirty
//! bit  9      software: frame is NVM-backed (Kindle's MAP_NVM tag)
//! bits 12..52 physical frame number
//! bits 52..62 software: HSCC per-page access count (10 bits, saturating)
//! ```
//!
//! HSCC in the original paper widened PTEs to 96 bits to hold both DRAM and
//! NVM frame numbers; Kindle (and this reproduction) instead keeps 64-bit
//! PTEs and a separate lookup table, so the count fits in the ignored bits.

use core::fmt;

use crate::{MemKind, Pfn, PhysAddr, VirtAddr};

/// Physical address of the PTE consulted at `level` (4 = root .. 1 = leaf)
/// within the table frame `table` for virtual address `va`.
#[inline]
pub fn pte_addr(table: Pfn, va: VirtAddr, level: u8) -> PhysAddr {
    table.base() + (va.pt_index(level) * 8) as u64
}

/// A 64-bit page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pte(u64);

impl Pte {
    /// Present bit.
    pub const PRESENT: u64 = 1 << 0;
    /// Writable bit.
    pub const WRITABLE: u64 = 1 << 1;
    /// User-accessible bit.
    pub const USER: u64 = 1 << 2;
    /// Accessed bit (set by the walker).
    pub const ACCESSED: u64 = 1 << 5;
    /// Dirty bit (set by the walker on write).
    pub const DIRTY: u64 = 1 << 6;
    /// Software bit: the mapped frame lives in NVM.
    pub const NVM: u64 = 1 << 9;
    /// Software bit: the mapped frame failed patrol verification and was
    /// never healed — any access must fault instead of returning bytes.
    pub const POISONED: u64 = 1 << 10;

    const PFN_SHIFT: u32 = 12;
    const PFN_MASK: u64 = ((1u64 << 40) - 1) << Self::PFN_SHIFT;
    const COUNT_SHIFT: u32 = 52;
    const COUNT_MASK: u64 = ((1u64 << 10) - 1) << Self::COUNT_SHIFT;
    /// Maximum value of the saturating access counter.
    pub const COUNT_MAX: u64 = (1 << 10) - 1;

    /// Bits the hardware maintains behind the OS's back: access/dirty
    /// tracking plus the HSCC count field. A stored entry legitimately
    /// diverges from the kernel's intended value in exactly these bits,
    /// so integrity checks (the scrub daemon's shadow verify) must mask
    /// them out.
    pub const HW_MANAGED: u64 = Self::ACCESSED | Self::DIRTY | Self::COUNT_MASK;

    /// The all-zero (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds a present leaf/table entry for `pfn` with `flag_bits` OR-ed in.
    pub fn new(pfn: Pfn, flag_bits: u64) -> Pte {
        Pte(Self::PRESENT | (pfn.as_u64() << Self::PFN_SHIFT) & Self::PFN_MASK | flag_bits)
    }

    /// Reconstructs an entry from its raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Pte {
        Pte(bits)
    }

    /// Raw bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// True if the present bit is set.
    #[inline]
    pub const fn is_present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// True if the writable bit is set.
    #[inline]
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    /// True if the dirty bit is set.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// True if the accessed bit is set.
    #[inline]
    pub const fn is_accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    /// True if the poison bit is set.
    #[inline]
    pub const fn is_poisoned(self) -> bool {
        self.0 & Self::POISONED != 0
    }

    /// Physical frame number stored in the entry.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::new((self.0 & Self::PFN_MASK) >> Self::PFN_SHIFT)
    }

    /// Memory kind recorded in the software NVM bit.
    #[inline]
    pub const fn mem_kind(self) -> MemKind {
        if self.0 & Self::NVM != 0 {
            MemKind::Nvm
        } else {
            MemKind::Dram
        }
    }

    /// Returns a copy with the given flag bits set.
    #[inline]
    pub const fn with_flags(self, flag_bits: u64) -> Pte {
        Pte(self.0 | flag_bits)
    }

    /// Returns a copy with the given flag bits cleared.
    #[inline]
    pub const fn without_flags(self, flag_bits: u64) -> Pte {
        Pte(self.0 & !flag_bits)
    }

    /// HSCC access count held in the ignored bits.
    #[inline]
    pub const fn access_count(self) -> u64 {
        (self.0 & Self::COUNT_MASK) >> Self::COUNT_SHIFT
    }

    /// Returns a copy with the access count replaced (saturating at
    /// [`Pte::COUNT_MAX`]).
    #[inline]
    pub fn with_access_count(self, count: u64) -> Pte {
        let c = count.min(Self::COUNT_MAX);
        Pte((self.0 & !Self::COUNT_MASK) | (c << Self::COUNT_SHIFT))
    }

    /// Returns a copy with the PFN replaced, keeping all flags and counters.
    #[inline]
    pub fn with_pfn(self, pfn: Pfn) -> Pte {
        Pte((self.0 & !Self::PFN_MASK) | ((pfn.as_u64() << Self::PFN_SHIFT) & Self::PFN_MASK))
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_present() {
            return write!(f, "Pte(not-present, {:#x})", self.0);
        }
        write!(
            f,
            "Pte(pfn={}, {}{}{}{}, kind={}, count={})",
            self.pfn(),
            if self.is_writable() { "W" } else { "-" },
            if self.0 & Self::USER != 0 { "U" } else { "-" },
            if self.is_accessed() { "A" } else { "-" },
            if self.is_dirty() { "D" } else { "-" },
            self.mem_kind(),
            self.access_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pfn_and_flags() {
        let p = Pte::new(Pfn::new(0x12345), Pte::WRITABLE | Pte::USER | Pte::NVM);
        assert!(p.is_present());
        assert!(p.is_writable());
        assert_eq!(p.pfn(), Pfn::new(0x12345));
        assert_eq!(p.mem_kind(), MemKind::Nvm);
        assert_eq!(Pte::from_bits(p.bits()), p);
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::EMPTY.is_present());
        assert_eq!(Pte::EMPTY.bits(), 0);
    }

    #[test]
    fn access_count_saturates_and_preserves_pfn() {
        let p = Pte::new(Pfn::new(7), Pte::WRITABLE);
        let p2 = p.with_access_count(5000);
        assert_eq!(p2.access_count(), Pte::COUNT_MAX);
        assert_eq!(p2.pfn(), Pfn::new(7));
        assert!(p2.is_writable());
        let p3 = p2.with_access_count(3);
        assert_eq!(p3.access_count(), 3);
    }

    #[test]
    fn with_pfn_keeps_count_and_flags() {
        let p = Pte::new(Pfn::new(1), Pte::NVM).with_access_count(9);
        let q = p.with_pfn(Pfn::new(0x999));
        assert_eq!(q.pfn(), Pfn::new(0x999));
        assert_eq!(q.access_count(), 9);
        assert_eq!(q.mem_kind(), MemKind::Nvm);
    }

    #[test]
    fn poison_bit_round_trips() {
        let p = Pte::new(Pfn::new(3), Pte::WRITABLE | Pte::NVM);
        assert!(!p.is_poisoned());
        let q = p.with_flags(Pte::POISONED);
        assert!(q.is_poisoned());
        assert_eq!(q.pfn(), Pfn::new(3));
        assert!(q.is_writable());
        assert!(!q.without_flags(Pte::POISONED).is_poisoned());
        // Poison must live outside the hardware-managed bits: scrub's
        // shadow verify may not mask it away.
        assert_eq!(Pte::POISONED & Pte::HW_MANAGED, 0);
    }

    #[test]
    fn flag_set_clear() {
        let p = Pte::new(Pfn::new(1), 0);
        let q = p.with_flags(Pte::DIRTY | Pte::ACCESSED);
        assert!(q.is_dirty() && q.is_accessed());
        let r = q.without_flags(Pte::DIRTY);
        assert!(!r.is_dirty() && r.is_accessed());
    }

    #[test]
    fn debug_shows_fields() {
        let p = Pte::new(Pfn::new(2), Pte::WRITABLE);
        let s = format!("{p:?}");
        assert!(s.contains("pfn=0x2"));
        assert!(format!("{:?}", Pte::EMPTY).contains("not-present"));
    }
}
