//! Memory kinds, access kinds, protection bits and mmap flags.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Which memory technology backs a page: volatile DRAM or non-volatile NVM.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemKind {
    /// Volatile DRAM (fast, loses contents on power failure).
    Dram,
    /// Non-volatile memory, modelled as PCM (slower, contents survive crashes).
    Nvm,
}

impl MemKind {
    /// All memory kinds, in dispatch order.
    pub const ALL: [MemKind; 2] = [MemKind::Dram, MemKind::Nvm];

    /// Short lowercase label used in stats output.
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Dram => "dram",
            MemKind::Nvm => "nvm",
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a memory operation reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// Page protection bits requested through `mmap`/`mprotect`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prot(u8);

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot(0);
    /// Readable.
    pub const READ: Prot = Prot(1);
    /// Writable (implies readable in this model).
    pub const WRITE: Prot = Prot(2);
    /// Read + write.
    pub const RW: Prot = Prot(3);

    /// True if the protection includes `other` entirely.
    #[inline]
    pub fn contains(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if an access of `kind` is permitted.
    #[inline]
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.contains(Prot::READ) || self.contains(Prot::WRITE),
            AccessKind::Write => self.contains(Prot::WRITE),
        }
    }
}

impl BitOr for Prot {
    type Output = Prot;
    #[inline]
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

impl BitOrAssign for Prot {
    #[inline]
    fn bitor_assign(&mut self, rhs: Prot) {
        self.0 |= rhs.0;
    }
}

/// Flags accepted by the extended `mmap` system call.
///
/// The flag the paper adds to gemOS is [`MapFlags::NVM`]: it directs the
/// allocation to the NVM physical pool instead of DRAM.
///
/// # Examples
///
/// ```
/// use kindle_types::MapFlags;
///
/// let f = MapFlags::NVM | MapFlags::POPULATE;
/// assert!(f.contains(MapFlags::NVM));
/// assert!(!f.contains(MapFlags::FIXED));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MapFlags(u32);

impl MapFlags {
    /// No special behaviour: anonymous DRAM mapping.
    pub const EMPTY: MapFlags = MapFlags(0);
    /// Allocate physical frames from the NVM pool (the paper's `MAP_NVM`).
    pub const NVM: MapFlags = MapFlags(1);
    /// Map at exactly the requested address.
    pub const FIXED: MapFlags = MapFlags(2);
    /// Eagerly allocate and map all frames instead of faulting on demand.
    pub const POPULATE: MapFlags = MapFlags(4);

    /// True if every flag in `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: MapFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Memory kind implied by the flags.
    #[inline]
    pub fn mem_kind(self) -> MemKind {
        if self.contains(MapFlags::NVM) {
            MemKind::Nvm
        } else {
            MemKind::Dram
        }
    }

    /// Raw bit representation.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs flags from raw bits, ignoring unknown bits.
    #[inline]
    pub const fn from_bits_truncate(bits: u32) -> MapFlags {
        MapFlags(bits & 0b111)
    }
}

impl BitOr for MapFlags {
    type Output = MapFlags;
    #[inline]
    fn bitor(self, rhs: MapFlags) -> MapFlags {
        MapFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for MapFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: MapFlags) {
        self.0 |= rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_allows() {
        assert!(Prot::RW.allows(AccessKind::Write));
        assert!(Prot::READ.allows(AccessKind::Read));
        assert!(!Prot::READ.allows(AccessKind::Write));
        assert!(!Prot::NONE.allows(AccessKind::Read));
        assert!(Prot::WRITE.allows(AccessKind::Read));
    }

    #[test]
    fn map_flags_kind() {
        assert_eq!(MapFlags::EMPTY.mem_kind(), MemKind::Dram);
        assert_eq!(MapFlags::NVM.mem_kind(), MemKind::Nvm);
        assert_eq!((MapFlags::NVM | MapFlags::FIXED).mem_kind(), MemKind::Nvm);
    }

    #[test]
    fn map_flags_bits_round_trip() {
        let f = MapFlags::NVM | MapFlags::POPULATE;
        assert_eq!(MapFlags::from_bits_truncate(f.bits()), f);
        assert_eq!(MapFlags::from_bits_truncate(0xffff_ffff).bits(), 0b111);
    }

    #[test]
    fn display_labels() {
        assert_eq!(MemKind::Dram.to_string(), "dram");
        assert_eq!(MemKind::Nvm.to_string(), "nvm");
        assert_eq!(AccessKind::Read.to_string(), "read");
    }
}
