//! Address newtypes: virtual/physical addresses and page/frame numbers.
//!
//! The newtypes keep virtual and physical address spaces statically distinct
//! so a physical frame number can never be passed where a virtual page number
//! is expected, which matters constantly in page-table and migration code.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use crate::{CACHE_LINE_SHIFT, PAGE_SHIFT, PAGE_SIZE};

macro_rules! addr_common {
    ($name:ident, $num:ident) => {
        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the raw address as `usize`.
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }

            /// Byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE as u64 - 1)
            }

            /// Address of the start of the containing page.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !(PAGE_SIZE as u64 - 1))
            }

            /// Address of the start of the containing cache line.
            #[inline]
            pub const fn line_base(self) -> Self {
                Self(self.0 & !((1u64 << CACHE_LINE_SHIFT) - 1))
            }

            /// Index of the containing cache line within its page (0..64).
            #[inline]
            pub const fn line_in_page(self) -> usize {
                ((self.0 >> CACHE_LINE_SHIFT) & 0x3f) as usize
            }

            /// True if the address is page-aligned.
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// Returns the containing page/frame number.
            #[inline]
            pub const fn page_number(self) -> $num {
                $num(self.0 >> PAGE_SHIFT)
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

macro_rules! num_common {
    ($num:ident, $addr:ident) => {
        impl $num {
            /// Wraps a raw page/frame number.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw number.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the raw number as `usize`.
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }

            /// Base address of this page/frame.
            #[inline]
            pub const fn base(self) -> $addr {
                $addr::new(self.0 << PAGE_SHIFT)
            }
        }

        impl Add<u64> for $num {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl Sub<$num> for $num {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $num) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $num {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($num), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $num {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl From<u64> for $num {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

/// A virtual address in a simulated process address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtAddr(u64);

/// A physical address in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysAddr(u64);

/// A virtual page number (`VirtAddr >> 12`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vpn(u64);

/// A physical frame number (`PhysAddr >> 12`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pfn(u64);

addr_common!(VirtAddr, Vpn);
addr_common!(PhysAddr, Pfn);
num_common!(Vpn, VirtAddr);
num_common!(Pfn, PhysAddr);

impl VirtAddr {
    /// Index into the page-table level `level` (1 = leaf .. 4 = root) that
    /// this address selects on an x86-64 4-level walk.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    #[inline]
    pub fn pt_index(self, level: u8) -> usize {
        assert!((1..=4).contains(&level), "page-table level must be 1..=4");
        ((self.0 >> (PAGE_SHIFT + 9 * (level as u32 - 1))) & 0x1ff) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.page_base().as_u64(), 0x1234_5000);
        assert_eq!(va.page_number().as_u64(), 0x12345);
        assert_eq!(va.page_number().base().as_u64(), 0x1234_5000);
    }

    #[test]
    fn line_math() {
        let pa = PhysAddr::new(0x1000 + 64 * 3 + 17);
        assert_eq!(pa.line_base().as_u64(), 0x1000 + 64 * 3);
        assert_eq!(pa.line_in_page(), 3);
    }

    #[test]
    fn pt_indices_cover_48_bits() {
        // 0xff8 selects index 511 at level 1.
        let va = VirtAddr::new(0x0000_7fff_ffff_f000);
        assert_eq!(va.pt_index(1), 511);
        assert_eq!(va.pt_index(2), 511);
        assert_eq!(va.pt_index(3), 511);
        assert_eq!(va.pt_index(4), 255);
    }

    #[test]
    #[should_panic(expected = "page-table level")]
    fn pt_index_rejects_level_zero() {
        VirtAddr::new(0).pt_index(0);
    }

    #[test]
    fn arithmetic() {
        let a = PhysAddr::new(0x2000);
        assert_eq!((a + 0x10).as_u64(), 0x2010);
        assert_eq!(a + 0x10 - a, 0x10);
        let f = Pfn::new(4);
        assert_eq!((f + 1).as_u64(), 5);
        assert_eq!(f.base().as_u64(), 0x4000);
    }

    #[test]
    fn debug_is_nonempty_and_hex() {
        assert_eq!(format!("{:?}", VirtAddr::new(16)), "VirtAddr(0x10)");
        assert_eq!(format!("{}", Pfn::new(16)), "0x10");
    }
}
