//! The cross-layer dynamic invariant sanitizer.
//!
//! Simulation components (memory controller, frame allocators, page tables,
//! redo log, checkpoint slots) report semantically interesting operations as
//! [`Event`]s through [`emit`]. By default no sanitizer is installed and an
//! emit is a single thread-local check — simulation output is identical with
//! or without the wiring, and no simulated time is ever charged.
//!
//! Tests (or debugging sessions) install a [`Sanitizer`] — typically the
//! PMTest-style [`InvariantChecker`] — which shadows the event stream and
//! records [`Violation`]s:
//!
//! * a checkpoint published while prior NVM stores in its slot are still
//!   undrained (not yet `clwb`-committed);
//! * double free or cross-pool free of a physical frame;
//! * a PTE left pointing at (or installed over) a freed frame;
//! * redo-log records applied out of append order.
//!
//! The sanitizer is thread-local so parallel test threads cannot observe
//! each other's events.
//!
//! # Examples
//!
//! ```
//! use kindle_types::sanitize::{self, Event, InvariantChecker};
//!
//! let checker = InvariantChecker::new();
//! let log = checker.log();
//! let _guard = sanitize::install(Box::new(checker));
//! sanitize::emit(|| Event::FrameAlloc { pool: "nvm", pfn: 7 });
//! sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 7 });
//! sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 7 }); // double free
//! assert_eq!(log.snapshot().len(), 1);
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// One reported operation. Addresses are raw `u64`s so that emitting a
/// event never depends on higher-level crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A store dirtied the NVM cache line at `line` (line-base address).
    NvmWrite {
        /// Line-base physical address.
        line: u64,
        /// Simulated time of the store.
        cycle: u64,
    },
    /// The NVM line at `line` became durable (clwb / eviction write-back).
    NvmCommit {
        /// Line-base physical address.
        line: u64,
    },
    /// A full NVM write-buffer drain barrier completed.
    NvmDrain {
        /// Simulated time of the barrier.
        cycle: u64,
    },
    /// Power failure: volatile contents lost, un-committed NVM reverted.
    Crash,
    /// A checkpoint slot in `[lo, hi)` was published as consistent.
    CheckpointPublish {
        /// Slot base physical address.
        lo: u64,
        /// Slot end physical address (exclusive).
        hi: u64,
        /// Which A/B context copy (0 or 1) became the valid one.
        copy: u64,
        /// Simulated time of the publish.
        cycle: u64,
    },
    /// A physical frame was handed out by the `pool` allocator.
    FrameAlloc {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A physical frame was returned to the `pool` allocator.
    FrameFree {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A physical frame was permanently retired (worn-out media); it will
    /// never be handed out again.
    FrameRetired {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A leaf PTE mapping `vpn → pfn` was installed.
    PteInstall {
        /// Target frame number.
        pfn: u64,
        /// Mapped virtual page number.
        vpn: u64,
    },
    /// The leaf PTE mapping `vpn → pfn` was cleared.
    PteClear {
        /// Previously mapped frame number.
        pfn: u64,
        /// Unmapped virtual page number.
        vpn: u64,
    },
    /// Redo-log record `seq` (0-based slot index) was appended.
    LogAppend {
        /// Append index within the current log generation.
        seq: u64,
    },
    /// Redo-log record `seq` was applied (read back for replay).
    LogApply {
        /// Index of the applied record.
        seq: u64,
    },
    /// The redo log was durably truncated.
    LogTruncate,
}

/// An observer of the simulation event stream.
pub trait Sanitizer {
    /// Called for every emitted event, in program order.
    fn on_event(&mut self, ev: &Event);
}

/// The no-op sanitizer: observes nothing, changes nothing. Installing it is
/// equivalent to installing nothing and exists so equivalence tests can
/// exercise the full dispatch path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopSanitizer;

impl Sanitizer for NopSanitizer {
    #[inline]
    fn on_event(&mut self, _ev: &Event) {}
}

thread_local! {
    static CURRENT: RefCell<Option<Box<dyn Sanitizer>>> = const { RefCell::new(None) };
}

/// Uninstalls the thread's sanitizer when dropped (panic-safe, so seeded
/// defects that also panic cannot leak a checker into the next test).
#[derive(Debug)]
pub struct Installed {
    _priv: (),
}

impl Drop for Installed {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

/// Installs `sanitizer` for the current thread, replacing any previous one.
/// The returned guard uninstalls it on drop.
pub fn install(sanitizer: Box<dyn Sanitizer>) -> Installed {
    CURRENT.with(|c| *c.borrow_mut() = Some(sanitizer));
    Installed { _priv: () }
}

/// True if a sanitizer is installed on this thread.
pub fn installed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Reports an event to the installed sanitizer, if any. The closure is only
/// evaluated when a sanitizer is present, so emission sites stay free when
/// sanitizing is off. Re-entrant emits (from inside a sanitizer) are
/// silently dropped.
#[inline]
pub fn emit(make: impl FnOnce() -> Event) {
    CURRENT.with(|c| {
        if let Ok(mut slot) = c.try_borrow_mut() {
            if let Some(s) = slot.as_mut() {
                let ev = make();
                s.on_event(&ev);
            }
        }
    });
}

/// A confirmed invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A checkpoint was published while an NVM line inside its slot was
    /// written but never committed (missing clwb / drain).
    UndrainedCheckpoint {
        /// The still-dirty line.
        line: u64,
        /// When the line was written.
        written_at: u64,
        /// When the slot was published.
        published_at: u64,
    },
    /// A frame was freed while not allocated (double free, or free of a
    /// never-allocated frame).
    DoubleFree {
        /// Pool that performed the free.
        pool: &'static str,
        /// The frame.
        pfn: u64,
    },
    /// A frame allocated by one pool was freed through another.
    CrossPoolFree {
        /// Pool that allocated the frame.
        alloc_pool: &'static str,
        /// Pool that freed it.
        free_pool: &'static str,
        /// The frame.
        pfn: u64,
    },
    /// A frame was freed while a leaf PTE still mapped it.
    DanglingPte {
        /// The freed frame.
        pfn: u64,
        /// One virtual page still mapping it.
        vpn: u64,
    },
    /// A leaf PTE was installed over a frame already freed.
    MapOfFreeFrame {
        /// The freed frame.
        pfn: u64,
        /// The virtual page mapped onto it.
        vpn: u64,
    },
    /// A redo-log record was applied out of append order.
    LogOutOfOrder {
        /// Expected next apply index.
        expected: u64,
        /// Observed apply index.
        got: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::UndrainedCheckpoint { line, written_at, published_at } => write!(
                f,
                "checkpoint published at cycle {published_at} with undrained NVM line \
                 {line:#x} (written at cycle {written_at})"
            ),
            Violation::DoubleFree { pool, pfn } => {
                write!(f, "double free of frame {pfn:#x} in pool {pool}")
            }
            Violation::CrossPoolFree { alloc_pool, free_pool, pfn } => {
                write!(f, "frame {pfn:#x} allocated from {alloc_pool} freed through {free_pool}")
            }
            Violation::DanglingPte { pfn, vpn } => {
                write!(f, "frame {pfn:#x} freed while still mapped by virtual page {vpn:#x}")
            }
            Violation::MapOfFreeFrame { pfn, vpn } => {
                write!(f, "virtual page {vpn:#x} mapped onto freed frame {pfn:#x}")
            }
            Violation::LogOutOfOrder { expected, got } => {
                write!(f, "redo-log record {got} applied out of order (expected {expected})")
            }
        }
    }
}

/// Shared handle onto a checker's violation list. Clone it before moving
/// the checker into [`install`]; the handle observes violations recorded
/// afterwards.
#[derive(Clone, Debug, Default)]
pub struct ViolationLog(Rc<RefCell<Vec<Violation>>>);

impl ViolationLog {
    /// Copies out the violations recorded so far.
    pub fn snapshot(&self) -> Vec<Violation> {
        self.0.borrow().clone()
    }

    /// Removes and returns all recorded violations.
    pub fn take(&self) -> Vec<Violation> {
        std::mem::take(&mut *self.0.borrow_mut())
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// True if any recorded violation satisfies `pred`.
    pub fn any(&self, pred: impl Fn(&Violation) -> bool) -> bool {
        self.0.borrow().iter().any(|v| pred(v))
    }

    fn push(&self, v: Violation) {
        self.0.borrow_mut().push(v);
    }
}

/// The PMTest-style reference checker. See the module docs for the
/// invariants it enforces.
///
/// Frames it has never seen allocated are ignored (a run may begin, or
/// recover from a crash, with live frames whose allocation predates the
/// checker), so installing it mid-run produces no false positives.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    log: ViolationLog,
    /// Dirty (written, not yet committed) NVM lines → write cycle.
    pending: BTreeMap<u64, u64>,
    /// Live frames → owning pool.
    live: BTreeMap<u64, &'static str>,
    /// Frames freed and not since reallocated.
    freed: BTreeSet<u64>,
    /// Frame → virtual pages currently mapping it.
    ptes: BTreeMap<u64, BTreeSet<u64>>,
    /// Next expected redo-log apply index.
    next_apply: u64,
}

impl InvariantChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Handle onto the violation list (clone-able, survives `install`).
    pub fn log(&self) -> ViolationLog {
        self.log.clone()
    }

    fn reset_volatile(&mut self) {
        self.pending.clear();
        self.live.clear();
        self.freed.clear();
        self.ptes.clear();
        self.next_apply = 0;
    }
}

impl Sanitizer for InvariantChecker {
    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::NvmWrite { line, cycle } => {
                self.pending.entry(line).or_insert(cycle);
            }
            Event::NvmCommit { line } => {
                self.pending.remove(&line);
            }
            Event::NvmDrain { .. } => {
                self.pending.clear();
            }
            Event::Crash => {
                // Volatile state is gone and the kernel restarts; tracked
                // identities no longer apply.
                self.reset_volatile();
            }
            Event::CheckpointPublish { lo, hi, cycle, .. } => {
                for (&line, &written_at) in self.pending.range(lo..hi) {
                    self.log.push(Violation::UndrainedCheckpoint {
                        line,
                        written_at,
                        published_at: cycle,
                    });
                }
            }
            Event::FrameAlloc { pool, pfn } => {
                self.freed.remove(&pfn);
                self.live.insert(pfn, pool);
            }
            Event::FrameFree { pool, pfn } => {
                match self.live.remove(&pfn) {
                    Some(alloc_pool) if alloc_pool != pool => {
                        self.log.push(Violation::CrossPoolFree {
                            alloc_pool,
                            free_pool: pool,
                            pfn,
                        });
                    }
                    Some(_) => {}
                    None => {
                        // Only flag frames whose lifecycle we have seen;
                        // an unknown frame may predate the checker.
                        if self.freed.contains(&pfn) {
                            self.log.push(Violation::DoubleFree { pool, pfn });
                        }
                    }
                }
                self.freed.insert(pfn);
                if let Some(vpns) = self.ptes.get(&pfn) {
                    if let Some(&vpn) = vpns.iter().next() {
                        self.log.push(Violation::DanglingPte { pfn, vpn });
                    }
                }
            }
            Event::FrameRetired { pool: _, pfn } => {
                // A retired frame behaves like a freed one that can never be
                // reallocated: mapping it afterwards is a MapOfFreeFrame,
                // and retiring it while still mapped leaves a dangling PTE.
                self.live.remove(&pfn);
                self.freed.insert(pfn);
                if let Some(vpns) = self.ptes.get(&pfn) {
                    if let Some(&vpn) = vpns.iter().next() {
                        self.log.push(Violation::DanglingPte { pfn, vpn });
                    }
                }
            }
            Event::PteInstall { pfn, vpn } => {
                if self.freed.contains(&pfn) {
                    self.log.push(Violation::MapOfFreeFrame { pfn, vpn });
                }
                self.ptes.entry(pfn).or_default().insert(vpn);
            }
            Event::PteClear { pfn, vpn } => {
                if let Some(vpns) = self.ptes.get_mut(&pfn) {
                    vpns.remove(&vpn);
                    if vpns.is_empty() {
                        self.ptes.remove(&pfn);
                    }
                }
            }
            Event::LogAppend { .. } => {}
            Event::LogApply { seq } => {
                if seq == 0 {
                    // Start of a new apply pass.
                    self.next_apply = 1;
                } else if seq == self.next_apply {
                    self.next_apply += 1;
                } else {
                    self.log.push(Violation::LogOutOfOrder { expected: self.next_apply, got: seq });
                    self.next_apply = seq + 1;
                }
            }
            Event::LogTruncate => {
                self.next_apply = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_checker(f: impl FnOnce()) -> Vec<Violation> {
        let checker = InvariantChecker::new();
        let log = checker.log();
        let _guard = install(Box::new(checker));
        f();
        log.take()
    }

    #[test]
    fn emit_without_sanitizer_is_noop() {
        assert!(!installed());
        emit(|| Event::Crash);
    }

    #[test]
    fn guard_uninstalls() {
        {
            let _g = install(Box::new(NopSanitizer));
            assert!(installed());
        }
        assert!(!installed());
    }

    #[test]
    fn undrained_publish_flagged_committed_not() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::NvmWrite { line: 0x2000, cycle: 6 });
            emit(|| Event::NvmCommit { line: 0x1000 });
            emit(|| Event::CheckpointPublish { lo: 0x1000, hi: 0x3000, copy: 0, cycle: 9 });
        });
        assert_eq!(
            v,
            vec![Violation::UndrainedCheckpoint { line: 0x2000, written_at: 6, published_at: 9 }]
        );
    }

    #[test]
    fn publish_outside_range_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x9000, cycle: 1 });
            emit(|| Event::CheckpointPublish { lo: 0x1000, hi: 0x3000, copy: 0, cycle: 2 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drain_clears_pending() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 1 });
            emit(|| Event::NvmDrain { cycle: 2 });
            emit(|| Event::CheckpointPublish { lo: 0, hi: u64::MAX, copy: 0, cycle: 3 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn double_free_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 42 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 42 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 42 });
        });
        assert_eq!(v, vec![Violation::DoubleFree { pool: "nvm", pfn: 42 }]);
    }

    #[test]
    fn unknown_frame_free_ignored() {
        let v = with_checker(|| {
            emit(|| Event::FrameFree { pool: "dram", pfn: 7 });
        });
        assert!(v.is_empty(), "frames predating the checker must not flag");
    }

    #[test]
    fn cross_pool_free_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "dram", pfn: 3 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 3 });
        });
        assert_eq!(
            v,
            vec![Violation::CrossPoolFree { alloc_pool: "dram", free_pool: "nvm", pfn: 3 }]
        );
    }

    #[test]
    fn dangling_pte_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 10 });
            emit(|| Event::PteInstall { pfn: 10, vpn: 0x400 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 10 });
        });
        assert_eq!(v, vec![Violation::DanglingPte { pfn: 10, vpn: 0x400 }]);
    }

    #[test]
    fn clean_unmap_then_free_ok() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 10 });
            emit(|| Event::PteInstall { pfn: 10, vpn: 0x400 });
            emit(|| Event::PteClear { pfn: 10, vpn: 0x400 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 10 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn map_of_freed_frame_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 11 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 11 });
            emit(|| Event::PteInstall { pfn: 11, vpn: 0x500 });
        });
        assert_eq!(v, vec![Violation::MapOfFreeFrame { pfn: 11, vpn: 0x500 }]);
    }

    #[test]
    fn retired_frame_acts_like_freed_forever() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 12 });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 12 });
            emit(|| Event::PteInstall { pfn: 12, vpn: 0x600 });
        });
        assert_eq!(v, vec![Violation::MapOfFreeFrame { pfn: 12, vpn: 0x600 }]);
    }

    #[test]
    fn retire_while_mapped_is_dangling() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 13 });
            emit(|| Event::PteInstall { pfn: 13, vpn: 0x700 });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 13 });
        });
        assert_eq!(v, vec![Violation::DanglingPte { pfn: 13, vpn: 0x700 }]);
    }

    #[test]
    fn log_apply_order_enforced() {
        let v = with_checker(|| {
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
            emit(|| Event::LogApply { seq: 3 });
        });
        assert_eq!(v, vec![Violation::LogOutOfOrder { expected: 2, got: 3 }]);
    }

    #[test]
    fn log_apply_restart_after_truncate_ok() {
        let v = with_checker(|| {
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
            emit(|| Event::LogTruncate);
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_resets_tracking() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x40, cycle: 1 });
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 9 });
            emit(|| Event::PteInstall { pfn: 9, vpn: 1 });
            emit(|| Event::Crash);
            emit(|| Event::CheckpointPublish { lo: 0, hi: u64::MAX, copy: 0, cycle: 2 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 9 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violations_display() {
        let v = Violation::DoubleFree { pool: "nvm", pfn: 0x42 };
        assert!(v.to_string().contains("double free"));
        let v = Violation::UndrainedCheckpoint { line: 0x40, written_at: 1, published_at: 2 };
        assert!(v.to_string().contains("undrained"));
    }
}
