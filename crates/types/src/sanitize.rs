//! The cross-layer dynamic invariant sanitizer.
//!
//! Simulation components (memory controller, frame allocators, page tables,
//! redo log, checkpoint slots) report semantically interesting operations as
//! [`Event`]s through [`emit`]. By default no sanitizer is installed and an
//! emit is a single thread-local check — simulation output is identical with
//! or without the wiring, and no simulated time is ever charged.
//!
//! Tests (or debugging sessions) install a [`Sanitizer`] — typically the
//! PMTest-style [`InvariantChecker`] — which shadows the event stream and
//! records [`Violation`]s:
//!
//! * a checkpoint published while prior NVM stores in its slot are still
//!   undrained (not yet `clwb`-committed);
//! * double free or cross-pool free of a physical frame;
//! * a PTE left pointing at (or installed over) a freed frame;
//! * redo-log records applied out of append order;
//! * two *simulated kernel threads* writing the same NVM line with no
//!   intervening persist barrier or lock event (a data race on persistent
//!   state — see [`Violation::RacyNvmWrite`]).
//!
//! # Simulated thread ids
//!
//! Every event is stamped with the [`ThreadId`] of the simulated kernel
//! thread that produced it. Emission sites do not pass the id themselves:
//! the scheduler (`kindle_os::sched`, driven by `kindle_sim::Machine`)
//! publishes the running thread through [`set_current_thread`], and
//! [`emit`] stamps it centrally — an emit site cannot get it wrong, and
//! single-threaded simulations (the default) emit everything as
//! [`ThreadId::MAIN`], which keeps them byte-identical to builds that
//! predate the scheduler.
//!
//! The sanitizer is (host-)thread-local so parallel test threads cannot
//! observe each other's events.
//!
//! # Examples
//!
//! ```
//! use kindle_types::sanitize::{self, Event, InvariantChecker};
//!
//! let checker = InvariantChecker::new();
//! let log = checker.log();
//! let _guard = sanitize::install(Box::new(checker));
//! sanitize::emit(|| Event::FrameAlloc { pool: "nvm", pfn: 7 });
//! sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 7 });
//! sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 7 }); // double free
//! assert_eq!(log.snapshot().len(), 1);
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Identity of a simulated kernel thread (see `kindle_os::sched`).
///
/// Simulated — these are scheduler table indices inside one deterministic
/// simulation, not host threads. `ThreadId(0)` is always the main thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main simulation thread; everything runs on it unless the
    /// machine's scheduler dispatches a daemon.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kthread{}", self.0)
    }
}

/// Simulated lock identity for [`Event::LockAcquire`] / [`Event::LockRelease`].
/// The big kernel lock taken around a full checkpoint.
pub const LOCK_KERNEL: u64 = 1;
/// The redo-log lock (append / replay / truncate are serialized under it).
pub const LOCK_REDO_LOG: u64 = 2;
/// The migration lock taken around an HSCC migration pass.
pub const LOCK_MIGRATION: u64 = 3;

thread_local! {
    static CURRENT_TID: Cell<ThreadId> = const { Cell::new(ThreadId::MAIN) };
}

/// Publishes `tid` as the running simulated thread; subsequent [`emit`]s are
/// stamped with it. Returns the previously current id so schedulers can
/// restore it. Only the machine's scheduler should call this.
pub fn set_current_thread(tid: ThreadId) -> ThreadId {
    CURRENT_TID.with(|c| c.replace(tid))
}

/// The simulated thread id [`emit`] is currently stamping events with.
pub fn current_thread() -> ThreadId {
    CURRENT_TID.with(|c| c.get())
}

/// Why the kernel killed a process (see [`Event::ProcessKilled`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// A page the process mapped sits on an uncorrectable NVM frame; the
    /// kernel delivered the SIGBUS-analog instead of returning corrupt
    /// bytes.
    MemoryPoison,
}

impl fmt::Display for KillReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillReason::MemoryPoison => write!(f, "memory poison"),
        }
    }
}

/// One reported operation. Addresses are raw `u64`s so that emitting a
/// event never depends on higher-level crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A store dirtied the NVM cache line at `line` (line-base address).
    NvmWrite {
        /// Line-base physical address.
        line: u64,
        /// Simulated time of the store.
        cycle: u64,
    },
    /// The NVM line at `line` became durable (clwb / eviction write-back).
    NvmCommit {
        /// Line-base physical address.
        line: u64,
    },
    /// A full NVM write-buffer drain barrier completed.
    NvmDrain {
        /// Simulated time of the barrier.
        cycle: u64,
    },
    /// Power failure: volatile contents lost, un-committed NVM reverted.
    Crash,
    /// A checkpoint slot in `[lo, hi)` was published as consistent.
    CheckpointPublish {
        /// Slot base physical address.
        lo: u64,
        /// Slot end physical address (exclusive).
        hi: u64,
        /// Which A/B context copy (0 or 1) became the valid one.
        copy: u64,
        /// Simulated time of the publish.
        cycle: u64,
    },
    /// A physical frame was handed out by the `pool` allocator.
    FrameAlloc {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A physical frame was returned to the `pool` allocator.
    FrameFree {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A physical frame was permanently retired (worn-out media); it will
    /// never be handed out again.
    FrameRetired {
        /// Pool label ("dram" / "nvm").
        pool: &'static str,
        /// The frame number.
        pfn: u64,
    },
    /// A leaf PTE mapping `vpn → pfn` was installed.
    PteInstall {
        /// Target frame number.
        pfn: u64,
        /// Mapped virtual page number.
        vpn: u64,
    },
    /// The leaf PTE mapping `vpn → pfn` was cleared.
    PteClear {
        /// Previously mapped frame number.
        pfn: u64,
        /// Unmapped virtual page number.
        vpn: u64,
    },
    /// Redo-log record `seq` (0-based slot index) was appended.
    LogAppend {
        /// Append index within the current log generation.
        seq: u64,
    },
    /// Redo-log record `seq` was applied (read back for replay).
    LogApply {
        /// Index of the applied record.
        seq: u64,
    },
    /// The redo log was durably truncated.
    LogTruncate,
    /// The scheduler switched simulated kernel threads.
    ThreadSwitch {
        /// Thread that was running.
        from: ThreadId,
        /// Thread now running.
        to: ThreadId,
        /// Simulated time of the switch (after the switch cost).
        cycle: u64,
    },
    /// A simulated kernel lock was taken (see the `LOCK_*` constants).
    LockAcquire {
        /// Which lock.
        id: u64,
    },
    /// A simulated kernel lock was dropped.
    LockRelease {
        /// Which lock.
        id: u64,
    },
    /// Uncorrectable stuck-cell corruption was detected in an NVM line
    /// (by the controller at write time, or by scrubd's read-verify pass).
    /// The line's contents are untrustworthy until corrected or retired.
    ScrubDetect {
        /// Line-base physical address.
        line: u64,
    },
    /// An NVM line's stuck cells are now fully covered by ECP correction
    /// entries; its stored data is trustworthy again.
    ScrubCorrect {
        /// Line-base physical address.
        line: u64,
    },
    /// Scrubd retired an NVM page-table frame whose corruption could not
    /// be corrected in place; its content was remapped to a fresh frame.
    ScrubRetire {
        /// The retired frame number.
        pfn: u64,
    },
    /// The page walker consumed a table entry from the NVM line at `line`
    /// (line-base address). Lets the checker prove no PTE is ever read
    /// from a line flagged uncorrected.
    PtLineRead {
        /// Line-base physical address.
        line: u64,
    },
    /// Patrol scrub found an NVM data line whose stored content no longer
    /// matches its recorded checksum. Like [`Event::ScrubDetect`], the
    /// line is untrustworthy until corrected, poisoned, or retired.
    PatrolDetect {
        /// Line-base physical address.
        line: u64,
    },
    /// Patrol scrub healed a checksum-mismatched NVM data line back to its
    /// recorded content (ECP coverage plus in-place rewrite).
    PatrolCorrect {
        /// Line-base physical address.
        line: u64,
    },
    /// The kernel poisoned the mapping of an unhealable NVM frame: the
    /// leaf PTE now carries the poison bit and any access faults instead
    /// of returning bytes.
    PagePoison {
        /// The unhealable frame.
        pfn: u64,
        /// The virtual page whose PTE was poisoned.
        vpn: u64,
    },
    /// The kernel killed a process (the SIGBUS-analog delivery for
    /// poisoned memory).
    ProcessKilled {
        /// The terminated process.
        pid: u32,
        /// Why it was killed.
        reason: KillReason,
    },
    /// A data access read the NVM line at `line` (line-base address).
    /// Lets the checker prove no load ever observes data from a line
    /// flagged uncorrected — the patrol counterpart of
    /// [`Event::PtLineRead`].
    DataLineRead {
        /// Line-base physical address.
        line: u64,
    },
}

/// An observer of the simulation event stream.
pub trait Sanitizer {
    /// Called for every emitted event, in program order. `tid` is the
    /// simulated kernel thread the event was emitted from.
    fn on_event(&mut self, tid: ThreadId, ev: &Event);
}

/// The no-op sanitizer: observes nothing, changes nothing. Installing it is
/// equivalent to installing nothing and exists so equivalence tests can
/// exercise the full dispatch path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopSanitizer;

impl Sanitizer for NopSanitizer {
    #[inline]
    fn on_event(&mut self, _tid: ThreadId, _ev: &Event) {}
}

thread_local! {
    static CURRENT: RefCell<Option<Box<dyn Sanitizer>>> = const { RefCell::new(None) };
}

/// Restores the thread's previous sanitizer when dropped (panic-safe, so
/// seeded defects that also panic cannot leak a checker into the next
/// test). Installs stack: a scoped checker (e.g. one experiment-grid cell)
/// shadows an outer one and hands the event stream back on drop.
pub struct Installed {
    prev: Option<Box<dyn Sanitizer>>,
}

impl fmt::Debug for Installed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Installed").field("shadows_previous", &self.prev.is_some()).finish()
    }
}

impl Drop for Installed {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
        // A machine that panicked mid-daemon must not leak its thread id
        // into the next install on this host thread.
        CURRENT_TID.with(|c| c.set(ThreadId::MAIN));
    }
}

/// Installs `sanitizer` for the current thread, shadowing any previous one.
/// The returned guard restores the shadowed sanitizer on drop.
pub fn install(sanitizer: Box<dyn Sanitizer>) -> Installed {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(sanitizer));
    Installed { prev }
}

/// True if a sanitizer is installed on this thread.
pub fn installed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Reports an event to the installed sanitizer, if any. The closure is only
/// evaluated when a sanitizer is present, so emission sites stay free when
/// sanitizing is off. Re-entrant emits (from inside a sanitizer) are
/// silently dropped.
#[inline]
pub fn emit(make: impl FnOnce() -> Event) {
    CURRENT.with(|c| {
        if let Ok(mut slot) = c.try_borrow_mut() {
            if let Some(s) = slot.as_mut() {
                let ev = make();
                s.on_event(current_thread(), &ev);
            }
        }
    });
}

/// A confirmed invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A checkpoint was published while an NVM line inside its slot was
    /// written but never committed (missing clwb / drain).
    UndrainedCheckpoint {
        /// The still-dirty line.
        line: u64,
        /// When the line was written.
        written_at: u64,
        /// When the slot was published.
        published_at: u64,
    },
    /// A frame was freed while not allocated (double free, or free of a
    /// never-allocated frame).
    DoubleFree {
        /// Pool that performed the free.
        pool: &'static str,
        /// The frame.
        pfn: u64,
    },
    /// A frame allocated by one pool was freed through another.
    CrossPoolFree {
        /// Pool that allocated the frame.
        alloc_pool: &'static str,
        /// Pool that freed it.
        free_pool: &'static str,
        /// The frame.
        pfn: u64,
    },
    /// A frame was freed while a leaf PTE still mapped it.
    DanglingPte {
        /// The freed frame.
        pfn: u64,
        /// One virtual page still mapping it.
        vpn: u64,
    },
    /// A leaf PTE was installed over a frame already freed.
    MapOfFreeFrame {
        /// The freed frame.
        pfn: u64,
        /// The virtual page mapped onto it.
        vpn: u64,
    },
    /// A redo-log record was applied out of append order.
    LogOutOfOrder {
        /// Expected next apply index.
        expected: u64,
        /// Observed apply index.
        got: u64,
    },
    /// Two simulated kernel threads wrote the same NVM line with no
    /// happens-before edge (persist barrier or lock event) between the
    /// writes — a data race on persistent state.
    RacyNvmWrite {
        /// Line-base physical address both threads dirtied.
        line: u64,
        /// Thread that wrote first.
        first: ThreadId,
        /// Thread whose write raced with it.
        second: ThreadId,
        /// Simulated time of the racing (second) write.
        cycle: u64,
    },
    /// The page walker consumed a table entry from an NVM line flagged as
    /// holding uncorrected stuck-cell corruption — a translation was built
    /// from untrustworthy bits.
    PteFromUncorrectedLine {
        /// The corrupted line-base physical address.
        line: u64,
    },
    /// A data access observed an NVM line whose checksum mismatch was
    /// never followed by a [`Event::PatrolCorrect`] or
    /// [`Event::PagePoison`] — silent corruption reached a load.
    DataReadFromUncorrectedLine {
        /// The corrupted line-base physical address.
        line: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::UndrainedCheckpoint { line, written_at, published_at } => write!(
                f,
                "checkpoint published at cycle {published_at} with undrained NVM line \
                 {line:#x} (written at cycle {written_at})"
            ),
            Violation::DoubleFree { pool, pfn } => {
                write!(f, "double free of frame {pfn:#x} in pool {pool}")
            }
            Violation::CrossPoolFree { alloc_pool, free_pool, pfn } => {
                write!(f, "frame {pfn:#x} allocated from {alloc_pool} freed through {free_pool}")
            }
            Violation::DanglingPte { pfn, vpn } => {
                write!(f, "frame {pfn:#x} freed while still mapped by virtual page {vpn:#x}")
            }
            Violation::MapOfFreeFrame { pfn, vpn } => {
                write!(f, "virtual page {vpn:#x} mapped onto freed frame {pfn:#x}")
            }
            Violation::LogOutOfOrder { expected, got } => {
                write!(f, "redo-log record {got} applied out of order (expected {expected})")
            }
            Violation::RacyNvmWrite { line, first, second, cycle } => write!(
                f,
                "NVM line {line:#x} written by {second} at cycle {cycle} racing an \
                 unsynchronized write by {first}"
            ),
            Violation::PteFromUncorrectedLine { line } => write!(
                f,
                "page-table entry consumed from NVM line {line:#x} holding uncorrected \
                 stuck-cell corruption"
            ),
            Violation::DataReadFromUncorrectedLine { line } => write!(
                f,
                "data read from NVM line {line:#x} whose checksum mismatch was never \
                 corrected or poisoned"
            ),
        }
    }
}

/// Shared handle onto a checker's violation list. Clone it before moving
/// the checker into [`install`]; the handle observes violations recorded
/// afterwards.
#[derive(Clone, Debug, Default)]
pub struct ViolationLog(Rc<RefCell<Vec<Violation>>>);

impl ViolationLog {
    /// Copies out the violations recorded so far.
    pub fn snapshot(&self) -> Vec<Violation> {
        self.0.borrow().clone()
    }

    /// Removes and returns all recorded violations.
    pub fn take(&self) -> Vec<Violation> {
        std::mem::take(&mut *self.0.borrow_mut())
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// True if any recorded violation satisfies `pred`.
    pub fn any(&self, pred: impl Fn(&Violation) -> bool) -> bool {
        self.0.borrow().iter().any(|v| pred(v))
    }

    fn push(&self, v: Violation) {
        self.0.borrow_mut().push(v);
    }
}

/// The PMTest-style reference checker. See the module docs for the
/// invariants it enforces.
///
/// Frames it has never seen allocated are ignored (a run may begin, or
/// recover from a crash, with live frames whose allocation predates the
/// checker), so installing it mid-run produces no false positives.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    log: ViolationLog,
    /// Dirty (written, not yet committed) NVM lines → write cycle.
    pending: BTreeMap<u64, u64>,
    /// Live frames → owning pool.
    live: BTreeMap<u64, &'static str>,
    /// Frames freed and not since reallocated.
    freed: BTreeSet<u64>,
    /// Frame → virtual pages currently mapping it.
    ptes: BTreeMap<u64, BTreeSet<u64>>,
    /// Next expected redo-log apply index.
    next_apply: u64,
    /// Synchronization epoch: bumped on every persist barrier and lock
    /// event. Two writes in different epochs are ordered (happens-before);
    /// two writes in the same epoch from different threads race. Thread
    /// switches deliberately do NOT bump it — on one simulated CPU a switch
    /// sits between every cross-thread pair, and a switch alone publishes
    /// nothing about persistence order.
    sync_epoch: u64,
    /// NVM line → (thread, epoch) of its last uncommitted write.
    last_writer: BTreeMap<u64, (ThreadId, u64)>,
    /// NVM lines flagged as holding uncorrected stuck-cell corruption
    /// ([`Event::ScrubDetect`]); cleared per line on [`Event::ScrubCorrect`]
    /// and per frame on retirement. A page walk touching one of these is a
    /// [`Violation::PteFromUncorrectedLine`].
    dirty_lines: BTreeSet<u64>,
}

impl InvariantChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Handle onto the violation list (clone-able, survives `install`).
    pub fn log(&self) -> ViolationLog {
        self.log.clone()
    }

    fn reset_volatile(&mut self) {
        self.pending.clear();
        self.live.clear();
        self.freed.clear();
        self.ptes.clear();
        self.next_apply = 0;
        self.last_writer.clear();
        self.sync_epoch = 0;
        // Conservative: a torn-undo crash revert may or may not leave a
        // flagged line corrupted on media, so stale flags would be
        // ambiguous. Recovery re-detects corruption on its next write.
        self.dirty_lines.clear();
    }
}

impl Sanitizer for InvariantChecker {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        match *ev {
            Event::NvmWrite { line, cycle } => {
                self.pending.entry(line).or_insert(cycle);
                if let Some(&(first, epoch)) = self.last_writer.get(&line) {
                    if first != tid && epoch == self.sync_epoch {
                        self.log.push(Violation::RacyNvmWrite { line, first, second: tid, cycle });
                    }
                }
                self.last_writer.insert(line, (tid, self.sync_epoch));
                // An overwrite replaces the line's content (and its recorded
                // checksum), so prior corruption flags no longer describe
                // what a reader would observe. If the store itself re-forces
                // stuck bits past the ECP budget, the controller re-flags
                // the line with a fresh ScrubDetect right after this event.
                self.dirty_lines.remove(&line);
            }
            Event::NvmCommit { line } => {
                self.pending.remove(&line);
                // A committed line left the write buffer; later writes start
                // a fresh, ordered lifetime for it.
                self.last_writer.remove(&line);
            }
            Event::NvmDrain { .. } => {
                self.pending.clear();
                self.sync_epoch += 1;
            }
            Event::Crash => {
                // Volatile state is gone and the kernel restarts; tracked
                // identities no longer apply.
                self.reset_volatile();
            }
            Event::CheckpointPublish { lo, hi, cycle, .. } => {
                for (&line, &written_at) in self.pending.range(lo..hi) {
                    self.log.push(Violation::UndrainedCheckpoint {
                        line,
                        written_at,
                        published_at: cycle,
                    });
                }
            }
            Event::FrameAlloc { pool, pfn } => {
                self.freed.remove(&pfn);
                self.live.insert(pfn, pool);
            }
            Event::FrameFree { pool, pfn } => {
                match self.live.remove(&pfn) {
                    Some(alloc_pool) if alloc_pool != pool => {
                        self.log.push(Violation::CrossPoolFree {
                            alloc_pool,
                            free_pool: pool,
                            pfn,
                        });
                    }
                    Some(_) => {}
                    None => {
                        // Only flag frames whose lifecycle we have seen;
                        // an unknown frame may predate the checker.
                        if self.freed.contains(&pfn) {
                            self.log.push(Violation::DoubleFree { pool, pfn });
                        }
                    }
                }
                self.freed.insert(pfn);
                if let Some(vpns) = self.ptes.get(&pfn) {
                    if let Some(&vpn) = vpns.iter().next() {
                        self.log.push(Violation::DanglingPte { pfn, vpn });
                    }
                }
            }
            Event::FrameRetired { pool: _, pfn } => {
                // A retired frame behaves like a freed one that can never be
                // reallocated: mapping it afterwards is a MapOfFreeFrame,
                // and retiring it while still mapped leaves a dangling PTE.
                self.live.remove(&pfn);
                self.freed.insert(pfn);
                if let Some(vpns) = self.ptes.get(&pfn) {
                    if let Some(&vpn) = vpns.iter().next() {
                        self.log.push(Violation::DanglingPte { pfn, vpn });
                    }
                }
                // Its corrupted lines leave service with it.
                self.dirty_lines.retain(|&l| l >> crate::PAGE_SHIFT != pfn);
            }
            Event::PteInstall { pfn, vpn } => {
                if self.freed.contains(&pfn) {
                    self.log.push(Violation::MapOfFreeFrame { pfn, vpn });
                }
                self.ptes.entry(pfn).or_default().insert(vpn);
            }
            Event::PteClear { pfn, vpn } => {
                if let Some(vpns) = self.ptes.get_mut(&pfn) {
                    vpns.remove(&vpn);
                    if vpns.is_empty() {
                        self.ptes.remove(&pfn);
                    }
                }
            }
            Event::LogAppend { .. } => {}
            Event::LogApply { seq } => {
                if seq == 0 {
                    // Start of a new apply pass.
                    self.next_apply = 1;
                } else if seq == self.next_apply {
                    self.next_apply += 1;
                } else {
                    self.log.push(Violation::LogOutOfOrder { expected: self.next_apply, got: seq });
                    self.next_apply = seq + 1;
                }
            }
            Event::LogTruncate => {
                self.next_apply = 0;
            }
            Event::ThreadSwitch { .. } => {
                // Not a synchronization edge; see `sync_epoch`.
            }
            Event::LockAcquire { .. } | Event::LockRelease { .. } => {
                self.sync_epoch += 1;
            }
            Event::ScrubDetect { line } => {
                self.dirty_lines.insert(line);
            }
            Event::ScrubCorrect { line } => {
                self.dirty_lines.remove(&line);
            }
            Event::ScrubRetire { pfn } => {
                self.dirty_lines.retain(|&l| l >> crate::PAGE_SHIFT != pfn);
            }
            Event::PtLineRead { line } => {
                if self.dirty_lines.contains(&line) {
                    self.log.push(Violation::PteFromUncorrectedLine { line });
                }
            }
            Event::PatrolDetect { line } => {
                self.dirty_lines.insert(line);
            }
            Event::PatrolCorrect { line } => {
                self.dirty_lines.remove(&line);
            }
            Event::PagePoison { pfn, vpn: _ } => {
                // Poisoned mappings fault on access; the frame's corrupt
                // lines can no longer reach a load through them.
                self.dirty_lines.retain(|&l| l >> crate::PAGE_SHIFT != pfn);
            }
            Event::ProcessKilled { .. } => {}
            Event::DataLineRead { line } => {
                if self.dirty_lines.contains(&line) {
                    self.log.push(Violation::DataReadFromUncorrectedLine { line });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_checker(f: impl FnOnce()) -> Vec<Violation> {
        let checker = InvariantChecker::new();
        let log = checker.log();
        let _guard = install(Box::new(checker));
        f();
        log.take()
    }

    #[test]
    fn emit_without_sanitizer_is_noop() {
        assert!(!installed());
        emit(|| Event::Crash);
    }

    #[test]
    fn guard_uninstalls() {
        {
            let _g = install(Box::new(NopSanitizer));
            assert!(installed());
        }
        assert!(!installed());
    }

    #[test]
    fn nested_install_restores_outer_sanitizer() {
        let outer = InvariantChecker::new();
        let outer_log = outer.log();
        let _outer_guard = install(Box::new(outer));
        {
            let inner = InvariantChecker::new();
            let inner_log = inner.log();
            let _inner_guard = install(Box::new(inner));
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 1 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 1 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 1 });
            assert_eq!(inner_log.take().len(), 1, "inner checker shadows the outer");
        }
        assert!(installed(), "outer sanitizer restored after inner guard drop");
        emit(|| Event::FrameAlloc { pool: "nvm", pfn: 2 });
        emit(|| Event::FrameFree { pool: "nvm", pfn: 2 });
        emit(|| Event::FrameFree { pool: "nvm", pfn: 2 });
        assert_eq!(outer_log.take().len(), 1, "outer checker sees events again");
    }

    #[test]
    fn undrained_publish_flagged_committed_not() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::NvmWrite { line: 0x2000, cycle: 6 });
            emit(|| Event::NvmCommit { line: 0x1000 });
            emit(|| Event::CheckpointPublish { lo: 0x1000, hi: 0x3000, copy: 0, cycle: 9 });
        });
        assert_eq!(
            v,
            vec![Violation::UndrainedCheckpoint { line: 0x2000, written_at: 6, published_at: 9 }]
        );
    }

    #[test]
    fn publish_outside_range_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x9000, cycle: 1 });
            emit(|| Event::CheckpointPublish { lo: 0x1000, hi: 0x3000, copy: 0, cycle: 2 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drain_clears_pending() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 1 });
            emit(|| Event::NvmDrain { cycle: 2 });
            emit(|| Event::CheckpointPublish { lo: 0, hi: u64::MAX, copy: 0, cycle: 3 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn double_free_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 42 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 42 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 42 });
        });
        assert_eq!(v, vec![Violation::DoubleFree { pool: "nvm", pfn: 42 }]);
    }

    #[test]
    fn unknown_frame_free_ignored() {
        let v = with_checker(|| {
            emit(|| Event::FrameFree { pool: "dram", pfn: 7 });
        });
        assert!(v.is_empty(), "frames predating the checker must not flag");
    }

    #[test]
    fn cross_pool_free_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "dram", pfn: 3 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 3 });
        });
        assert_eq!(
            v,
            vec![Violation::CrossPoolFree { alloc_pool: "dram", free_pool: "nvm", pfn: 3 }]
        );
    }

    #[test]
    fn dangling_pte_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 10 });
            emit(|| Event::PteInstall { pfn: 10, vpn: 0x400 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 10 });
        });
        assert_eq!(v, vec![Violation::DanglingPte { pfn: 10, vpn: 0x400 }]);
    }

    #[test]
    fn clean_unmap_then_free_ok() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 10 });
            emit(|| Event::PteInstall { pfn: 10, vpn: 0x400 });
            emit(|| Event::PteClear { pfn: 10, vpn: 0x400 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 10 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn map_of_freed_frame_flagged() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 11 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 11 });
            emit(|| Event::PteInstall { pfn: 11, vpn: 0x500 });
        });
        assert_eq!(v, vec![Violation::MapOfFreeFrame { pfn: 11, vpn: 0x500 }]);
    }

    #[test]
    fn retired_frame_acts_like_freed_forever() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 12 });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 12 });
            emit(|| Event::PteInstall { pfn: 12, vpn: 0x600 });
        });
        assert_eq!(v, vec![Violation::MapOfFreeFrame { pfn: 12, vpn: 0x600 }]);
    }

    #[test]
    fn retire_while_mapped_is_dangling() {
        let v = with_checker(|| {
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 13 });
            emit(|| Event::PteInstall { pfn: 13, vpn: 0x700 });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 13 });
        });
        assert_eq!(v, vec![Violation::DanglingPte { pfn: 13, vpn: 0x700 }]);
    }

    #[test]
    fn log_apply_order_enforced() {
        let v = with_checker(|| {
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
            emit(|| Event::LogApply { seq: 3 });
        });
        assert_eq!(v, vec![Violation::LogOutOfOrder { expected: 2, got: 3 }]);
    }

    #[test]
    fn log_apply_restart_after_truncate_ok() {
        let v = with_checker(|| {
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
            emit(|| Event::LogTruncate);
            emit(|| Event::LogApply { seq: 0 });
            emit(|| Event::LogApply { seq: 1 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_resets_tracking() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x40, cycle: 1 });
            emit(|| Event::FrameAlloc { pool: "nvm", pfn: 9 });
            emit(|| Event::PteInstall { pfn: 9, vpn: 1 });
            emit(|| Event::Crash);
            emit(|| Event::CheckpointPublish { lo: 0, hi: u64::MAX, copy: 0, cycle: 2 });
            emit(|| Event::FrameFree { pool: "nvm", pfn: 9 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pte_read_from_uncorrected_line_flagged() {
        let v = with_checker(|| {
            emit(|| Event::ScrubDetect { line: 0x2040 });
            emit(|| Event::PtLineRead { line: 0x2040 });
        });
        assert_eq!(v, vec![Violation::PteFromUncorrectedLine { line: 0x2040 }]);
    }

    #[test]
    fn corrected_line_reads_clean() {
        let v = with_checker(|| {
            emit(|| Event::ScrubDetect { line: 0x2040 });
            emit(|| Event::ScrubCorrect { line: 0x2040 });
            emit(|| Event::PtLineRead { line: 0x2040 });
            emit(|| Event::PtLineRead { line: 0x3000 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn retirement_clears_the_frames_dirty_lines() {
        let v = with_checker(|| {
            // Two dirty lines inside frame 2, one in frame 3.
            emit(|| Event::ScrubDetect { line: 2 << crate::PAGE_SHIFT });
            emit(|| Event::ScrubDetect { line: (2 << crate::PAGE_SHIFT) + 0x40 });
            emit(|| Event::ScrubDetect { line: 3 << crate::PAGE_SHIFT });
            emit(|| Event::ScrubRetire { pfn: 2 });
            emit(|| Event::PtLineRead { line: 2 << crate::PAGE_SHIFT });
            emit(|| Event::PtLineRead { line: (2 << crate::PAGE_SHIFT) + 0x40 });
        });
        assert!(v.is_empty(), "retired frame's lines no longer flag: {v:?}");
        let v = with_checker(|| {
            emit(|| Event::ScrubDetect { line: 3 << crate::PAGE_SHIFT });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 3 });
            emit(|| Event::PtLineRead { line: 3 << crate::PAGE_SHIFT });
        });
        assert!(v.is_empty(), "wear retirement clears dirty lines too: {v:?}");
    }

    #[test]
    fn data_read_from_uncorrected_line_flagged() {
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 0x4040 });
            emit(|| Event::DataLineRead { line: 0x4040 });
        });
        assert_eq!(v, vec![Violation::DataReadFromUncorrectedLine { line: 0x4040 }]);
    }

    #[test]
    fn patrol_corrected_line_reads_clean() {
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 0x4040 });
            emit(|| Event::PatrolCorrect { line: 0x4040 });
            emit(|| Event::DataLineRead { line: 0x4040 });
            emit(|| Event::DataLineRead { line: 0x5000 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn write_time_detect_flags_data_reads_too() {
        // The controller's write-time ScrubDetect and patrol's PatrolDetect
        // feed one suspect set: either makes a later data read a violation.
        let v = with_checker(|| {
            emit(|| Event::ScrubDetect { line: 0x4040 });
            emit(|| Event::DataLineRead { line: 0x4040 });
        });
        assert_eq!(v, vec![Violation::DataReadFromUncorrectedLine { line: 0x4040 }]);
    }

    #[test]
    fn page_poison_clears_the_frames_suspect_lines() {
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 5 << crate::PAGE_SHIFT });
            emit(|| Event::PatrolDetect { line: (5 << crate::PAGE_SHIFT) + 0x40 });
            emit(|| Event::PatrolDetect { line: 6 << crate::PAGE_SHIFT });
            emit(|| Event::PagePoison { pfn: 5, vpn: 0x800 });
            emit(|| Event::ProcessKilled { pid: 1, reason: KillReason::MemoryPoison });
            emit(|| Event::DataLineRead { line: 5 << crate::PAGE_SHIFT });
            emit(|| Event::DataLineRead { line: (5 << crate::PAGE_SHIFT) + 0x40 });
        });
        assert!(v.is_empty(), "poisoned frame's lines no longer flag: {v:?}");
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 6 << crate::PAGE_SHIFT });
            emit(|| Event::PagePoison { pfn: 5, vpn: 0x800 });
            emit(|| Event::DataLineRead { line: 6 << crate::PAGE_SHIFT });
        });
        assert_eq!(
            v,
            vec![Violation::DataReadFromUncorrectedLine { line: 6 << crate::PAGE_SHIFT }],
            "poisoning one frame must not absolve another"
        );
    }

    #[test]
    fn overwrite_clears_line_suspicion() {
        // A fresh store replaces the line's content and checksum; the old
        // corruption flag no longer describes the stored bytes.
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 0x4040 });
            emit(|| Event::NvmWrite { line: 0x4040, cycle: 3 });
            emit(|| Event::DataLineRead { line: 0x4040 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn overwrite_that_reflags_still_fires() {
        // store_bytes emits NvmWrite first, then (budget exhausted) the
        // controller re-flags with ScrubDetect — the read must still flag.
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x4040, cycle: 3 });
            emit(|| Event::ScrubDetect { line: 0x4040 });
            emit(|| Event::DataLineRead { line: 0x4040 });
        });
        assert_eq!(v, vec![Violation::DataReadFromUncorrectedLine { line: 0x4040 }]);
    }

    #[test]
    fn retirement_clears_data_read_suspicion() {
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 7 << crate::PAGE_SHIFT });
            emit(|| Event::FrameRetired { pool: "nvm", pfn: 7 });
            emit(|| Event::DataLineRead { line: 7 << crate::PAGE_SHIFT });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_clears_patrol_suspicion() {
        let v = with_checker(|| {
            emit(|| Event::PatrolDetect { line: 0x4040 });
            emit(|| Event::Crash);
            emit(|| Event::DataLineRead { line: 0x4040 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_clears_dirty_line_tracking() {
        let v = with_checker(|| {
            emit(|| Event::ScrubDetect { line: 0x2040 });
            emit(|| Event::Crash);
            emit(|| Event::PtLineRead { line: 0x2040 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violations_display() {
        let v = Violation::DoubleFree { pool: "nvm", pfn: 0x42 };
        assert!(v.to_string().contains("double free"));
        let v = Violation::UndrainedCheckpoint { line: 0x40, written_at: 1, published_at: 2 };
        assert!(v.to_string().contains("undrained"));
        let v = Violation::RacyNvmWrite {
            line: 0x40,
            first: ThreadId::MAIN,
            second: ThreadId(1),
            cycle: 7,
        };
        assert!(v.to_string().contains("racing"), "{v}");
        assert!(v.to_string().contains("kthread1"), "{v}");
        let v = Violation::DataReadFromUncorrectedLine { line: 0x4040 };
        assert!(v.to_string().contains("data read"), "{v}");
        assert_eq!(KillReason::MemoryPoison.to_string(), "memory poison");
    }

    /// Runs `f` with `tid` as the ambient simulated thread, restoring the
    /// previous id afterwards.
    fn as_thread(tid: u32, f: impl FnOnce()) {
        let prev = set_current_thread(ThreadId(tid));
        f();
        set_current_thread(prev);
    }

    #[test]
    fn emit_stamps_ambient_thread_id() {
        struct Recorder(Rc<RefCell<Vec<ThreadId>>>);
        impl Sanitizer for Recorder {
            fn on_event(&mut self, tid: ThreadId, _ev: &Event) {
                self.0.borrow_mut().push(tid);
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let _guard = install(Box::new(Recorder(seen.clone())));
        emit(|| Event::LogTruncate);
        as_thread(3, || emit(|| Event::LogTruncate));
        emit(|| Event::LogTruncate);
        assert_eq!(*seen.borrow(), vec![ThreadId::MAIN, ThreadId(3), ThreadId::MAIN]);
    }

    #[test]
    fn guard_drop_resets_ambient_thread() {
        {
            let _g = install(Box::new(NopSanitizer));
            set_current_thread(ThreadId(9));
        }
        assert_eq!(current_thread(), ThreadId::MAIN);
    }

    #[test]
    fn racy_cross_thread_write_flagged() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 }));
        });
        assert_eq!(
            v,
            vec![Violation::RacyNvmWrite {
                line: 0x1000,
                first: ThreadId::MAIN,
                second: ThreadId(1),
                cycle: 9,
            }]
        );
    }

    #[test]
    fn same_thread_rewrite_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cross_thread_different_lines_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x2000, cycle: 9 }));
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drain_between_cross_thread_writes_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::NvmDrain { cycle: 6 });
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 }));
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_event_between_cross_thread_writes_clean() {
        let v = with_checker(|| {
            emit(|| Event::LockAcquire { id: LOCK_MIGRATION });
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::LockRelease { id: LOCK_MIGRATION });
            as_thread(1, || {
                emit(|| Event::LockAcquire { id: LOCK_MIGRATION });
                emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 });
                emit(|| Event::LockRelease { id: LOCK_MIGRATION });
            });
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn commit_between_cross_thread_writes_clean() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::NvmCommit { line: 0x1000 });
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 }));
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn thread_switch_is_not_a_sync_edge() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::ThreadSwitch { from: ThreadId::MAIN, to: ThreadId(1), cycle: 6 });
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 }));
        });
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn crash_clears_race_tracking() {
        let v = with_checker(|| {
            emit(|| Event::NvmWrite { line: 0x1000, cycle: 5 });
            emit(|| Event::Crash);
            as_thread(1, || emit(|| Event::NvmWrite { line: 0x1000, cycle: 9 }));
        });
        assert!(v.is_empty(), "{v:?}");
    }
}
