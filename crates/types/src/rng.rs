//! A small, self-contained deterministic PRNG.
//!
//! The simulator must be bit-for-bit reproducible for a fixed seed and must
//! build with no external dependencies, so instead of `rand` the workload
//! generators use this xoshiro256** generator seeded through SplitMix64
//! (the seeding procedure recommended by the xoshiro authors). It is not
//! cryptographic and does not need to be: it only drives synthetic traces.

/// One SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use kindle_types::rng::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_below(10) < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `0..n` via the widening-multiply reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below range must be non-empty");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range must have lo < hi");
        lo + self.gen_below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let zs: Vec<u64> = {
            let mut r = Rng64::new(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_splitmix_seeding() {
        // First SplitMix64 output for state 0 is a published constant;
        // pin it so the seeding procedure can never silently change.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_in_range_and_covers() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.gen_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng64::new(3);
        for _ in 0..1_000 {
            let v = r.gen_range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng64::new(11);
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[r.gen_below(16) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*max as f64) / (*min as f64) < 1.1, "uniformity off: min {min}, max {max}");
    }
}
