//! Deterministic crash & media-fault injection with verified recovery.
//!
//! This crate closes the loop between the fault *mechanisms* in the lower
//! layers and the recovery *claims* of the persistence subsystem:
//!
//! * [`FaultPlan`] picks a kill point — the N-th persist-boundary event,
//!   the N-th NVM line write, or the first event at/after a cycle — either
//!   explicitly (for exhaustive sweeps) or seeded from the in-tree
//!   [`kindle_types::Rng64`];
//! * [`PowerCutTrigger`] is a [`kindle_types::sanitize::Sanitizer`] that
//!   watches the event stream, cuts the shared
//!   [`kindle_mem::PowerSwitch`] when the plan's point is reached, and
//!   shields the checkers it wraps from the doomed post-cut events (none
//!   of which will survive the crash);
//! * [`RecoveryChecker`] verifies what the generic invariant checker
//!   cannot: recovery-specific obligations such as publish-copy
//!   alternation, no PTE installed into a frame that was never
//!   re-allocated after the crash, and exactly-once log replay per pass;
//! * [`sweep`] runs a deterministic workload once to enumerate every
//!   persist boundary (capturing a machine snapshot after every workload
//!   step into a bounded pool), then crashes once per boundary by forking
//!   a machine from the nearest snapshot with a power cut armed there,
//!   tearing the in-flight write buffer at the 8-byte persist atom,
//!   recovering, and checking the recovered state against the last
//!   durable checkpoint. The pre-snapshot replay-from-zero execution
//!   survives as [`sweep::SweepStrategy::ReplayFromZero`], the cross-check
//!   oracle whose digests the forked sweep must reproduce byte-for-byte.

pub mod plan;
pub mod recovery_checker;
pub mod sweep;
pub mod trigger;

pub use plan::{FaultPlan, FaultPoint};
pub use recovery_checker::{RecoveryChecker, RecoveryViolation, RecoveryViolationLog};
pub use sweep::{
    run_data_integrity_sweep, run_data_integrity_sweep_jobs, run_data_integrity_sweep_strategy,
    run_nvm_write_sweep, run_nvm_write_sweep_instrumented, run_nvm_write_sweep_jobs,
    run_stuck_sweep, run_stuck_sweep_jobs, run_stuck_sweep_strategy, run_sweep, run_sweep_jobs,
    run_sweep_strategy, run_sweep_threaded, DataIntegrityOutcome, GoldenRun, SweepOutcome,
    SweepStrategy, SweepTelemetry,
};
pub use trigger::{BoundaryCounter, PowerCutTrigger, PublishRecord};
