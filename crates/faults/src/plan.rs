//! Where to kill the machine.

use kindle_types::Rng64;

/// The kill point of one injected power cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Cut immediately after the N-th persist-boundary event (0-based).
    /// Boundaries are redo-log appends and truncations, checkpoint
    /// publishes and NVM write-buffer drains — the points the persistence
    /// protocol itself considers interesting, so a sweep over all of them
    /// covers every protocol step transition.
    Boundary(u64),
    /// Cut immediately after the N-th NVM line write (0-based). Finer than
    /// boundaries: lands between protocol steps, inside copy writes.
    NvmWrite(u64),
    /// Cut at the first observed event at or after this cycle.
    Cycle(u64),
}

/// A complete fault plan: currently a single kill point. Plans are plain
/// data so sweeps can enumerate them exhaustively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The kill point.
    pub point: FaultPoint,
}

impl FaultPlan {
    /// Kill at the `n`-th persist-boundary event.
    pub fn at_boundary(n: u64) -> Self {
        FaultPlan { point: FaultPoint::Boundary(n) }
    }

    /// Kill at the `n`-th NVM line write.
    pub fn at_nvm_write(n: u64) -> Self {
        FaultPlan { point: FaultPoint::NvmWrite(n) }
    }

    /// Kill at the first event at or after `cycle`.
    pub fn at_cycle(cycle: u64) -> Self {
        FaultPlan { point: FaultPoint::Cycle(cycle) }
    }

    /// A random boundary kill point in `0..boundaries` (for fuzz-style
    /// runs where an exhaustive sweep is too slow).
    ///
    /// # Panics
    ///
    /// Panics if `boundaries == 0`.
    pub fn random(rng: &mut Rng64, boundaries: u64) -> Self {
        FaultPlan::at_boundary(rng.gen_below(boundaries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_carry_points() {
        assert_eq!(FaultPlan::at_boundary(3).point, FaultPoint::Boundary(3));
        assert_eq!(FaultPlan::at_nvm_write(7).point, FaultPoint::NvmWrite(7));
        assert_eq!(FaultPlan::at_cycle(99).point, FaultPoint::Cycle(99));
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = FaultPlan::random(&mut Rng64::new(5), 10);
        let b = FaultPlan::random(&mut Rng64::new(5), 10);
        assert_eq!(a, b);
        let FaultPoint::Boundary(n) = a.point else { panic!("random plans are boundary kills") };
        assert!(n < 10);
    }
}
