//! The sanitizer that pulls the plug.

use kindle_mem::PowerSwitch;
use kindle_types::sanitize::{Event, Sanitizer, ThreadId};

use crate::plan::{FaultPlan, FaultPoint};

/// True for events the persistence protocol treats as step transitions.
pub(crate) fn is_boundary(ev: &Event) -> bool {
    matches!(
        ev,
        Event::LogAppend { .. }
            | Event::LogTruncate
            | Event::CheckpointPublish { .. }
            | Event::NvmDrain { .. }
    )
}

/// The cycle stamp carried by an event, when it has one.
fn event_cycle(ev: &Event) -> Option<u64> {
    match *ev {
        Event::NvmWrite { cycle, .. }
        | Event::NvmDrain { cycle }
        | Event::CheckpointPublish { cycle, .. } => Some(cycle),
        _ => None,
    }
}

/// A [`Sanitizer`] that executes a [`FaultPlan`]: it forwards every event
/// to the checkers it wraps, and when the plan's kill point is reached it
/// cuts the shared [`PowerSwitch`] — from that instant the armed memory
/// controller makes nothing durable, so the simulation keeps executing
/// doomed instructions until the harness calls `crash_torn`.
///
/// While dead (cut pulled, crash not yet happened) events are *not*
/// forwarded: they describe work that will never survive, and feeding them
/// to an invariant checker would produce phantom state. The
/// [`Event::Crash`] itself is forwarded and re-enables passthrough for the
/// recovery phase.
pub struct PowerCutTrigger {
    plan: FaultPlan,
    switch: PowerSwitch,
    inner: Vec<Box<dyn Sanitizer>>,
    boundaries: u64,
    nvm_writes: u64,
    fired: bool,
    dead: bool,
    /// Set when the cut fired on an [`Event::NvmDrain`]: if the very next
    /// event is a [`Event::CheckpointPublish`], that drain was the
    /// publish's flip barrier — the flip reached media before the cut took
    /// effect, so the publish *is* durable and must still be forwarded.
    /// (A cut on the earlier data barrier is followed by the flip's
    /// `NvmWrite` instead, so the two cases never confuse.)
    forward_publish: bool,
}

impl PowerCutTrigger {
    /// Wraps `inner` checkers under `plan`. Arm the returned trigger's
    /// [`switch`](Self::switch) into the memory controller
    /// (`MemoryController::arm_power_cut`) for the cut to have effect.
    pub fn new(plan: FaultPlan, inner: Vec<Box<dyn Sanitizer>>) -> Self {
        PowerCutTrigger {
            plan,
            switch: PowerSwitch::new(),
            inner,
            boundaries: 0,
            nvm_writes: 0,
            fired: false,
            dead: false,
            forward_publish: false,
        }
    }

    /// The power switch this trigger cuts (clone it into the controller).
    pub fn switch(&self) -> PowerSwitch {
        self.switch.clone()
    }

    fn hit(&mut self, ev: &Event) -> bool {
        match self.plan.point {
            FaultPoint::Boundary(n) => {
                if is_boundary(ev) {
                    let i = self.boundaries;
                    self.boundaries += 1;
                    i == n
                } else {
                    false
                }
            }
            FaultPoint::NvmWrite(n) => {
                if matches!(ev, Event::NvmWrite { .. }) {
                    let i = self.nvm_writes;
                    self.nvm_writes += 1;
                    i == n
                } else {
                    false
                }
            }
            FaultPoint::Cycle(c) => event_cycle(ev).is_some_and(|t| t >= c),
        }
    }
}

impl Sanitizer for PowerCutTrigger {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        if self.dead {
            let durable_publish =
                self.forward_publish && matches!(ev, Event::CheckpointPublish { .. });
            self.forward_publish = false;
            if matches!(ev, Event::Crash) {
                self.dead = false;
            }
            if durable_publish || matches!(ev, Event::Crash) {
                for s in &mut self.inner {
                    s.on_event(tid, ev);
                }
            }
            return;
        }
        // The triggering event itself completed before the cut, so the
        // checkers must see it.
        for s in &mut self.inner {
            s.on_event(tid, ev);
        }
        if !self.fired && self.hit(ev) {
            self.switch.cut();
            self.fired = true;
            self.dead = true;
            self.forward_publish = matches!(ev, Event::NvmDrain { .. });
        }
    }
}

/// One checkpoint publish observed by a [`BoundaryCounter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishRecord {
    /// Boundary index the publish landed on.
    pub boundary: u64,
    /// Slot base physical address (the event's `lo`).
    pub slot: u64,
    /// A/B copy index published.
    pub copy: u64,
}

/// A passive [`Sanitizer`] for golden runs: counts persist-boundary events
/// and records, for each checkpoint publish, the boundary index it landed
/// on plus its slot and copy (so a forked [`RecoveryChecker`] can be
/// seeded with the copy-alternation state a prefix already established).
/// Feed the totals to [`FaultPlan::at_boundary`] to sweep every kill point
/// of the same (deterministic) workload.
///
/// [`RecoveryChecker`]: crate::recovery_checker::RecoveryChecker
#[derive(Debug, Default)]
pub struct BoundaryCounter {
    /// Persist-boundary events seen so far.
    pub boundaries: u64,
    /// NVM line writes seen so far.
    pub nvm_writes: u64,
    /// Every checkpoint publish, in order.
    pub publishes: Vec<PublishRecord>,
}

impl BoundaryCounter {
    /// An empty counter.
    pub fn new() -> Self {
        BoundaryCounter::default()
    }
}

impl Sanitizer for BoundaryCounter {
    fn on_event(&mut self, _tid: ThreadId, ev: &Event) {
        if matches!(ev, Event::NvmWrite { .. }) {
            self.nvm_writes += 1;
        }
        if is_boundary(ev) {
            if let Event::CheckpointPublish { lo, copy, .. } = *ev {
                self.publishes.push(PublishRecord { boundary: self.boundaries, slot: lo, copy });
            }
            self.boundaries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records every event it sees (shared so the trigger can own it).
    struct Tap(Rc<RefCell<Vec<Event>>>);

    impl Sanitizer for Tap {
        fn on_event(&mut self, _tid: ThreadId, ev: &Event) {
            self.0.borrow_mut().push(*ev);
        }
    }

    fn drain(cycle: u64) -> Event {
        Event::NvmDrain { cycle }
    }

    #[test]
    fn cuts_at_nth_boundary_and_suppresses_doomed_events() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut t =
            PowerCutTrigger::new(FaultPlan::at_boundary(1), vec![Box::new(Tap(seen.clone()))]);
        let switch = t.switch();

        t.on_event(ThreadId::MAIN, &drain(10)); // boundary 0
        assert!(!switch.is_cut());
        t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 0x40, cycle: 11 }); // not a boundary
        t.on_event(ThreadId::MAIN, &Event::LogAppend { seq: 0 }); // boundary 1 → cut
        assert!(switch.is_cut());
        t.on_event(ThreadId::MAIN, &drain(12)); // doomed: suppressed
        assert_eq!(seen.borrow().len(), 3, "doomed event not forwarded");
        t.on_event(ThreadId::MAIN, &Event::Crash);
        t.on_event(ThreadId::MAIN, &drain(13)); // post-crash: forwarded again
        assert_eq!(seen.borrow().len(), 5);
        assert!(matches!(seen.borrow()[3], Event::Crash));
    }

    #[test]
    fn triggering_event_is_still_forwarded() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut t =
            PowerCutTrigger::new(FaultPlan::at_boundary(0), vec![Box::new(Tap(seen.clone()))]);
        t.on_event(ThreadId::MAIN, &drain(1));
        assert_eq!(seen.borrow().len(), 1);
    }

    #[test]
    fn cuts_at_nth_nvm_write() {
        let mut t = PowerCutTrigger::new(FaultPlan::at_nvm_write(2), vec![]);
        let switch = t.switch();
        for i in 0..2 {
            t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: i * 64, cycle: i });
            assert!(!switch.is_cut());
        }
        t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 1024, cycle: 9 });
        assert!(switch.is_cut());
    }

    #[test]
    fn cuts_at_cycle() {
        let mut t = PowerCutTrigger::new(FaultPlan::at_cycle(100), vec![]);
        let switch = t.switch();
        t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 0, cycle: 99 });
        assert!(!switch.is_cut());
        t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 0, cycle: 100 });
        assert!(switch.is_cut());
    }

    #[test]
    fn fires_only_once() {
        let mut t = PowerCutTrigger::new(FaultPlan::at_boundary(0), vec![]);
        let switch = t.switch();
        t.on_event(ThreadId::MAIN, &drain(1));
        assert!(switch.is_cut());
        t.on_event(ThreadId::MAIN, &Event::Crash);
        switch.reset();
        // A second pass over more boundaries must not cut again.
        t.on_event(ThreadId::MAIN, &drain(2));
        t.on_event(ThreadId::MAIN, &drain(3));
        assert!(!switch.is_cut());
    }

    #[test]
    fn publish_right_after_flip_drain_cut_is_forwarded() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut t =
            PowerCutTrigger::new(FaultPlan::at_boundary(0), vec![Box::new(Tap(seen.clone()))]);
        t.on_event(ThreadId::MAIN, &drain(5)); // flip barrier → cut
                                               // The flip already drained, so this publish is durable.
        t.on_event(ThreadId::MAIN, &Event::CheckpointPublish { lo: 0, hi: 64, copy: 1, cycle: 6 });
        assert_eq!(seen.borrow().len(), 2, "durable publish must reach the checkers");
        t.on_event(ThreadId::MAIN, &Event::CheckpointPublish { lo: 0, hi: 64, copy: 0, cycle: 7 });
        assert_eq!(seen.borrow().len(), 2, "later doomed publishes stay suppressed");
    }

    #[test]
    fn publish_after_data_drain_cut_stays_suppressed() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut t =
            PowerCutTrigger::new(FaultPlan::at_boundary(0), vec![Box::new(Tap(seen.clone()))]);
        t.on_event(ThreadId::MAIN, &drain(5)); // data barrier → cut
                                               // The valid-flip store happens next; it never drains, so the
                                               // publish that follows is *not* durable.
        t.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 0x80, cycle: 6 });
        t.on_event(ThreadId::MAIN, &Event::CheckpointPublish { lo: 0, hi: 64, copy: 1, cycle: 7 });
        assert_eq!(seen.borrow().len(), 1, "non-durable publish must be suppressed");
    }

    #[test]
    fn counter_tracks_boundaries_and_publishes() {
        let mut c = BoundaryCounter::new();
        c.on_event(ThreadId::MAIN, &drain(1)); // boundary 0
        c.on_event(ThreadId::MAIN, &Event::NvmWrite { line: 0, cycle: 2 });
        c.on_event(ThreadId::MAIN, &Event::CheckpointPublish { lo: 0, hi: 64, copy: 1, cycle: 3 }); // boundary 1
        c.on_event(ThreadId::MAIN, &Event::LogTruncate); // boundary 2
        assert_eq!(c.boundaries, 3);
        assert_eq!(c.nvm_writes, 1);
        assert_eq!(c.publishes, vec![PublishRecord { boundary: 1, slot: 0, copy: 1 }]);
    }
}
