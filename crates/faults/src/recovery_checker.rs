//! Recovery-specific invariants.
//!
//! The generic [`kindle_types::sanitize::InvariantChecker`] deliberately
//! forgets everything at a crash — its invariants are about the live run.
//! This checker keeps exactly the state that *should* survive a crash and
//! verifies the obligations of the recovery path itself.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use kindle_types::sanitize::{Event, Sanitizer, ThreadId};

/// A violated recovery obligation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryViolation {
    /// A slot published the same A/B copy twice in a row: the engine
    /// overwrote the only consistent image instead of alternating.
    RepublishedSameCopy {
        /// Slot base physical address.
        slot: u64,
        /// The copy published both times.
        copy: u64,
    },
    /// After a crash, a leaf PTE was installed pointing at a frame no
    /// allocator had handed out (or re-learned) since the reboot.
    PteIntoUnrecoveredFrame {
        /// The unaccounted frame.
        pfn: u64,
        /// The virtual page mapped onto it.
        vpn: u64,
    },
    /// The same redo-log record was applied twice within one replay pass.
    LogReplayedTwice {
        /// The doubly applied record index.
        seq: u64,
    },
}

impl fmt::Display for RecoveryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecoveryViolation::RepublishedSameCopy { slot, copy } => {
                write!(f, "slot {slot:#x} published copy {copy} twice in a row")
            }
            RecoveryViolation::PteIntoUnrecoveredFrame { pfn, vpn } => write!(
                f,
                "virtual page {vpn:#x} mapped onto frame {pfn:#x} never re-allocated after crash"
            ),
            RecoveryViolation::LogReplayedTwice { seq } => {
                write!(f, "redo-log record {seq} replayed twice in one pass")
            }
        }
    }
}

/// Shared handle onto a [`RecoveryChecker`]'s violation list (same pattern
/// as [`kindle_types::sanitize::ViolationLog`]).
#[derive(Clone, Debug, Default)]
pub struct RecoveryViolationLog(Rc<RefCell<Vec<RecoveryViolation>>>);

impl RecoveryViolationLog {
    /// Copies out the violations recorded so far.
    pub fn snapshot(&self) -> Vec<RecoveryViolation> {
        self.0.borrow().clone()
    }

    /// Removes and returns all recorded violations.
    pub fn take(&self) -> Vec<RecoveryViolation> {
        std::mem::take(&mut *self.0.borrow_mut())
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    fn push(&self, v: RecoveryViolation) {
        self.0.borrow_mut().push(v);
    }
}

/// Checks recovery obligations across crashes. See the module docs.
#[derive(Debug, Default)]
pub struct RecoveryChecker {
    log: RecoveryViolationLog,
    /// Slot base → last durably published copy. Survives crashes: a
    /// forwarded publish event is only emitted once the valid flip is
    /// drained, so this mirrors the durable flag.
    last_copy: BTreeMap<u64, u64>,
    /// Frames handed out (or re-learned from the persistent bitmap) since
    /// the last crash.
    live: BTreeSet<u64>,
    /// True once a crash has been observed; only then is the live-frame
    /// set complete enough to judge PTE installs.
    crashed: bool,
    /// Records applied in the current replay pass.
    applied: BTreeSet<u64>,
}

impl RecoveryChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        RecoveryChecker::default()
    }

    /// A checker pre-seeded with the durable copy-alternation state of an
    /// already-executed prefix: `publishes` is the `(slot, copy)` of every
    /// checkpoint publish the prefix made durable, in order. A sweep that
    /// forks a machine from a mid-run snapshot uses this so the forked
    /// checker judges suffix publishes exactly as a checker that watched
    /// the whole run would.
    pub fn with_publishes(publishes: &[(u64, u64)]) -> Self {
        let mut c = RecoveryChecker::default();
        for &(slot, copy) in publishes {
            c.last_copy.insert(slot, copy);
        }
        c
    }

    /// Handle onto the violation list (clone-able, survives `install`).
    pub fn log(&self) -> RecoveryViolationLog {
        self.log.clone()
    }
}

impl Sanitizer for RecoveryChecker {
    fn on_event(&mut self, _tid: ThreadId, ev: &Event) {
        match *ev {
            Event::Crash => {
                self.crashed = true;
                self.live.clear();
                self.applied.clear();
            }
            Event::CheckpointPublish { lo, copy, .. } => {
                if self.last_copy.insert(lo, copy) == Some(copy) {
                    self.log.push(RecoveryViolation::RepublishedSameCopy { slot: lo, copy });
                }
            }
            Event::FrameAlloc { pfn, .. } => {
                self.live.insert(pfn);
            }
            Event::FrameFree { pfn, .. } | Event::FrameRetired { pfn, .. } => {
                self.live.remove(&pfn);
            }
            Event::PteInstall { pfn, vpn } => {
                if self.crashed && !self.live.contains(&pfn) {
                    self.log.push(RecoveryViolation::PteIntoUnrecoveredFrame { pfn, vpn });
                }
            }
            Event::LogApply { seq } => {
                if seq == 0 {
                    // A replay pass always starts from record 0.
                    self.applied.clear();
                }
                if !self.applied.insert(seq) {
                    self.log.push(RecoveryViolation::LogReplayedTwice { seq });
                }
            }
            Event::LogTruncate => {
                self.applied.clear();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: impl FnOnce(&mut RecoveryChecker)) -> Vec<RecoveryViolation> {
        let mut c = RecoveryChecker::new();
        let log = c.log();
        f(&mut c);
        log.take()
    }

    #[test]
    fn alternating_publishes_clean() {
        let v = run(|c| {
            for copy in [0, 1, 0, 1] {
                c.on_event(
                    ThreadId::MAIN,
                    &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy, cycle: 1 },
                );
            }
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn republish_same_copy_flagged() {
        let v = run(|c| {
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy: 0, cycle: 1 },
            );
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy: 0, cycle: 2 },
            );
        });
        assert_eq!(v, vec![RecoveryViolation::RepublishedSameCopy { slot: 0x100, copy: 0 }]);
    }

    #[test]
    fn publishes_tracked_per_slot() {
        let v = run(|c| {
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy: 0, cycle: 1 },
            );
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x900, hi: 0xa00, copy: 0, cycle: 2 },
            );
        });
        assert!(v.is_empty(), "distinct slots may publish the same copy index");
    }

    #[test]
    fn alternation_survives_crash() {
        let v = run(|c| {
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy: 0, cycle: 1 },
            );
            c.on_event(ThreadId::MAIN, &Event::Crash);
            // The durable flag still says 0, so the next publish must be 1.
            c.on_event(
                ThreadId::MAIN,
                &Event::CheckpointPublish { lo: 0x100, hi: 0x200, copy: 1, cycle: 9 },
            );
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pte_into_unrecovered_frame_flagged() {
        let v = run(|c| {
            c.on_event(ThreadId::MAIN, &Event::Crash);
            c.on_event(ThreadId::MAIN, &Event::FrameAlloc { pool: "nvm", pfn: 5 });
            c.on_event(ThreadId::MAIN, &Event::PteInstall { pfn: 5, vpn: 0x10 }); // fine
            c.on_event(ThreadId::MAIN, &Event::PteInstall { pfn: 6, vpn: 0x11 });
            // never re-allocated
        });
        assert_eq!(v, vec![RecoveryViolation::PteIntoUnrecoveredFrame { pfn: 6, vpn: 0x11 }]);
    }

    #[test]
    fn pre_crash_installs_not_judged() {
        let v = run(|c| {
            c.on_event(ThreadId::MAIN, &Event::PteInstall { pfn: 77, vpn: 0x1 });
        });
        assert!(v.is_empty(), "before any crash the live set is incomplete");
    }

    #[test]
    fn live_set_resets_each_crash() {
        let v = run(|c| {
            c.on_event(ThreadId::MAIN, &Event::Crash);
            c.on_event(ThreadId::MAIN, &Event::FrameAlloc { pool: "nvm", pfn: 5 });
            c.on_event(ThreadId::MAIN, &Event::Crash);
            c.on_event(ThreadId::MAIN, &Event::PteInstall { pfn: 5, vpn: 0x10 });
        });
        assert_eq!(v, vec![RecoveryViolation::PteIntoUnrecoveredFrame { pfn: 5, vpn: 0x10 }]);
    }

    #[test]
    fn replay_twice_in_one_pass_flagged() {
        let v = run(|c| {
            c.on_event(ThreadId::MAIN, &Event::LogApply { seq: 0 });
            c.on_event(ThreadId::MAIN, &Event::LogApply { seq: 1 });
            c.on_event(ThreadId::MAIN, &Event::LogApply { seq: 1 });
        });
        assert_eq!(v, vec![RecoveryViolation::LogReplayedTwice { seq: 1 }]);
    }

    #[test]
    fn two_full_passes_clean() {
        let v = run(|c| {
            for _ in 0..2 {
                c.on_event(ThreadId::MAIN, &Event::LogApply { seq: 0 });
                c.on_event(ThreadId::MAIN, &Event::LogApply { seq: 1 });
            }
        });
        assert!(v.is_empty(), "idempotent re-recovery restarts the pass at 0");
    }

    #[test]
    fn violations_display() {
        let v = RecoveryViolation::RepublishedSameCopy { slot: 0x40, copy: 1 };
        assert!(v.to_string().contains("twice"));
        let v = RecoveryViolation::PteIntoUnrecoveredFrame { pfn: 1, vpn: 2 };
        assert!(v.to_string().contains("never re-allocated"));
        let v = RecoveryViolation::LogReplayedTwice { seq: 3 };
        assert!(v.to_string().contains("replayed twice"));
    }
}
