//! The crash-sweep harness.
//!
//! A *sweep* proves the recovery story at every step of the persistence
//! protocol, not just at hand-picked crash points:
//!
//! 1. a **golden run** executes a deterministic checkpointed workload with
//!    a passive [`BoundaryCounter`] installed, enumerating every
//!    persist-boundary event (log appends/truncations, checkpoint
//!    publishes, write-buffer drains) and noting which boundary each
//!    checkpoint publish landed on;
//! 2. for **each** boundary `b`, a fresh machine runs the same workload
//!    with a [`PowerCutTrigger`] armed to cut power right after boundary
//!    `b`. The workload runs to completion "doomed" (nothing after the cut
//!    becomes durable), then the harness crashes with write-buffer tearing
//!    ([`kindle_sim::Machine::crash_torn`]), recovers, and checks:
//!    - the recovered execution context matches the last checkpoint whose
//!      publish flip had drained by the cut — no more, no less;
//!    - the PR-1 [`InvariantChecker`] and the [`RecoveryChecker`] saw zero
//!      violations across crash and recovery;
//!    - the machine still works: a post-recovery mmap/touch/checkpoint
//!      round must succeed.
//! 3. every observable of every crash point is folded into a digest;
//!    running the sweep twice with one seed must produce identical
//!    digests, pinning byte-for-byte determinism of the fault machinery.
//!
//! Crash points are mutually independent (each builds a fresh machine with
//! its own per-point RNG), so the sweep fans out over
//! [`kindle_core::parallel::par_map`] workers. The digest folds each
//! point's observables **in crash-point order** regardless of which worker
//! finished first, so `KINDLE_JOBS=1` and `KINDLE_JOBS=8` produce
//! identical [`SweepOutcome`]s — the determinism tests pin exactly that.

use std::cell::RefCell;
use std::rc::Rc;

use kindle_core::parallel;

use kindle_mem::MediaFaultConfig;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig};
use kindle_types::sanitize::{self, Event, InvariantChecker, Sanitizer, ThreadId};
use kindle_types::{
    checksum64, AccessKind, Cycles, MapFlags, PhysMem, Prot, Result, Rng64, PAGE_SIZE,
};

use crate::plan::FaultPlan;
use crate::recovery_checker::RecoveryChecker;
use crate::trigger::{BoundaryCounter, PowerCutTrigger};

/// `rip` markers distinguishing the workload's checkpointed phases.
const PHASE_MARKERS: [u64; 3] = [0x1111, 0x2222, 0x3333];
/// `rip` marker of the post-recovery continuation checkpoint.
const CONTINUATION_MARKER: u64 = 0x9999;

/// What the golden run learned about the workload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GoldenRun {
    /// Total persist-boundary events (= crash points to sweep).
    pub boundaries: u64,
    /// Total NVM line writes.
    pub nvm_writes: u64,
    /// `(boundary_index, rip_marker)` of each checkpoint publish.
    pub publishes: Vec<(u64, u64)>,
}

/// Aggregate result of one full sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Crash points exercised (one injected crash each).
    pub boundaries: u64,
    /// Crash points after which the workload process was recovered.
    pub recovered: u64,
    /// Order-sensitive digest of every observable of every crash point.
    pub digest: u64,
}

/// Adapter letting the harness keep a handle on a sanitizer it installed.
struct SharedSanitizer<S: Sanitizer>(Rc<RefCell<S>>);

impl<S: Sanitizer> Sanitizer for SharedSanitizer<S> {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        self.0.borrow_mut().on_event(tid, ev);
    }
}

/// The machine under test: checkpointing on, but at an interval the
/// workload never reaches — every checkpoint is an explicit
/// `checkpoint_now`, so the golden boundary enumeration is stable.
/// `threaded` additionally runs checkpoints on the simulated daemon
/// kthread: the boundary *structure* is unchanged (thread switches are not
/// persist boundaries), only cycle stamps and event thread ids move.
fn config(mode: PtMode, threaded: bool) -> MachineConfig {
    let cfg =
        MachineConfig::small().with_pt_mode(mode).with_checkpointing(Cycles::from_millis(1000));
    if threaded {
        cfg.with_kthreads()
    } else {
        cfg
    }
}

/// Scrubd period of the stuck-cell sweep: short enough that verify passes
/// interleave the workload's checkpoint phases instead of landing after
/// the whole run.
const STUCK_SCRUB_INTERVAL: Cycles = Cycles::from_micros(40);

/// ECP correction entries per line in the stuck-cell sweep: two covers
/// every line uniform seeding realistically produces (a triple collision
/// among ~2M lines is vanishingly rare), so the protocol state stays
/// faithful at every crash point while the correction layer does real
/// work.
const STUCK_CORRECTION_ENTRIES: u32 = 2;

/// The stuck-cell machine: the boundary-sweep config plus `stuck` seeded
/// stuck-at cells (wear-out off, so every fault is a stuck cell), the ECP
/// correction layer, and the scrub daemon verifying page-table frames.
fn stuck_config(mode: PtMode, seed: u64, stuck: usize) -> MachineConfig {
    let mut cfg = config(mode, false).with_scrub_interval(STUCK_SCRUB_INTERVAL);
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: stuck,
        correction_entries: STUCK_CORRECTION_ENTRIES,
        ..MediaFaultConfig::with_seed(seed)
    });
    cfg
}

/// The deterministic workload: three phases, each mapping and touching NVM
/// pages, stamping a phase marker into `rip` and checkpointing; between
/// checkpoints it performs map/unmap churn that only the redo log records.
fn run_workload(m: &mut Machine, pid: u32) -> Result<()> {
    for (phase, marker) in PHASE_MARKERS.iter().enumerate() {
        let va = m.mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
        for page in 0..4u64 {
            m.access(pid, va + page * PAGE_SIZE as u64, AccessKind::Write)?;
        }
        m.kernel.process_mut(pid)?.regs.rip = *marker;
        m.checkpoint_now()?;
        if phase + 1 < PHASE_MARKERS.len() {
            let extra = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
            m.munmap(pid, extra, PAGE_SIZE as u64)?;
        }
    }
    Ok(())
}

/// Runs the workload once with a passive counter installed and returns the
/// boundary enumeration.
///
/// # Errors
///
/// Propagates machine/workload failures.
///
/// # Panics
///
/// Panics if the workload did not publish one checkpoint per phase (the
/// harness itself would be broken).
pub fn golden_run(mode: PtMode) -> Result<GoldenRun> {
    golden_run_with(mode, false)
}

/// [`golden_run`] with checkpoints optionally on a daemon kthread.
fn golden_run_with(mode: PtMode, threaded: bool) -> Result<GoldenRun> {
    golden_run_cfg(&config(mode, threaded))
}

/// The golden enumeration for an explicit machine config (the stuck-cell
/// sweep builds one with media faults and the scrub daemon armed).
fn golden_run_cfg(cfg: &MachineConfig) -> Result<GoldenRun> {
    let counter = Rc::new(RefCell::new(BoundaryCounter::new()));
    let guard = sanitize::install(Box::new(SharedSanitizer(counter.clone())));
    let mut m = Machine::new(cfg.clone())?;
    let pid = m.spawn_process()?;
    run_workload(&mut m, pid)?;
    drop(guard);
    drop(m);

    let c = counter.borrow();
    assert_eq!(
        c.publishes.len(),
        PHASE_MARKERS.len(),
        "one publish per workload phase, got {:?}",
        c.publishes
    );
    Ok(GoldenRun {
        boundaries: c.boundaries,
        nvm_writes: c.nvm_writes,
        publishes: c
            .publishes
            .iter()
            .zip(PHASE_MARKERS)
            .map(|(&(idx, _copy), marker)| (idx, marker))
            .collect(),
    })
}

/// The checkpoint the recovered machine must come back to when power is
/// cut right after boundary `b`: a publish at boundary index `i` became
/// durable at the drain immediately preceding it (index `i - 1`), so it
/// counts for every `b >= i - 1`.
fn expected_marker(golden: &GoldenRun, b: u64) -> Option<u64> {
    golden.publishes.iter().rev().find(|&&(i, _)| i <= b + 1).map(|&(_, marker)| marker)
}

/// Crashes one fresh machine at boundary `b` (tearing with `rng`),
/// recovers, verifies, and returns whether the workload process survived
/// plus this crash point's digest observables.
fn crash_at_boundary(
    cfg: &MachineConfig,
    golden: &GoldenRun,
    b: u64,
    rng: &mut Rng64,
) -> Result<(bool, Vec<u64>)> {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let rc = RecoveryChecker::new();
    let rc_log = rc.log();
    let trigger = PowerCutTrigger::new(FaultPlan::at_boundary(b), vec![Box::new(ic), Box::new(rc)]);
    let switch = trigger.switch();
    let guard = sanitize::install(Box::new(trigger));

    let mut m = Machine::new(cfg.clone())?;
    m.hw.mc.arm_power_cut(switch.clone());
    let pid = m.spawn_process()?;
    run_workload(&mut m, pid)?;
    assert!(switch.is_cut(), "boundary {b} never reached; golden run out of sync");

    m.crash_torn(rng)?;
    let report = m.recover()?;

    // The recovered context must be exactly the last durable checkpoint.
    let recovered = match expected_marker(golden, b) {
        Some(marker) => {
            assert_eq!(
                report.recovered_pids,
                vec![pid],
                "boundary {b}: process must recover ({report:?})"
            );
            let rip = m.kernel.process(pid)?.regs.rip;
            assert_eq!(
                rip, marker,
                "boundary {b}: recovered rip {rip:#x}, want last durable checkpoint {marker:#x}"
            );
            true
        }
        None => {
            assert!(
                report.recovered_pids.is_empty(),
                "boundary {b}: no checkpoint was durable yet, got {report:?}"
            );
            false
        }
    };

    // The machine must still be fully operational after recovery.
    let cont_pid = if recovered { pid } else { m.spawn_process()? };
    let cva = m.mmap(cont_pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
    m.access(cont_pid, cva, AccessKind::Write)?;
    m.kernel.process_mut(cont_pid)?.regs.rip = CONTINUATION_MARKER;
    m.checkpoint_now()?;

    let ic_violations = ic_log.take();
    assert!(ic_violations.is_empty(), "boundary {b}: invariant violations {ic_violations:?}");
    let rc_violations = rc_log.take();
    assert!(rc_violations.is_empty(), "boundary {b}: recovery violations {rc_violations:?}");

    let mut words = vec![
        b,
        u64::from(recovered),
        if recovered { m.kernel.process(pid)?.regs.rip } else { 0 },
        report.log_records_replayed,
        report.torn_log_records,
        report.copy_fallbacks,
        report.frames_repaired,
        report.pages_remapped,
        report.dram_entries_dropped,
        m.now().as_u64(),
    ];
    // With scrubd armed the scrub/correction work is part of what the seed
    // must pin, so its counters join the digest (plain sweeps append
    // nothing, keeping their digests comparable with older runs).
    if let Some(s) = &m.scrub {
        let st = s.stats();
        let media = m.hw.mc.stats().media;
        words.extend([
            st.passes,
            st.lines_detected,
            st.lines_corrected,
            st.frames_retired,
            media.corrections_allocated,
            media.uncorrectable_line_writes,
        ]);
    }
    drop(guard);
    Ok((recovered, words))
}

/// Runs the full sweep for one page-table scheme: golden enumeration, then
/// one torn crash + verified recovery per boundary. All tearing randomness
/// derives from `seed`, so equal seeds must yield equal
/// [`SweepOutcome::digest`]s.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails (wrong checkpoint recovered, checker
/// violations, golden run out of sync).
pub fn run_sweep(mode: PtMode, seed: u64) -> Result<SweepOutcome> {
    run_sweep_with(mode, seed, false, parallel::default_jobs())
}

/// [`run_sweep`] with an explicit worker count (`jobs = 1` is the exact
/// serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_jobs(mode: PtMode, seed: u64, jobs: usize) -> Result<SweepOutcome> {
    run_sweep_with(mode, seed, false, jobs)
}

/// [`run_sweep`] with every checkpoint executing on the simulated
/// checkpoint daemon kthread. The thread interleaving is replayed
/// deterministically from the seed: the schedule is a pure function of the
/// (seed-fixed) event sequence, so equal seeds still mean equal digests.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_threaded(mode: PtMode, seed: u64) -> Result<SweepOutcome> {
    run_sweep_with(mode, seed, true, parallel::default_jobs())
}

fn run_sweep_with(mode: PtMode, seed: u64, threaded: bool, jobs: usize) -> Result<SweepOutcome> {
    run_sweep_cfg(&config(mode, threaded), seed, jobs, &[])
}

/// The boundary sweep against an explicit machine config. `extra_words`
/// prefixes the digest so variants (e.g. different stuck-cell counts)
/// cannot collide.
fn run_sweep_cfg(
    cfg: &MachineConfig,
    seed: u64,
    jobs: usize,
    extra_words: &[u64],
) -> Result<SweepOutcome> {
    let golden = golden_run_cfg(cfg)?;
    // Workers have their own thread-locals: republish the caller's ambient
    // media-fault model so the sweep is jobs-invariant even under --faults.
    let ambient = kindle_sim::thread_media_faults();
    let golden_ref = &golden;
    let results = parallel::par_map(jobs, (0..golden.boundaries).collect(), move |b| {
        kindle_sim::set_thread_media_faults(ambient);
        // A fresh generator per boundary keeps crash points independent:
        // inserting a boundary does not shift every later tear.
        let mut rng = Rng64::new(seed ^ (b + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        crash_at_boundary(cfg, golden_ref, b, &mut rng)
    });
    let mut digest_words = extra_words.to_vec();
    digest_words.extend([golden.boundaries, golden.nvm_writes]);
    let mut recovered = 0u64;
    for point in results {
        let (rec, words) = point?;
        recovered += u64::from(rec);
        digest_words.extend(words);
    }
    Ok(SweepOutcome { boundaries: golden.boundaries, recovered, digest: checksum64(&digest_words) })
}

/// The stuck-cell sweep: the full boundary crash/recovery sweep run
/// against NVM media seeded with `stuck` stuck-at cells, with the ECP
/// correction layer and the scrub daemon armed. Every crash point must
/// still recover exactly the last durable checkpoint with zero sanitizer
/// violations — the stuck cells the workload's write set crosses are
/// absorbed by write-time correction, and scrubd verify passes (whose
/// counters join the digest) keep the NVM-resident page tables honest
/// across every crash and recovery.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails (wrong checkpoint recovered, checker
/// violations, golden run out of sync).
pub fn run_stuck_sweep(mode: PtMode, seed: u64, stuck: usize) -> Result<SweepOutcome> {
    run_stuck_sweep_jobs(mode, seed, stuck, parallel::default_jobs())
}

/// [`run_stuck_sweep`] with an explicit worker count (`jobs = 1` is the
/// exact serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_stuck_sweep`].
pub fn run_stuck_sweep_jobs(
    mode: PtMode,
    seed: u64,
    stuck: usize,
    jobs: usize,
) -> Result<SweepOutcome> {
    let cfg = stuck_config(mode, seed, stuck);
    run_sweep_cfg(&cfg, seed, jobs, &[stuck as u64])
}

/// Crashes one fresh machine right after its `w`-th NVM line write,
/// recovers, verifies, and appends the observables to `digest_words`.
/// Unlike a boundary cut, a write-granular cut can land mid-protocol, so
/// the expected checkpoint is not derivable from the golden enumeration;
/// instead the check is that recovery lands on *some* phase checkpoint (or
/// cleanly on none), with zero checker violations, and that the machine is
/// operational afterwards.
fn crash_at_nvm_write(mode: PtMode, w: u64, rng: &mut Rng64) -> Result<(bool, Vec<u64>)> {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let rc = RecoveryChecker::new();
    let rc_log = rc.log();
    let trigger =
        PowerCutTrigger::new(FaultPlan::at_nvm_write(w), vec![Box::new(ic), Box::new(rc)]);
    let switch = trigger.switch();
    let guard = sanitize::install(Box::new(trigger));

    let mut m = Machine::new(config(mode, false))?;
    m.hw.mc.arm_power_cut(switch.clone());
    let pid = m.spawn_process()?;
    run_workload(&mut m, pid)?;
    assert!(switch.is_cut(), "NVM write {w} never reached; golden run out of sync");

    m.crash_torn(rng)?;
    let report = m.recover()?;

    let recovered = report.recovered_pids.contains(&pid);
    if recovered {
        let rip = m.kernel.process(pid)?.regs.rip;
        assert!(
            PHASE_MARKERS.contains(&rip),
            "NVM write {w}: recovered rip {rip:#x} is not a phase checkpoint"
        );
    }

    // The machine must still be fully operational after recovery.
    let cont_pid = if recovered { pid } else { m.spawn_process()? };
    let cva = m.mmap(cont_pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
    m.access(cont_pid, cva, AccessKind::Write)?;
    m.kernel.process_mut(cont_pid)?.regs.rip = CONTINUATION_MARKER;
    m.checkpoint_now()?;

    let ic_violations = ic_log.take();
    assert!(ic_violations.is_empty(), "NVM write {w}: invariant violations {ic_violations:?}");
    let rc_violations = rc_log.take();
    assert!(rc_violations.is_empty(), "NVM write {w}: recovery violations {rc_violations:?}");

    let words = vec![
        w,
        u64::from(recovered),
        if recovered { m.kernel.process(pid)?.regs.rip } else { 0 },
        report.log_records_replayed,
        report.torn_log_records,
        report.copy_fallbacks,
        report.frames_repaired,
        report.pages_remapped,
        report.dram_entries_dropped,
        m.now().as_u64(),
    ];
    drop(guard);
    Ok((recovered, words))
}

/// The write-granular sweep: cuts power after every `stride`-th NVM line
/// write of the workload (stride 1 = exhaustive; the exhaustive run is
/// CI tier 2 — the `sweep` job times it serial vs parallel via the bench
/// `sweep` binary). Returns a [`SweepOutcome`] whose `boundaries` counts
/// the crash points exercised.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails.
pub fn run_nvm_write_sweep(mode: PtMode, seed: u64, stride: u64) -> Result<SweepOutcome> {
    run_nvm_write_sweep_jobs(mode, seed, stride, parallel::default_jobs())
}

/// [`run_nvm_write_sweep`] with an explicit worker count.
///
/// # Errors
///
/// As [`run_nvm_write_sweep`].
pub fn run_nvm_write_sweep_jobs(
    mode: PtMode,
    seed: u64,
    stride: u64,
    jobs: usize,
) -> Result<SweepOutcome> {
    let golden = golden_run(mode)?;
    let stride = stride.max(1);
    let ambient = kindle_sim::thread_media_faults();
    let points: Vec<u64> = (0..golden.nvm_writes).step_by(stride as usize).collect();
    let results = parallel::par_map(jobs, points.clone(), move |w| {
        kindle_sim::set_thread_media_faults(ambient);
        let mut rng = Rng64::new(seed ^ (w + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        crash_at_nvm_write(mode, w, &mut rng)
    });
    let mut digest_words = vec![golden.boundaries, golden.nvm_writes, stride];
    let mut recovered = 0u64;
    for point in results {
        let (rec, words) = point?;
        recovered += u64::from(rec);
        digest_words.extend(words);
    }
    Ok(SweepOutcome {
        boundaries: points.len() as u64,
        recovered,
        digest: checksum64(&digest_words),
    })
}

/// NVM data pages the integrity workload maps and fills per grid point.
const INTEGRITY_PAGES: u64 = 4;
/// Patrold period of the data-integrity sweep: short enough that the drive
/// loop sees several full-pool batches.
const INTEGRITY_PATROL_INTERVAL: Cycles = Cycles::from_micros(10);

/// Aggregate result of one data-integrity sweep (see
/// [`run_data_integrity_sweep`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataIntegrityOutcome {
    /// Grid points exercised (ECP budget × daemons on/off).
    pub points: u64,
    /// Data lines healed in place by patrol erasure decode, summed.
    pub data_healed: u64,
    /// Mapped data frames poisoned (content unrecoverable), summed.
    pub data_poisoned: u64,
    /// Processes killed with `MemoryPoison`, summed.
    pub procs_killed: u64,
    /// Order-sensitive digest of every observable of every point.
    pub digest: u64,
}

/// The data-integrity machine: persistent page tables (so scrubd and the
/// patrol's table-skip both do real work), a controlled media model with
/// `budget` ECP entries per line and *no* ambient faults (the point seeds
/// its own stuck cells under data lines), and — on the daemon arm — both
/// scrubd and patrold.
fn integrity_config(budget: u32, daemons: bool, seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::small().with_pt_mode(PtMode::Persistent);
    if daemons {
        cfg = cfg
            .with_scrub_interval(STUCK_SCRUB_INTERVAL)
            .with_patrol_interval(INTEGRITY_PATROL_INTERVAL);
    }
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: 0,
        correction_entries: budget,
        ..MediaFaultConfig::with_seed(seed)
    });
    cfg
}

/// One grid point of the data-integrity sweep: fill mapped NVM data pages
/// through the checksummed store path, seed `stuck` single-bit stuck cells
/// under distinct data lines, let the daemons (when armed) patrol, and
/// verify the graceful-degradation contract:
///
/// * budget covers the erasures → every line healed byte-identical, nobody
///   dies, reads are clean;
/// * budget exhausted → the first corrupt frame found poisons its page and
///   kills the owner; the frame stays quarantined; later victim accesses
///   fail instead of returning corrupt bytes;
/// * daemons off → the corruption persists silently (pinned by the shadow
///   mismatch count); the sanitizer stays quiet only because the workload
///   never reads the corrupt lines.
///
/// Returns `(healed, poisoned, killed, digest_words)`.
fn run_integrity_point(
    budget: u32,
    daemons: bool,
    stuck: usize,
    seed: u64,
) -> Result<(u64, u64, u64, Vec<u64>)> {
    const WORDS_PER_PAGE: u64 = PAGE_SIZE as u64 / 8;
    const LINES_PER_PAGE: u64 = PAGE_SIZE as u64 / 64;

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let guard = sanitize::install(Box::new(ic));
    let mut m = Machine::new(integrity_config(budget, daemons, seed))?;
    let victim = m.spawn_process()?;
    let driver = m.spawn_process()?;
    let va = m.mmap(
        victim,
        INTEGRITY_PAGES * PAGE_SIZE as u64,
        Prot::RW,
        MapFlags::NVM | MapFlags::POPULATE,
    )?;

    // Fill every line through the data path, recording store-time
    // checksums; keep a host-side shadow of the intended words.
    let mut rng = Rng64::new(seed);
    let mut frames = Vec::new();
    let mut shadow = Vec::with_capacity((INTEGRITY_PAGES * WORDS_PER_PAGE) as usize);
    for page in 0..INTEGRITY_PAGES {
        let pte = m
            .kernel
            .translate(&mut m.hw, victim, va + page * PAGE_SIZE as u64)?
            .expect("populated page is mapped");
        frames.push(pte.pfn());
        for w in 0..WORDS_PER_PAGE {
            let val = rng.next_u64();
            m.hw.write_u64(pte.pfn().base() + w * 8, val);
            shadow.push(val);
        }
    }

    // Seed `stuck` single-bit stuck cells under distinct data lines: one
    // erasure per line, so any nonzero ECP budget can heal every one.
    let mut chosen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    while chosen.len() < stuck.min((INTEGRITY_PAGES * LINES_PER_PAGE) as usize) {
        chosen.insert(rng.gen_below(INTEGRITY_PAGES * LINES_PER_PAGE));
    }
    let mut degraded_pages: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for &slot in &chosen {
        let (page, line) = (slot / LINES_PER_PAGE, slot % LINES_PER_PAGE);
        let line_pa = frames[page as usize].base().as_u64() + line * 64;
        let bit = rng.gen_below(512) as u32;
        assert!(m.hw.mc.degrade_line_bit(line_pa, bit), "stuck cell seeding failed");
        degraded_pages.insert(page);
    }
    let stuck = chosen.len() as u64;

    // Drive the clock from the driver process until patrold has covered
    // the pool (or the victim died); with daemons off, just a fixed spin.
    let dva = m.mmap(driver, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY)?;
    let spins = if daemons { 400_000 } else { 64 };
    for _ in 0..spins {
        m.access(driver, dva, AccessKind::Write)?;
        if !daemons {
            continue;
        }
        let passes = m.patrol.as_ref().map_or(0, |p| p.stats().passes);
        let victim_dead = m.kernel.process(victim).is_err();
        if passes >= 2 && (budget > 0 || stuck == 0 || victim_dead) {
            break;
        }
    }

    let patrol = m.patrol.as_ref().map(|p| p.stats().clone()).unwrap_or_default();
    let victim_dead = m.kernel.process(victim).is_err();
    let mut mismatches = 0u64;
    if !daemons {
        // Daemons off: silent corruption persists — pin its footprint.
        assert_eq!(patrol.passes, 0);
        for page in 0..INTEGRITY_PAGES {
            for w in 0..WORDS_PER_PAGE {
                let got = m.hw.read_u64(frames[page as usize].base() + w * 8);
                mismatches += u64::from(got != shadow[(page * WORDS_PER_PAGE + w) as usize]);
            }
            if !degraded_pages.contains(&page) {
                m.access(victim, va + page * PAGE_SIZE as u64, AccessKind::Read)?;
            }
        }
        assert_eq!(mismatches, stuck, "each stuck bit flips exactly one stored word");
    } else if budget > 0 {
        // Healable: every seeded erasure decoded back, byte-identical.
        assert_eq!(patrol.lines_healed, stuck, "every degraded line heals under budget");
        assert_eq!(patrol.frames_poisoned, 0);
        assert!(!victim_dead, "nobody dies on healable faults");
        for page in 0..INTEGRITY_PAGES {
            for w in 0..WORDS_PER_PAGE {
                let got = m.hw.read_u64(frames[page as usize].base() + w * 8);
                assert_eq!(got, shadow[(page * WORDS_PER_PAGE + w) as usize], "healed bytes");
            }
            // The application-visible read path must also be clean (the
            // sanitizer verifies no read consumed an uncorrected line).
            m.access(victim, va + page * PAGE_SIZE as u64, AccessKind::Read)?;
        }
    } else if stuck > 0 {
        // Unhealable: graceful degradation, never corrupt reads.
        assert_eq!(patrol.procs_killed, 1, "victim killed once");
        assert!(patrol.frames_poisoned >= 1);
        assert!(victim_dead);
        let err = m.access(victim, va, AccessKind::Read).unwrap_err();
        assert!(
            matches!(err, kindle_types::KindleError::NoSuchProcess(p) if p == victim),
            "post-kill access fails instead of returning corrupt bytes: {err:?}"
        );
    }

    let violations = ic_log.take();
    assert!(violations.is_empty(), "integrity point violations: {violations:?}");
    drop(guard);

    let words = vec![
        budget as u64,
        u64::from(daemons),
        stuck,
        patrol.passes,
        patrol.frames_checked,
        patrol.lines_detected,
        patrol.lines_healed,
        patrol.frames_poisoned,
        patrol.frames_retired,
        patrol.procs_killed,
        m.scrub.as_ref().map_or(0, |s| s.stats().passes),
        u64::from(victim_dead),
        mismatches,
        m.now().as_u64(),
    ];
    Ok((patrol.lines_healed, patrol.frames_poisoned, patrol.procs_killed, words))
}

/// The data-integrity sweep: a grid of (ECP budget × daemons on/off)
/// points, each seeding `stuck` stuck cells under *data* frames and
/// verifying the checksum-patrol/poison/graceful-degradation contract (see
/// [`run_integrity_point`]'s contract list). Equal seeds must yield equal
/// digests regardless of worker count.
///
/// # Errors
///
/// Propagates machine/workload failures.
///
/// # Panics
///
/// Panics when a point violates the integrity contract (missed heal,
/// corrupt read, surviving owner of a lost page, sanitizer violations).
pub fn run_data_integrity_sweep(seed: u64, stuck: usize) -> Result<DataIntegrityOutcome> {
    run_data_integrity_sweep_jobs(seed, stuck, parallel::default_jobs())
}

/// [`run_data_integrity_sweep`] with an explicit worker count (`jobs = 1`
/// is the exact serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_data_integrity_sweep`].
pub fn run_data_integrity_sweep_jobs(
    seed: u64,
    stuck: usize,
    jobs: usize,
) -> Result<DataIntegrityOutcome> {
    let grid: Vec<(u64, u32, bool)> = [(0u32, false), (0, true), (2, false), (2, true)]
        .iter()
        .enumerate()
        .map(|(i, &(budget, daemons))| (i as u64, budget, daemons))
        .collect();
    let results = parallel::par_map(jobs, grid, move |(i, budget, daemons)| {
        // A fresh generator per point keeps grid points independent.
        let pseed = seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        run_integrity_point(budget, daemons, stuck, pseed)
    });
    let mut digest_words = vec![seed, stuck as u64];
    let (mut healed, mut poisoned, mut killed, mut points) = (0u64, 0u64, 0u64, 0u64);
    for point in results {
        let (h, p, k, words) = point?;
        healed += h;
        poisoned += p;
        killed += k;
        points += 1;
        digest_words.extend(words);
    }
    Ok(DataIntegrityOutcome {
        points,
        data_healed: healed,
        data_poisoned: poisoned,
        procs_killed: killed,
        digest: checksum64(&digest_words),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_enumerates_boundaries() {
        let g = golden_run(PtMode::Rebuild).unwrap();
        assert!(g.boundaries > 10, "workload too small to sweep: {g:?}");
        assert!(g.nvm_writes > 0);
        assert_eq!(g.publishes.len(), 3);
        // Publishes appear in boundary order with the phase markers.
        assert!(g.publishes.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(g.publishes[0].1, 0x1111);
    }

    #[test]
    fn golden_run_is_deterministic() {
        let a = golden_run(PtMode::Rebuild).unwrap();
        let b = golden_run(PtMode::Rebuild).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn expected_marker_uses_flip_drain_boundary() {
        let g = GoldenRun { boundaries: 20, nvm_writes: 0, publishes: vec![(5, 0xaa), (12, 0xbb)] };
        assert_eq!(expected_marker(&g, 3), None);
        // The publish at index 5 drained its flip at index 4.
        assert_eq!(expected_marker(&g, 4), Some(0xaa));
        assert_eq!(expected_marker(&g, 5), Some(0xaa));
        assert_eq!(expected_marker(&g, 10), Some(0xaa));
        assert_eq!(expected_marker(&g, 11), Some(0xbb));
        assert_eq!(expected_marker(&g, 19), Some(0xbb));
    }
}
