//! The crash-sweep harness.
//!
//! A *sweep* proves the recovery story at every step of the persistence
//! protocol, not just at hand-picked crash points:
//!
//! 1. a **golden run** executes a deterministic checkpointed workload with
//!    a passive [`BoundaryCounter`] installed, enumerating every
//!    persist-boundary event (log appends/truncations, checkpoint
//!    publishes, write-buffer drains) and noting which boundary each
//!    checkpoint publish landed on. The workload is a flat *step list*,
//!    and the golden run captures a [`kindle_sim::MachineSnapshot`] after
//!    each step into a bounded-retention [`SnapshotPool`];
//! 2. for **each** crash point, a machine is *forked* from the nearest
//!    snapshot at or before the point (falling back to a fresh machine for
//!    points inside construction/spawn), with a [`PowerCutTrigger`] armed
//!    to cut power right at the point. Execution stops at the first step
//!    boundary after the cut (real hardware executes nothing after a power
//!    cut), then the harness crashes with write-buffer tearing
//!    ([`kindle_sim::Machine::crash_torn`]), recovers, and checks:
//!    - the recovered execution context matches the last checkpoint whose
//!      publish flip had drained by the cut — no more, no less;
//!    - the PR-1 [`InvariantChecker`] and the [`RecoveryChecker`] saw zero
//!      violations across crash and recovery;
//!    - the machine still works: a post-recovery mmap/touch/checkpoint
//!      round must succeed.
//! 3. every observable of every crash point is folded into a digest;
//!    running the sweep twice with one seed must produce identical
//!    digests, pinning byte-for-byte determinism of the fault machinery.
//!
//! Forking turns the sweep from O(n²) simulated work (replay the whole
//! prefix from cycle 0 for each of n points) into O(n): each point costs
//! one snapshot restore plus at most a few workload steps. The
//! [`SweepStrategy::ReplayFromZero`] strategy keeps the old from-scratch
//! execution alive as a cross-check — both strategies must produce
//! **byte-identical digests** (the `sweep` bench binary's
//! `--verify-replay` mode and the crash_sweep integration tests pin
//! exactly that), which is only possible if snapshot/restore captures the
//! entire machine faithfully.
//!
//! Crash points are mutually independent (each forks its own machine with
//! its own per-point RNG), so the sweep fans out over
//! [`kindle_core::parallel::par_map`] workers; the snapshot pool is shared
//! across workers by reference (snapshots are `Send + Sync`). The digest
//! folds each point's observables **in crash-point order** regardless of
//! which worker finished first, so `KINDLE_JOBS=1` and `KINDLE_JOBS=8`
//! produce identical [`SweepOutcome`]s — the determinism tests pin exactly
//! that.

use std::cell::RefCell;
use std::rc::Rc;

use kindle_core::parallel;

use kindle_mem::MediaFaultConfig;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig, MachineSnapshot};
use kindle_types::sanitize::{self, Event, InvariantChecker, Sanitizer, ThreadId, ViolationLog};
use kindle_types::{
    checksum64, AccessKind, Cycles, MapFlags, PhysMem, Prot, Result, Rng64, VirtAddr, PAGE_SIZE,
};

use crate::plan::{FaultPlan, FaultPoint};
use crate::recovery_checker::{RecoveryChecker, RecoveryViolationLog};
use crate::trigger::{BoundaryCounter, PowerCutTrigger};

/// `rip` markers distinguishing the workload's checkpointed phases.
const PHASE_MARKERS: [u64; 3] = [0x1111, 0x2222, 0x3333];
/// `rip` marker of the post-recovery continuation checkpoint.
const CONTINUATION_MARKER: u64 = 0x9999;
/// Weyl-sequence constant deriving independent per-point RNG streams.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;
/// Snapshot-pool capacity: enough to keep a snapshot every couple of
/// workload steps, small enough that a sweep's resident memory stays a
/// handful of machine images (the pool thins itself by doubling its step
/// stride whenever it would exceed this).
const SNAPSHOT_POOL_CAPACITY: usize = 32;

/// How a sweep executes each crash point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepStrategy {
    /// Fork each crash point from the nearest golden-run snapshot — O(n)
    /// total simulated work. The default.
    #[default]
    SnapshotFork,
    /// Re-execute the whole workload from cycle 0 for each point — the
    /// original O(n²) path, kept as the cross-check oracle: its digests
    /// must be byte-identical to [`SweepStrategy::SnapshotFork`]'s.
    ReplayFromZero,
}

/// What the golden run learned about the workload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GoldenRun {
    /// Total persist-boundary events (= crash points to sweep).
    pub boundaries: u64,
    /// Total NVM line writes.
    pub nvm_writes: u64,
    /// `(boundary_index, rip_marker)` of each checkpoint publish.
    pub publishes: Vec<(u64, u64)>,
}

/// Aggregate result of one full sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Crash points exercised (one injected crash each).
    pub boundaries: u64,
    /// Crash points after which the workload process was recovered.
    pub recovered: u64,
    /// Order-sensitive digest of every observable of every crash point.
    pub digest: u64,
}

/// Instrumentation from one sweep: golden enumeration sizes plus
/// snapshot-pool behaviour. The `sweep` bench binary folds these into the
/// `SWEEP_timing.json` CI artifact so the O(n) fork tier can never
/// silently regress to O(n²) replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepTelemetry {
    /// Persist boundaries the golden run enumerated.
    pub boundaries: u64,
    /// NVM line writes the golden run enumerated.
    pub nvm_writes: u64,
    /// Snapshots offered to the pool (one per workload step, plus the
    /// post-spawn baseline). Zero under [`SweepStrategy::ReplayFromZero`].
    pub snapshots_offered: u64,
    /// Snapshots retained when the golden run finished.
    pub snapshots_retained: u64,
    /// Most snapshots the pool ever held at once (bounded-retention high
    /// water; never exceeds `pool_capacity`).
    pub pool_high_water: u64,
    /// Pool capacity the thinning policy enforces.
    pub pool_capacity: u64,
    /// Final thinning stride (a snapshot survives if its step index is a
    /// multiple of this).
    pub pool_stride: u64,
}

/// Adapter letting the harness keep a handle on a sanitizer it installed.
struct SharedSanitizer<S: Sanitizer>(Rc<RefCell<S>>);

impl<S: Sanitizer> Sanitizer for SharedSanitizer<S> {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        self.0.borrow_mut().on_event(tid, ev);
    }
}

/// Fans one event stream out to several sanitizers in order.
struct Fanout(Vec<Box<dyn Sanitizer>>);

impl Sanitizer for Fanout {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        for s in &mut self.0 {
            s.on_event(tid, ev);
        }
    }
}

/// The machine under test: checkpointing on, but at an interval the
/// workload never reaches — every checkpoint is an explicit
/// `checkpoint_now`, so the golden boundary enumeration is stable.
/// `threaded` additionally runs checkpoints on the simulated daemon
/// kthread: the boundary *structure* is unchanged (thread switches are not
/// persist boundaries), only cycle stamps and event thread ids move.
fn config(mode: PtMode, threaded: bool) -> MachineConfig {
    let cfg =
        MachineConfig::small().with_pt_mode(mode).with_checkpointing(Cycles::from_millis(1000));
    if threaded {
        cfg.with_kthreads()
    } else {
        cfg
    }
}

/// Scrubd period of the stuck-cell sweep: short enough that verify passes
/// interleave the workload's checkpoint phases instead of landing after
/// the whole run.
const STUCK_SCRUB_INTERVAL: Cycles = Cycles::from_micros(40);

/// ECP correction entries per line in the stuck-cell sweep: two covers
/// every line uniform seeding realistically produces (a triple collision
/// among ~2M lines is vanishingly rare), so the protocol state stays
/// faithful at every crash point while the correction layer does real
/// work.
const STUCK_CORRECTION_ENTRIES: u32 = 2;

/// The stuck-cell machine: the boundary-sweep config plus `stuck` seeded
/// stuck-at cells (wear-out off, so every fault is a stuck cell), the ECP
/// correction layer, and the scrub daemon verifying page-table frames.
fn stuck_config(mode: PtMode, seed: u64, stuck: usize) -> MachineConfig {
    let mut cfg = config(mode, false).with_scrub_interval(STUCK_SCRUB_INTERVAL);
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: stuck,
        correction_entries: STUCK_CORRECTION_ENTRIES,
        ..MediaFaultConfig::with_seed(seed)
    });
    cfg
}

/// One step of the deterministic workload. The workload is a flat step
/// list (not a loop body) so the golden run can capture a machine snapshot
/// between any two steps and a forked crash point can resume execution at
/// an arbitrary step index. Boundaries *within* a step are reached by
/// replaying that one step from the preceding snapshot — bounded work.
#[derive(Clone, Copy, Debug)]
enum WorkloadStep {
    /// Map the DRAM scratch region the analysis passes stream over.
    MapScratch,
    /// Map the next phase's 4 NVM data pages.
    Map,
    /// Touch one page of an already-mapped phase.
    Touch {
        /// Phase whose mapping to touch.
        phase: usize,
        /// Page index within the phase's mapping.
        page: u64,
    },
    /// One cache-resident read pass over the DRAM scratch region: the
    /// compute a real workload does between persists. Analysis passes add
    /// **zero** NVM writes (so zero crash points) but dominate the
    /// workload's simulated time — exactly the work a replay-from-zero
    /// sweep re-executes for every crash point and a snapshot fork skips.
    Analyze {
        /// Pass index (varies the address stream deterministically).
        pass: u32,
    },
    /// Stamp the phase marker into `rip` and checkpoint.
    Publish {
        /// Phase being published.
        phase: usize,
    },
    /// Map/unmap churn between phases (redo-log-only traffic).
    Churn,
}

/// DRAM scratch pages the analysis passes stream over (small enough to
/// stay cache-resident: the passes are compute, not eviction pressure on
/// the phases' NVM lines).
const SCRATCH_PAGES: u64 = 4;
/// Reads per analysis pass.
const ANALYZE_READS: u64 = 4096;
/// Analysis passes per phase. Trimmed under debug builds: the replay
/// cross-check oracle re-executes the analysis prefix once per crash
/// point, which the unoptimised interpreter turns from seconds into
/// minutes. Every sweep property is relative (fork vs replay, jobs=1 vs
/// jobs=N), so the two profiles never compare counts; the release value
/// is what CI's golden-pinned `BENCH_sweep.json` measures.
#[cfg(not(debug_assertions))]
const ANALYZE_PASSES: u32 = 56;
#[cfg(debug_assertions)]
const ANALYZE_PASSES: u32 = 8;

/// Mutable workload context threaded through the steps (and captured
/// alongside each snapshot so a fork can resume mid-list).
#[derive(Clone, Debug, Default)]
struct WorkloadState {
    /// Base address of each phase's mapping, in phase order.
    bases: Vec<VirtAddr>,
    /// Base of the DRAM scratch region (set by [`WorkloadStep::MapScratch`]).
    scratch: Option<VirtAddr>,
}

/// The deterministic workload as a step list: three phases, each mapping
/// and touching NVM pages, running cache-resident analysis passes over a
/// DRAM scratch region, then stamping a phase marker into `rip` and
/// checkpointing; between checkpoints, map/unmap churn that only the redo
/// log records. The analysis passes carry most of the simulated time but
/// none of the crash points, which is what makes replaying the prefix
/// from cycle 0 for every point quadratically expensive while a fork pays
/// for at most one pool stride's worth of steps.
fn workload_steps() -> Vec<WorkloadStep> {
    let mut steps = vec![WorkloadStep::MapScratch];
    for phase in 0..PHASE_MARKERS.len() {
        steps.push(WorkloadStep::Map);
        for page in 0..4 {
            steps.push(WorkloadStep::Touch { phase, page });
        }
        for p in 0..ANALYZE_PASSES {
            steps.push(WorkloadStep::Analyze { pass: phase as u32 * ANALYZE_PASSES + p });
        }
        steps.push(WorkloadStep::Publish { phase });
        if phase + 1 < PHASE_MARKERS.len() {
            steps.push(WorkloadStep::Churn);
        }
    }
    steps
}

/// Executes one workload step.
fn exec_step(
    m: &mut Machine,
    pid: u32,
    state: &mut WorkloadState,
    step: WorkloadStep,
) -> Result<()> {
    match step {
        WorkloadStep::MapScratch => {
            let va = m.mmap(pid, SCRATCH_PAGES * PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY)?;
            state.scratch = Some(va);
        }
        WorkloadStep::Analyze { pass } => {
            let base = state.scratch.expect("MapScratch precedes every Analyze");
            for i in 0..ANALYZE_READS {
                let n = pass as u64 * ANALYZE_READS + i;
                let addr = base + (n % SCRATCH_PAGES) * PAGE_SIZE as u64 + (n % 64) * 64;
                m.access(pid, addr, AccessKind::Read)?;
            }
        }
        WorkloadStep::Map => {
            let va = m.mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
            state.bases.push(va);
        }
        WorkloadStep::Touch { phase, page } => {
            m.access(pid, state.bases[phase] + page * PAGE_SIZE as u64, AccessKind::Write)?;
        }
        WorkloadStep::Publish { phase } => {
            m.kernel.process_mut(pid)?.regs.rip = PHASE_MARKERS[phase];
            m.checkpoint_now()?;
        }
        WorkloadStep::Churn => {
            let extra = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
            m.munmap(pid, extra, PAGE_SIZE as u64)?;
        }
    }
    Ok(())
}

/// Runs the whole step list (the golden workload, start to finish).
fn run_workload(m: &mut Machine, pid: u32) -> Result<()> {
    let mut state = WorkloadState::default();
    for step in workload_steps() {
        exec_step(m, pid, &mut state, step)?;
    }
    Ok(())
}

/// One golden-run capture: the machine snapshot taken after `step` steps,
/// plus everything a forked crash point needs to resume as if it had
/// executed the prefix itself.
struct SnapshotRecord {
    /// Workload steps executed before this capture (= index of the next
    /// step to run).
    step: usize,
    /// Persist-boundary events counted before this capture.
    boundaries: u64,
    /// NVM line writes counted before this capture.
    nvm_writes: u64,
    /// `(slot, copy)` of every checkpoint publish in the prefix — seeds
    /// the forked [`RecoveryChecker`]'s cross-crash copy-alternation
    /// memory, which a mid-run checker could not otherwise know.
    publishes: Vec<(u64, u64)>,
    /// Workload context at the capture.
    state: WorkloadState,
    /// The workload process id.
    pid: u32,
    /// The machine.
    snap: MachineSnapshot,
}

/// Bounded-retention snapshot pool (the buffer-pool idiom): snapshots are
/// offered in step order and kept while their step index is a multiple of
/// the current stride; whenever the pool would exceed its capacity the
/// stride doubles and the pool re-thins, so memory stays constant no
/// matter how long the golden run is. Step 0 (the post-spawn baseline) is
/// always a multiple of every stride, so a fork point is never without an
/// ancestor.
pub(crate) struct SnapshotPool {
    records: Vec<SnapshotRecord>,
    capacity: usize,
    stride: usize,
    high_water: usize,
    offered: usize,
}

impl SnapshotPool {
    fn new(capacity: usize) -> Self {
        SnapshotPool {
            records: Vec::new(),
            capacity: capacity.max(1),
            stride: 1,
            high_water: 0,
            offered: 0,
        }
    }

    fn offer(&mut self, rec: SnapshotRecord) {
        self.offered += 1;
        if rec.step % self.stride != 0 {
            return;
        }
        self.records.push(rec);
        while self.records.len() > self.capacity {
            self.stride *= 2;
            let stride = self.stride;
            self.records.retain(|r| r.step % stride == 0);
        }
        self.high_water = self.high_water.max(self.records.len());
    }

    /// The latest record usable for a cut at boundary `b` (its prefix must
    /// end at or before the cut point).
    fn nearest_boundary(&self, b: u64) -> Option<&SnapshotRecord> {
        self.records.iter().rev().find(|r| r.boundaries <= b)
    }

    /// The latest record usable for a cut at NVM write `w`.
    fn nearest_nvm_write(&self, w: u64) -> Option<&SnapshotRecord> {
        self.records.iter().rev().find(|r| r.nvm_writes <= w)
    }

    fn telemetry(&self, golden: &GoldenRun) -> SweepTelemetry {
        SweepTelemetry {
            boundaries: golden.boundaries,
            nvm_writes: golden.nvm_writes,
            snapshots_offered: self.offered as u64,
            snapshots_retained: self.records.len() as u64,
            pool_high_water: self.high_water as u64,
            pool_capacity: self.capacity as u64,
            pool_stride: self.stride as u64,
        }
    }
}

/// Builds the public [`GoldenRun`] from a finished counter.
///
/// # Panics
///
/// Panics if the workload did not publish one checkpoint per phase (the
/// harness itself would be broken).
fn golden_of(c: &BoundaryCounter) -> GoldenRun {
    assert_eq!(
        c.publishes.len(),
        PHASE_MARKERS.len(),
        "one publish per workload phase, got {:?}",
        c.publishes
    );
    GoldenRun {
        boundaries: c.boundaries,
        nvm_writes: c.nvm_writes,
        publishes: c
            .publishes
            .iter()
            .zip(PHASE_MARKERS)
            .map(|(p, marker)| (p.boundary, marker))
            .collect(),
    }
}

/// Runs the workload once with a passive counter installed and returns the
/// boundary enumeration.
///
/// # Errors
///
/// Propagates machine/workload failures.
///
/// # Panics
///
/// Panics if the workload did not publish one checkpoint per phase (the
/// harness itself would be broken).
pub fn golden_run(mode: PtMode) -> Result<GoldenRun> {
    golden_run_cfg(&config(mode, false))
}

/// The golden enumeration for an explicit machine config (the stuck-cell
/// sweep builds one with media faults and the scrub daemon armed).
fn golden_run_cfg(cfg: &MachineConfig) -> Result<GoldenRun> {
    let counter = Rc::new(RefCell::new(BoundaryCounter::new()));
    let guard = sanitize::install(Box::new(SharedSanitizer(counter.clone())));
    let mut m = Machine::new(cfg.clone())?;
    let pid = m.spawn_process()?;
    run_workload(&mut m, pid)?;
    drop(guard);
    drop(m);
    let golden = golden_of(&counter.borrow());
    Ok(golden)
}

/// The recording golden run: enumerates boundaries like
/// [`golden_run_cfg`] *and* captures a snapshot after every workload step
/// into a bounded pool. The machine runs with a (never-cut) power switch
/// armed so the controller maintains the same write-buffer undo tracking
/// the crash points run under — a snapshot must capture the exact state a
/// replay-from-zero machine would have at the same step. The full-run
/// [`InvariantChecker`] + [`RecoveryChecker`] ride along, preserving the
/// whole-prefix invariant coverage that per-point replays used to provide.
fn recorded_golden_cfg(cfg: &MachineConfig) -> Result<(GoldenRun, SnapshotPool)> {
    let counter = Rc::new(RefCell::new(BoundaryCounter::new()));
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let rc = RecoveryChecker::new();
    let rc_log = rc.log();
    let guard = sanitize::install(Box::new(Fanout(vec![
        Box::new(SharedSanitizer(counter.clone())),
        Box::new(ic),
        Box::new(rc),
    ])));
    let mut m = Machine::new(cfg.clone())?;
    let _armed = m.arm_power_cut();
    let pid = m.spawn_process()?;
    let mut pool = SnapshotPool::new(SNAPSHOT_POOL_CAPACITY);
    let mut state = WorkloadState::default();
    let capture = |pool: &mut SnapshotPool,
                   c: &Rc<RefCell<BoundaryCounter>>,
                   step: usize,
                   state: &WorkloadState,
                   m: &Machine| {
        let c = c.borrow();
        pool.offer(SnapshotRecord {
            step,
            boundaries: c.boundaries,
            nvm_writes: c.nvm_writes,
            publishes: c.publishes.iter().map(|p| (p.slot, p.copy)).collect(),
            state: state.clone(),
            pid,
            snap: m.snapshot(),
        });
    };
    capture(&mut pool, &counter, 0, &state, &m);
    for (i, step) in workload_steps().into_iter().enumerate() {
        exec_step(&mut m, pid, &mut state, step)?;
        capture(&mut pool, &counter, i + 1, &state, &m);
    }
    drop(guard);
    drop(m);
    let ic_violations = ic_log.take();
    assert!(ic_violations.is_empty(), "golden run invariant violations {ic_violations:?}");
    let rc_violations = rc_log.take();
    assert!(rc_violations.is_empty(), "golden run recovery violations {rc_violations:?}");
    let golden = golden_of(&counter.borrow());
    Ok((golden, pool))
}

/// The checkpoint the recovered machine must come back to when power is
/// cut right after boundary `b`: a publish at boundary index `i` became
/// durable at the drain immediately preceding it (index `i - 1`), so it
/// counts for every `b >= i - 1`.
fn expected_marker(golden: &GoldenRun, b: u64) -> Option<u64> {
    golden.publishes.iter().rev().find(|&&(i, _)| i <= b + 1).map(|&(_, marker)| marker)
}

/// A machine driven to its cut point, with the trigger guard still
/// installed (the checkers must watch the crash and recovery that follow).
struct CutRun {
    m: Machine,
    pid: u32,
    _guard: sanitize::Installed,
    ic_log: ViolationLog,
    rc_log: RecoveryViolationLog,
}

/// Drives one machine to its cut point: forked from the nearest pool
/// snapshot when one is usable, from scratch otherwise (no pool, or the
/// cut lands inside construction/spawn — before the first capture).
/// Execution stops at the first step boundary after the cut fires: nothing
/// a real machine would run after a power cut is simulated, and both
/// origins stop at the same step, which is what makes their digests
/// byte-identical.
fn run_to_cut(
    cfg: &MachineConfig,
    pool: Option<&SnapshotPool>,
    point: FaultPoint,
) -> Result<CutRun> {
    let rec = pool.and_then(|p| match point {
        FaultPoint::Boundary(b) => p.nearest_boundary(b),
        FaultPoint::NvmWrite(w) => p.nearest_nvm_write(w),
        FaultPoint::Cycle(_) => None,
    });
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let steps = workload_steps();
    if let Some(rec) = rec {
        // The trigger counts suffix events from zero, so the plan is
        // re-based onto the events the snapshot's prefix already consumed.
        let plan = match point {
            FaultPoint::Boundary(b) => FaultPlan::at_boundary(b - rec.boundaries),
            FaultPoint::NvmWrite(w) => FaultPlan::at_nvm_write(w - rec.nvm_writes),
            FaultPoint::Cycle(c) => FaultPlan::at_cycle(c),
        };
        let rc = RecoveryChecker::with_publishes(&rec.publishes);
        let rc_log = rc.log();
        let trigger = PowerCutTrigger::new(plan, vec![Box::new(ic), Box::new(rc)]);
        let switch = trigger.switch();
        let guard = sanitize::install(Box::new(trigger));
        let mut m = Machine::restore(&rec.snap);
        m.hw.mc.arm_power_cut(switch.clone());
        let mut state = rec.state.clone();
        for &step in &steps[rec.step..] {
            if switch.is_cut() {
                break;
            }
            exec_step(&mut m, rec.pid, &mut state, step)?;
        }
        assert!(switch.is_cut(), "{point:?} never reached from snapshot; golden run out of sync");
        return Ok(CutRun { m, pid: rec.pid, _guard: guard, ic_log, rc_log });
    }
    let rc = RecoveryChecker::new();
    let rc_log = rc.log();
    let trigger = PowerCutTrigger::new(FaultPlan { point }, vec![Box::new(ic), Box::new(rc)]);
    let switch = trigger.switch();
    let guard = sanitize::install(Box::new(trigger));
    let mut m = Machine::new(cfg.clone())?;
    m.hw.mc.arm_power_cut(switch.clone());
    let pid = m.spawn_process()?;
    let mut state = WorkloadState::default();
    for &step in &steps {
        if switch.is_cut() {
            break;
        }
        exec_step(&mut m, pid, &mut state, step)?;
    }
    assert!(switch.is_cut(), "{point:?} never reached; golden run out of sync");
    Ok(CutRun { m, pid, _guard: guard, ic_log, rc_log })
}

/// Crashes one machine at boundary `b` (tearing with `rng`), recovers,
/// verifies, and returns whether the workload process survived plus this
/// crash point's digest observables.
fn crash_at_boundary(
    cfg: &MachineConfig,
    golden: &GoldenRun,
    pool: Option<&SnapshotPool>,
    b: u64,
    rng: &mut Rng64,
) -> Result<(bool, Vec<u64>)> {
    let CutRun { mut m, pid, _guard, ic_log, rc_log } =
        run_to_cut(cfg, pool, FaultPoint::Boundary(b))?;

    m.crash_torn(rng)?;
    let report = m.recover()?;

    // The recovered context must be exactly the last durable checkpoint.
    let recovered = match expected_marker(golden, b) {
        Some(marker) => {
            assert_eq!(
                report.recovered_pids,
                vec![pid],
                "boundary {b}: process must recover ({report:?})"
            );
            let rip = m.kernel.process(pid)?.regs.rip;
            assert_eq!(
                rip, marker,
                "boundary {b}: recovered rip {rip:#x}, want last durable checkpoint {marker:#x}"
            );
            true
        }
        None => {
            assert!(
                report.recovered_pids.is_empty(),
                "boundary {b}: no checkpoint was durable yet, got {report:?}"
            );
            false
        }
    };

    // The machine must still be fully operational after recovery.
    let cont_pid = if recovered { pid } else { m.spawn_process()? };
    let cva = m.mmap(cont_pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
    m.access(cont_pid, cva, AccessKind::Write)?;
    m.kernel.process_mut(cont_pid)?.regs.rip = CONTINUATION_MARKER;
    m.checkpoint_now()?;

    let ic_violations = ic_log.take();
    assert!(ic_violations.is_empty(), "boundary {b}: invariant violations {ic_violations:?}");
    let rc_violations = rc_log.take();
    assert!(rc_violations.is_empty(), "boundary {b}: recovery violations {rc_violations:?}");

    let mut words = vec![
        b,
        u64::from(recovered),
        if recovered { m.kernel.process(pid)?.regs.rip } else { 0 },
        report.log_records_replayed,
        report.torn_log_records,
        report.copy_fallbacks,
        report.frames_repaired,
        report.pages_remapped,
        report.dram_entries_dropped,
        m.now().as_u64(),
    ];
    // With scrubd armed the scrub/correction work is part of what the seed
    // must pin, so its counters join the digest (plain sweeps append
    // nothing, keeping their digests comparable with older runs).
    if let Some(s) = &m.scrub {
        let st = s.stats();
        let media = m.hw.mc.stats().media;
        words.extend([
            st.passes,
            st.lines_detected,
            st.lines_corrected,
            st.frames_retired,
            media.corrections_allocated,
            media.uncorrectable_line_writes,
        ]);
    }
    Ok((recovered, words))
}

/// Runs the full sweep for one page-table scheme: golden enumeration, then
/// one torn crash + verified recovery per boundary. All tearing randomness
/// derives from `seed`, so equal seeds must yield equal
/// [`SweepOutcome::digest`]s.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails (wrong checkpoint recovered, checker
/// violations, golden run out of sync).
pub fn run_sweep(mode: PtMode, seed: u64) -> Result<SweepOutcome> {
    run_sweep_strategy(mode, seed, false, parallel::default_jobs(), SweepStrategy::default())
}

/// [`run_sweep`] with an explicit worker count (`jobs = 1` is the exact
/// serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_jobs(mode: PtMode, seed: u64, jobs: usize) -> Result<SweepOutcome> {
    run_sweep_strategy(mode, seed, false, jobs, SweepStrategy::default())
}

/// [`run_sweep`] with every checkpoint executing on the simulated
/// checkpoint daemon kthread. The thread interleaving is replayed
/// deterministically from the seed: the schedule is a pure function of the
/// (seed-fixed) event sequence, so equal seeds still mean equal digests.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_threaded(mode: PtMode, seed: u64) -> Result<SweepOutcome> {
    run_sweep_strategy(mode, seed, true, parallel::default_jobs(), SweepStrategy::default())
}

/// [`run_sweep`] with an explicit worker count and crash-point execution
/// strategy — the cross-check entry point: both strategies must return the
/// identical [`SweepOutcome`], digest included.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_strategy(
    mode: PtMode,
    seed: u64,
    threaded: bool,
    jobs: usize,
    strategy: SweepStrategy,
) -> Result<SweepOutcome> {
    Ok(run_sweep_cfg(&config(mode, threaded), seed, jobs, &[], strategy)?.0)
}

/// The boundary sweep against an explicit machine config. `extra_words`
/// prefixes the digest so variants (e.g. different stuck-cell counts)
/// cannot collide.
fn run_sweep_cfg(
    cfg: &MachineConfig,
    seed: u64,
    jobs: usize,
    extra_words: &[u64],
    strategy: SweepStrategy,
) -> Result<(SweepOutcome, SweepTelemetry)> {
    let (golden, pool) = match strategy {
        SweepStrategy::SnapshotFork => {
            let (g, p) = recorded_golden_cfg(cfg)?;
            (g, Some(p))
        }
        SweepStrategy::ReplayFromZero => (golden_run_cfg(cfg)?, None),
    };
    // Workers have their own thread-locals: republish the caller's ambient
    // media-fault model so the sweep is jobs-invariant even under --faults.
    let ambient = kindle_sim::thread_media_faults();
    let ambient_legacy = kindle_sim::thread_legacy_maps();
    let ambient_backend = kindle_sim::thread_backend();
    let golden_ref = &golden;
    let pool_ref = pool.as_ref();
    let results = parallel::par_map(jobs, (0..golden.boundaries).collect(), move |b| {
        kindle_sim::set_thread_media_faults(ambient);
        kindle_sim::set_thread_legacy_maps(ambient_legacy);
        kindle_sim::set_thread_backend(ambient_backend);
        // A fresh generator per boundary keeps crash points independent:
        // inserting a boundary does not shift every later tear.
        let mut rng = Rng64::new(seed ^ (b + 1).wrapping_mul(GOLDEN_GAMMA));
        crash_at_boundary(cfg, golden_ref, pool_ref, b, &mut rng)
    });
    let mut digest_words = extra_words.to_vec();
    digest_words.extend([golden.boundaries, golden.nvm_writes]);
    let mut recovered = 0u64;
    for point in results {
        let (rec, words) = point?;
        recovered += u64::from(rec);
        digest_words.extend(words);
    }
    let telemetry = pool.as_ref().map(|p| p.telemetry(&golden)).unwrap_or(SweepTelemetry {
        boundaries: golden.boundaries,
        nvm_writes: golden.nvm_writes,
        ..SweepTelemetry::default()
    });
    let outcome = SweepOutcome {
        boundaries: golden.boundaries,
        recovered,
        digest: checksum64(&digest_words),
    };
    Ok((outcome, telemetry))
}

/// The stuck-cell sweep: the full boundary crash/recovery sweep run
/// against NVM media seeded with `stuck` stuck-at cells, with the ECP
/// correction layer and the scrub daemon armed. Every crash point must
/// still recover exactly the last durable checkpoint with zero sanitizer
/// violations — the stuck cells the workload's write set crosses are
/// absorbed by write-time correction, and scrubd verify passes (whose
/// counters join the digest) keep the NVM-resident page tables honest
/// across every crash and recovery.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails (wrong checkpoint recovered, checker
/// violations, golden run out of sync).
pub fn run_stuck_sweep(mode: PtMode, seed: u64, stuck: usize) -> Result<SweepOutcome> {
    run_stuck_sweep_strategy(mode, seed, stuck, parallel::default_jobs(), SweepStrategy::default())
}

/// [`run_stuck_sweep`] with an explicit worker count (`jobs = 1` is the
/// exact serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_stuck_sweep`].
pub fn run_stuck_sweep_jobs(
    mode: PtMode,
    seed: u64,
    stuck: usize,
    jobs: usize,
) -> Result<SweepOutcome> {
    run_stuck_sweep_strategy(mode, seed, stuck, jobs, SweepStrategy::default())
}

/// [`run_stuck_sweep`] with an explicit worker count and strategy.
///
/// # Errors
///
/// As [`run_stuck_sweep`].
pub fn run_stuck_sweep_strategy(
    mode: PtMode,
    seed: u64,
    stuck: usize,
    jobs: usize,
    strategy: SweepStrategy,
) -> Result<SweepOutcome> {
    let cfg = stuck_config(mode, seed, stuck);
    Ok(run_sweep_cfg(&cfg, seed, jobs, &[stuck as u64], strategy)?.0)
}

/// Crashes one machine right after its `w`-th NVM line write, recovers,
/// verifies, and appends the observables to `digest_words`. Unlike a
/// boundary cut, a write-granular cut can land mid-protocol, so the
/// expected checkpoint is not derivable from the golden enumeration;
/// instead the check is that recovery lands on *some* phase checkpoint (or
/// cleanly on none), with zero checker violations, and that the machine is
/// operational afterwards.
fn crash_at_nvm_write(
    cfg: &MachineConfig,
    pool: Option<&SnapshotPool>,
    w: u64,
    rng: &mut Rng64,
) -> Result<(bool, Vec<u64>)> {
    let CutRun { mut m, pid, _guard, ic_log, rc_log } =
        run_to_cut(cfg, pool, FaultPoint::NvmWrite(w))?;

    m.crash_torn(rng)?;
    let report = m.recover()?;

    let recovered = report.recovered_pids.contains(&pid);
    if recovered {
        let rip = m.kernel.process(pid)?.regs.rip;
        assert!(
            PHASE_MARKERS.contains(&rip),
            "NVM write {w}: recovered rip {rip:#x} is not a phase checkpoint"
        );
    }

    // The machine must still be fully operational after recovery.
    let cont_pid = if recovered { pid } else { m.spawn_process()? };
    let cva = m.mmap(cont_pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
    m.access(cont_pid, cva, AccessKind::Write)?;
    m.kernel.process_mut(cont_pid)?.regs.rip = CONTINUATION_MARKER;
    m.checkpoint_now()?;

    let ic_violations = ic_log.take();
    assert!(ic_violations.is_empty(), "NVM write {w}: invariant violations {ic_violations:?}");
    let rc_violations = rc_log.take();
    assert!(rc_violations.is_empty(), "NVM write {w}: recovery violations {rc_violations:?}");

    let words = vec![
        w,
        u64::from(recovered),
        if recovered { m.kernel.process(pid)?.regs.rip } else { 0 },
        report.log_records_replayed,
        report.torn_log_records,
        report.copy_fallbacks,
        report.frames_repaired,
        report.pages_remapped,
        report.dram_entries_dropped,
        m.now().as_u64(),
    ];
    Ok((recovered, words))
}

/// The write-granular sweep: cuts power after every `stride`-th NVM line
/// write of the workload (stride 1 = exhaustive; the exhaustive run is
/// CI tier 2 — the `sweep` job times it serial vs parallel via the bench
/// `sweep` binary). Returns a [`SweepOutcome`] whose `boundaries` counts
/// the crash points exercised.
///
/// # Errors
///
/// Propagates machine/workload/recovery failures.
///
/// # Panics
///
/// Panics when a recovery check fails.
pub fn run_nvm_write_sweep(mode: PtMode, seed: u64, stride: u64) -> Result<SweepOutcome> {
    run_nvm_write_sweep_jobs(mode, seed, stride, parallel::default_jobs())
}

/// [`run_nvm_write_sweep`] with an explicit worker count.
///
/// # Errors
///
/// As [`run_nvm_write_sweep`].
pub fn run_nvm_write_sweep_jobs(
    mode: PtMode,
    seed: u64,
    stride: u64,
    jobs: usize,
) -> Result<SweepOutcome> {
    Ok(run_nvm_write_sweep_instrumented(mode, seed, stride, jobs, SweepStrategy::default())?.0)
}

/// [`run_nvm_write_sweep`] with an explicit worker count and strategy,
/// also returning the sweep's [`SweepTelemetry`] (the `sweep` bench binary
/// publishes it as the `SWEEP_timing.json` CI artifact).
///
/// # Errors
///
/// As [`run_nvm_write_sweep`].
pub fn run_nvm_write_sweep_instrumented(
    mode: PtMode,
    seed: u64,
    stride: u64,
    jobs: usize,
    strategy: SweepStrategy,
) -> Result<(SweepOutcome, SweepTelemetry)> {
    let cfg = config(mode, false);
    let (golden, pool) = match strategy {
        SweepStrategy::SnapshotFork => {
            let (g, p) = recorded_golden_cfg(&cfg)?;
            (g, Some(p))
        }
        SweepStrategy::ReplayFromZero => (golden_run_cfg(&cfg)?, None),
    };
    let stride = stride.max(1);
    let ambient = kindle_sim::thread_media_faults();
    let ambient_legacy = kindle_sim::thread_legacy_maps();
    let ambient_backend = kindle_sim::thread_backend();
    let cfg_ref = &cfg;
    let pool_ref = pool.as_ref();
    let points: Vec<u64> = (0..golden.nvm_writes).step_by(stride as usize).collect();
    let results = parallel::par_map(jobs, points.clone(), move |w| {
        kindle_sim::set_thread_media_faults(ambient);
        kindle_sim::set_thread_legacy_maps(ambient_legacy);
        kindle_sim::set_thread_backend(ambient_backend);
        let mut rng = Rng64::new(seed ^ (w + 1).wrapping_mul(GOLDEN_GAMMA));
        crash_at_nvm_write(cfg_ref, pool_ref, w, &mut rng)
    });
    let mut digest_words = vec![golden.boundaries, golden.nvm_writes, stride];
    let mut recovered = 0u64;
    for point in results {
        let (rec, words) = point?;
        recovered += u64::from(rec);
        digest_words.extend(words);
    }
    let telemetry = pool.as_ref().map(|p| p.telemetry(&golden)).unwrap_or(SweepTelemetry {
        boundaries: golden.boundaries,
        nvm_writes: golden.nvm_writes,
        ..SweepTelemetry::default()
    });
    let outcome = SweepOutcome {
        boundaries: points.len() as u64,
        recovered,
        digest: checksum64(&digest_words),
    };
    Ok((outcome, telemetry))
}

/// NVM data pages the integrity workload maps and fills per grid point.
const INTEGRITY_PAGES: u64 = 4;
/// Patrold period of the data-integrity sweep: short enough that the drive
/// loop sees several full-pool batches.
const INTEGRITY_PATROL_INTERVAL: Cycles = Cycles::from_micros(10);

/// Aggregate result of one data-integrity sweep (see
/// [`run_data_integrity_sweep`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataIntegrityOutcome {
    /// Grid points exercised (ECP budget × daemons on/off).
    pub points: u64,
    /// Data lines healed in place by patrol erasure decode, summed.
    pub data_healed: u64,
    /// Mapped data frames poisoned (content unrecoverable), summed.
    pub data_poisoned: u64,
    /// Processes killed with `MemoryPoison`, summed.
    pub procs_killed: u64,
    /// Order-sensitive digest of every observable of every point.
    pub digest: u64,
}

/// The data-integrity machine: persistent page tables (so scrubd and the
/// patrol's table-skip both do real work), a controlled media model with
/// `budget` ECP entries per line and *no* ambient faults (the point seeds
/// its own stuck cells under data lines), and — on the daemon arm — both
/// scrubd and patrold.
fn integrity_config(budget: u32, daemons: bool, seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::small().with_pt_mode(PtMode::Persistent);
    if daemons {
        cfg = cfg
            .with_scrub_interval(STUCK_SCRUB_INTERVAL)
            .with_patrol_interval(INTEGRITY_PATROL_INTERVAL);
    }
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: 0,
        correction_entries: budget,
        ..MediaFaultConfig::with_seed(seed)
    });
    cfg
}

/// One grid point of the data-integrity sweep: fill mapped NVM data pages
/// through the checksummed store path, seed `stuck` single-bit stuck cells
/// under distinct data lines, let the daemons (when armed) patrol, and
/// verify the graceful-degradation contract:
///
/// * budget covers the erasures → every line healed byte-identical, nobody
///   dies, reads are clean;
/// * budget exhausted → the first corrupt frame found poisons its page and
///   kills the owner; the frame stays quarantined; later victim accesses
///   fail instead of returning corrupt bytes;
/// * daemons off → the corruption persists silently (pinned by the shadow
///   mismatch count); the sanitizer stays quiet only because the workload
///   never reads the corrupt lines.
///
/// Under [`SweepStrategy::SnapshotFork`] the machine additionally makes a
/// `snapshot → restore` round trip right after fault seeding and the rest
/// of the point runs on the *restored* machine — this sweep has no shared
/// prefix to fork (each grid point is independent), so its strategy
/// cross-check instead pins that a round trip is perfectly transparent to
/// live patrol/kill behaviour, byte-identical digest included.
///
/// Returns `(healed, poisoned, killed, digest_words)`.
fn run_integrity_point(
    budget: u32,
    daemons: bool,
    stuck: usize,
    seed: u64,
    strategy: SweepStrategy,
) -> Result<(u64, u64, u64, Vec<u64>)> {
    const WORDS_PER_PAGE: u64 = PAGE_SIZE as u64 / 8;
    const LINES_PER_PAGE: u64 = PAGE_SIZE as u64 / 64;

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let guard = sanitize::install(Box::new(ic));
    let mut m = Machine::new(integrity_config(budget, daemons, seed))?;
    let victim = m.spawn_process()?;
    let driver = m.spawn_process()?;
    let va = m.mmap(
        victim,
        INTEGRITY_PAGES * PAGE_SIZE as u64,
        Prot::RW,
        MapFlags::NVM | MapFlags::POPULATE,
    )?;

    // Fill every line through the data path, recording store-time
    // checksums; keep a host-side shadow of the intended words.
    let mut rng = Rng64::new(seed);
    let mut frames = Vec::new();
    let mut shadow = Vec::with_capacity((INTEGRITY_PAGES * WORDS_PER_PAGE) as usize);
    for page in 0..INTEGRITY_PAGES {
        let pte = m
            .kernel
            .translate(&mut m.hw, victim, va + page * PAGE_SIZE as u64)?
            .expect("populated page is mapped");
        frames.push(pte.pfn());
        for w in 0..WORDS_PER_PAGE {
            let val = rng.next_u64();
            m.hw.write_u64(pte.pfn().base() + w * 8, val);
            shadow.push(val);
        }
    }

    // Seed `stuck` single-bit stuck cells under distinct data lines: one
    // erasure per line, so any nonzero ECP budget can heal every one.
    let mut chosen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    while chosen.len() < stuck.min((INTEGRITY_PAGES * LINES_PER_PAGE) as usize) {
        chosen.insert(rng.gen_below(INTEGRITY_PAGES * LINES_PER_PAGE));
    }
    let mut degraded_pages: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for &slot in &chosen {
        let (page, line) = (slot / LINES_PER_PAGE, slot % LINES_PER_PAGE);
        let line_pa = frames[page as usize].base().as_u64() + line * 64;
        let bit = rng.gen_below(512) as u32;
        assert!(m.hw.mc.degrade_line_bit(line_pa, bit), "stuck cell seeding failed");
        degraded_pages.insert(page);
    }
    let stuck = chosen.len() as u64;

    // Snapshot/restore round trip: the rest of the point — patrol passes,
    // healing, poison kills — must behave byte-identically on the restored
    // machine, or a forked sweep could never be trusted.
    if strategy == SweepStrategy::SnapshotFork {
        let snap = m.snapshot();
        m = Machine::restore(&snap);
    }

    // Drive the clock from the driver process until patrold has covered
    // the pool (or the victim died); with daemons off, just a fixed spin.
    let dva = m.mmap(driver, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY)?;
    let spins = if daemons { 400_000 } else { 64 };
    for _ in 0..spins {
        m.access(driver, dva, AccessKind::Write)?;
        if !daemons {
            continue;
        }
        let passes = m.patrol.as_ref().map_or(0, |p| p.stats().passes);
        let victim_dead = m.kernel.process(victim).is_err();
        if passes >= 2 && (budget > 0 || stuck == 0 || victim_dead) {
            break;
        }
    }

    let patrol = m.patrol.as_ref().map(|p| p.stats().clone()).unwrap_or_default();
    let victim_dead = m.kernel.process(victim).is_err();
    let mut mismatches = 0u64;
    if !daemons {
        // Daemons off: silent corruption persists — pin its footprint.
        assert_eq!(patrol.passes, 0);
        for page in 0..INTEGRITY_PAGES {
            for w in 0..WORDS_PER_PAGE {
                let got = m.hw.read_u64(frames[page as usize].base() + w * 8);
                mismatches += u64::from(got != shadow[(page * WORDS_PER_PAGE + w) as usize]);
            }
            if !degraded_pages.contains(&page) {
                m.access(victim, va + page * PAGE_SIZE as u64, AccessKind::Read)?;
            }
        }
        assert_eq!(mismatches, stuck, "each stuck bit flips exactly one stored word");
    } else if budget > 0 {
        // Healable: every seeded erasure decoded back, byte-identical.
        assert_eq!(patrol.lines_healed, stuck, "every degraded line heals under budget");
        assert_eq!(patrol.frames_poisoned, 0);
        assert!(!victim_dead, "nobody dies on healable faults");
        for page in 0..INTEGRITY_PAGES {
            for w in 0..WORDS_PER_PAGE {
                let got = m.hw.read_u64(frames[page as usize].base() + w * 8);
                assert_eq!(got, shadow[(page * WORDS_PER_PAGE + w) as usize], "healed bytes");
            }
            // The application-visible read path must also be clean (the
            // sanitizer verifies no read consumed an uncorrected line).
            m.access(victim, va + page * PAGE_SIZE as u64, AccessKind::Read)?;
        }
    } else if stuck > 0 {
        // Unhealable: graceful degradation, never corrupt reads.
        assert_eq!(patrol.procs_killed, 1, "victim killed once");
        assert!(patrol.frames_poisoned >= 1);
        assert!(victim_dead);
        let err = m.access(victim, va, AccessKind::Read).unwrap_err();
        assert!(
            matches!(err, kindle_types::KindleError::NoSuchProcess(p) if p == victim),
            "post-kill access fails instead of returning corrupt bytes: {err:?}"
        );
    }

    let violations = ic_log.take();
    assert!(violations.is_empty(), "integrity point violations: {violations:?}");
    drop(guard);

    let words = vec![
        budget as u64,
        u64::from(daemons),
        stuck,
        patrol.passes,
        patrol.frames_checked,
        patrol.lines_detected,
        patrol.lines_healed,
        patrol.frames_poisoned,
        patrol.frames_retired,
        patrol.procs_killed,
        m.scrub.as_ref().map_or(0, |s| s.stats().passes),
        u64::from(victim_dead),
        mismatches,
        m.now().as_u64(),
    ];
    Ok((patrol.lines_healed, patrol.frames_poisoned, patrol.procs_killed, words))
}

/// The data-integrity sweep: a grid of (ECP budget × daemons on/off)
/// points, each seeding `stuck` stuck cells under *data* frames and
/// verifying the checksum-patrol/poison/graceful-degradation contract (see
/// [`run_integrity_point`]'s contract list). Equal seeds must yield equal
/// digests regardless of worker count.
///
/// # Errors
///
/// Propagates machine/workload failures.
///
/// # Panics
///
/// Panics when a point violates the integrity contract (missed heal,
/// corrupt read, surviving owner of a lost page, sanitizer violations).
pub fn run_data_integrity_sweep(seed: u64, stuck: usize) -> Result<DataIntegrityOutcome> {
    run_data_integrity_sweep_strategy(
        seed,
        stuck,
        parallel::default_jobs(),
        SweepStrategy::default(),
    )
}

/// [`run_data_integrity_sweep`] with an explicit worker count (`jobs = 1`
/// is the exact serial loop; any count produces the identical outcome).
///
/// # Errors
///
/// As [`run_data_integrity_sweep`].
pub fn run_data_integrity_sweep_jobs(
    seed: u64,
    stuck: usize,
    jobs: usize,
) -> Result<DataIntegrityOutcome> {
    run_data_integrity_sweep_strategy(seed, stuck, jobs, SweepStrategy::default())
}

/// [`run_data_integrity_sweep`] with an explicit worker count and
/// strategy. The two strategies must produce identical outcomes: the
/// snapshot-fork arm runs each point's patrol/kill tail on a machine that
/// made a `snapshot → restore` round trip mid-point.
///
/// # Errors
///
/// As [`run_data_integrity_sweep`].
pub fn run_data_integrity_sweep_strategy(
    seed: u64,
    stuck: usize,
    jobs: usize,
    strategy: SweepStrategy,
) -> Result<DataIntegrityOutcome> {
    let grid: Vec<(u64, u32, bool)> = [(0u32, false), (0, true), (2, false), (2, true)]
        .iter()
        .enumerate()
        .map(|(i, &(budget, daemons))| (i as u64, budget, daemons))
        .collect();
    // Workers have their own thread-locals: republish the caller's ambient
    // store-layout request and far-tier backend so the grid is
    // jobs-invariant under --legacy-maps and --backend.
    let ambient_legacy = kindle_sim::thread_legacy_maps();
    let ambient_backend = kindle_sim::thread_backend();
    let results = parallel::par_map(jobs, grid, move |(i, budget, daemons)| {
        kindle_sim::set_thread_legacy_maps(ambient_legacy);
        kindle_sim::set_thread_backend(ambient_backend);
        // A fresh generator per point keeps grid points independent.
        let pseed = seed ^ (i + 1).wrapping_mul(GOLDEN_GAMMA);
        run_integrity_point(budget, daemons, stuck, pseed, strategy)
    });
    let mut digest_words = vec![seed, stuck as u64];
    let (mut healed, mut poisoned, mut killed, mut points) = (0u64, 0u64, 0u64, 0u64);
    for point in results {
        let (h, p, k, words) = point?;
        healed += h;
        poisoned += p;
        killed += k;
        points += 1;
        digest_words.extend(words);
    }
    Ok(DataIntegrityOutcome {
        points,
        data_healed: healed,
        data_poisoned: poisoned,
        procs_killed: killed,
        digest: checksum64(&digest_words),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_enumerates_boundaries() {
        let g = golden_run(PtMode::Rebuild).unwrap();
        assert!(g.boundaries > 10, "workload too small to sweep: {g:?}");
        assert!(g.nvm_writes > 0);
        assert_eq!(g.publishes.len(), 3);
        // Publishes appear in boundary order with the phase markers.
        assert!(g.publishes.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(g.publishes[0].1, 0x1111);
    }

    #[test]
    fn golden_run_is_deterministic() {
        let a = golden_run(PtMode::Rebuild).unwrap();
        let b = golden_run(PtMode::Rebuild).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_golden_matches_plain_enumeration() {
        // Arming the recorder's (never-cut) power switch and taking
        // snapshots must not perturb the boundary structure.
        let cfg = config(PtMode::Rebuild, false);
        let plain = golden_run_cfg(&cfg).unwrap();
        let (recorded, pool) = recorded_golden_cfg(&cfg).unwrap();
        assert_eq!(plain, recorded);
        assert!(!pool.records.is_empty());
        assert!(pool.records.len() <= pool.capacity);
        // Step 0 (post-spawn baseline) survives every thinning round.
        assert_eq!(pool.records[0].step, 0);
        let t = pool.telemetry(&recorded);
        assert_eq!(t.snapshots_offered, workload_steps().len() as u64 + 1);
        assert!(t.pool_high_water <= t.pool_capacity);
        assert!(t.snapshots_retained >= 1);
    }

    #[test]
    fn expected_marker_uses_flip_drain_boundary() {
        let g = GoldenRun { boundaries: 20, nvm_writes: 0, publishes: vec![(5, 0xaa), (12, 0xbb)] };
        assert_eq!(expected_marker(&g, 3), None);
        // The publish at index 5 drained its flip at index 4.
        assert_eq!(expected_marker(&g, 4), Some(0xaa));
        assert_eq!(expected_marker(&g, 5), Some(0xaa));
        assert_eq!(expected_marker(&g, 10), Some(0xaa));
        assert_eq!(expected_marker(&g, 11), Some(0xbb));
        assert_eq!(expected_marker(&g, 19), Some(0xbb));
    }

    fn dummy_record(step: usize, boundaries: u64) -> SnapshotRecord {
        let m = Machine::new(MachineConfig::small()).unwrap();
        SnapshotRecord {
            step,
            boundaries,
            nvm_writes: boundaries * 10,
            publishes: Vec::new(),
            state: WorkloadState::default(),
            pid: 1,
            snap: m.snapshot(),
        }
    }

    #[test]
    fn snapshot_pool_thins_by_doubling_stride() {
        let mut pool = SnapshotPool::new(4);
        for step in 0..12 {
            pool.offer(dummy_record(step, step as u64));
        }
        assert!(pool.records.len() <= 4, "capacity respected: {}", pool.records.len());
        assert_eq!(pool.high_water, 4, "high water caps at capacity");
        assert!(pool.stride >= 4, "stride doubled at least twice: {}", pool.stride);
        assert_eq!(pool.records[0].step, 0, "baseline survives thinning");
        assert!(pool.records.iter().all(|r| r.step % pool.stride == 0));
        assert_eq!(pool.offered, 12);
    }

    #[test]
    fn snapshot_pool_nearest_picks_latest_usable() {
        let mut pool = SnapshotPool::new(8);
        for step in 0..4 {
            pool.offer(dummy_record(step, step as u64 * 5));
        }
        // Records at boundaries 0, 5, 10, 15.
        assert_eq!(pool.nearest_boundary(0).unwrap().boundaries, 0);
        assert_eq!(pool.nearest_boundary(4).unwrap().boundaries, 0);
        assert_eq!(pool.nearest_boundary(5).unwrap().boundaries, 5);
        assert_eq!(pool.nearest_boundary(12).unwrap().boundaries, 10);
        assert_eq!(pool.nearest_boundary(99).unwrap().boundaries, 15);
        assert_eq!(pool.nearest_nvm_write(49).unwrap().nvm_writes, 0);
        assert_eq!(pool.nearest_nvm_write(120).unwrap().nvm_writes, 100);
    }
}
