//! Observation equivalence of the flat controller stores.
//!
//! The memory controller's hot-path state (the page store, the NVM
//! checksum table and the two undo logs) lives in direct-indexed flat
//! tables by default, with the original ordered-map implementations kept
//! behind `MemConfig::legacy_maps` (the bench harness's `--legacy-maps`
//! flag). The layouts must be indistinguishable to every observer: these
//! tests run the crash-sweep families and the data-integrity grid under
//! both layouts — serial and parallel — and require the *full* outcome
//! (order-sensitive digest included) to match bit for bit.

use kindle_faults::{run_data_integrity_sweep_jobs, run_nvm_write_sweep_jobs, run_sweep_jobs};
use kindle_os::PtMode;
use kindle_sim::{set_thread_legacy_maps, thread_legacy_maps};

const SEED: u64 = 0x00c0_ffee_4b1d_0001;

/// Runs `f` with the ambient legacy-store request set to `legacy`,
/// restoring the previous request afterwards (the sweeps republish the
/// ambient flag onto their workers, so one thread-local toggle covers
/// any `jobs` count).
fn with_legacy<R>(legacy: bool, f: impl FnOnce() -> R) -> R {
    let prev = thread_legacy_maps();
    set_thread_legacy_maps(legacy);
    let out = f();
    set_thread_legacy_maps(prev);
    out
}

#[test]
fn checkpoint_sweep_digest_is_layout_invariant() {
    for mode in [PtMode::Rebuild, PtMode::Persistent] {
        let flat = with_legacy(false, || run_sweep_jobs(mode, SEED, 1)).unwrap();
        let legacy = with_legacy(true, || run_sweep_jobs(mode, SEED, 1)).unwrap();
        assert_eq!(flat, legacy, "{mode:?}: legacy maps changed the checkpoint sweep");
    }
}

#[test]
fn nvm_write_sweep_digest_is_layout_invariant_at_any_jobs() {
    let flat =
        with_legacy(false, || run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, 1)).unwrap();
    for (legacy, jobs) in [(true, 1), (true, 4), (false, 4)] {
        let other =
            with_legacy(legacy, || run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, jobs))
                .unwrap();
        assert_eq!(flat, other, "legacy={legacy} jobs={jobs} diverged from the flat serial sweep");
    }
}

#[test]
fn data_integrity_sweep_digest_is_layout_invariant_at_any_jobs() {
    let flat = with_legacy(false, || run_data_integrity_sweep_jobs(0xDA7A, 3, 1)).unwrap();
    for jobs in [1, 4] {
        let legacy = with_legacy(true, || run_data_integrity_sweep_jobs(0xDA7A, 3, jobs)).unwrap();
        assert_eq!(flat, legacy, "jobs={jobs}: legacy maps changed the data-integrity grid");
    }
}
