//! The acceptance harness for the fault subsystem: crash at *every*
//! persist-boundary event of a checkpointed workload, tear the in-flight
//! write buffer, recover, and verify — under both page-table schemes —
//! that the machine comes back to exactly the last durable checkpoint with
//! zero sanitizer violations, and that the whole sweep is byte-for-byte
//! deterministic per seed.

use kindle_faults::{
    run_data_integrity_sweep_strategy, run_nvm_write_sweep, run_nvm_write_sweep_instrumented,
    run_nvm_write_sweep_jobs, run_stuck_sweep_jobs, run_stuck_sweep_strategy, run_sweep,
    run_sweep_jobs, run_sweep_strategy, run_sweep_threaded, SweepStrategy,
};
use kindle_os::PtMode;

const SEED: u64 = 0x00c0_ffee_4b1d_0001;

#[test]
fn rebuild_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");
    // Early boundaries precede the first publish, so some runs must lose
    // the (never-checkpointed) process — that path is part of the sweep.
    assert!(first.recovered < first.boundaries, "every boundary recovered: {first:?}");

    let second = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn persistent_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");

    let second = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn different_seeds_still_recover_consistently() {
    // The tear split differs per seed, but the recovered checkpoint and
    // violation count are seed-independent — only the digest may move.
    let a = run_sweep(PtMode::Rebuild, 1).unwrap();
    let b = run_sweep(PtMode::Rebuild, 2).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.recovered, b.recovered);
}

#[test]
fn threaded_sweep_replays_interleavings_deterministically() {
    // With checkpoints on the daemon kthread, the thread interleaving is
    // part of what the seed pins: two runs must agree bit-for-bit, and the
    // boundary structure must match the single-threaded sweep (thread
    // switches are not persist boundaries).
    let single = run_sweep(PtMode::Rebuild, SEED).unwrap();
    let first = run_sweep_threaded(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first.boundaries, single.boundaries, "kthreads must not add/remove boundaries");
    assert_eq!(first.recovered, single.recovered, "kthreads must not change durability");

    let second = run_sweep_threaded(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the threaded sweep bit-for-bit");
}

#[test]
fn nvm_write_sweep_strided_smoke() {
    // A strided pass over write-granular crash points: quick enough for
    // the tier-1 test job; the exhaustive stride-1 run is CI tier 2 (the
    // `sweep` job runs it serial vs parallel via the bench sweep binary).
    let first = run_nvm_write_sweep(PtMode::Rebuild, SEED, 199).unwrap();
    assert!(first.boundaries > 3, "stride too coarse to exercise the sweep: {first:?}");
    let second = run_nvm_write_sweep(PtMode::Rebuild, SEED, 199).unwrap();
    assert_eq!(first, second, "same seed must reproduce the write sweep bit-for-bit");
}

#[test]
fn boundary_sweep_is_jobs_invariant() {
    // The acceptance property of the fork-join executor: one worker and
    // eight workers must fold the identical digest, byte for byte.
    let serial = run_sweep_jobs(PtMode::Rebuild, SEED, 1).unwrap();
    let parallel = run_sweep_jobs(PtMode::Rebuild, SEED, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}

#[test]
fn nvm_write_sweep_is_jobs_invariant() {
    let serial = run_nvm_write_sweep_jobs(PtMode::Rebuild, SEED, 199, 1).unwrap();
    let parallel = run_nvm_write_sweep_jobs(PtMode::Rebuild, SEED, 199, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}

#[test]
fn stuck_cell_sweep_recovers_and_is_jobs_invariant() {
    // The scrubbed machine: thousands of randomly seeded stuck cells, a
    // two-entry ECP budget, scrubd armed — and the full crash/recovery
    // sweep still holds at every persist boundary, with the scrub/media
    // counters folded into the digest so the fault path itself is pinned
    // by the determinism check.
    let plain = run_sweep(PtMode::Persistent, SEED).unwrap();
    let serial = run_stuck_sweep_jobs(PtMode::Persistent, SEED, 4096, 1).unwrap();
    assert_eq!(serial.boundaries, plain.boundaries, "stuck cells must not move boundaries");
    assert_eq!(serial.recovered, plain.recovered, "stuck cells must not change durability");

    let parallel = run_stuck_sweep_jobs(PtMode::Persistent, SEED, 4096, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}

// --- Snapshot-fork vs replay-from-zero cross-checks -------------------
//
// The sweep's O(n) tier forks each crash point from a golden-run machine
// snapshot. These tests pin the whole point of `Machine::snapshot`: the
// forked execution must be *indistinguishable* from re-executing the
// prefix from cycle 0 — same recovered set, same digest, byte for byte —
// for every sweep family. Any state the snapshot missed (a cache line, a
// TLB entry, the media RNG, the write-buffer undo map, the ambient fault
// epoch) would surface here as a digest mismatch.

#[test]
fn forked_boundary_sweep_matches_replay_from_zero() {
    for mode in [PtMode::Rebuild, PtMode::Persistent] {
        let forked = run_sweep_strategy(mode, SEED, false, 4, SweepStrategy::SnapshotFork).unwrap();
        let replayed =
            run_sweep_strategy(mode, SEED, false, 4, SweepStrategy::ReplayFromZero).unwrap();
        assert_eq!(forked, replayed, "{mode:?}: forked digest must match full replay");
    }
}

#[test]
fn forked_threaded_sweep_matches_replay_from_zero() {
    let forked =
        run_sweep_strategy(PtMode::Rebuild, SEED, true, 4, SweepStrategy::SnapshotFork).unwrap();
    let replayed =
        run_sweep_strategy(PtMode::Rebuild, SEED, true, 4, SweepStrategy::ReplayFromZero).unwrap();
    assert_eq!(forked, replayed, "kthread state must round-trip through snapshots");
}

#[test]
fn forked_stuck_sweep_matches_replay_from_zero() {
    // The hardest state to capture: media fault RNG, stuck-cell map, ECP
    // correction directory and scrubd progress all live below the OS.
    let forked =
        run_stuck_sweep_strategy(PtMode::Persistent, SEED, 4096, 4, SweepStrategy::SnapshotFork)
            .unwrap();
    let replayed =
        run_stuck_sweep_strategy(PtMode::Persistent, SEED, 4096, 4, SweepStrategy::ReplayFromZero)
            .unwrap();
    assert_eq!(forked, replayed, "media/scrub state must round-trip through snapshots");
}

#[test]
fn forked_nvm_write_sweep_matches_replay_from_zero() {
    let (forked, telemetry) = run_nvm_write_sweep_instrumented(
        PtMode::Rebuild,
        SEED,
        151,
        4,
        SweepStrategy::SnapshotFork,
    )
    .unwrap();
    let (replayed, _) = run_nvm_write_sweep_instrumented(
        PtMode::Rebuild,
        SEED,
        151,
        4,
        SweepStrategy::ReplayFromZero,
    )
    .unwrap();
    assert_eq!(forked, replayed, "write-granular forks must match full replay");
    // The fork tier really ran on snapshots: the pool was populated and
    // stayed within its bound.
    assert!(telemetry.snapshots_retained > 0, "no snapshots recorded: {telemetry:?}");
    assert!(telemetry.pool_high_water <= telemetry.pool_capacity, "pool overflow: {telemetry:?}");
}

#[test]
fn round_tripped_data_integrity_sweep_matches_straight_run() {
    // The data-integrity grid has no shared prefix to fork; its strategy
    // cross-check instead runs each point's patrol/kill tail on a machine
    // that made a snapshot→restore round trip right after fault seeding.
    let forked =
        run_data_integrity_sweep_strategy(SEED, 6, 4, SweepStrategy::SnapshotFork).unwrap();
    let replayed =
        run_data_integrity_sweep_strategy(SEED, 6, 4, SweepStrategy::ReplayFromZero).unwrap();
    assert_eq!(forked, replayed, "snapshot round trip must be invisible to patrol/poison");
}

#[test]
fn forked_sweep_is_jobs_invariant() {
    // Workers each republish the ambient fault epoch captured in the
    // snapshot; one worker and eight must still agree bit-for-bit.
    let serial =
        run_sweep_strategy(PtMode::Rebuild, SEED, false, 1, SweepStrategy::SnapshotFork).unwrap();
    let parallel =
        run_sweep_strategy(PtMode::Rebuild, SEED, false, 8, SweepStrategy::SnapshotFork).unwrap();
    assert_eq!(serial, parallel, "forked sweep jobs=1 vs jobs=8 must agree bit-for-bit");
}
