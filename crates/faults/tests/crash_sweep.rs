//! The acceptance harness for the fault subsystem: crash at *every*
//! persist-boundary event of a checkpointed workload, tear the in-flight
//! write buffer, recover, and verify — under both page-table schemes —
//! that the machine comes back to exactly the last durable checkpoint with
//! zero sanitizer violations, and that the whole sweep is byte-for-byte
//! deterministic per seed.

use kindle_faults::run_sweep;
use kindle_os::PtMode;

const SEED: u64 = 0x00c0_ffee_4b1d_0001;

#[test]
fn rebuild_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");
    // Early boundaries precede the first publish, so some runs must lose
    // the (never-checkpointed) process — that path is part of the sweep.
    assert!(first.recovered < first.boundaries, "every boundary recovered: {first:?}");

    let second = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn persistent_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");

    let second = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn different_seeds_still_recover_consistently() {
    // The tear split differs per seed, but the recovered checkpoint and
    // violation count are seed-independent — only the digest may move.
    let a = run_sweep(PtMode::Rebuild, 1).unwrap();
    let b = run_sweep(PtMode::Rebuild, 2).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.recovered, b.recovered);
}
