//! The acceptance harness for the fault subsystem: crash at *every*
//! persist-boundary event of a checkpointed workload, tear the in-flight
//! write buffer, recover, and verify — under both page-table schemes —
//! that the machine comes back to exactly the last durable checkpoint with
//! zero sanitizer violations, and that the whole sweep is byte-for-byte
//! deterministic per seed.

use kindle_faults::{
    run_nvm_write_sweep, run_nvm_write_sweep_jobs, run_stuck_sweep_jobs, run_sweep, run_sweep_jobs,
    run_sweep_threaded,
};
use kindle_os::PtMode;

const SEED: u64 = 0x00c0_ffee_4b1d_0001;

#[test]
fn rebuild_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");
    // Early boundaries precede the first publish, so some runs must lose
    // the (never-checkpointed) process — that path is part of the sweep.
    assert!(first.recovered < first.boundaries, "every boundary recovered: {first:?}");

    let second = run_sweep(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn persistent_sweep_recovers_every_boundary_deterministically() {
    let first = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert!(first.boundaries > 10, "sweep too small: {first:?}");
    assert!(first.recovered > 0, "no boundary recovered a process: {first:?}");

    let second = run_sweep(PtMode::Persistent, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn different_seeds_still_recover_consistently() {
    // The tear split differs per seed, but the recovered checkpoint and
    // violation count are seed-independent — only the digest may move.
    let a = run_sweep(PtMode::Rebuild, 1).unwrap();
    let b = run_sweep(PtMode::Rebuild, 2).unwrap();
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.recovered, b.recovered);
}

#[test]
fn threaded_sweep_replays_interleavings_deterministically() {
    // With checkpoints on the daemon kthread, the thread interleaving is
    // part of what the seed pins: two runs must agree bit-for-bit, and the
    // boundary structure must match the single-threaded sweep (thread
    // switches are not persist boundaries).
    let single = run_sweep(PtMode::Rebuild, SEED).unwrap();
    let first = run_sweep_threaded(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first.boundaries, single.boundaries, "kthreads must not add/remove boundaries");
    assert_eq!(first.recovered, single.recovered, "kthreads must not change durability");

    let second = run_sweep_threaded(PtMode::Rebuild, SEED).unwrap();
    assert_eq!(first, second, "same seed must reproduce the threaded sweep bit-for-bit");
}

#[test]
fn nvm_write_sweep_strided_smoke() {
    // A strided pass over write-granular crash points: quick enough for
    // the tier-1 test job; the exhaustive stride-1 run is CI tier 2 (the
    // `sweep` job runs it serial vs parallel via the bench sweep binary).
    let first = run_nvm_write_sweep(PtMode::Rebuild, SEED, 199).unwrap();
    assert!(first.boundaries > 3, "stride too coarse to exercise the sweep: {first:?}");
    let second = run_nvm_write_sweep(PtMode::Rebuild, SEED, 199).unwrap();
    assert_eq!(first, second, "same seed must reproduce the write sweep bit-for-bit");
}

#[test]
fn boundary_sweep_is_jobs_invariant() {
    // The acceptance property of the fork-join executor: one worker and
    // eight workers must fold the identical digest, byte for byte.
    let serial = run_sweep_jobs(PtMode::Rebuild, SEED, 1).unwrap();
    let parallel = run_sweep_jobs(PtMode::Rebuild, SEED, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}

#[test]
fn nvm_write_sweep_is_jobs_invariant() {
    let serial = run_nvm_write_sweep_jobs(PtMode::Rebuild, SEED, 199, 1).unwrap();
    let parallel = run_nvm_write_sweep_jobs(PtMode::Rebuild, SEED, 199, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}

#[test]
fn stuck_cell_sweep_recovers_and_is_jobs_invariant() {
    // The scrubbed machine: thousands of randomly seeded stuck cells, a
    // two-entry ECP budget, scrubd armed — and the full crash/recovery
    // sweep still holds at every persist boundary, with the scrub/media
    // counters folded into the digest so the fault path itself is pinned
    // by the determinism check.
    let plain = run_sweep(PtMode::Persistent, SEED).unwrap();
    let serial = run_stuck_sweep_jobs(PtMode::Persistent, SEED, 4096, 1).unwrap();
    assert_eq!(serial.boundaries, plain.boundaries, "stuck cells must not move boundaries");
    assert_eq!(serial.recovered, plain.recovered, "stuck cells must not change durability");

    let parallel = run_stuck_sweep_jobs(PtMode::Persistent, SEED, 4096, 8).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=8 must agree bit-for-bit");
}
