//! Directed stuck-cell recovery: corrupt page-table frames at *chosen*
//! cells and prove the scrub/correction subsystem closes the loop.
//!
//! Stuck cells are placed at bit 63 of a table word — a bit the walker
//! ignores (the PTE format uses bits 0..62) — so translation keeps
//! working while the stored image diverges from the kernel's shadow
//! metadata. That isolates exactly the property under test: detection
//! and repair of silent NVM corruption, not collateral mistranslation.
//!
//! Four regimes:
//! * budget 0 + scrubd — every corrupted frame is detected and retired
//!   content-preservingly (the rewrite cannot heal a zero-budget line);
//! * budget ≥ cells + scrubd — write-time ECP correction absorbs every
//!   cell; scrub passes verify the tables clean;
//! * budget < cells + scrubd — the line exhausts its budget, the
//!   sanitizer catches the walker consuming the uncorrected line, and
//!   frame retirement repairs it;
//! * budget 0, no scrubd — the pre-scrubd failure mode: the durable
//!   page tables stay silently corrupted forever.

use kindle_mem::MediaFaultConfig;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig};
use kindle_types::pte::pte_addr;
use kindle_types::sanitize::{self, InvariantChecker, Violation};
use kindle_types::{
    AccessKind, Cycles, MapFlags, MemKind, Pfn, PhysMem, Prot, Pte, VirtAddr, CACHE_LINE,
    LINES_PER_PAGE, PAGE_SIZE,
};

/// Pages the workload maps and touches (enough for a full leaf line run).
const PAGES: u64 = 16;

/// The machine under test: persistent (NVM-resident) page tables, the
/// media-fault model armed with *no* random faults (every stuck cell is
/// placed by hand), and optionally the scrub daemon.
fn cfg(correction_entries: u32, scrubd: bool) -> MachineConfig {
    let mut cfg = MachineConfig::small().with_pt_mode(PtMode::Persistent);
    if scrubd {
        cfg = cfg.with_scrub_interval(Cycles::from_micros(20));
    }
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: 0,
        correction_entries,
        ..MediaFaultConfig::with_seed(7)
    });
    cfg
}

/// Maps and touches the workload pages; returns the mapping base.
fn touch_pages(m: &mut Machine, pid: u32) -> VirtAddr {
    let va = m.mmap(pid, PAGES * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    for p in 0..PAGES {
        m.access(pid, va + p * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    va
}

/// Runs the workload once on a clean machine and reports the NVM table
/// frames it built. Machine construction is deterministic, so an identical
/// config re-allocates identical frames — which is how a fresh machine can
/// be seeded with stuck cells at addresses its page tables will only
/// occupy later.
fn probe(config: &MachineConfig) -> Vec<Pfn> {
    let mut m = Machine::new(config.clone()).unwrap();
    let pid = m.spawn_process().unwrap();
    touch_pages(&mut m, pid);
    let tables: Vec<Pfn> = m
        .kernel
        .process(pid)
        .unwrap()
        .aspace
        .table_frames()
        .iter()
        .copied()
        .filter(|f| m.hw.mc.kind_of(f.base()) == Ok(MemKind::Nvm))
        .collect();
    assert!(tables.len() >= 4, "persistent mode must build NVM tables: {tables:?}");
    tables
}

/// Current data-frame translation of every workload page.
fn data_frames(m: &mut Machine, pid: u32, va: VirtAddr) -> Vec<Pfn> {
    (0..PAGES)
        .map(|p| {
            let vap = va + p * PAGE_SIZE as u64;
            m.kernel.translate(&mut m.hw, pid, vap).unwrap().unwrap().pfn()
        })
        .collect()
}

/// Sticks bit 63 of word 0 of every line of every frame at 1.
fn corrupt_frames(m: &mut Machine, frames: &[Pfn]) {
    let media = m.hw.mc.media_mut().expect("media-fault model armed");
    for f in frames {
        for line in 0..LINES_PER_PAGE {
            let base = f.base().as_u64() + (line * CACHE_LINE) as u64;
            assert!(media.add_stuck_cell(base, 63, true), "cell at {base:#x} not placed");
        }
    }
}

/// Keeps the machine busy until the scrub daemon has completed `passes`
/// verify passes.
fn drive_scrub(m: &mut Machine, pid: u32, va: VirtAddr, passes: u64) {
    let done = |m: &Machine| m.scrub.as_ref().is_some_and(|s| s.stats().passes >= passes);
    for i in 0..400_000u64 {
        if done(m) {
            return;
        }
        m.access(pid, va + (i % PAGES) * PAGE_SIZE as u64, AccessKind::Read).unwrap();
    }
    panic!("scrubd never completed {passes} passes: {:?}", m.scrub);
}

/// Reads frame `f`'s stored words back and diffs them against the shadow
/// (ignoring hardware-managed accessed/dirty/count bits, which the walker
/// legitimately sets behind the kernel's back); returns the number of
/// mismatching words.
fn stored_shadow_mismatches(m: &mut Machine, pid: u32, f: Pfn) -> usize {
    let expected = *m.kernel.process(pid).unwrap().aspace.expected_table_words(f).unwrap();
    (0..512)
        .filter(|&w| {
            let stored = m.hw.read_u64(f.base() + w as u64 * 8);
            stored & !Pte::HW_MANAGED != expected[w] & !Pte::HW_MANAGED
        })
        .count()
}

#[test]
fn every_stuck_cell_in_a_pt_frame_is_detected_and_the_frame_retired() {
    let config = cfg(0, true);
    let tables = probe(&config);

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(config).unwrap();
    corrupt_frames(&mut m, &tables);

    let pid = m.spawn_process().unwrap();
    let va = touch_pages(&mut m, pid);
    // Scrubd interleaves with the workload (retirement can land between
    // two page faults), so the stability reference is this machine's own
    // post-workload translations, not the clean probe's.
    let data = data_frames(&mut m, pid, va);
    drive_scrub(&mut m, pid, va, 3);

    // With a zero correction budget the rewrite cannot heal: every frame
    // holding at least one stored line (all of them — their entries were
    // just installed) must be detected and retired content-preservingly.
    let st = m.scrub.as_ref().unwrap().stats().clone();
    assert!(st.lines_detected >= tables.len() as u64, "stats: {st:?}");
    assert_eq!(st.lines_corrected, 0, "budget 0 cannot heal a line: {st:?}");
    assert_eq!(st.frames_retired, tables.len() as u64, "every corrupted frame retires: {st:?}");
    assert_eq!(m.kernel.stats().pt_frames_retired, tables.len() as u64);
    assert!(m.tlb_shootdowns() >= 1, "relocation must shoot down stale translations");

    // The page tables moved off every seeded frame...
    let now_tables = m.kernel.process(pid).unwrap().aspace.table_frames().to_vec();
    for f in &tables {
        assert!(!now_tables.contains(f), "frame {f:?} still live after retirement");
    }
    // ...while every data mapping survived: same frames, same
    // translations, and the replacement tables match the shadow word for
    // word.
    for (p, &want) in data.iter().enumerate() {
        let vap = va + p as u64 * PAGE_SIZE as u64;
        let got = m.kernel.translate(&mut m.hw, pid, vap).unwrap().unwrap().pfn();
        assert_eq!(got, want, "page {p} moved");
    }
    for &f in &now_tables {
        assert_eq!(stored_shadow_mismatches(&mut m, pid, f), 0, "frame {f:?} still corrupt");
    }
    let out = m.kernel.scrub_pt_frames(&mut m.hw).unwrap();
    assert_eq!(out.lines_detected, 0, "final verify pass must be clean: {out:?}");
    assert_eq!(out.frames_clean, now_tables.len() as u64);

    let violations = ic_log.take();
    assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
}

#[test]
fn correction_budget_absorbs_stuck_cells_at_write_time() {
    // One stuck cell per line, one correction entry per line: the ECP
    // layer covers every cell the moment its line is first written.
    let config = cfg(1, true);
    let tables = probe(&config);

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(config).unwrap();
    corrupt_frames(&mut m, &tables);

    let pid = m.spawn_process().unwrap();
    let va = touch_pages(&mut m, pid);
    drive_scrub(&mut m, pid, va, 3);

    let st = m.scrub.as_ref().unwrap().stats().clone();
    assert_eq!(st.lines_detected, 0, "corrected lines must verify clean: {st:?}");
    assert_eq!(st.frames_retired, 0, "nothing to retire: {st:?}");
    assert!(st.passes >= 3 && st.frames_clean >= st.passes * tables.len() as u64, "{st:?}");

    let media = m.hw.mc.stats().media;
    assert!(media.corrections_allocated >= tables.len() as u64, "{media:?}");
    assert_eq!(media.uncorrectable_line_writes, 0, "{media:?}");

    for &f in &tables {
        assert_eq!(stored_shadow_mismatches(&mut m, pid, f), 0, "frame {f:?} corrupt");
    }
    let violations = ic_log.take();
    assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
}

#[test]
fn exhausted_budget_is_caught_by_the_sanitizer_and_repaired_by_retirement() {
    // Two stuck cells in one leaf-table line against a one-entry budget:
    // the first PTE store to that line exhausts the ECP layer, leaving
    // the line corrupted with a `ScrubDetect` flag raised.
    let config = cfg(1, true);
    let probe_line = {
        let mut m = Machine::new(config.clone()).unwrap();
        let pid = m.spawn_process().unwrap();
        let va = touch_pages(&mut m, pid);
        let aspace = &m.kernel.process(pid).unwrap().aspace;
        let mut table = aspace.root();
        for level in (2..=4u8).rev() {
            let words = aspace.expected_table_words(table).unwrap();
            let entry = pte_addr(table, va, level);
            let idx = ((entry.as_u64() - table.base().as_u64()) / 8) as usize;
            table = Pte::from_bits(words[idx]).pfn();
        }
        pte_addr(table, va, 1).line_base().as_u64()
    };

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(config).unwrap();
    {
        let media = m.hw.mc.media_mut().unwrap();
        assert!(media.add_stuck_cell(probe_line, 63, true));
        assert!(media.add_stuck_cell(probe_line, 127, true));
    }

    let pid = m.spawn_process().unwrap();
    let va = touch_pages(&mut m, pid);

    // The walker consumed entries from the exhausted line before the
    // frame could be retired — exactly the window the PR-1 sanitizer's
    // new invariant exists to catch.
    let violations = ic_log.take();
    assert!(!violations.is_empty(), "sanitizer must catch the uncorrected-line window");
    assert!(
        violations.iter().all(|v| matches!(v, Violation::PteFromUncorrectedLine { .. })),
        "unexpected violations: {violations:?}"
    );

    // Retirement (driven from the timer poll via the failed-frame queue)
    // relocated the leaf table; afterwards the machine is clean.
    assert!(m.kernel.stats().pt_frames_retired >= 1, "{:?}", m.kernel.stats());
    let media = m.hw.mc.stats().media;
    assert!(media.uncorrectable_line_writes >= 1, "{media:?}");
    for p in 0..PAGES {
        m.access(pid, va + p * PAGE_SIZE as u64, AccessKind::Read).unwrap();
    }
    let out = m.kernel.scrub_pt_frames(&mut m.hw).unwrap();
    assert_eq!(out.lines_detected, 0, "retirement must have repaired the tables: {out:?}");
    let violations = ic_log.take();
    assert!(violations.is_empty(), "violations after retirement: {violations:?}");
}

#[test]
fn without_scrubd_the_corruption_stays_silent_forever() {
    // Same corruption as the retirement test, but no scrub daemon and no
    // correction budget: the pre-scrubd machine.
    let config = cfg(0, false);
    let tables = probe(&config);

    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(config).unwrap();
    corrupt_frames(&mut m, &tables);

    let pid = m.spawn_process().unwrap();
    let va = touch_pages(&mut m, pid);
    for i in 0..10_000u64 {
        m.access(pid, va + (i % PAGES) * PAGE_SIZE as u64, AccessKind::Read).unwrap();
    }

    // The durable page tables diverged from the kernel's intent and
    // nothing in the machine ever notices: no detection, no correction,
    // no retirement, no sanitizer signal — silent corruption, exactly
    // the failure mode the scrub subsystem was built to close.
    assert!(m.scrub.is_none());
    let corrupt: usize = tables.iter().map(|&f| stored_shadow_mismatches(&mut m, pid, f)).sum();
    assert!(corrupt >= tables.len(), "stuck cells must have bitten: {corrupt}");
    assert_eq!(m.kernel.stats().pt_frames_retired, 0);
    let media = m.hw.mc.stats().media;
    assert!(media.stuck_line_writes >= 1, "{media:?}");
    assert_eq!(media.corrections_allocated, 0, "{media:?}");
    let violations = ic_log.take();
    assert!(violations.is_empty(), "silent means silent: {violations:?}");
}
