//! End-to-end media-fault path: hammering one NVM line until its wear
//! budget runs out must drive the whole retry-then-retire pipeline —
//! bounded-backoff retries in the memory controller, permanent failure,
//! OS frame retirement with a content-preserving remap and a TLB
//! shootdown — under a zero-violation invariant sanitizer.

use kindle_mem::MediaFaultConfig;
use kindle_sim::{Machine, MachineConfig};
use kindle_types::sanitize::{self, InvariantChecker};
use kindle_types::{AccessKind, MapFlags, PhysMem, Prot, PAGE_SIZE};

const SENTINEL: u64 = 0xfee1_dead_beef_0001;

#[test]
fn worn_out_nvm_frame_is_retired_and_remapped() {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut cfg = MachineConfig::small();
    // Small wear budget so the test wears a line out quickly; no stuck
    // cells, so content comparisons are exact.
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 512,
        stuck_cells: 0,
        ..MediaFaultConfig::with_seed(11)
    });
    let mut m = Machine::new(cfg).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.access(pid, va, AccessKind::Write).unwrap();
    let old_pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
    let pa = old_pfn.base();

    // A sentinel on the page's *second* line: it must survive the remap.
    m.hw.write_u64(pa + 64, SENTINEL);
    m.hw.clwb(pa + 64);

    // Hammer the first line until the controller declares the frame failed
    // and a machine-level access lets the OS timer poll retire it.
    let mut retired = false;
    for i in 0..2_000u64 {
        m.hw.write_u64(pa, 0xaaaa_0000 + i);
        m.hw.clwb(pa);
        m.access(pid, va, AccessKind::Read).unwrap();
        if m.kernel.stats().frames_retired > 0 {
            retired = true;
            break;
        }
    }
    assert!(retired, "wear limit of 512 never exhausted in 2000 line writes");

    let mem_stats = m.hw.mc.stats();
    assert!(mem_stats.nvm_write_retries > 0, "failure must go through bounded retries");
    assert_eq!(mem_stats.nvm_frames_failed, 1, "exactly one frame fails: {mem_stats:?}");
    // The failure is either a hard wear-out or retry-exhausted soft-zone
    // transients — both are end-of-life outcomes of the wear model.
    assert!(
        mem_stats.media.lines_worn_out + mem_stats.media.transient_failures >= 1,
        "failure must come from the wear model: {mem_stats:?}"
    );

    // The page moved to a fresh frame, contents intact, old mapping gone.
    let new_pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
    assert_ne!(new_pfn, old_pfn, "mapping must move off the failed frame");
    assert_eq!(m.hw.read_u64(new_pfn.base() + 64), SENTINEL, "contents copied on retirement");
    assert!(m.tlb_shootdowns() >= 1, "stale translation must be shot down");
    assert_eq!(m.kernel.stats().frames_retired, 1);

    // The process keeps running against the replacement frame.
    m.access(pid, va, AccessKind::Write).unwrap();

    let violations = ic_log.take();
    assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
}

#[test]
fn ambient_model_arms_machines_built_on_this_thread() {
    kindle_sim::set_thread_media_faults(Some(MediaFaultConfig::with_seed(77)));
    let armed = Machine::new(MachineConfig::small()).unwrap();
    kindle_sim::set_thread_media_faults(None);
    let clean = Machine::new(MachineConfig::small()).unwrap();

    assert_eq!(
        armed.config().mem.faults.as_ref().map(|f| f.seed),
        Some(77),
        "ambient model must arm machines whose config left faults unset"
    );
    assert!(clean.config().mem.faults.is_none(), "clearing the model must stick");

    // An explicit config always beats the ambient model.
    kindle_sim::set_thread_media_faults(Some(MediaFaultConfig::with_seed(77)));
    let explicit = Machine::new(MachineConfig::small().with_media_faults(5)).unwrap();
    kindle_sim::set_thread_media_faults(None);
    assert_eq!(explicit.config().mem.faults.as_ref().map(|f| f.seed), Some(5));
}
