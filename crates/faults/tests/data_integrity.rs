//! Directed data-page integrity: corrupt *data* lines at chosen cells and
//! prove the checksum/patrol/poison subsystem closes the loop.
//!
//! The sibling `scrub_recovery` suite covers page-table frames, which the
//! kernel can always rebuild from shadow metadata. Data pages have no
//! shadow: the only recovery material is the per-line store-time checksum
//! plus the ECP correction budget, and when both run out the page's bytes
//! are gone. These tests pin the whole ladder:
//!
//! * budget ≥ erasures + patrold — the patrol's erasure decode restores
//!   the line byte-identically and nobody notices;
//! * budget 0 + patrold — the frame is unrecoverable: the PTE is
//!   poisoned, the owner dies with `MemoryPoison`, and no read ever
//!   observes the corrupt bytes;
//! * budget 0, unmapped frame — no owner to kill: the frame is retired
//!   in place, content preserved;
//! * budget 0, no patrold — the pre-patrold failure mode: the
//!   application consumes silently corrupted data, and the new
//!   `DataReadFromUncorrectedLine` invariant is the only witness.

use std::cell::RefCell;
use std::rc::Rc;

use kindle_faults::run_data_integrity_sweep_jobs;
use kindle_mem::MediaFaultConfig;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig};
use kindle_types::sanitize::{
    self, Event, InvariantChecker, KillReason, Sanitizer, ThreadId, Violation,
};
use kindle_types::{
    AccessKind, Cycles, KindleError, MapFlags, Pfn, PhysMem, Prot, VirtAddr, PAGE_SIZE,
};

const WORDS: u64 = PAGE_SIZE as u64 / 8;

/// The machine under test: persistent page tables (so the patrol must
/// prove it skips table frames), the media-fault model armed with *no*
/// random faults (every stuck cell is placed by hand), and optionally the
/// patrol daemon.
fn cfg(correction_entries: u32, patrold: bool) -> MachineConfig {
    let mut cfg = MachineConfig::small().with_pt_mode(PtMode::Persistent);
    if patrold {
        cfg = cfg.with_patrol_interval(Cycles::from_micros(10));
    }
    cfg.mem.faults = Some(MediaFaultConfig {
        wear_limit: 0,
        stuck_cells: 0,
        correction_entries,
        ..MediaFaultConfig::with_seed(7)
    });
    cfg
}

/// Sanitizer recording every event while forwarding to the invariant
/// checker, so a test can assert on both.
struct Recorder {
    ic: InvariantChecker,
    events: Rc<RefCell<Vec<Event>>>,
}

impl Sanitizer for Recorder {
    fn on_event(&mut self, tid: ThreadId, ev: &Event) {
        self.events.borrow_mut().push(*ev);
        self.ic.on_event(tid, ev);
    }
}

/// Maps one populated NVM data page for `pid` and fills it through the
/// checksummed store path; returns `(va, pfn, shadow)`.
fn fill_page(m: &mut Machine, pid: u32) -> (VirtAddr, Pfn, Vec<u64>) {
    let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM | MapFlags::POPULATE).unwrap();
    let pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
    let mut shadow = Vec::with_capacity(WORDS as usize);
    for w in 0..WORDS {
        let val = 0xd00d_0000_0000_0000 | w;
        m.hw.write_u64(pfn.base() + w * 8, val);
        shadow.push(val);
    }
    (va, pfn, shadow)
}

/// Keeps the machine busy from `driver`'s DRAM page until patrold has
/// completed `extra` more verify batches than it had on entry.
fn drive_patrol(m: &mut Machine, driver: u32, dva: VirtAddr, extra: u64) {
    let base = m.patrol.as_ref().map_or(0, |p| p.stats().passes);
    for _ in 0..400_000u64 {
        if m.patrol.as_ref().is_some_and(|p| p.stats().passes >= base + extra) {
            return;
        }
        m.access(driver, dva, AccessKind::Write).unwrap();
    }
    panic!("patrold never completed {extra} more passes: {:?}", m.patrol);
}

#[test]
fn stuck_cell_under_mapped_data_heals_byte_identical_with_budget() {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(cfg(2, true)).unwrap();
    let victim = m.spawn_process().unwrap();
    let driver = m.spawn_process().unwrap();
    let (va, pfn, shadow) = fill_page(&mut m, victim);
    assert!(m.hw.mc.degrade_line_bit(pfn.base().as_u64() + 5 * 64, 100));
    let dva = m.mmap(driver, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    drive_patrol(&mut m, driver, dva, 2);

    let st = m.patrol.as_ref().unwrap().stats().clone();
    assert_eq!(st.lines_detected, 1, "{st:?}");
    assert_eq!(st.lines_healed, 1, "the erasure decode must restore the line: {st:?}");
    assert_eq!(st.frames_poisoned, 0, "{st:?}");
    assert_eq!(st.procs_killed, 0, "{st:?}");
    assert!(m.kernel.process(victim).is_ok(), "nobody dies on a healable fault");
    for w in 0..WORDS {
        assert_eq!(m.hw.read_u64(pfn.base() + w * 8), shadow[w as usize], "word {w} differs");
    }
    // The application-visible read path is clean too: the checker would
    // flag a read of any line whose detection was never resolved.
    m.access(victim, va + 5 * 64, AccessKind::Read).unwrap();
    let violations = ic_log.take();
    assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
}

#[test]
fn exhausted_budget_poisons_the_page_and_kills_the_owner() {
    let events = Rc::new(RefCell::new(Vec::new()));
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(Recorder { ic, events: events.clone() }));

    let mut m = Machine::new(cfg(0, true)).unwrap();
    let victim = m.spawn_process().unwrap();
    let driver = m.spawn_process().unwrap();
    let (va, pfn, _shadow) = fill_page(&mut m, victim);
    assert!(m.hw.mc.degrade_line_bit(pfn.base().as_u64() + 7 * 64, 3));
    let dva = m.mmap(driver, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    for _ in 0..400_000u64 {
        if m.kernel.process(victim).is_err() {
            break;
        }
        m.access(driver, dva, AccessKind::Write).unwrap();
    }

    assert!(m.kernel.process(victim).is_err(), "victim must die: {:?}", m.patrol);
    let st = m.patrol.as_ref().unwrap().stats().clone();
    assert_eq!(st.frames_poisoned, 1, "{st:?}");
    assert_eq!(st.procs_killed, 1, "{st:?}");
    assert_eq!(st.lines_healed, 0, "budget 0 cannot heal a line: {st:?}");
    assert_eq!(m.kernel.stats().pages_poisoned, 1);
    assert_eq!(m.kernel.stats().procs_killed, 1);
    assert!(m.kernel.pools.nvm.is_allocated(pfn), "poisoned frame never re-enters the pool");
    assert!(m.tlb_shootdowns() >= 1, "the kill must shoot down cached translations");

    let evs = events.borrow();
    assert!(
        evs.iter().any(|e| matches!(e, Event::PagePoison { pfn: p, .. } if *p == pfn.as_u64())),
        "PagePoison for the corrupt frame must be published"
    );
    assert!(
        evs.iter().any(|e| matches!(
            e,
            Event::ProcessKilled { pid, reason: KillReason::MemoryPoison } if *pid == victim
        )),
        "the kill must carry the MemoryPoison reason"
    );
    drop(evs);

    // The dead owner's view is an error, never corrupt bytes...
    let err = m.access(victim, va, AccessKind::Read).unwrap_err();
    assert!(matches!(err, KindleError::NoSuchProcess(p) if p == victim), "got {err:?}");
    // ...and the rest of the machine keeps working.
    m.access(driver, dva, AccessKind::Read).unwrap();
    let violations = ic_log.take();
    assert!(violations.is_empty(), "no read ever consumed the corrupt line: {violations:?}");
}

#[test]
fn unmapped_unhealable_frame_is_retired_in_place() {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(cfg(0, true)).unwrap();
    let driver = m.spawn_process().unwrap();
    // An allocated-but-unmapped data frame (a buffer the kernel owns, say)
    // with real checksummed content.
    let pfn = m.kernel.pools.nvm.alloc(&mut m.hw).unwrap();
    for w in 0..8u64 {
        m.hw.write_u64(pfn.base() + w * 8, 0xfeed_0000 | w);
    }
    assert!(m.hw.mc.degrade_line_bit(pfn.base().as_u64(), 9));
    let dva = m.mmap(driver, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    drive_patrol(&mut m, driver, dva, 1);

    let st = m.patrol.as_ref().unwrap().stats().clone();
    assert!(st.frames_retired >= 1, "{st:?}");
    assert_eq!(st.frames_poisoned, 0, "no mapping, nobody to poison: {st:?}");
    assert_eq!(st.procs_killed, 0, "{st:?}");
    assert_eq!(m.kernel.stats().procs_killed, 0);
    assert!(m.kernel.pools.nvm.is_allocated(pfn), "retired frame stays out of circulation");
    assert!(m.kernel.process(driver).is_ok());
    // Content-preserving: words outside the stuck bit still read back.
    assert_eq!(m.hw.read_u64(pfn.base() + 8), 0xfeed_0001);
    let violations = ic_log.take();
    assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
}

#[test]
fn without_patrold_a_corrupt_read_trips_the_new_invariant() {
    let ic = InvariantChecker::new();
    let ic_log = ic.log();
    let _guard = sanitize::install(Box::new(ic));

    let mut m = Machine::new(cfg(0, false)).unwrap();
    let pid = m.spawn_process().unwrap();
    let (va, pfn, shadow) = fill_page(&mut m, pid);
    let line = pfn.base().as_u64() + 3 * 64;
    assert!(m.hw.mc.degrade_line_bit(line, 2));
    assert!(m.patrol.is_none());

    // The stored word diverged from what the application wrote...
    assert_ne!(m.hw.read_u64(pfn.base() + 3 * 64), shadow[24], "the stuck bit must bite");
    // ...and nothing stops the application from consuming it. The read
    // succeeds — silent corruption — and the new invariant is the only
    // witness.
    m.access(pid, va + 3 * 64, AccessKind::Read).unwrap();
    let violations = ic_log.take();
    assert!(!violations.is_empty(), "the corrupt read must be flagged");
    assert!(
        violations
            .iter()
            .all(|v| matches!(v, Violation::DataReadFromUncorrectedLine { line: l } if *l == line)),
        "unexpected violations: {violations:?}"
    );
}

#[test]
fn data_integrity_sweep_is_jobs_invariant() {
    let a = run_data_integrity_sweep_jobs(0xDA7A, 3, 1).unwrap();
    let b = run_data_integrity_sweep_jobs(0xDA7A, 3, 4).unwrap();
    assert_eq!(a, b, "worker count must not leak into the outcome");
    assert_eq!(a.points, 4);
    assert_eq!(a.data_healed, 3, "the budgeted daemon arm heals every seeded line");
    assert!(a.data_poisoned >= 1, "the zero-budget daemon arm loses a page: {a:?}");
    assert_eq!(a.procs_killed, 1, "exactly one victim dies across the grid: {a:?}");
}
