//! Backend invariance of the crash sweeps.
//!
//! The far-tier backend travels the same ambient thread-local route as
//! the media-fault model and the legacy-maps request: published by the
//! bench harness (`--backend`), captured into machine snapshots, and
//! republished on every sweep worker. Two properties must hold:
//!
//! 1. `--backend pcm` is byte-identical to not passing the flag — the
//!    PCM instance is an observation-equivalence refactor — at any
//!    worker count.
//! 2. A backend with *no* media-fault machinery (NUMA-remote DRAM)
//!    still runs the full crash sweep green and jobs-invariantly: the
//!    fault plumbing must degrade gracefully, not assume PCM.

use kindle_faults::{run_nvm_write_sweep_jobs, run_sweep_jobs};
use kindle_mem::Backend;
use kindle_os::PtMode;
use kindle_sim::{set_thread_backend, thread_backend};

const SEED: u64 = 0x00c0_ffee_4b1d_0001;

/// Runs `f` with the ambient backend set to `backend`, restoring the
/// previous choice afterwards (the sweeps republish the ambient choice
/// onto their workers, so one thread-local toggle covers any `jobs`).
fn with_backend<R>(backend: Option<Backend>, f: impl FnOnce() -> R) -> R {
    let prev = thread_backend();
    set_thread_backend(backend);
    let out = f();
    set_thread_backend(prev);
    out
}

#[test]
fn nvm_write_sweep_digest_is_backend_pcm_invariant_at_any_jobs() {
    let direct =
        with_backend(None, || run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, 1)).unwrap();
    for jobs in [1, 8] {
        let pcm = with_backend(Some(Backend::Pcm), || {
            run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, jobs)
        })
        .unwrap();
        assert_eq!(direct, pcm, "jobs={jobs}: backend=pcm diverged from the direct sweep");
    }
}

#[test]
fn checkpoint_sweep_digest_is_backend_pcm_invariant() {
    for mode in [PtMode::Rebuild, PtMode::Persistent] {
        let direct = with_backend(None, || run_sweep_jobs(mode, SEED, 1)).unwrap();
        let pcm = with_backend(Some(Backend::Pcm), || run_sweep_jobs(mode, SEED, 1)).unwrap();
        assert_eq!(direct, pcm, "{mode:?}: backend=pcm changed the checkpoint sweep");
    }
}

#[test]
fn nvm_write_sweep_runs_green_under_numa_backend_at_any_jobs() {
    // No wear, no stuck cells, no ECP — the sweep's crash/recovery
    // machinery must still work, and stay jobs-invariant.
    let serial = with_backend(Some(Backend::Numa), || {
        run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, 1)
    })
    .unwrap();
    let parallel = with_backend(Some(Backend::Numa), || {
        run_nvm_write_sweep_jobs(PtMode::Persistent, SEED, 199, 8)
    })
    .unwrap();
    assert_eq!(serial, parallel, "numa sweep must be jobs-invariant");
    assert!(serial.boundaries > 0, "sweep must exercise crash points");
    // As on PCM, points before the first durable checkpoint cannot
    // recover; the graceful-degradation claim is that recovery still
    // works at all, not that the recovery profile matches PCM's.
    assert!(serial.recovered > 0, "no crash point recovered: {serial:?}");
}
