//! **Kindle** — a framework for exploring OS–architecture interplay in
//! hybrid (DRAM + NVM) memory systems.
//!
//! This crate is the public face of the Kindle reproduction: it re-exports
//! the whole stack and adds the two things the paper's users interact with:
//!
//! * [`Kindle`] — the framework object tying the *preparation component*
//!   (trace capture / workload generation, §II-B) to the *simulation
//!   component* (the full machine, §II);
//! * [`experiments`] — runnable drivers for every table and figure in the
//!   paper's evaluation (§III), from the page-table-scheme comparison
//!   (Fig. 4, Tables III/IV) to the SSP (Fig. 5) and HSCC (Fig. 6,
//!   Tables V/VI) prototype studies.
//!
//! # Quickstart
//!
//! ```
//! use kindle_core::prelude::*;
//!
//! // Build a hybrid-memory machine (Table I config, shrunk for the test).
//! let mut machine = Machine::new(MachineConfig::small())?;
//! let pid = machine.spawn_process()?;
//!
//! // Allocate in NVM via the extended mmap (MAP_NVM) and touch it.
//! let va = machine.mmap(pid, 2 * 4096, Prot::RW, MapFlags::NVM)?;
//! machine.access(pid, va, AccessKind::Write)?;
//!
//! let report = machine.report();
//! assert_eq!(report.kernel.page_faults, 1);
//! # Ok::<(), kindle_core::KindleError>(())
//! ```

pub mod experiments;
pub mod framework;
pub mod parallel;

pub use framework::Kindle;

// Re-export the full stack under stable names.
pub use kindle_cache as cache;
pub use kindle_cpu as cpu;
pub use kindle_hscc as hscc;
pub use kindle_mem as mem;
pub use kindle_os as os;
pub use kindle_persist as persist;
pub use kindle_sim as sim;
pub use kindle_ssp as ssp;
pub use kindle_tlb as tlb;
pub use kindle_trace as trace;
pub use kindle_types as types;

pub use kindle_sim::{Machine, MachineConfig, ReplayOptions, ReplayReport, SimReport};
pub use kindle_types::{
    AccessKind, Cycles, KindleError, MapFlags, MemKind, Prot, Result, VirtAddr,
};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::framework::Kindle;
    pub use kindle_hscc::HsccConfig;
    pub use kindle_os::PtMode;
    pub use kindle_sim::{Machine, MachineConfig, ReplayOptions};
    pub use kindle_ssp::SspConfig;
    pub use kindle_trace::{Driver, ReplayProgram, WorkloadKind};
    pub use kindle_types::{
        AccessKind, Cycles, KindleError, MapFlags, MemKind, Prot, Result, VirtAddr,
    };
}
