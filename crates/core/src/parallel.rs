//! Deterministic fork-join execution for sweeps and experiment grids.
//!
//! The whole evaluation pipeline is embarrassingly parallel at the *grid
//! cell* level: every crash point of a sweep and every (size, interval,
//! workload, …) cell of a figure builds its own fresh [`Machine`] and
//! observes only simulated time. [`par_map`] exploits that with plain
//! scoped `std::thread` workers (std-only — the workspace is hermetic, no
//! rayon) while keeping the one property the repo is built around:
//! **byte-identical output regardless of worker count**.
//!
//! The determinism argument:
//!
//! * results are collected **in input order** — workers race only for
//!   *which* item they compute, never for where its result lands;
//! * each item's computation is a pure function of the item (fresh machine,
//!   per-item RNG), so *when* and *on which host thread* it runs cannot
//!   change its value;
//! * `jobs = 1` short-circuits to the exact serial `map` loop on the
//!   calling thread, making "serial" a special case of the same code path
//!   rather than a second implementation that could drift.
//!
//! The cross-layer sanitizer (`kindle_types::sanitize`) and the ambient
//! media-fault seed (`kindle_sim`) are **host-thread-local**, so workers
//! see neither unless re-published. [`par_map_cells`] does exactly that:
//! it captures the caller's ambient fault seed and whether a sanitizer is
//! installed, then gives every cell its own fresh `InvariantChecker` (and
//! its own seed publication) on whichever thread it runs — the serial and
//! parallel paths install identical per-cell checkers, so violations are
//! caught (and reported identically) at any job count.
//!
//! Worker-count resolution: `--jobs N` (bench harness) beats the
//! `KINDLE_JOBS` environment variable, which beats
//! `std::thread::available_parallelism`.
//!
//! [`Machine`]: kindle_sim::Machine

use std::cell::Cell;
use std::sync::{Mutex, PoisonError};

use kindle_types::sanitize::{self, InvariantChecker};
use kindle_types::{KindleError, Result};

thread_local! {
    /// Ambient worker count for experiment drivers on this thread: the
    /// bench harness sets it once from `--jobs`/`KINDLE_JOBS`, and every
    /// driver grid picks it up without threading a parameter through each
    /// `run_*` signature. Defaults to 1 (serial) so library callers and
    /// unit tests are unaffected unless they opt in.
    static THREAD_JOBS: Cell<usize> = const { Cell::new(1) };
}

/// Publishes the worker count [`par_map_cells`] uses on this thread
/// (clamped to ≥ 1).
pub fn set_thread_jobs(jobs: usize) {
    THREAD_JOBS.with(|j| j.set(jobs.max(1)));
}

/// The ambient worker count for this thread (1 unless published).
pub fn thread_jobs() -> usize {
    THREAD_JOBS.with(Cell::get)
}

/// Resolves the default worker count: `KINDLE_JOBS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("KINDLE_JOBS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "KINDLE_JOBS={v:?} is not a positive integer; using available parallelism"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// the results **in input order**. With `jobs <= 1` (or fewer than two
/// items) this is exactly the serial `map` loop on the calling thread.
///
/// Workers pull items from a shared queue (so uneven cells load-balance)
/// and write each result into its input slot; ordering is positional, not
/// completion-based, which is what makes output independent of the worker
/// count and of scheduling.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have joined
/// (the remaining workers finish their current items). Mutex poisoning is
/// deliberately ignored so the *original* panic payload is the one
/// re-raised.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                scope.spawn(|| loop {
                    let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                    let Some((idx, item)) = next else { break };
                    let out = f(item);
                    slots.lock().unwrap_or_else(PoisonError::into_inner)[idx] = Some(out);
                })
            })
            .collect();
        // Join explicitly: an unjoined panicking scoped thread would be
        // re-raised by the scope with a generic payload, losing the
        // original message. Joining hands us the payload to re-raise.
        let mut panic = None;
        for worker in workers {
            if let Err(payload) = worker.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|slot| slot.expect("joined workers completed every item"))
        .collect()
}

/// [`par_map`] specialized for experiment-grid cells: runs each fallible
/// cell with the caller's ambient context re-established on the worker —
/// the thread-local media-fault model is republished, and if the caller has
/// a sanitizer installed (bench `--sanitize`), the cell runs under its own
/// fresh [`InvariantChecker`] whose violations fail the cell. Uses the
/// ambient [`thread_jobs`] worker count; results come back in input order,
/// and the first cell error (in input order) aborts the map.
///
/// # Errors
///
/// Propagates the cell's own error, or [`KindleError::Corrupted`] when a
/// cell's checker recorded violations.
pub fn par_map_cells<T, R, F>(items: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Result<R> + Sync,
{
    let jobs = thread_jobs();
    let ambient_faults = kindle_sim::thread_media_faults();
    let ambient_legacy = kindle_sim::thread_legacy_maps();
    let ambient_backend = kindle_sim::thread_backend();
    let sanitized = sanitize::installed();
    let run_cell = move |item: T| -> Result<R> {
        kindle_sim::set_thread_media_faults(ambient_faults);
        kindle_sim::set_thread_legacy_maps(ambient_legacy);
        kindle_sim::set_thread_backend(ambient_backend);
        if !sanitized {
            return f(item);
        }
        let checker = InvariantChecker::new();
        let log = checker.log();
        let guard = sanitize::install(Box::new(checker));
        let out = f(item);
        drop(guard);
        let violations = log.take();
        if violations.is_empty() {
            out
        } else {
            eprintln!("sanitizer: {} violation(s) in a parallel cell", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            Err(KindleError::Corrupted("sanitizer recorded violations"))
        }
    };
    par_map(jobs, items, run_cell).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, items.clone(), |x| x * x);
        let parallel = par_map(8, items, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map(8, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let out = par_map(8, vec![()], move |()| std::thread::current().id() == caller);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn jobs_exceeding_items_is_fine() {
        let out = par_map(64, vec![1u64, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            par_map(4, (0..16u64).collect(), |x| {
                assert!(x != 11, "boom at item 11");
                x
            })
        });
        let err = res.expect_err("panic in a worker must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at item 11"), "original payload survives: {msg}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn thread_jobs_roundtrip_and_clamp() {
        assert_eq!(thread_jobs(), 1, "serial unless published");
        set_thread_jobs(6);
        assert_eq!(thread_jobs(), 6);
        set_thread_jobs(0);
        assert_eq!(thread_jobs(), 1, "clamped to >= 1");
        set_thread_jobs(1);
    }

    #[test]
    fn par_map_cells_collects_and_fails_on_first_error() {
        set_thread_jobs(4);
        let ok: Result<Vec<u64>> = par_map_cells((0..10u64).collect(), Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
        let err: Result<Vec<u64>> = par_map_cells((0..10u64).collect(), |x| {
            if x == 3 {
                Err(KindleError::Corrupted("cell 3"))
            } else {
                Ok(x)
            }
        });
        assert!(err.is_err());
        set_thread_jobs(1);
    }

    #[test]
    fn par_map_cells_republishes_fault_model_on_workers() {
        kindle_sim::set_thread_media_faults(Some(kindle_mem::MediaFaultConfig::with_seed(77)));
        set_thread_jobs(4);
        let seeds = par_map_cells((0..8u64).collect(), |_| {
            Ok(kindle_sim::thread_media_faults().map(|f| f.seed))
        })
        .unwrap();
        assert!(seeds.iter().all(|&s| s == Some(77)), "{seeds:?}");
        set_thread_jobs(1);
        kindle_sim::set_thread_media_faults(None);
    }

    #[test]
    fn par_map_cells_republishes_legacy_maps_on_workers() {
        kindle_sim::set_thread_legacy_maps(true);
        set_thread_jobs(4);
        let flags =
            par_map_cells((0..8u64).collect(), |_| Ok(kindle_sim::thread_legacy_maps())).unwrap();
        assert!(flags.iter().all(|&f| f), "{flags:?}");
        set_thread_jobs(1);
        kindle_sim::set_thread_legacy_maps(false);
    }

    #[test]
    fn par_map_cells_republishes_backend_on_workers() {
        kindle_sim::set_thread_backend(Some(kindle_mem::Backend::Cxl));
        set_thread_jobs(4);
        let backends =
            par_map_cells((0..8u64).collect(), |_| Ok(kindle_sim::thread_backend())).unwrap();
        assert!(backends.iter().all(|&b| b == Some(kindle_mem::Backend::Cxl)), "{backends:?}");
        set_thread_jobs(1);
        kindle_sim::set_thread_backend(None);
    }

    #[test]
    fn par_map_cells_installs_per_cell_checker_when_sanitized() {
        use kindle_types::sanitize::Event;
        let outer = InvariantChecker::new();
        let _guard = sanitize::install(Box::new(outer));
        set_thread_jobs(4);
        // Every cell (on whatever thread) must observe an installed checker.
        let installed = par_map_cells((0..8u64).collect(), |_| Ok(sanitize::installed())).unwrap();
        assert!(installed.iter().all(|&b| b), "{installed:?}");
        // A cell that violates an invariant fails the map.
        let err = par_map_cells(vec![0u64], |_| {
            sanitize::emit(|| Event::FrameAlloc { pool: "nvm", pfn: 1 });
            sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 1 });
            sanitize::emit(|| Event::FrameFree { pool: "nvm", pfn: 1 });
            Ok(())
        });
        assert!(matches!(err, Err(KindleError::Corrupted(_))), "{err:?}");
        set_thread_jobs(1);
    }
}
