//! HSCC study: Fig. 6 (OS migration overhead) plus Tables V (pages
//! migrated) and VI (page-selection vs. page-copy split), all from the
//! same sweep.

use kindle_hscc::HsccConfig;
use kindle_sim::{MachineConfig, ReplayOptions};
use kindle_trace::WorkloadKind;
use kindle_types::Result;

use crate::framework::Kindle;
use crate::parallel;

/// Parameters for the HSCC sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig6Params {
    /// Operations replayed per benchmark (paper: 10 M).
    pub ops: u64,
    /// Trace seed.
    pub seed: u64,
    /// DRAM fetch thresholds (paper: 5, 25, 50).
    pub thresholds: Vec<u64>,
    /// DRAM pool pages (paper: 512).
    pub pool_pages: usize,
    /// Benchmarks to run.
    pub workloads: Vec<WorkloadKind>,
}

impl Fig6Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Fig6Params {
            ops: 10_000_000,
            seed: 42,
            thresholds: vec![5, 25, 50],
            pool_pages: 512,
            workloads: WorkloadKind::ALL.to_vec(),
        }
    }

    /// Quick scale.
    pub fn quick() -> Self {
        Fig6Params {
            ops: 150_000,
            thresholds: vec![5, 50],
            pool_pages: 128,
            workloads: vec![WorkloadKind::YcsbMem],
            ..Self::paper()
        }
    }
}

/// One benchmark × threshold cell: feeds Fig. 6 *and* Tables V and VI.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Fetch threshold.
    pub threshold: u64,
    /// Execution time with hardware-only migration (ms) — the baseline.
    pub hw_only_ms: f64,
    /// Execution time with OS migration activities charged (ms).
    pub with_os_ms: f64,
    /// `with_os_ms / hw_only_ms` — Fig. 6's y-axis.
    pub normalized: f64,
    /// Pages migrated NVM→DRAM (Table V).
    pub pages_migrated: u64,
    /// Percentage of OS migration time in page selection (Table VI).
    pub selection_pct: f64,
    /// Percentage of OS migration time in page copy (Table VI).
    pub copy_pct: f64,
    /// Dirty copy-backs performed.
    pub copybacks: u64,
}

/// Runs the HSCC sweep.
///
/// # Errors
///
/// Propagates machine and replay failures.
pub fn run_fig6(p: &Fig6Params) -> Result<Vec<Fig6Row>> {
    // Prepared programs are plain data; (workload, threshold) cells share
    // them by reference and run on the ambient worker count. Row order is
    // the serial nesting order.
    let prepared: Vec<Kindle> =
        p.workloads.iter().map(|&wl| Kindle::prepare_streaming(wl, p.ops, p.seed)).collect();
    let mut cells = Vec::new();
    for (i, &wl) in p.workloads.iter().enumerate() {
        for &threshold in &p.thresholds {
            cells.push((i, wl, threshold));
        }
    }
    parallel::par_map_cells(cells, |(i, wl, threshold)| {
        let kindle = &prepared[i];
        let hscc = HsccConfig {
            fetch_threshold: threshold,
            pool_pages: p.pool_pages,
            ..Default::default()
        };
        // Baseline: hardware migration activities only.
        let hw_cfg = MachineConfig::table_i().with_hscc(hscc.clone(), false);
        let (hw_run, _) = kindle.simulate(hw_cfg, ReplayOptions::default())?;
        // Full run: hardware + OS migration activities.
        let os_cfg = MachineConfig::table_i().with_hscc(hscc, true);
        let (os_run, report) = kindle.simulate(os_cfg, ReplayOptions::default())?;
        let stats = report.hscc.expect("hscc engine enabled");
        let hw_only_ms = hw_run.cycles.as_millis_f64();
        let with_os_ms = os_run.cycles.as_millis_f64();
        Ok(Fig6Row {
            benchmark: wl.spec().name.to_string(),
            threshold,
            hw_only_ms,
            with_os_ms,
            normalized: with_os_ms / hw_only_ms,
            pages_migrated: stats.pages_migrated,
            selection_pct: stats.selection_share() * 100.0,
            copy_pct: (1.0 - stats.selection_share()) * 100.0,
            copybacks: stats.copybacks,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_shapes() {
        let rows = run_fig6(&Fig6Params::quick()).unwrap();
        assert_eq!(rows.len(), 2);
        let low = rows.iter().find(|r| r.threshold == 5).unwrap();
        let high = rows.iter().find(|r| r.threshold == 50).unwrap();
        assert!(
            low.pages_migrated > high.pages_migrated,
            "higher threshold must migrate fewer pages: {} vs {}",
            low.pages_migrated,
            high.pages_migrated
        );
        for r in &rows {
            assert!(r.normalized > 1.0, "OS work must cost time: {}", r.normalized);
            assert!(r.copy_pct > r.selection_pct, "page copy dominates");
            assert!((r.copy_pct + r.selection_pct - 100.0).abs() < 1e-6);
        }
    }
}
