//! Backends × schemes grid: the Fig. 4a persistence study rerun under
//! every requested far-tier backend (the `--backend` axis as a grid).
//!
//! Each backend runs the full Fig. 4a size × scheme grid with the
//! backend published ambiently — exactly what `--backend <name>` does —
//! so the numbers here are the numbers any fig/table binary would
//! produce under that flag. The caller's own ambient backend choice is
//! restored afterwards.

use super::persistence::{run_fig4a, Fig4aParams, Fig4aRow};
use kindle_mem::Backend;
use kindle_types::Result;

/// Parameters for the backends × schemes grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendGridParams {
    /// Far-tier backends to sweep, in output order.
    pub backends: Vec<Backend>,
    /// The Fig. 4a grid each backend runs.
    pub fig4a: Fig4aParams,
}

impl BackendGridParams {
    /// The four headline backends over the paper-scale Fig. 4a grid.
    pub fn paper() -> Self {
        BackendGridParams { backends: Self::headline(), fig4a: Fig4aParams::paper() }
    }

    /// The four headline backends over one quick-scale size — the CI
    /// bench-smoke shape: one golden-pinned row per backend.
    pub fn quick() -> Self {
        BackendGridParams {
            backends: Self::headline(),
            fig4a: Fig4aParams { sizes_mb: vec![16], ..Fig4aParams::quick() },
        }
    }

    /// The headline backends (`pcm`, `numa`, `sttram`, `cxl`).
    pub fn headline() -> Vec<Backend> {
        vec![Backend::Pcm, Backend::Numa, Backend::SttRam, Backend::Cxl]
    }
}

/// Runs the Fig. 4a grid once per backend, publishing each backend
/// ambiently for the duration of its grid (workers inherit it through
/// `par_map_cells`) and restoring the caller's ambient choice after.
///
/// # Errors
///
/// Propagates the first failing cell's error.
pub fn run_backend_grid(p: &BackendGridParams) -> Result<Vec<(Backend, Vec<Fig4aRow>)>> {
    let prev = kindle_sim::thread_backend();
    let mut out = Vec::with_capacity(p.backends.len());
    for &b in &p.backends {
        kindle_sim::set_thread_backend(Some(b));
        let rows = run_fig4a(&p.fig4a);
        kindle_sim::set_thread_backend(prev);
        out.push((b, rows?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_grid_runs_every_headline_backend_green() {
        let p = BackendGridParams::quick();
        let grid = run_backend_grid(&p).unwrap();
        assert_eq!(grid.len(), 4);
        for ((b, rows), want) in grid.iter().zip(BackendGridParams::headline()) {
            assert_eq!(*b, want, "output order must follow the request");
            assert_eq!(rows.len(), 1);
            for r in rows {
                assert!(
                    r.rebuild_ms.is_finite() && r.rebuild_ms > 0.0,
                    "{}: bad rebuild {:?}",
                    b.name(),
                    r
                );
                assert!(
                    r.persistent_ms.is_finite() && r.persistent_ms > 0.0,
                    "{}: bad persistent {:?}",
                    b.name(),
                    r
                );
            }
        }
        assert_eq!(kindle_sim::thread_backend(), None, "grid must restore the ambient choice");

        // Timing sanity: DRAM-class far tiers write far faster than PCM's
        // 500 ns cells, so their persistent runs must come in under PCM's.
        let pers = |i: usize| grid[i].1[0].persistent_ms;
        assert!(pers(1) < pers(0), "numa ({}) should beat pcm ({})", pers(1), pers(0));
        assert!(pers(2) < pers(0), "sttram ({}) should beat pcm ({})", pers(2), pers(0));
    }
}
