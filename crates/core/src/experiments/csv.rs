//! CSV export of experiment rows — the analog of the original artifact's
//! "Python scripts to parse gem5 statistics files and generate output
//! files" step: every driver's rows can be dumped for external plotting.

use super::{ConsolidationRow, Fig4aRow, Fig4bRow, Fig5Row, Fig6Row, Table3Row, Table4Row};

/// Row types that can be rendered to CSV.
pub trait CsvRow {
    /// Header line (no trailing newline).
    fn csv_header() -> &'static str;
    /// One data line (no trailing newline).
    fn csv_row(&self) -> String;
}

/// Renders a full CSV document from rows.
pub fn to_csv<R: CsvRow>(rows: &[R]) -> String {
    let mut out = String::from(R::csv_header());
    out.push('\n');
    for r in rows {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    out
}

/// Renders rows as a JSON array of objects, reusing the CSV field names
/// as keys. Hand-rolled (no serde in the offline image): a value that
/// parses as a finite number is emitted bare, everything else as an
/// escaped string. Field values must not contain commas — true for every
/// row type here, whose only strings are benchmark identifiers.
pub fn to_json<R: CsvRow>(rows: &[R]) -> String {
    let keys: Vec<&str> = R::csv_header().split(',').collect();
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let line = r.csv_row();
        for (j, (key, value)) in keys.iter().zip(line.split(',')).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(&json_value(value));
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn json_value(v: &str) -> String {
    if v.parse::<f64>().is_ok_and(f64::is_finite) {
        v.to_string()
    } else {
        format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

impl CsvRow for Fig4aRow {
    fn csv_header() -> &'static str {
        "size_mib,rebuild_ms,persistent_ms,overhead"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{:.3},{:.3},{:.3}",
            self.size_mb,
            self.rebuild_ms,
            self.persistent_ms,
            self.overhead()
        )
    }
}

impl CsvRow for Fig4bRow {
    fn csv_header() -> &'static str {
        "stride,stride_bytes,rebuild_ms,persistent_ms"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3}",
            self.stride, self.stride_bytes, self.rebuild_ms, self.persistent_ms
        )
    }
}

impl CsvRow for Table3Row {
    fn csv_header() -> &'static str {
        "churn_mib,persistent_ms,rebuild_ms"
    }
    fn csv_row(&self) -> String {
        format!("{},{:.3},{:.3}", self.churn_mb, self.persistent_ms, self.rebuild_ms)
    }
}

impl CsvRow for Table4Row {
    fn csv_header() -> &'static str {
        "churn_mib,interval_ms,persistent_ms,rebuild_ms"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{:.1},{:.3},{:.3}",
            self.churn_mb, self.interval_ms, self.persistent_ms, self.rebuild_ms
        )
    }
}

impl CsvRow for Fig5Row {
    fn csv_header() -> &'static str {
        "benchmark,interval_ms,baseline_ms,ssp_ms,normalized,overhead"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3},{:.4},{:.4}",
            self.benchmark,
            self.interval_ms,
            self.baseline_ms,
            self.ssp_ms,
            self.normalized,
            self.overhead
        )
    }
}

impl CsvRow for Fig6Row {
    fn csv_header() -> &'static str {
        "benchmark,threshold,hw_only_ms,with_os_ms,normalized,pages_migrated,selection_pct,copy_pct,copybacks"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3},{:.4},{},{:.2},{:.2},{}",
            self.benchmark,
            self.threshold,
            self.hw_only_ms,
            self.with_os_ms,
            self.normalized,
            self.pages_migrated,
            self.selection_pct,
            self.copy_pct,
            self.copybacks
        )
    }
}

impl CsvRow for ConsolidationRow {
    fn csv_header() -> &'static str {
        "benchmark,consolidation_ms,normalized,pages_consolidated"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{:.4},{}",
            self.benchmark, self.consolidation_ms, self.normalized, self.pages_consolidated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_rows_render() {
        let rows = vec![Fig4aRow { size_mb: 64, rebuild_ms: 54.2, persistent_ms: 29.2 }];
        let csv = to_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "size_mib,rebuild_ms,persistent_ms,overhead");
        let row = lines.next().unwrap();
        assert!(row.starts_with("64,54.200,29.200,1.856"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn fig6_rows_render() {
        let rows = vec![Fig6Row {
            benchmark: "Ycsb_mem".into(),
            threshold: 5,
            hw_only_ms: 100.0,
            with_os_ms: 150.0,
            normalized: 1.5,
            pages_migrated: 1234,
            selection_pct: 20.0,
            copy_pct: 80.0,
            copybacks: 99,
        }];
        let csv = to_csv(&rows);
        assert!(csv.contains("Ycsb_mem,5,100.000,150.000,1.5000,1234,20.00,80.00,99"));
    }

    #[test]
    fn empty_rows_render_header_only() {
        let csv = to_csv::<Table3Row>(&[]);
        assert_eq!(csv.trim(), Table3Row::csv_header());
    }

    #[test]
    fn json_mirrors_csv_fields() {
        let rows = vec![Fig4aRow { size_mb: 64, rebuild_ms: 54.2, persistent_ms: 29.2 }];
        let json = to_json(&rows);
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"size_mib\": 64"), "{json}");
        assert!(json.contains("\"rebuild_ms\": 54.200"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn json_quotes_non_numeric_fields() {
        let rows = vec![ConsolidationRow {
            benchmark: "Ycsb_mem".into(),
            consolidation_ms: 12,
            normalized: 1.25,
            pages_consolidated: 7,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"benchmark\": \"Ycsb_mem\""), "{json}");
        assert!(json.contains("\"normalized\": 1.2500"), "{json}");
    }

    #[test]
    fn json_empty_rows_render_empty_array() {
        assert_eq!(to_json::<Table3Row>(&[]).trim(), "[\n]");
    }
}
