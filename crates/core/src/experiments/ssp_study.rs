//! SSP study: Fig. 5 plus the consolidation-interval ablation the paper
//! calls out as an extension Kindle enables.

use kindle_sim::{MachineConfig, ReplayOptions};
use kindle_ssp::SspConfig;
use kindle_trace::WorkloadKind;
use kindle_types::{Cycles, Result};

use crate::framework::Kindle;
use crate::parallel;

/// Parameters for Fig. 5.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig5Params {
    /// Operations replayed per benchmark (paper: 10 M).
    pub ops: u64,
    /// Trace seed.
    pub seed: u64,
    /// Consistency intervals in ms (paper: 1, 5, 10).
    pub intervals_ms: Vec<u64>,
    /// Consolidation-thread period in ms (paper fixes 1).
    pub consolidation_ms: u64,
    /// Benchmarks to run.
    pub workloads: Vec<WorkloadKind>,
}

impl Fig5Params {
    /// Paper scale.
    pub fn paper() -> Self {
        Fig5Params {
            ops: 10_000_000,
            seed: 42,
            intervals_ms: vec![1, 5, 10],
            consolidation_ms: 1,
            workloads: WorkloadKind::ALL.to_vec(),
        }
    }

    /// Quick scale.
    pub fn quick() -> Self {
        Fig5Params { ops: 120_000, workloads: vec![WorkloadKind::YcsbMem], ..Self::paper() }
    }
}

/// One Fig. 5 bar.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Consistency interval (ms).
    pub interval_ms: u64,
    /// Execution time without memory consistency (ms).
    pub baseline_ms: f64,
    /// Execution time with SSP (ms).
    pub ssp_ms: f64,
    /// `ssp_ms / baseline_ms` — the figure's y-axis.
    pub normalized: f64,
    /// SSP overhead alone (`normalized - 1`).
    pub overhead: f64,
}

/// Runs Fig. 5: SSP consistency-interval sweep, normalized to a run with
/// no memory consistency.
///
/// # Errors
///
/// Propagates machine and replay failures.
pub fn run_fig5(p: &Fig5Params) -> Result<Vec<Fig5Row>> {
    // Prepared programs are plain data; workers share them by reference.
    let prepared: Vec<Kindle> =
        p.workloads.iter().map(|&wl| Kindle::prepare_streaming(wl, p.ops, p.seed)).collect();
    // Baselines (no memory consistency), one cell per workload.
    let baselines = parallel::par_map_cells((0..prepared.len()).collect(), |i| {
        let (base, _) = prepared[i].simulate(MachineConfig::table_i(), ReplayOptions::default())?;
        Ok(base.cycles.as_millis_f64())
    })?;
    // SSP runs, one cell per (workload, interval); row order is the
    // serial nesting order.
    let mut cells = Vec::new();
    for (i, &wl) in p.workloads.iter().enumerate() {
        for &interval_ms in &p.intervals_ms {
            cells.push((i, wl, interval_ms));
        }
    }
    parallel::par_map_cells(cells, |(i, wl, interval_ms)| {
        let cfg = MachineConfig::table_i().with_ssp(SspConfig {
            consistency_interval: Cycles::from_millis(interval_ms),
            consolidation_interval: Cycles::from_millis(p.consolidation_ms),
        });
        let (run, _) = prepared[i].simulate(cfg, ReplayOptions { fase: true, max_ops: None })?;
        let ssp_ms = run.cycles.as_millis_f64();
        let baseline_ms = baselines[i];
        Ok(Fig5Row {
            benchmark: wl.spec().name.to_string(),
            interval_ms,
            baseline_ms,
            ssp_ms,
            normalized: ssp_ms / baseline_ms,
            overhead: ssp_ms / baseline_ms - 1.0,
        })
    })
}

/// One row of the consolidation-interval ablation.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConsolidationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Consolidation-thread period (ms).
    pub consolidation_ms: u64,
    /// Normalized execution time (vs. no consistency).
    pub normalized: f64,
    /// Pages consolidated.
    pub pages_consolidated: u64,
}

/// The study the paper says the original SSP work left unexplored: the
/// influence of the consolidation-thread frequency, at a fixed 5 ms
/// consistency interval.
///
/// # Errors
///
/// Propagates machine and replay failures.
pub fn run_consolidation_sweep(
    workload: WorkloadKind,
    ops: u64,
    seed: u64,
    consolidation_ms: &[u64],
) -> Result<Vec<ConsolidationRow>> {
    let kindle = Kindle::prepare_streaming(workload, ops, seed);
    let (base, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default())?;
    let baseline = base.cycles.as_millis_f64();
    parallel::par_map_cells(consolidation_ms.to_vec(), |ms| {
        let cfg = MachineConfig::table_i().with_ssp(SspConfig {
            consistency_interval: Cycles::from_millis(5),
            consolidation_interval: Cycles::from_millis(ms),
        });
        let (run, report) = kindle.simulate(cfg, ReplayOptions { fase: true, max_ops: None })?;
        Ok(ConsolidationRow {
            benchmark: workload.spec().name.to_string(),
            consolidation_ms: ms,
            normalized: run.cycles.as_millis_f64() / baseline,
            pages_consolidated: report.ssp.map(|s| s.pages_consolidated).unwrap_or(0),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_shapes() {
        let rows = run_fig5(&Fig5Params::quick()).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.normalized > 1.0,
                "consistency must cost something: {} at {} ms",
                r.normalized,
                r.interval_ms
            );
        }
        let at = |ms: u64| rows.iter().find(|r| r.interval_ms == ms).unwrap().overhead;
        assert!(
            at(1) > at(10),
            "wider interval must reduce overhead: 1ms={} 10ms={}",
            at(1),
            at(10)
        );
    }
}
