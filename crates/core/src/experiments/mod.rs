//! Drivers for every table and figure in the paper's evaluation (§III).
//!
//! | Paper artifact | Driver | What it sweeps |
//! |----------------|--------|----------------|
//! | Fig. 4a | [`run_fig4a`] | sequential alloc+access size × page-table scheme |
//! | Fig. 4b | [`run_fig4b`] | allocation stride (1 GiB / 2 MiB / 4 KiB) × scheme |
//! | Table III | [`run_table3`] | munmap/mmap churn size × scheme |
//! | Table IV | [`run_table4`] | checkpoint interval × churn size × scheme |
//! | Fig. 5 | [`run_fig5`] | SSP consistency interval × benchmark |
//! | Fig. 6 / Tables V & VI | [`run_fig6`] | HSCC fetch threshold × benchmark |
//! | Backends grid | [`run_backend_grid`] | far-tier backend × page-table scheme |
//!
//! Every driver takes a params struct with `paper()` (full scale) and
//! `quick()` (CI/bench scale) constructors and returns serialisable row
//! types whose columns match the paper's.

mod backends;
pub mod csv;
mod hscc_study;
mod persistence;
mod ssp_study;

pub use backends::{run_backend_grid, BackendGridParams};
pub use csv::{to_csv, to_json, CsvRow};
pub use hscc_study::{run_fig6, Fig6Params, Fig6Row};
pub use persistence::{
    run_fig4a, run_fig4b, run_table3, run_table4, Fig4aParams, Fig4aRow, Fig4bParams, Fig4bRow,
    Table3Params, Table3Row, Table4Params, Table4Row,
};
pub use ssp_study::{run_consolidation_sweep, run_fig5, ConsolidationRow, Fig5Params, Fig5Row};
