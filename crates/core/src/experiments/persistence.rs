//! Process-persistence experiments: Fig. 4a/4b, Table III, Table IV.
//!
//! All four use the micro-benchmarks of §III-A, run with periodic
//! execution-context checkpointing under the *rebuild* and *persistent*
//! page-table maintenance schemes.

use crate::parallel;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig};
use kindle_types::{AccessKind, Cycles, MapFlags, Prot, Result, VirtAddr, PAGE_SIZE};

const MIB: u64 = 1 << 20;

/// Builds a checkpointing machine for one scheme.
fn persistence_machine(
    mode: PtMode,
    interval: Cycles,
    list_op_instr: u64,
    mru_page_cache: bool,
) -> Result<(Machine, u32)> {
    let mut cfg = MachineConfig::table_i().with_pt_mode(mode).with_checkpointing(interval);
    cfg.costs.mapping_list_op = list_op_instr;
    cfg.mem.mru_page_cache = mru_page_cache;
    // The paper's micro-benchmark timings evidently exclude demand-zeroing
    // cost (gemOS hands out pre-zeroed frames); keep the comparison on the
    // page-table maintenance work itself.
    cfg.costs.zero_new_frames = false;
    let mut m = Machine::new(cfg)?;
    let pid = m.spawn_process()?;
    Ok((m, pid))
}

/// Writes the first word of every page in `[va, va+len)`.
fn touch_pages(m: &mut Machine, pid: u32, va: VirtAddr, len: u64) -> Result<()> {
    for i in 0..len / PAGE_SIZE as u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write)?;
    }
    Ok(())
}

/// Reads the first word of every page in `[va, va+len)`.
fn read_pages(m: &mut Machine, pid: u32, va: VirtAddr, len: u64) -> Result<()> {
    for i in 0..len / PAGE_SIZE as u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Read)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 4a — sequential allocation + access, size sweep
// ---------------------------------------------------------------------------

/// Parameters for Fig. 4a.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig4aParams {
    /// Allocation sizes in MiB.
    pub sizes_mb: Vec<u64>,
    /// Checkpoint interval.
    pub interval: Cycles,
    /// Instruction cost per mapping-list entry check (rebuild scheme).
    pub list_op_instr: u64,
    /// Sequential re-read passes over the area after the touch (the
    /// paper's runs span many checkpoint intervals).
    pub read_rounds: u64,
    /// Memory-controller MRU page cache (on by default; off exists so the
    /// equivalence test can prove the fast path changes no row).
    pub mru_page_cache: bool,
}

impl Fig4aParams {
    /// Paper scale: 64–512 MiB at a 10 ms interval.
    pub fn paper() -> Self {
        Fig4aParams {
            sizes_mb: vec![64, 128, 256, 512],
            interval: Cycles::from_millis(10),
            list_op_instr: 2600,
            read_rounds: 6,
            mru_page_cache: true,
        }
    }

    /// Quick scale for tests and benches.
    pub fn quick() -> Self {
        Fig4aParams {
            sizes_mb: vec![16, 32],
            interval: Cycles::from_millis(1),
            list_op_instr: 2600,
            read_rounds: 2,
            mru_page_cache: true,
        }
    }
}

/// One Fig. 4a data point.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig4aRow {
    /// Allocation size (MiB).
    pub size_mb: u64,
    /// End-to-end time under the rebuild scheme (ms).
    pub rebuild_ms: f64,
    /// End-to-end time under the persistent scheme (ms).
    pub persistent_ms: f64,
}

impl Fig4aRow {
    /// rebuild / persistent — the paper's overhead factor.
    pub fn overhead(&self) -> f64 {
        self.rebuild_ms / self.persistent_ms
    }
}

fn seq_alloc_access(mode: PtMode, size: u64, p: &Fig4aParams) -> Result<f64> {
    let (mut m, pid) = persistence_machine(mode, p.interval, p.list_op_instr, p.mru_page_cache)?;
    let t0 = m.now();
    let va = m.mmap(pid, size, Prot::RW, MapFlags::NVM)?;
    touch_pages(&mut m, pid, va, size)?;
    // Sequential access passes so the run spans several checkpoint
    // intervals, as in the paper.
    for _ in 0..p.read_rounds {
        read_pages(&mut m, pid, va, size)?;
    }
    Ok((m.now() - t0).as_millis_f64())
}

/// Runs Fig. 4a: sequential allocation and access of increasing sizes.
/// Grid cells (one per size) run on the ambient
/// [`parallel::thread_jobs`] worker count; row order is always size order.
///
/// # Errors
///
/// Propagates machine failures (e.g. NVM exhaustion on oversized params).
pub fn run_fig4a(p: &Fig4aParams) -> Result<Vec<Fig4aRow>> {
    parallel::par_map_cells(p.sizes_mb.clone(), |size_mb| {
        let size = size_mb * MIB;
        Ok(Fig4aRow {
            size_mb,
            rebuild_ms: seq_alloc_access(PtMode::Rebuild, size, p)?,
            persistent_ms: seq_alloc_access(PtMode::Persistent, size, p)?,
        })
    })
}

// ---------------------------------------------------------------------------
// Fig. 4b — stride sweep
// ---------------------------------------------------------------------------

/// Parameters for Fig. 4b.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig4bParams {
    /// Pages allocated (paper: ten 4 KiB pages).
    pub pages: u64,
    /// Accesses performed after allocation (cycling over the pages).
    pub access_ops: u64,
    /// Checkpoint interval.
    pub interval: Cycles,
    /// Instruction cost per mapping-list entry check.
    pub list_op_instr: u64,
}

impl Fig4bParams {
    /// Paper scale.
    pub fn paper() -> Self {
        Fig4bParams {
            pages: 10,
            access_ops: 20_000_000,
            interval: Cycles::from_millis(10),
            list_op_instr: 2600,
        }
    }

    /// Quick scale.
    pub fn quick() -> Self {
        Fig4bParams { access_ops: 1_000_000, interval: Cycles::from_millis(1), ..Self::paper() }
    }
}

/// One Fig. 4b data point.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fig4bRow {
    /// Stride label ("1GB", "2MB", "4KB").
    pub stride: String,
    /// Stride in bytes.
    pub stride_bytes: u64,
    /// Rebuild-scheme time (ms).
    pub rebuild_ms: f64,
    /// Persistent-scheme time (ms).
    pub persistent_ms: f64,
}

fn stride_bench(mode: PtMode, stride: u64, p: &Fig4bParams) -> Result<f64> {
    let (mut m, pid) = persistence_machine(mode, p.interval, p.list_op_instr, true)?;
    let base = VirtAddr::new(0x10_0000_0000);
    let t0 = m.now();
    // Allocation phase: the stride decides how many page-table levels the
    // persistent scheme must create with consistency-wrapped stores.
    for i in 0..p.pages {
        let va = base + i * stride;
        m.mmap_at(pid, Some(va), PAGE_SIZE as u64, Prot::RW, MapFlags::NVM | MapFlags::FIXED)?;
        m.access(pid, va, AccessKind::Write)?;
    }
    // Access phase spanning several checkpoint intervals: the rebuild
    // scheme pays per-checkpoint mapping-list maintenance throughout.
    for i in 0..p.access_ops {
        m.access(pid, base + (i % p.pages) * stride, AccessKind::Read)?;
    }
    for i in 0..p.pages {
        m.munmap(pid, base + i * stride, PAGE_SIZE as u64)?;
    }
    Ok((m.now() - t0).as_millis_f64())
}

/// Runs Fig. 4b: ten 4 KiB allocations at 1 GiB / 2 MiB / 4 KiB strides,
/// exercising different numbers of page-table levels.
///
/// # Errors
///
/// Propagates machine failures.
pub fn run_fig4b(p: &Fig4bParams) -> Result<Vec<Fig4bRow>> {
    let strides: Vec<(&str, u64)> = vec![("1GB", 1 << 30), ("2MB", 2 << 20), ("4KB", 4096)];
    parallel::par_map_cells(strides, |(label, stride)| {
        Ok(Fig4bRow {
            stride: label.to_string(),
            stride_bytes: stride,
            rebuild_ms: stride_bench(PtMode::Rebuild, stride, p)?,
            persistent_ms: stride_bench(PtMode::Persistent, stride, p)?,
        })
    })
}

// ---------------------------------------------------------------------------
// Table III — munmap/mmap churn
// ---------------------------------------------------------------------------

/// Parameters for Table III.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table3Params {
    /// Base allocation (MiB); the paper uses 512.
    pub base_mb: u64,
    /// Churn (alloc/free) sizes in MiB.
    pub churn_mb: Vec<u64>,
    /// Checkpoint interval.
    pub interval: Cycles,
    /// Instruction cost per mapping-list entry check.
    pub list_op_instr: u64,
}

impl Table3Params {
    /// Paper scale: 512 MiB base, 64/128/256 MiB churn.
    pub fn paper() -> Self {
        Table3Params {
            base_mb: 512,
            churn_mb: vec![64, 128, 256],
            interval: Cycles::from_millis(10),
            list_op_instr: 2600,
        }
    }

    /// Quick scale.
    pub fn quick() -> Self {
        Table3Params {
            base_mb: 32,
            churn_mb: vec![8, 16],
            interval: Cycles::from_millis(1),
            list_op_instr: 2600,
        }
    }
}

/// One Table III row.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table3Row {
    /// Alloc/free size (MiB).
    pub churn_mb: u64,
    /// Persistent-scheme time (ms).
    pub persistent_ms: f64,
    /// Rebuild-scheme time (ms).
    pub rebuild_ms: f64,
}

/// The churn micro-benchmark shared by Tables III and IV.
fn churn_bench(
    mode: PtMode,
    base: u64,
    churn: u64,
    interval: Cycles,
    list_op_instr: u64,
    access_rounds: u64,
) -> Result<f64> {
    let (mut m, pid) = persistence_machine(mode, interval, list_op_instr, true)?;
    let t0 = m.now();
    let va = m.mmap(pid, base, Prot::RW, MapFlags::NVM)?;
    touch_pages(&mut m, pid, va, base)?;
    for _ in 0..2 {
        m.munmap(pid, va, churn)?;
        m.mmap_at(pid, Some(va), churn, Prot::RW, MapFlags::NVM | MapFlags::FIXED)?;
        touch_pages(&mut m, pid, va, churn)?;
    }
    read_pages(&mut m, pid, va, churn)?;
    for _ in 0..access_rounds {
        read_pages(&mut m, pid, va, base)?;
    }
    m.munmap(pid, va, base)?;
    Ok((m.now() - t0).as_millis_f64())
}

/// Runs Table III: repeated munmap/mmap of a fixed-size prefix.
///
/// # Errors
///
/// Propagates machine failures.
pub fn run_table3(p: &Table3Params) -> Result<Vec<Table3Row>> {
    parallel::par_map_cells(p.churn_mb.clone(), |churn_mb| {
        Ok(Table3Row {
            churn_mb,
            persistent_ms: churn_bench(
                PtMode::Persistent,
                p.base_mb * MIB,
                churn_mb * MIB,
                p.interval,
                p.list_op_instr,
                0,
            )?,
            rebuild_ms: churn_bench(
                PtMode::Rebuild,
                p.base_mb * MIB,
                churn_mb * MIB,
                p.interval,
                p.list_op_instr,
                0,
            )?,
        })
    })
}

// ---------------------------------------------------------------------------
// Table IV — checkpoint interval sweep
// ---------------------------------------------------------------------------

/// Parameters for Table IV.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table4Params {
    /// Base allocation (MiB).
    pub base_mb: u64,
    /// Churn sizes in MiB.
    pub churn_mb: Vec<u64>,
    /// Checkpoint intervals to sweep.
    pub intervals: Vec<Cycles>,
    /// Extra rounds of full-area reads (the paper's "accessed multiple
    /// times to cause TLB misses").
    pub access_rounds: u64,
    /// Instruction cost per mapping-list entry check.
    pub list_op_instr: u64,
}

impl Table4Params {
    /// Paper scale: 512 MiB base; 64/128/256 MiB churn; 10 ms/100 ms/1 s.
    pub fn paper() -> Self {
        Table4Params {
            base_mb: 512,
            churn_mb: vec![64, 128, 256],
            intervals: vec![
                Cycles::from_millis(10),
                Cycles::from_millis(100),
                Cycles::from_secs(1),
            ],
            access_rounds: 2,
            list_op_instr: 2600,
        }
    }

    /// Quick scale.
    pub fn quick() -> Self {
        Table4Params {
            base_mb: 32,
            churn_mb: vec![8],
            intervals: vec![Cycles::from_millis(1), Cycles::from_millis(10)],
            access_rounds: 1,
            list_op_instr: 2600,
        }
    }
}

/// One Table IV row.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table4Row {
    /// Alloc/free size (MiB).
    pub churn_mb: u64,
    /// Checkpoint interval (ms).
    pub interval_ms: f64,
    /// Persistent-scheme time (ms).
    pub persistent_ms: f64,
    /// Rebuild-scheme time (ms).
    pub rebuild_ms: f64,
}

/// Runs Table IV: the churn benchmark under different checkpoint intervals.
///
/// # Errors
///
/// Propagates machine failures.
pub fn run_table4(p: &Table4Params) -> Result<Vec<Table4Row>> {
    let mut cells = Vec::new();
    for &churn_mb in &p.churn_mb {
        for &interval in &p.intervals {
            cells.push((churn_mb, interval));
        }
    }
    parallel::par_map_cells(cells, |(churn_mb, interval)| {
        Ok(Table4Row {
            churn_mb,
            interval_ms: interval.as_millis_f64(),
            persistent_ms: churn_bench(
                PtMode::Persistent,
                p.base_mb * MIB,
                churn_mb * MIB,
                interval,
                p.list_op_instr,
                p.access_rounds,
            )?,
            rebuild_ms: churn_bench(
                PtMode::Rebuild,
                p.base_mb * MIB,
                churn_mb * MIB,
                interval,
                p.list_op_instr,
                p.access_rounds,
            )?,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_quick_shapes() {
        let rows = run_fig4a(&Fig4aParams::quick()).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.rebuild_ms > r.persistent_ms,
                "rebuild must cost more at {} MiB: {} vs {}",
                r.size_mb,
                r.rebuild_ms,
                r.persistent_ms
            );
        }
        // Overhead grows with size.
        assert!(rows[1].overhead() > rows[0].overhead());
    }

    #[test]
    fn fig4a_mru_cache_changes_no_row() {
        // The memory-controller fast path must be invisible in the results:
        // every simulated timing is identical with the cache off.
        let with_cache = run_fig4a(&Fig4aParams::quick()).unwrap();
        let without =
            run_fig4a(&Fig4aParams { mru_page_cache: false, ..Fig4aParams::quick() }).unwrap();
        assert_eq!(with_cache, without);
    }

    #[test]
    fn fig4a_rows_are_layout_invariant() {
        // Flat vs legacy controller stores (the bench harness's
        // --legacy-maps) must produce byte-identical rows: the store
        // layout is a host-side data structure, never a simulated one.
        let flat = run_fig4a(&Fig4aParams::quick()).unwrap();
        kindle_sim::set_thread_legacy_maps(true);
        let legacy = run_fig4a(&Fig4aParams::quick());
        kindle_sim::set_thread_legacy_maps(false);
        assert_eq!(flat, legacy.unwrap(), "legacy maps changed a Fig. 4a row");
    }

    #[test]
    fn fig4a_rows_are_backend_pcm_invariant() {
        // PCM through the MemoryBackend trait (the bench harness's
        // --backend pcm) must be byte-identical to the pre-trait default
        // path, serial and parallel alike.
        let direct = run_fig4a(&Fig4aParams::quick()).unwrap();
        kindle_sim::set_thread_backend(Some(kindle_mem::Backend::Pcm));
        let via_trait = run_fig4a(&Fig4aParams::quick());
        parallel::set_thread_jobs(4);
        let via_trait_par = run_fig4a(&Fig4aParams::quick());
        parallel::set_thread_jobs(1);
        kindle_sim::set_thread_backend(None);
        assert_eq!(direct, via_trait.unwrap(), "backend=pcm changed a Fig. 4a row");
        assert_eq!(direct, via_trait_par.unwrap(), "backend=pcm diverged under jobs=4");
    }

    #[test]
    fn fig4a_rows_are_jobs_invariant() {
        let serial = run_fig4a(&Fig4aParams::quick()).unwrap();
        parallel::set_thread_jobs(4);
        let parallel_rows = run_fig4a(&Fig4aParams::quick()).unwrap();
        parallel::set_thread_jobs(1);
        assert_eq!(serial, parallel_rows, "jobs=1 vs jobs=4 must agree bit-for-bit");
    }

    #[test]
    fn fig4b_quick_shapes() {
        let rows = run_fig4b(&Fig4bParams::quick()).unwrap();
        assert_eq!(rows.len(), 3);
        let by = |label: &str| rows.iter().find(|r| r.stride == label).unwrap().clone();
        let gb = by("1GB");
        let kb = by("4KB");
        // Wide strides touch more page-table levels, punishing the
        // persistent scheme relative to its own 4 KiB case.
        assert!(
            gb.persistent_ms / gb.rebuild_ms > kb.persistent_ms / kb.rebuild_ms,
            "persistent should look relatively worse at 1 GiB stride"
        );
    }

    #[test]
    fn table3_quick_shapes() {
        let rows = run_table3(&Table3Params::quick()).unwrap();
        for r in &rows {
            assert!(r.rebuild_ms > r.persistent_ms, "rebuild above persistent");
        }
        // Both grow with churn size.
        assert!(rows[1].persistent_ms > rows[0].persistent_ms);
        assert!(rows[1].rebuild_ms > rows[0].rebuild_ms);
    }

    #[test]
    fn table4_quick_shapes() {
        let rows = run_table4(&Table4Params::quick()).unwrap();
        let fast = &rows[0]; // 1 ms interval
        let slow = &rows[1]; // 10 ms interval
                             // Persistent is insensitive to the interval; rebuild benefits from
                             // longer intervals.
        let drift = (fast.persistent_ms - slow.persistent_ms).abs() / slow.persistent_ms;
        assert!(drift < 0.25, "persistent should be interval-insensitive: {drift}");
        assert!(
            fast.rebuild_ms > slow.rebuild_ms,
            "rebuild must benefit from longer intervals: {} vs {}",
            fast.rebuild_ms,
            slow.rebuild_ms
        );
    }
}
