//! The [`Kindle`] framework object: preparation + simulation glued.
//!
//! Mirrors Figure 3 of the paper: the *preparation* sub-system turns an
//! application (here: a synthetic workload) into a disk image + template
//! program, and the *simulation* sub-system runs that program on the full
//! machine with the configuration the user chose.

use kindle_sim::{Machine, MachineConfig, ReplayOptions, ReplayReport, SimReport};
use kindle_trace::{Driver, ReplayProgram, WorkloadKind};
use kindle_types::Result;

/// The framework: holds a prepared program and drives simulations of it.
#[derive(Debug)]
pub struct Kindle {
    program: ReplayProgram,
}

impl Kindle {
    /// **Preparation component**: traces `workload` for `ops` operations
    /// (Pin-substitute path) and generates the template program.
    pub fn prepare(workload: WorkloadKind, ops: u64, seed: u64) -> Self {
        let (_, image) = Driver::new(seed).trace(workload, ops);
        Kindle { program: ReplayProgram::from_image(image) }
    }

    /// Preparation without materialising the trace (streams records during
    /// simulation; preferred for the full 10 M-op runs).
    pub fn prepare_streaming(workload: WorkloadKind, ops: u64, seed: u64) -> Self {
        Kindle { program: ReplayProgram::synthetic(workload, ops, seed) }
    }

    /// The prepared template program.
    pub fn program(&self) -> &ReplayProgram {
        &self.program
    }

    /// **Simulation component**: boots a machine with `cfg`, launches the
    /// init process and replays the prepared program.
    ///
    /// # Errors
    ///
    /// Propagates machine construction and replay failures.
    pub fn simulate(
        &self,
        cfg: MachineConfig,
        opts: ReplayOptions,
    ) -> Result<(ReplayReport, SimReport)> {
        let mut machine = Machine::new(cfg)?;
        let pid = machine.spawn_process()?;
        let replay = machine.run_replay(pid, &self.program, opts)?;
        let report = machine.report();
        Ok((replay, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_simulate_end_to_end() {
        let kindle = Kindle::prepare(WorkloadKind::YcsbMem, 2_000, 1);
        let (replay, report) =
            kindle.simulate(MachineConfig::small(), ReplayOptions::default()).unwrap();
        assert_eq!(replay.ops, 2_000);
        assert!(replay.cycles.as_u64() > 0);
        assert!(report.kernel.page_faults > 0, "demand paging must have run");
        assert!(report.mem.nvm.reads + report.mem.nvm.writes > 0, "NVM areas touched");
    }

    #[test]
    fn streaming_matches_materialised() {
        let a = Kindle::prepare(WorkloadKind::GapbsPr, 1_000, 3);
        let b = Kindle::prepare_streaming(WorkloadKind::GapbsPr, 1_000, 3);
        let (ra, _) = a.simulate(MachineConfig::small(), ReplayOptions::default()).unwrap();
        let (rb, _) = b.simulate(MachineConfig::small(), ReplayOptions::default()).unwrap();
        assert_eq!(ra.ops, rb.ops);
        assert_eq!(ra.cycles, rb.cycles, "identical records, identical timing");
    }
}
