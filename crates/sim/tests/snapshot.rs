//! Acceptance tests for `Machine::snapshot` / `Machine::restore`.
//!
//! The crash-sweep tier forks thousands of machines from snapshots, so a
//! snapshot must be a *perfect* capture: a restored machine running a
//! suffix has to be byte-indistinguishable from a machine that ran the
//! whole history uninterrupted — timing, caches, TLBs, page tables,
//! checkpoint engine, scrub/patrol progress and the media fault model all
//! included. `SimReport` carries every counter the simulator exposes, so
//! comparing full reports (via their `Debug` rendering; the report
//! deliberately has no `PartialEq`) is the widest equality check
//! available.

use kindle_mem::MediaFaultConfig;
use kindle_os::PtMode;
use kindle_sim::{Machine, MachineConfig, MachineSnapshot};
use kindle_types::{AccessKind, Cycles, MapFlags, PhysMem, Prot, VirtAddr, PAGE_SIZE};

const PAGES: u64 = 4;

/// A machine with every optional subsystem live: persistent page tables,
/// checkpointing, scrubd and the checksummed data patrol.
fn full_config(kthreads: bool) -> MachineConfig {
    let cfg = MachineConfig::small()
        .with_pt_mode(PtMode::Persistent)
        .with_checkpointing(Cycles::from_millis(1000))
        .with_scrub_interval(Cycles::from_micros(50))
        .with_patrol_interval(Cycles::from_micros(20));
    if kthreads {
        cfg.with_kthreads()
    } else {
        cfg
    }
}

/// The shared history prefix: spawn, map NVM data pages, fill them, and
/// publish a checkpoint.
fn prefix(m: &mut Machine) -> (u32, VirtAddr) {
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, PAGES * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    for page in 0..PAGES {
        m.access(pid, va + page * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    m.checkpoint_now().unwrap();
    (pid, va)
}

/// The suffix whose observables both machines must agree on: mixed
/// read/write traffic (exercising caches, TLBs and the patrol), map/unmap
/// churn (exercising the redo log) and periodic checkpoints.
fn suffix(m: &mut Machine, pid: u32, va: VirtAddr) {
    for round in 0..8u64 {
        for page in 0..PAGES {
            let kind = if (round + page) % 3 == 0 { AccessKind::Read } else { AccessKind::Write };
            m.access(pid, va + page * PAGE_SIZE as u64, kind).unwrap();
        }
        if round % 2 == 0 {
            m.checkpoint_now().unwrap();
        }
        let extra = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        m.munmap(pid, extra, PAGE_SIZE as u64).unwrap();
    }
}

/// Everything observable about a machine after the suffix: the full
/// simulator report plus the clock and the stored bytes of the data pages.
fn observe(m: &mut Machine, pid: u32, va: VirtAddr) -> String {
    let mut bytes = Vec::new();
    for page in 0..PAGES {
        let pte = m
            .kernel
            .translate(&mut m.hw, pid, va + page * PAGE_SIZE as u64)
            .unwrap()
            .expect("data page is mapped");
        for w in 0..(PAGE_SIZE as u64 / 8) {
            bytes.push(m.hw.read_u64(pte.pfn().base() + w * 8));
        }
    }
    format!("now={:?} report={:?} bytes={bytes:?}", m.now(), m.report())
}

#[test]
fn restored_machine_matches_uninterrupted_and_fresh_replay() {
    // Three machines, one history: A runs prefix + suffix with a snapshot
    // taken in between; B is restored from that snapshot and runs only the
    // suffix; C replays the whole history from a fresh machine. All three
    // must land on the identical report — scrub and patrol progress
    // included (both daemons are armed and patrol passes run during the
    // suffix).
    let mut a = Machine::new(full_config(false)).unwrap();
    let (pid, va) = prefix(&mut a);
    let snap = a.snapshot();
    suffix(&mut a, pid, va);
    let obs_a = observe(&mut a, pid, va);
    assert!(a.patrol.as_ref().unwrap().stats().passes > 0, "patrol never ran; test too weak");
    assert!(a.scrub.is_some(), "scrubd not armed; test too weak");

    let mut b = Machine::restore(&snap);
    suffix(&mut b, pid, va);
    let obs_b = observe(&mut b, pid, va);
    assert_eq!(obs_a, obs_b, "restored machine diverged from the uninterrupted one");

    let mut c = Machine::new(full_config(false)).unwrap();
    let (pid_c, va_c) = prefix(&mut c);
    assert_eq!((pid_c, va_c), (pid, va), "fresh replay allocated differently");
    suffix(&mut c, pid_c, va_c);
    let obs_c = observe(&mut c, pid_c, va_c);
    assert_eq!(obs_a, obs_c, "fresh replay diverged from the uninterrupted run");
}

#[test]
fn snapshot_survives_mutation_of_the_original() {
    // The property the sweep depends on: snapshot → keep mutating the
    // original → restore → run the suffix, and the result is byte-identical
    // to an uninterrupted run. Checked with kthreads off and on, and with a
    // directed stuck-cell fault armed under a mapped data line (so the
    // media model, its correction directory and the patrol's healing work
    // all have to round-trip through the snapshot too).
    for kthreads in [false, true] {
        let mut cfg = full_config(kthreads);
        cfg.mem.faults = Some(MediaFaultConfig {
            wear_limit: 0,
            stuck_cells: 0,
            correction_entries: 2,
            ..MediaFaultConfig::with_seed(0x5eed)
        });

        // The uninterrupted baseline, with one stuck bit seeded after the
        // prefix under the first data line.
        let seed_fault = |m: &mut Machine, pid: u32, va: VirtAddr| {
            let pte = m.kernel.translate(&mut m.hw, pid, va).unwrap().expect("mapped");
            assert!(
                m.hw.mc.degrade_line_bit(pte.pfn().base().as_u64(), 5),
                "stuck-cell seeding failed"
            );
        };
        let mut base = Machine::new(cfg.clone()).unwrap();
        let (pid, va) = prefix(&mut base);
        seed_fault(&mut base, pid, va);
        suffix(&mut base, pid, va);
        let expected = observe(&mut base, pid, va);

        // Snapshot after fault seeding, then scribble all over the
        // original before restoring: the deep copy must not care.
        let mut orig = Machine::new(cfg.clone()).unwrap();
        let (pid2, va2) = prefix(&mut orig);
        assert_eq!((pid2, va2), (pid, va));
        seed_fault(&mut orig, pid, va);
        let snap = orig.snapshot();
        suffix(&mut orig, pid, va);
        suffix(&mut orig, pid, va);
        drop(orig);

        let mut restored = Machine::restore(&snap);
        suffix(&mut restored, pid, va);
        let got = observe(&mut restored, pid, va);
        assert_eq!(expected, got, "kthreads={kthreads}: restored suffix diverged");
    }
}

#[test]
fn snapshot_republishes_ambient_backend_on_restore() {
    // Sweep forks restore on arbitrary worker threads: the capturer's
    // ambient far-tier backend must travel with the snapshot (like the
    // fault model and legacy-maps epoch) so follow-on machines a worker
    // builds run the same backend as the golden run.
    kindle_sim::set_thread_backend(Some(kindle_mem::Backend::SttRam));
    let m = Machine::new(MachineConfig::small()).unwrap();
    assert_eq!(
        m.hw.mc.backend(),
        kindle_mem::Backend::SttRam,
        "machines must pick up the ambient backend when the config leaves it unset"
    );
    let snap = m.snapshot();
    kindle_sim::set_thread_backend(None);

    let restored = Machine::restore(&snap);
    assert_eq!(restored.hw.mc.backend(), kindle_mem::Backend::SttRam);
    assert_eq!(
        kindle_sim::thread_backend(),
        Some(kindle_mem::Backend::SttRam),
        "restore must republish the captured ambient backend"
    );
    kindle_sim::set_thread_backend(None);

    // An explicit config always beats the ambient choice.
    kindle_sim::set_thread_backend(Some(kindle_mem::Backend::Numa));
    let explicit = Machine::new(MachineConfig::small().with_backend(kindle_mem::Backend::Cxl));
    kindle_sim::set_thread_backend(None);
    assert_eq!(explicit.unwrap().hw.mc.backend(), kindle_mem::Backend::Cxl);
}

#[test]
fn snapshots_are_send_and_sync() {
    // The sweep shares one snapshot pool across fork-join workers by
    // reference; this pins the auto-trait obligation at the API level.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MachineSnapshot>();
}
