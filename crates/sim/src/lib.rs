//! The Kindle simulation component: the full machine.
//!
//! Wires the substrates together into a [`Machine`]:
//!
//! * [`Hw`] — the hardware timing core implementing
//!   [`kindle_types::PhysMem`]: the in-order CPU clock, the L1/L2/LLC
//!   hierarchy and the hybrid DRAM+PCM memory controller with its
//!   crash-durability image;
//! * the two-level TLB and hardware page-table walker;
//! * the gemOS-analog [`kindle_os::Kernel`];
//! * the optional prototype engines — process-persistence checkpointing,
//!   SSP and HSCC — driven from the machine's timer loop exactly as gemOS
//!   drives them in the paper.
//!
//! # Examples
//!
//! ```
//! use kindle_sim::{Machine, MachineConfig};
//! use kindle_types::{AccessKind, MapFlags, Prot};
//!
//! let mut m = Machine::new(MachineConfig::small()).unwrap();
//! let pid = m.spawn_process().unwrap();
//! let va = m.mmap(pid, 8192, Prot::RW, MapFlags::NVM).unwrap();
//! m.access(pid, va, AccessKind::Write).unwrap();
//! assert!(m.now().as_u64() > 0);
//! ```

pub mod config;
pub mod daemon;
pub mod hw;
pub mod machine;
pub mod report;

pub use config::{
    set_thread_backend, set_thread_legacy_maps, set_thread_media_faults, thread_backend,
    thread_legacy_maps, thread_media_faults, CheckpointSetup, MachineConfig,
    DEFAULT_PATROL_INTERVAL, DEFAULT_SCRUB_INTERVAL,
};
pub use daemon::{CheckpointDaemon, KernelDaemon, MigrationDaemon, PatrolDaemon, ScrubDaemon};
pub use hw::Hw;
pub use machine::{Machine, MachineSnapshot, ReplayOptions, ReplayReport};
pub use report::SimReport;
