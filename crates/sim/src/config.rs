//! Machine configuration (Table I defaults).

use std::cell::Cell;

use kindle_cache::HierarchyConfig;
use kindle_hscc::HsccConfig;
use kindle_mem::{MediaFaultConfig, MemConfig};
use kindle_os::{DaemonKind, KernelCosts, PtMode};
use kindle_ssp::SspConfig;
use kindle_tlb::TwoLevelTlbConfig;
use kindle_types::Cycles;

/// Process-persistence (checkpoint engine) setup.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CheckpointSetup {
    /// Checkpoint interval (paper default 10 ms, after Aurora).
    pub interval: Cycles,
    /// Saved-state slots to carve.
    pub max_procs: usize,
}

impl Default for CheckpointSetup {
    fn default() -> Self {
        CheckpointSetup { interval: Cycles::from_millis(10), max_procs: 8 }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineConfig {
    /// Memory devices and physical layout (Table I).
    pub mem: MemConfig,
    /// Cache hierarchy (32K/512K/2M per the paper's gem5 setup).
    pub caches: HierarchyConfig,
    /// TLB stack.
    pub tlb: TwoLevelTlbConfig,
    /// Page-table maintenance scheme.
    pub pt_mode: PtMode,
    /// Kernel instruction-cost table.
    pub costs: KernelCosts,
    /// Enable periodic execution-context checkpointing.
    pub checkpoint: Option<CheckpointSetup>,
    /// Enable the SSP prototype.
    pub ssp: Option<SspConfig>,
    /// Enable the HSCC prototype.
    pub hscc: Option<HsccConfig>,
    /// Charge HSCC's OS-mode migration work (false = the paper's
    /// "hardware migration activities only" baseline).
    pub hscc_os_mode: bool,
    /// Run background engine work (checkpoint flushes, HSCC migration,
    /// page-table scrubbing) on simulated kernel daemon threads scheduled
    /// by `Machine::step`, with the `kthread_switch` cost charged per
    /// dispatch. Off by default: single-threaded runs stay byte-identical
    /// to pre-scheduler builds.
    pub kthreads: bool,
    /// Background daemons the machine registers (see `Machine` and the
    /// daemon registry). A listed daemon only gets a kthread when
    /// `kthreads` is on and its engine is configured; its work runs inline
    /// from the timer loop otherwise.
    pub daemons: Vec<DaemonKind>,
    /// Scrub daemon schedule: `Some(interval)` arms periodic page-table
    /// read-verify against the kernel's shadow metadata (usually set via
    /// [`MachineConfig::with_daemon`]).
    pub scrub_interval: Option<Cycles>,
    /// Patrol daemon schedule: `Some(interval)` arms periodic checksum
    /// verification of general-pool NVM data frames (usually set via
    /// [`MachineConfig::with_daemon`]).
    pub patrol_interval: Option<Cycles>,
}

/// Default scrubd period (one pass per simulated millisecond).
pub const DEFAULT_SCRUB_INTERVAL: Cycles = Cycles::from_millis(1);

/// Default patrold period. Each batch verifies a bounded slice of the pool
/// (`kindle_os::PATROL_BATCH_FRAMES`), so the period is shorter than
/// scrubd's whole-table pass.
pub const DEFAULT_PATROL_INTERVAL: Cycles = Cycles::from_micros(250);

impl MachineConfig {
    /// Full-size machine: 3 GB DRAM + 2 GB NVM, no prototype engines.
    pub fn table_i() -> Self {
        MachineConfig {
            mem: MemConfig::default(),
            caches: HierarchyConfig::default(),
            tlb: TwoLevelTlbConfig::default(),
            pt_mode: PtMode::Rebuild,
            costs: KernelCosts::default(),
            checkpoint: None,
            ssp: None,
            hscc: None,
            hscc_os_mode: true,
            kthreads: false,
            daemons: vec![DaemonKind::Checkpoint, DaemonKind::Migration],
            scrub_interval: None,
            patrol_interval: None,
        }
    }

    /// Small machine (128 MiB + 128 MiB) for tests: full behaviour, less
    /// host memory.
    pub fn small() -> Self {
        MachineConfig { mem: MemConfig::with_capacities(128 << 20, 128 << 20), ..Self::table_i() }
    }

    /// Sets the page-table scheme.
    pub fn with_pt_mode(mut self, mode: PtMode) -> Self {
        self.pt_mode = mode;
        self
    }

    /// Enables checkpointing at `interval`.
    pub fn with_checkpointing(mut self, interval: Cycles) -> Self {
        self.checkpoint = Some(CheckpointSetup { interval, ..Default::default() });
        self
    }

    /// Enables SSP.
    pub fn with_ssp(mut self, ssp: SspConfig) -> Self {
        self.ssp = Some(ssp);
        self
    }

    /// Enables HSCC.
    pub fn with_hscc(mut self, hscc: HsccConfig, os_mode: bool) -> Self {
        self.hscc = Some(hscc);
        self.hscc_os_mode = os_mode;
        self
    }

    /// Swaps the NVM technology (paper §V-D: "we can use Kindle to study
    /// other NVM technologies by changing NVM interface parameters").
    pub fn with_nvm_technology(mut self, nvm: kindle_mem::NvmConfig) -> Self {
        self.mem.nvm = nvm;
        self
    }

    /// Selects the far-tier memory backend (timing, endurance/fault
    /// semantics, patrol capability — see [`kindle_mem::Backend`]).
    pub fn with_backend(mut self, backend: kindle_mem::Backend) -> Self {
        self.mem.backend = Some(backend);
        self
    }

    /// Enables the NVM media-fault model (wear-out + stuck cells) with the
    /// default intensities for `seed`.
    pub fn with_media_faults(mut self, seed: u64) -> Self {
        self.mem.faults = Some(MediaFaultConfig::with_seed(seed));
        self
    }

    /// Runs background engine work on simulated kernel daemon threads.
    pub fn with_kthreads(mut self) -> Self {
        self.kthreads = true;
        self
    }

    /// Adds a background daemon to the registry. Adding
    /// [`DaemonKind::Scrub`] or [`DaemonKind::Patrol`] also arms that
    /// engine at its default interval unless one is already set.
    pub fn with_daemon(mut self, kind: DaemonKind) -> Self {
        if !self.daemons.contains(&kind) {
            self.daemons.push(kind);
        }
        if kind == DaemonKind::Scrub && self.scrub_interval.is_none() {
            self.scrub_interval = Some(DEFAULT_SCRUB_INTERVAL);
        }
        if kind == DaemonKind::Patrol && self.patrol_interval.is_none() {
            self.patrol_interval = Some(DEFAULT_PATROL_INTERVAL);
        }
        self
    }

    /// Arms the scrub daemon with an explicit pass interval.
    pub fn with_scrub_interval(mut self, interval: Cycles) -> Self {
        self.scrub_interval = Some(interval);
        self.with_daemon(DaemonKind::Scrub)
    }

    /// Arms the patrol daemon with an explicit batch interval.
    pub fn with_patrol_interval(mut self, interval: Cycles) -> Self {
        self.patrol_interval = Some(interval);
        self.with_daemon(DaemonKind::Patrol)
    }
}

thread_local! {
    /// Ambient media-fault model, so CLI flags and sweep drivers can
    /// inject faults into machines whose construction sites they do not
    /// control (mirrors the thread-local sanitizer installation in
    /// `kindle_types::sanitize`).
    static MEDIA_FAULTS: Cell<Option<MediaFaultConfig>> = const { Cell::new(None) };
}

/// Sets (or with `None` clears) the thread-local media-fault model.
/// Machines built on this thread whose config leaves `mem.faults` unset
/// pick it up; an explicit config always wins.
pub fn set_thread_media_faults(faults: Option<MediaFaultConfig>) {
    MEDIA_FAULTS.with(|s| s.set(faults));
}

/// The ambient media-fault model, if one is set on this thread. Public so
/// fork-join executors can capture the caller's model and republish it on
/// each worker thread (thread-locals do not cross host threads).
pub fn thread_media_faults() -> Option<MediaFaultConfig> {
    MEDIA_FAULTS.with(Cell::get)
}

thread_local! {
    /// Ambient legacy-maps request (`--legacy-maps`), so equivalence
    /// drivers can flip machines they do not construct onto the legacy
    /// ordered-map stores. Same publication discipline as
    /// [`MEDIA_FAULTS`]: captured by fork-join executors and republished
    /// per worker.
    static LEGACY_MAPS: Cell<bool> = const { Cell::new(false) };
}

/// Sets (or with `false` clears) the thread-local legacy-maps request.
/// Machines built on this thread have `mem.legacy_maps` forced on; the
/// default `false` leaves configs untouched.
pub fn set_thread_legacy_maps(legacy: bool) {
    LEGACY_MAPS.with(|s| s.set(legacy));
}

/// Whether this thread requests legacy ordered-map stores. Public so
/// fork-join executors can capture and republish it on worker threads.
pub fn thread_legacy_maps() -> bool {
    LEGACY_MAPS.with(Cell::get)
}

thread_local! {
    /// Ambient far-tier backend choice (`--backend`), so CLI flags and
    /// sweep drivers can swap the far tier under machines whose
    /// construction sites they do not control. Same publication
    /// discipline as [`MEDIA_FAULTS`]: captured by fork-join executors
    /// and machine snapshots, republished per worker / on restore.
    static BACKEND: Cell<Option<kindle_mem::Backend>> = const { Cell::new(None) };
}

/// Sets (or with `None` clears) the thread-local far-tier backend.
/// Machines built on this thread whose config leaves `mem.backend` unset
/// pick it up; an explicit config always wins.
pub fn set_thread_backend(backend: Option<kindle_mem::Backend>) {
    BACKEND.with(|s| s.set(backend));
}

/// The ambient far-tier backend, if one is set on this thread. Public so
/// fork-join executors can capture the caller's choice and republish it
/// on each worker thread (thread-locals do not cross host threads).
pub fn thread_backend() -> Option<kindle_mem::Backend> {
    BACKEND.with(Cell::get)
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::MemKind;

    #[test]
    fn table_i_capacities() {
        let c = MachineConfig::table_i();
        assert_eq!(c.mem.layout.total(MemKind::Dram), 3 << 30);
        assert_eq!(c.mem.layout.total(MemKind::Nvm), 2 << 30);
        assert!(c.checkpoint.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::small()
            .with_pt_mode(PtMode::Persistent)
            .with_checkpointing(Cycles::from_millis(100));
        assert_eq!(c.pt_mode, PtMode::Persistent);
        assert_eq!(c.checkpoint.unwrap().interval, Cycles::from_millis(100));
    }
}
